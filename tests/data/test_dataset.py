"""RatingDataset container: validation, stats, views."""

import numpy as np
import pytest

from repro.data import RatingDataset


def small_dataset(**overrides):
    kwargs = dict(
        name="t",
        user_attributes=np.eye(4),
        item_attributes=np.eye(5),
        user_ids=np.array([0, 1, 2, 0]),
        item_ids=np.array([0, 1, 2, 3]),
        ratings=np.array([1.0, 3.0, 5.0, 4.0]),
    )
    kwargs.update(overrides)
    return RatingDataset(**kwargs)


class TestValidation:
    def test_valid_construction(self):
        ds = small_dataset()
        assert ds.num_users == 4
        assert ds.num_items == 5
        assert ds.num_ratings == 4

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            small_dataset(ratings=np.array([1.0]))

    def test_user_out_of_range_raises(self):
        with pytest.raises(ValueError):
            small_dataset(user_ids=np.array([0, 1, 9, 0]))

    def test_item_out_of_range_raises(self):
        with pytest.raises(ValueError):
            small_dataset(item_ids=np.array([0, 1, 2, 9]))

    def test_rating_outside_scale_raises(self):
        with pytest.raises(ValueError):
            small_dataset(ratings=np.array([1.0, 3.0, 5.0, 7.0]))


class TestStatsAndViews:
    def test_sparsity(self):
        ds = small_dataset()
        assert ds.sparsity == pytest.approx(1.0 - 4 / 20)

    def test_global_mean(self):
        assert small_dataset().global_mean == pytest.approx(3.25)

    def test_stats_row_formatting(self):
        row = small_dataset().stats().as_row()
        assert "t" in row and "%" in row

    def test_rating_matrix(self):
        matrix = small_dataset().rating_matrix()
        assert matrix.shape == (4, 5)
        assert matrix[0, 0] == 1.0
        assert matrix[2, 2] == 5.0
        assert matrix[3].sum() == 0.0  # user 3 rated nothing

    def test_interactions_of_users(self):
        ds = small_dataset()
        idx = ds.interactions_of_users(np.array([0]))
        np.testing.assert_array_equal(idx, [0, 3])

    def test_interactions_of_items(self):
        ds = small_dataset()
        idx = ds.interactions_of_items(np.array([1, 2]))
        np.testing.assert_array_equal(idx, [1, 2])

    def test_user_histories(self):
        hist = small_dataset().user_histories()
        np.testing.assert_array_equal(sorted(hist[0]), [0, 3])
        assert 3 not in hist  # no interactions
