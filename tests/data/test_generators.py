"""Synthetic dataset generators: determinism, structure, signal properties."""

import numpy as np
import pytest

from repro.data import (
    LatentModel,
    MovieLensConfig,
    YelpConfig,
    generate_movielens,
    generate_yelp,
    quantise_ratings,
)
from tests.conftest import TINY_ML, TINY_YELP


class TestMovieLensGenerator:
    def test_shapes_match_config(self, tiny_movielens):
        ds = tiny_movielens
        assert ds.num_users == TINY_ML.num_users
        assert ds.num_items == TINY_ML.num_items
        # The sampler may shed a few ratings when capping per-user activity.
        assert 0.9 * TINY_ML.num_ratings <= ds.num_ratings <= TINY_ML.num_ratings

    def test_deterministic_for_seed(self):
        a = generate_movielens(TINY_ML)
        b = generate_movielens(TINY_ML)
        np.testing.assert_array_equal(a.ratings, b.ratings)
        np.testing.assert_array_equal(a.user_attributes, b.user_attributes)

    def test_different_seed_differs(self):
        import dataclasses

        other = dataclasses.replace(TINY_ML, seed=99)
        a = generate_movielens(TINY_ML)
        b = generate_movielens(other)
        assert not np.array_equal(a.ratings, b.ratings)

    def test_ratings_are_whole_stars_in_scale(self, tiny_movielens):
        values = np.unique(tiny_movielens.ratings)
        assert set(values).issubset({1.0, 2.0, 3.0, 4.0, 5.0})

    def test_no_duplicate_interactions(self, tiny_movielens):
        pairs = set(zip(tiny_movielens.user_ids.tolist(), tiny_movielens.item_ids.tolist()))
        assert len(pairs) == tiny_movielens.num_ratings

    def test_every_user_has_one_categorical_per_field(self, tiny_movielens):
        schema = tiny_movielens.user_schema
        for name in ("gender", "age", "occupation"):
            block = tiny_movielens.user_attributes[:, schema.field_slice(name)]
            np.testing.assert_array_equal(block.sum(axis=1), np.ones(tiny_movielens.num_users))

    def test_items_have_one_to_three_categories(self, tiny_movielens):
        schema = tiny_movielens.item_schema
        block = tiny_movielens.item_attributes[:, schema.field_slice("category")]
        counts = block.sum(axis=1)
        assert counts.min() >= 1
        assert counts.max() <= TINY_ML.max_categories_per_item

    def test_scaled_reduces_sizes(self):
        cfg = MovieLensConfig().scaled(0.1)
        assert cfg.num_users == 94
        assert cfg.num_items == 168
        assert cfg.num_ratings == 10_000

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            MovieLensConfig().scaled(0.0)

    def test_attribute_signal_bounds(self):
        import dataclasses

        cfg = dataclasses.replace(TINY_ML, attribute_signal=1.5)
        with pytest.raises(ValueError):
            generate_movielens(cfg)

    def test_attribute_signal_carries_into_ratings(self):
        """Items with identical attributes should rate more similarly than
        random pairs when attribute_signal is high."""
        import dataclasses

        cfg = dataclasses.replace(TINY_ML, attribute_signal=0.95, num_ratings=900)
        ds = generate_movielens(cfg)
        factors = ds.metadata["true_item_factors"]
        attrs = ds.item_attributes
        sims = attrs @ attrs.T
        np.fill_diagonal(sims, -1)
        close_pairs = np.argwhere(sims >= 3)  # share ≥3 attribute values
        if len(close_pairs) < 5:
            pytest.skip("tiny config produced too few attribute twins")
        twin_dist = np.linalg.norm(factors[close_pairs[:, 0]] - factors[close_pairs[:, 1]], axis=1).mean()
        rng = np.random.default_rng(0)
        a = rng.integers(0, len(factors), 200)
        b = rng.integers(0, len(factors), 200)
        random_dist = np.linalg.norm(factors[a] - factors[b], axis=1).mean()
        assert twin_dist < random_dist


class TestYelpGenerator:
    def test_social_adjacency_is_symmetric_binary(self, tiny_yelp):
        social = tiny_yelp.metadata["social_adjacency"]
        np.testing.assert_array_equal(social, social.T)
        assert set(np.unique(social)).issubset({0.0, 1.0})

    def test_social_rows_are_user_attributes(self, tiny_yelp):
        np.testing.assert_array_equal(tiny_yelp.user_attributes, tiny_yelp.metadata["social_adjacency"])

    def test_no_self_loops(self, tiny_yelp):
        assert np.trace(tiny_yelp.metadata["social_adjacency"]) == 0.0

    def test_every_user_has_a_friend(self, tiny_yelp):
        degrees = tiny_yelp.metadata["social_adjacency"].sum(axis=1)
        assert degrees.min() >= 1

    def test_homophily_friends_closer_in_taste(self, tiny_yelp):
        factors = tiny_yelp.metadata["true_user_factors"]
        social = tiny_yelp.metadata["social_adjacency"]
        normed = factors / np.linalg.norm(factors, axis=1, keepdims=True)
        sims = normed @ normed.T
        friend_sim = sims[social > 0].mean()
        np.fill_diagonal(sims, np.nan)
        overall = np.nanmean(sims)
        assert friend_sim > overall

    def test_item_city_nests_in_state(self, tiny_yelp):
        schema = tiny_yelp.item_schema
        states = tiny_yelp.item_attributes[:, schema.field_slice("state")].argmax(axis=1)
        cities = tiny_yelp.item_attributes[:, schema.field_slice("city")].argmax(axis=1)
        mapping = {}
        for s, c in zip(states, cities):
            assert mapping.setdefault(c, s) == s  # each city in exactly one state


class TestLatentModel:
    def test_signal_zero_ignores_attributes(self, rng):
        attrs = np.eye(6)
        model = LatentModel.from_attributes(attrs, 4, 0.0, rng)
        # with zero signal, identical attribute rows still differ (pure noise)
        assert model.factors.std() > 0

    def test_signal_one_attribute_twins_identical(self, rng):
        attrs = np.zeros((4, 3))
        attrs[:, 0] = 1.0  # all four nodes share the same single attribute
        model = LatentModel.from_attributes(attrs, 4, 1.0, rng)
        np.testing.assert_allclose(model.factors[0], model.factors[1])

    def test_factors_unit_scale(self, rng):
        attrs = (rng.random((50, 10)) < 0.3).astype(float)
        model = LatentModel.from_attributes(attrs, 8, 0.5, rng)
        assert model.factors.std() == pytest.approx(1.0, abs=1e-6)


class TestQuantise:
    def test_clips_and_rounds(self):
        raw = np.array([-2.0, 2.4, 2.6, 9.0])
        out = quantise_ratings(raw, (1.0, 5.0))
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0, 5.0])

    def test_half_star_step(self):
        out = quantise_ratings(np.array([3.3]), (1.0, 5.0), step=0.5)
        np.testing.assert_array_equal(out, [3.5])
