"""Normal cold start splits: the strict ↔ normal interpolation."""

import numpy as np
import pytest

from repro.data import (
    item_cold_split,
    normal_item_cold_split,
    normal_user_cold_split,
)


class TestNormalItemCold:
    def test_cold_items_keep_support_interactions(self, tiny_movielens):
        task = normal_item_cold_split(tiny_movielens, 0.2, support_size=2, seed=0)
        train_counts = np.zeros(tiny_movielens.num_items)
        np.add.at(train_counts, task.train_items, 1)
        supported = train_counts[task.cold_items]
        assert supported.max() <= 2
        assert supported.sum() > 0  # some cold item actually had interactions

    def test_support_zero_equals_strict(self, tiny_movielens):
        normal = normal_item_cold_split(tiny_movielens, 0.2, support_size=0, seed=3)
        strict = item_cold_split(tiny_movielens, 0.2, seed=3)
        np.testing.assert_array_equal(normal.cold_items, strict.cold_items)
        np.testing.assert_array_equal(np.sort(normal.train_idx), np.sort(strict.train_idx))

    def test_train_test_disjoint(self, tiny_movielens):
        task = normal_item_cold_split(tiny_movielens, 0.2, support_size=3, seed=0)
        assert len(np.intersect1d(task.train_idx, task.test_idx)) == 0

    def test_more_support_means_more_training_rows(self, tiny_movielens):
        small = normal_item_cold_split(tiny_movielens, 0.2, support_size=1, seed=0)
        large = normal_item_cold_split(tiny_movielens, 0.2, support_size=5, seed=0)
        assert len(large.train_idx) > len(small.train_idx)

    def test_invalid_arguments(self, tiny_movielens):
        with pytest.raises(ValueError):
            normal_item_cold_split(tiny_movielens, 0.0)
        with pytest.raises(ValueError):
            normal_item_cold_split(tiny_movielens, 0.2, support_size=-1)


class TestNormalUserCold:
    def test_symmetric_user_side(self, tiny_movielens):
        task = normal_user_cold_split(tiny_movielens, 0.2, support_size=2, seed=0)
        assert task.scenario == "user_cold"
        train_counts = np.zeros(tiny_movielens.num_users)
        np.add.at(train_counts, task.train_users, 1)
        assert train_counts[task.cold_users].max() <= 2

    def test_interaction_models_recover_with_support(self, tiny_movielens):
        """The reason normal cold start exists: an interaction-graph model
        (GC-MC) improves when cold items get a support set."""
        from repro import nn
        from repro.baselines import make_baseline
        from repro.train import TrainConfig

        train = TrainConfig(epochs=5, batch_size=64, learning_rate=0.01, patience=None)

        def rmse_with_support(support):
            task = normal_item_cold_split(tiny_movielens, 0.2, support_size=support, seed=0)
            nn.init.seed(0)
            model = make_baseline("GC-MC", embedding_dim=6)
            model.fit(task, train)
            return model.evaluate().rmse

        # allow a little slack — tiny data — but the trend must be there
        assert rmse_with_support(5) < rmse_with_support(0) + 0.02
