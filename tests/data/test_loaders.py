"""Real-dataset loaders, exercised against synthetic fixture files."""

import numpy as np
import pytest

from repro.data.loaders import (
    ML100K_GENRES,
    ML1M_GENRES,
    load_ml100k,
    load_ml1m,
    load_yelp_social,
)


@pytest.fixture()
def ml100k_dir(tmp_path):
    """A minimal but format-faithful ML-100K directory."""
    (tmp_path / "u.user").write_text(
        "1|24|M|technician|85711\n"
        "2|53|F|other|94043\n"
        "3|23|M|writer|32067\n",
        encoding="latin-1",
    )
    genre_flags = ["0"] * len(ML100K_GENRES)
    genre_flags[1] = "1"  # Action
    genre_flags[15] = "1"  # Sci-Fi
    item1 = "|".join(["1", "Toy Story (1995)", "01-Jan-1995", "", "url"] + genre_flags)
    flags2 = ["0"] * len(ML100K_GENRES)
    flags2[8] = "1"  # Drama
    item2 = "|".join(["2", "GoldenEye (1995)", "01-Jan-1995", "", "url"] + flags2)
    (tmp_path / "u.item").write_text(item1 + "\n" + item2 + "\n", encoding="latin-1")
    (tmp_path / "u.data").write_text(
        "1\t1\t5\t874965758\n"
        "1\t2\t3\t876893171\n"
        "2\t1\t4\t888550871\n"
        "2\t2\t2\t888550872\n"
        "3\t1\t3\t878542961\n"
        "3\t2\t1\t878542960\n",
        encoding="latin-1",
    )
    return tmp_path


class TestML100K:
    def test_shapes(self, ml100k_dir):
        ds = load_ml100k(ml100k_dir)
        assert ds.num_users == 3
        assert ds.num_items == 2
        assert ds.num_ratings == 6

    def test_gender_encoding(self, ml100k_dir):
        ds = load_ml100k(ml100k_dir)
        block = ds.user_attributes[:, ds.user_schema.field_slice("gender")]
        np.testing.assert_array_equal(block, [[1, 0], [0, 1], [1, 0]])  # M, F, M

    def test_genres_multilabel(self, ml100k_dir):
        ds = load_ml100k(ml100k_dir)
        genres = ds.item_attributes[:, ds.item_schema.field_slice("genre")]
        assert genres[0, 1] == 1.0 and genres[0, 15] == 1.0  # Action + Sci-Fi
        assert genres[0].sum() == 2.0
        assert genres[1, 8] == 1.0

    def test_ratings_preserved(self, ml100k_dir):
        ds = load_ml100k(ml100k_dir)
        matrix = ds.rating_matrix()
        assert matrix[0, 0] == 5.0
        assert matrix[2, 1] == 1.0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_ml100k(tmp_path)

    def test_loaded_dataset_trains(self, ml100k_dir):
        """The loader's output plugs straight into a model."""
        from repro import nn
        from repro.baselines import make_baseline
        from repro.data import warm_split
        from repro.train import TrainConfig

        from repro.data.splits import RecommendationTask

        ds = load_ml100k(ml100k_dir)
        # Hand-rolled warm split: row 0's user and item both appear elsewhere.
        task = RecommendationTask(
            dataset=ds,
            scenario="warm",
            train_idx=np.arange(1, ds.num_ratings),
            test_idx=np.array([0]),
        )
        nn.init.seed(0)
        model = make_baseline("NFM", embedding_dim=4)
        model.fit(task, TrainConfig(epochs=1, batch_size=4, patience=None))
        assert np.isfinite(model.evaluate().rmse)


@pytest.fixture()
def ml1m_dir(tmp_path):
    (tmp_path / "users.dat").write_text(
        "1::F::1::10::48067\n2::M::56::16::70072\n", encoding="latin-1"
    )
    (tmp_path / "movies.dat").write_text(
        "1::Toy Story (1995)::Animation|Children's|Comedy\n"
        "2::Jumanji (1995)::Adventure|Fantasy\n",
        encoding="latin-1",
    )
    (tmp_path / "ratings.dat").write_text(
        "1::1::5::978300760\n1::2::3::978302109\n2::1::4::978301968\n",
        encoding="latin-1",
    )
    return tmp_path


class TestML1M:
    def test_shapes_and_values(self, ml1m_dir):
        ds = load_ml1m(ml1m_dir)
        assert ds.num_users == 2
        assert ds.num_items == 2
        assert ds.num_ratings == 3
        genres = ds.item_attributes[:, ds.item_schema.field_slice("genre")]
        animation = ML1M_GENRES.index("Animation")
        assert genres[0, animation] == 1.0
        assert genres[0].sum() == 3.0  # three genres on Toy Story

    def test_age_codes(self, ml1m_dir):
        ds = load_ml1m(ml1m_dir)
        ages = ds.user_attributes[:, ds.user_schema.field_slice("age")]
        assert ages[0, 0] == 1.0  # code 1 → bucket 0
        assert ages[1, 6] == 1.0  # code 56 → bucket 6

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_ml1m(tmp_path)


@pytest.fixture()
def yelp_files(tmp_path):
    ratings = tmp_path / "ratings.csv"
    rows = ["user_id,item_id,rating"]
    for u in range(4):
        for i in range(3):
            rows.append(f"u{u},b{i},{(u + i) % 5 + 1}")
    ratings.write_text("\n".join(rows) + "\n", encoding="utf-8")

    social = tmp_path / "social.csv"
    social.write_text(
        "user_id,friend_id\nu0,u1\nu1,u2\nu3,u0\nu9,u0\n", encoding="utf-8"
    )

    items = tmp_path / "items.csv"
    items.write_text(
        "item_id,categories,state,city\n"
        "b0,Food;Bars,AZ,Phoenix\n"
        "b1,Food,NV,Vegas\n"
        "b2,Auto,AZ,Tempe\n",
        encoding="utf-8",
    )
    return ratings, social, items


class TestYelpSocial:
    def test_loads_with_threshold(self, yelp_files):
        ratings, social, items = yelp_files
        ds = load_yelp_social(ratings, social, items, min_interactions=2)
        assert ds.num_users == 4
        assert ds.num_items == 3
        # user attributes ARE the social adjacency rows
        np.testing.assert_array_equal(ds.user_attributes, ds.metadata["social_adjacency"])
        assert np.allclose(ds.user_attributes, ds.user_attributes.T)

    def test_unknown_friend_ignored(self, yelp_files):
        ratings, social, items = yelp_files
        ds = load_yelp_social(ratings, social, items, min_interactions=2)
        # u9 is not a rating user; the edge u9->u0 must be dropped
        assert ds.user_attributes.sum() == 2 * 3  # three undirected edges

    def test_category_vocabulary(self, yelp_files):
        ratings, social, items = yelp_files
        ds = load_yelp_social(ratings, social, items, min_interactions=2)
        cats = ds.item_attributes[:, ds.item_schema.field_slice("category")]
        assert cats.shape[1] == 3  # Auto, Bars, Food
        assert cats.sum() == 4  # b0 has two categories

    def test_threshold_too_high_raises(self, yelp_files):
        ratings, social, items = yelp_files
        with pytest.raises(ValueError):
            load_yelp_social(ratings, social, items, min_interactions=99)
