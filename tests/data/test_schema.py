"""Attribute schema: encoding layout, round-trips, validation, properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import AttributeSchema, CategoricalField, MultiLabelField


@pytest.fixture()
def schema():
    return AttributeSchema(
        [
            CategoricalField("gender", 2),
            CategoricalField("age", 7),
            MultiLabelField("category", 5),
        ]
    )


class TestSchemaBasics:
    def test_dim_is_sum_of_field_sizes(self, schema):
        assert schema.dim == 2 + 7 + 5

    def test_field_names(self, schema):
        assert schema.field_names == ["gender", "age", "category"]

    def test_field_slice_layout(self, schema):
        assert schema.field_slice("gender") == slice(0, 2)
        assert schema.field_slice("age") == slice(2, 9)
        assert schema.field_slice("category") == slice(9, 14)

    def test_field_slice_unknown_raises(self, schema):
        with pytest.raises(KeyError):
            schema.field_slice("height")

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError):
            AttributeSchema([CategoricalField("a", 2), CategoricalField("a", 3)])

    def test_empty_field_rejected(self):
        with pytest.raises(ValueError):
            CategoricalField("x", 0)


class TestEncoding:
    def test_paper_example_layout(self, schema):
        # a_u = [0,1 | 1,0,...,0 | multi-hot]
        row = schema.encode({"gender": 1, "age": 0, "category": [1, 3]})
        np.testing.assert_array_equal(row[:2], [0, 1])
        np.testing.assert_array_equal(row[2:9], [1, 0, 0, 0, 0, 0, 0])
        np.testing.assert_array_equal(row[9:], [0, 1, 0, 1, 0])

    def test_missing_field_raises(self, schema):
        with pytest.raises(KeyError):
            schema.encode({"gender": 0, "age": 1})

    def test_out_of_range_categorical_raises(self, schema):
        with pytest.raises(ValueError):
            schema.encode({"gender": 2, "age": 0, "category": [0]})

    def test_out_of_range_multilabel_raises(self, schema):
        with pytest.raises(ValueError):
            schema.encode({"gender": 0, "age": 0, "category": [7]})

    def test_encode_many_shape(self, schema):
        rows = [{"gender": 0, "age": i % 7, "category": [i % 5]} for i in range(10)]
        matrix = schema.encode_many(rows)
        assert matrix.shape == (10, schema.dim)

    def test_decode_wrong_width_raises(self, schema):
        with pytest.raises(ValueError):
            schema.decode(np.zeros(3))


class TestRoundTrip:
    @given(
        gender=st.integers(0, 1),
        age=st.integers(0, 6),
        cats=st.sets(st.integers(0, 4), min_size=0, max_size=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_round_trip(self, gender, age, cats):
        schema = AttributeSchema(
            [
                CategoricalField("gender", 2),
                CategoricalField("age", 7),
                MultiLabelField("category", 5),
            ]
        )
        row = schema.encode({"gender": gender, "age": age, "category": sorted(cats)})
        decoded = schema.decode(row)
        assert decoded["gender"] == (gender,)
        assert decoded["age"] == (age,)
        assert decoded["category"] == tuple(sorted(cats))

    @given(st.integers(0, 6))
    @settings(max_examples=20, deadline=None)
    def test_exactly_one_hot_per_categorical(self, age):
        schema = AttributeSchema([CategoricalField("age", 7)])
        row = schema.encode({"age": age})
        assert row.sum() == 1.0
