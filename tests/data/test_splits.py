"""Scenario splitters: the strict cold start invariant is the load-bearing test."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import item_cold_split, make_split, user_cold_split, warm_split
from tests.conftest import TINY_ML
from repro.data import generate_movielens


class TestWarmSplit:
    def test_partition_is_disjoint_and_complete(self, tiny_movielens):
        task = warm_split(tiny_movielens, 0.2, seed=0)
        combined = np.sort(np.concatenate([task.train_idx, task.test_idx]))
        np.testing.assert_array_equal(combined, np.arange(tiny_movielens.num_ratings))

    def test_every_test_node_seen_in_training(self, tiny_movielens):
        task = warm_split(tiny_movielens, 0.2, seed=0)
        assert np.isin(task.test_users, task.train_users).all()
        assert np.isin(task.test_items, task.train_items).all()

    def test_fraction_roughly_honoured(self, tiny_movielens):
        task = warm_split(tiny_movielens, 0.2, seed=0)
        fraction = len(task.test_idx) / tiny_movielens.num_ratings
        assert 0.1 <= fraction <= 0.25

    def test_no_cold_nodes(self, tiny_movielens):
        task = warm_split(tiny_movielens, 0.2, seed=0)
        assert len(task.cold_users) == 0
        assert len(task.cold_items) == 0

    def test_invalid_fraction_raises(self, tiny_movielens):
        with pytest.raises(ValueError):
            warm_split(tiny_movielens, 0.0)
        with pytest.raises(ValueError):
            warm_split(tiny_movielens, 1.0)


class TestItemColdSplit:
    def test_strict_invariant_no_train_interactions(self, tiny_movielens):
        task = item_cold_split(tiny_movielens, 0.2, seed=1)
        assert not np.isin(task.train_items, task.cold_items).any()

    def test_all_cold_interactions_in_test(self, tiny_movielens):
        task = item_cold_split(tiny_movielens, 0.2, seed=1)
        in_test = np.isin(task.test_items, task.cold_items)
        assert in_test.all()  # test rows are exactly the cold items' rows

    def test_test_users_are_warm(self, tiny_movielens):
        task = item_cold_split(tiny_movielens, 0.2, seed=1)
        assert np.isin(task.test_users, np.unique(task.train_users)).all()

    def test_cold_fraction(self, tiny_movielens):
        task = item_cold_split(tiny_movielens, 0.2, seed=1)
        assert len(task.cold_items) == round(tiny_movielens.num_items * 0.2)

    def test_assert_strict_cold_catches_violation(self, tiny_movielens):
        task = item_cold_split(tiny_movielens, 0.2, seed=1)
        # sabotage: claim a warm item is cold
        task.cold_items = np.append(task.cold_items, task.train_items[0])
        with pytest.raises(AssertionError):
            task.assert_strict_cold()


class TestUserColdSplit:
    def test_strict_invariant(self, tiny_movielens):
        task = user_cold_split(tiny_movielens, 0.2, seed=1)
        assert not np.isin(task.train_users, task.cold_users).any()

    def test_test_items_are_warm(self, tiny_movielens):
        task = user_cold_split(tiny_movielens, 0.2, seed=1)
        assert np.isin(task.test_items, np.unique(task.train_items)).all()

    def test_symmetric_with_item_split(self, tiny_movielens):
        ics = item_cold_split(tiny_movielens, 0.2, seed=1)
        ucs = user_cold_split(tiny_movielens, 0.2, seed=1)
        assert ics.scenario == "item_cold"
        assert ucs.scenario == "user_cold"
        assert len(ics.cold_users) == 0
        assert len(ucs.cold_items) == 0


class TestMakeSplit:
    def test_dispatch(self, tiny_movielens):
        for scenario in ("warm", "item_cold", "user_cold"):
            task = make_split(tiny_movielens, scenario, 0.2, seed=0)
            assert task.scenario == scenario

    def test_unknown_scenario(self, tiny_movielens):
        with pytest.raises(ValueError):
            make_split(tiny_movielens, "lukewarm", 0.2)

    def test_overlap_rejected(self, tiny_movielens):
        from repro.data.splits import RecommendationTask

        with pytest.raises(ValueError):
            RecommendationTask(
                dataset=tiny_movielens,
                scenario="warm",
                train_idx=np.array([0, 1, 2]),
                test_idx=np.array([2, 3]),
            )

    def test_train_views_align(self, tiny_movielens):
        task = warm_split(tiny_movielens, 0.2, seed=0)
        assert len(task.train_users) == len(task.train_items) == len(task.train_ratings)
        np.testing.assert_array_equal(task.train_users, tiny_movielens.user_ids[task.train_idx])

    def test_train_rating_matrix_excludes_test(self, tiny_movielens):
        task = warm_split(tiny_movielens, 0.2, seed=0)
        matrix = task.train_rating_matrix()
        u, i = task.test_users[0], task.test_items[0]
        # the specific test pair must not be present (pairs are unique)
        assert matrix[u, i] == 0.0


@given(seed=st.integers(0, 30), fraction=st.sampled_from([0.1, 0.2, 0.3, 0.5]))
@settings(max_examples=15, deadline=None)
def test_property_strict_cold_invariant_holds(seed, fraction):
    """For any seed/fraction, cold nodes never leak into training."""
    dataset = generate_movielens(TINY_ML)
    for splitter in (item_cold_split, user_cold_split):
        task = splitter(dataset, fraction, seed=seed)
        task.assert_strict_cold()
        overlap = np.intersect1d(task.train_idx, task.test_idx)
        assert len(overlap) == 0
