"""All twelve baselines: construction, training, prediction protocol."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import (
    BASELINES,
    NORMAL_COLD_BASELINES,
    STRICT_COLD_BASELINES,
    WARM_START_BASELINES,
    make_baseline,
)
from repro.train import TrainConfig

FAST = TrainConfig(epochs=2, batch_size=64, learning_rate=0.01, patience=None)


class TestRegistry:
    def test_twelve_baselines(self):
        assert len(BASELINES) == 12

    def test_groups_partition_registry(self):
        grouped = [*WARM_START_BASELINES, *NORMAL_COLD_BASELINES, *STRICT_COLD_BASELINES]
        assert sorted(grouped) == sorted(BASELINES)

    def test_paper_grouping(self):
        assert WARM_START_BASELINES == ["NFM", "DiffNet", "DANSER", "sRMGCNN", "GC-MC"]
        assert NORMAL_COLD_BASELINES == ["STAR-GCN", "MetaHIN", "IGMC"]
        assert STRICT_COLD_BASELINES == ["DropoutNet", "LLAE", "HERS", "MetaEmb"]

    def test_unknown_baseline(self):
        with pytest.raises(KeyError):
            make_baseline("BERT4Rec")


@pytest.mark.parametrize("name", sorted(BASELINES))
class TestEveryBaseline:
    def test_trains_and_predicts_on_ics(self, name, ics_task):
        nn.init.seed(0)
        model = make_baseline(name, embedding_dim=6)
        model.fit(ics_task, FAST)
        result = model.evaluate()
        assert np.isfinite(result.rmse)
        assert np.isfinite(result.mae)

    def test_predictions_clipped_to_scale(self, name, ics_task):
        nn.init.seed(0)
        model = make_baseline(name, embedding_dim=6)
        model.fit(ics_task, FAST)
        preds = model.predict(ics_task.test_users, ics_task.test_items)
        assert (preds >= 1.0).all() and (preds <= 5.0).all()

    def test_name_matches_registry(self, name, ics_task):
        model = make_baseline(name, embedding_dim=6)
        assert model.name == name


class TestMechanismProperties:
    """Each baseline must exhibit the failure/success mode the paper assigns it."""

    def test_llae_is_catastrophic(self, ics_task):
        """LLAE fits full rating vectors (zeros included) → huge RMSE."""
        nn.init.seed(0)
        model = make_baseline("LLAE")
        model.fit(ics_task, FAST)
        rmse = model.evaluate().rmse
        others = []
        for name in ("NFM", "GC-MC"):
            nn.init.seed(0)
            other = make_baseline(name, embedding_dim=6)
            other.fit(ics_task, FAST)
            others.append(other.evaluate().rmse)
        assert rmse > 2 * max(others)

    def test_igmc_uses_no_attributes(self, ics_task):
        """IGMC's parameters must not scale with attribute dimensionality."""
        nn.init.seed(0)
        model = make_baseline("IGMC", embedding_dim=6)
        model.fit(ics_task, FAST)
        names = [n for n, _ in model.named_parameters()]
        assert not any("proj" in n or "attr" in n for n in names)

    def test_gcmc_cold_conv_is_zero(self, ics_task):
        """A strict cold item aggregates nothing over the bipartite graph."""
        nn.init.seed(0)
        model = make_baseline("GC-MC", embedding_dim=6)
        model.fit(ics_task, FAST)
        rows = model._item_to_user[ics_task.cold_items]
        np.testing.assert_array_equal(rows.sum(axis=1), 0.0)

    def test_dropoutnet_cold_preference_is_zero(self, ics_task):
        nn.init.seed(0)
        model = make_baseline("DropoutNet", embedding_dim=6)
        model.fit(ics_task, FAST)
        np.testing.assert_array_equal(model._item_pref[ics_task.cold_items], 0.0)

    def test_metaemb_generates_for_cold_ids(self, ics_task):
        nn.init.seed(0)
        model = make_baseline("MetaEmb", embedding_dim=6)
        model.fit(ics_task, FAST)
        np.testing.assert_array_equal(model._cold_items, ics_task.cold_items)
        cold = ics_task.cold_items[:3]
        user = np.full(3, ics_task.test_users[0])
        preds = model.predict(user, cold)
        assert np.isfinite(preds).all()

    def test_danser_item_graph_cold_self_loops(self, ics_task):
        """DANSER's co-purchase item graph leaves cold items isolated."""
        nn.init.seed(0)
        model = make_baseline("DANSER", embedding_dim=6)
        model.prepare(ics_task)
        cold = ics_task.cold_items
        np.testing.assert_array_equal(
            model._item_neigh[cold],
            np.repeat(cold[:, None], model._item_neigh.shape[1], axis=1),
        )

    def test_metahin_cold_support_is_empty(self, ics_task):
        nn.init.seed(0)
        model = make_baseline("MetaHIN", embedding_dim=6)
        model.prepare(ics_task)
        np.testing.assert_array_equal(model._item_support_mask[ics_task.cold_items], 0.0)

    def test_diffnet_uses_social_links_on_yelp(self, tiny_yelp):
        from repro.data import user_cold_split

        task = user_cold_split(tiny_yelp, 0.2, seed=0)
        nn.init.seed(0)
        model = make_baseline("DiffNet", embedding_dim=6)
        model.prepare(task)
        social = tiny_yelp.metadata["social_adjacency"]
        # DiffNet's internal graph must be the row-normalised social graph.
        degrees = social.sum(axis=1, keepdims=True)
        expected = social / np.maximum(degrees, 1)
        np.testing.assert_allclose(model._social, expected)

    def test_stargcn_masks_during_training_only(self, warm_task):
        nn.init.seed(0)
        model = make_baseline("STAR-GCN", embedding_dim=6)
        model.fit(warm_task, FAST)
        # predictions are deterministic (no masking at inference)
        a = model.predict(warm_task.test_users[:5], warm_task.test_items[:5])
        b = model.predict(warm_task.test_users[:5], warm_task.test_items[:5])
        np.testing.assert_array_equal(a, b)

    def test_hers_has_no_attribute_parameters(self, ics_task):
        """HERS aggregates relations only — the paper's criticism is that the
        node's own attributes never enter its representation."""
        nn.init.seed(0)
        model = make_baseline("HERS", embedding_dim=6)
        model.fit(ics_task, FAST)
        names = [n for n, _ in model.named_parameters()]
        assert not any("proj" in n or "attr" in n for n in names)


class TestBiasedMF:
    def test_fits_and_predicts(self, warm_task):
        from repro.baselines import BiasedMF, MFConfig

        mf = BiasedMF(MFConfig(factors=6, epochs=15)).fit(warm_task)
        preds = mf.predict(warm_task.test_users, warm_task.test_items)
        rmse = float(np.sqrt(np.mean((np.clip(preds, 1, 5) - warm_task.test_ratings) ** 2)))
        assert rmse < 1.3

    def test_predict_before_fit_raises(self):
        from repro.baselines import BiasedMF

        with pytest.raises(RuntimeError):
            BiasedMF().predict(np.array([0]), np.array([0]))

    def test_stable_on_sparse_data(self, ics_task):
        from repro.baselines import BiasedMF, MFConfig

        mf = BiasedMF(MFConfig(factors=8, epochs=30, learning_rate=0.02)).fit(ics_task)
        assert np.isfinite(mf.user_factors).all()
        assert np.isfinite(mf.item_factors).all()
