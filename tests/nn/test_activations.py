"""Activation modules mirror their functional ops exactly."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, ops


class TestActivationModules:
    def test_relu_matches_functional(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        np.testing.assert_array_equal(nn.ReLU()(x).data, ops.relu(x).data)

    def test_leaky_relu_slope_configurable(self):
        x = Tensor(np.array([-1.0, 1.0]))
        out = nn.LeakyReLU(slope=0.2)(x)
        np.testing.assert_allclose(out.data, [-0.2, 1.0])

    def test_leaky_relu_default_slope_is_papers(self):
        assert nn.LeakyReLU().slope == 0.01

    def test_sigmoid_range(self, rng):
        out = nn.Sigmoid()(Tensor(rng.normal(size=(10,)) * 10)).data
        assert (out > 0).all() and (out < 1).all()

    def test_tanh_matches_numpy(self, rng):
        x = rng.normal(size=(5,))
        np.testing.assert_allclose(nn.Tanh()(Tensor(x)).data, np.tanh(x))

    def test_softplus_positive(self, rng):
        out = nn.Softplus()(Tensor(rng.normal(size=(10,)) * 5)).data
        assert (out > 0).all()

    def test_softplus_asymptote(self):
        # softplus(x) → x for large x
        out = nn.Softplus()(Tensor(np.array([50.0]))).data
        np.testing.assert_allclose(out, [50.0], atol=1e-6)

    def test_activations_have_no_parameters(self):
        for module in (nn.ReLU(), nn.LeakyReLU(), nn.Sigmoid(), nn.Tanh(), nn.Softplus()):
            assert list(module.parameters()) == []

    def test_gradients_flow_through_modules(self, rng):
        x = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        nn.Sequential(nn.Tanh(), nn.Sigmoid())(x).sum().backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()
