"""Layers: Linear, Embedding, Dropout, Bias, MLP, activations, functional losses."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, gradcheck, ops
from repro.nn import functional as F


class TestLinear:
    def test_shapes(self, rng):
        layer = nn.Linear(4, 6)
        out = layer(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 6)

    def test_no_bias(self):
        layer = nn.Linear(4, 6, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_gradcheck_through_layer(self, rng):
        layer = nn.Linear(3, 2)
        x = Tensor(rng.normal(size=(4, 3)))
        gradcheck(lambda w, b: ops.add(ops.matmul(x, w), b), [layer.weight, layer.bias])

    def test_affine_correct(self, rng):
        layer = nn.Linear(3, 2)
        x = rng.normal(size=(5, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = nn.Embedding(10, 4)
        assert emb(np.array([1, 2, 3])).shape == (3, 4)

    def test_2d_lookup(self):
        emb = nn.Embedding(10, 4)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 4)

    def test_gradient_scatter(self):
        emb = nn.Embedding(5, 2)
        emb(np.array([1, 1, 3])).sum().backward()
        grad = emb.weight.grad
        np.testing.assert_array_equal(grad[1], [2.0, 2.0])
        np.testing.assert_array_equal(grad[3], [1.0, 1.0])
        np.testing.assert_array_equal(grad[0], [0.0, 0.0])


class TestDropout:
    def test_identity_in_eval(self, rng):
        drop = nn.Dropout(0.5)
        drop.eval()
        x = Tensor(rng.normal(size=(10, 10)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_scales_kept_values_in_train(self):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = drop(x).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.4 < (out > 0).mean() < 0.6

    def test_zero_rate_is_identity(self, rng):
        drop = nn.Dropout(0.0)
        x = Tensor(rng.normal(size=(5, 5)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestBias:
    def test_lookup(self):
        bias = nn.Bias(5)
        bias.value.data[...] = np.arange(5.0)
        out = bias(np.array([0, 4, 2]))
        np.testing.assert_array_equal(out.data, [0.0, 4.0, 2.0])

    def test_gradient(self):
        bias = nn.Bias(4)
        bias(np.array([1, 1])).sum().backward()
        np.testing.assert_array_equal(bias.value.grad, [0.0, 2.0, 0.0, 0.0])


class TestMLP:
    def test_forward_shape(self, rng):
        mlp = nn.MLP([4, 8, 2])
        assert mlp(Tensor(rng.normal(size=(3, 4)))).shape == (3, 2)

    def test_final_activation(self, rng):
        mlp = nn.MLP([4, 4, 2], final_activation="sigmoid")
        out = mlp(Tensor(rng.normal(size=(10, 4)))).data
        assert (out >= 0).all() and (out <= 1).all()

    def test_too_few_dims_raises(self):
        with pytest.raises(ValueError):
            nn.MLP([4])

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            nn.MLP([4, 2], activation="swish")

    def test_can_fit_linear_function(self, rng):
        nn.init.seed(0)
        mlp = nn.MLP([3, 16, 1])
        from repro.optim import Adam

        opt = Adam(mlp.parameters(), lr=0.01)
        X = rng.normal(size=(128, 3))
        y = (X @ np.array([1.0, -1.0, 2.0]))[:, None]
        for _ in range(200):
            opt.zero_grad()
            loss = F.mse_loss(mlp(Tensor(X)), y)
            loss.backward()
            opt.step()
        assert loss.item() < 0.05


class TestFunctional:
    def test_mse_loss_value(self):
        pred = Tensor([1.0, 2.0, 3.0])
        assert F.mse_loss(pred, np.array([1.0, 2.0, 5.0])).item() == pytest.approx(4.0 / 3.0)

    def test_sum_squared_error(self):
        pred = Tensor([1.0, 3.0])
        assert F.sum_squared_error(pred, np.array([0.0, 0.0])).item() == pytest.approx(10.0)

    def test_mae_loss(self):
        pred = Tensor([1.0, -1.0])
        assert F.mae_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(1.0)

    def test_gaussian_kl_zero_for_standard_normal(self):
        mu = Tensor(np.zeros((4, 3)))
        log_var = Tensor(np.zeros((4, 3)))
        assert F.gaussian_kl(mu, log_var).item() == pytest.approx(0.0)

    def test_gaussian_kl_positive_otherwise(self, rng):
        mu = Tensor(rng.normal(size=(4, 3)))
        log_var = Tensor(rng.normal(size=(4, 3)))
        assert F.gaussian_kl(mu, log_var).item() > 0.0

    def test_gaussian_kl_gradcheck(self, rng):
        mu = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        lv = Tensor(rng.normal(size=(2, 3)) * 0.1, requires_grad=True)
        gradcheck(lambda m, v: F.gaussian_kl(m, v), [mu, lv])

    def test_gaussian_nll_zero_at_perfect_reconstruction(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        assert F.gaussian_nll(x, x).item() == pytest.approx(0.0)

    def test_l2_distance_rowwise(self):
        a = Tensor(np.array([[3.0, 4.0]]))
        b = Tensor(np.array([[0.0, 0.0]]))
        assert F.l2_distance(a, b).data[0] == pytest.approx(5.0, abs=1e-5)

    def test_cosine_similarity_matrix_self_ones(self, rng):
        x = rng.normal(size=(5, 3))
        sim = F.cosine_similarity_matrix(x, x)
        np.testing.assert_allclose(np.diag(sim), np.ones(5))
        assert (sim <= 1.0 + 1e-9).all()

    def test_cosine_similarity_handles_zero_rows(self):
        x = np.zeros((2, 3))
        sim = F.cosine_similarity_matrix(x, x)
        assert np.isfinite(sim).all()


class TestInit:
    def test_seed_reproducible(self):
        nn.init.seed(42)
        a = nn.init.normal((3, 3))
        nn.init.seed(42)
        b = nn.init.normal((3, 3))
        np.testing.assert_array_equal(a, b)

    def test_xavier_uniform_bounds(self):
        w = nn.init.xavier_uniform(100, 100)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= limit

    def test_zeros(self):
        np.testing.assert_array_equal(nn.init.zeros((2, 2)), np.zeros((2, 2)))
