"""Module/Parameter registration, traversal, and state dict round-trips."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


class TwoLayer(nn.Module):
    def __init__(self):
        super().__init__()
        self.first = nn.Linear(4, 8)
        self.second = nn.Linear(8, 2)

    def forward(self, x):
        return self.second(self.first(x))


class TestRegistration:
    def test_parameters_discovered_through_submodules(self):
        model = TwoLayer()
        names = dict(model.named_parameters())
        assert set(names) == {"first.weight", "first.bias", "second.weight", "second.bias"}

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_register_module_dynamic(self):
        model = nn.Module()
        model.register_module("layer0", nn.Linear(2, 2))
        assert "layer0.weight" in dict(model.named_parameters())

    def test_modules_iterates_tree(self):
        model = TwoLayer()
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds.count("Linear") == 2

    def test_module_list_registers(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(list(ml.parameters())) == 4
        assert len(ml) == 2

    def test_module_list_call_raises(self):
        with pytest.raises(RuntimeError):
            nn.ModuleList([])(1)


class TestTrainEval:
    def test_train_eval_propagates(self):
        model = TwoLayer()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestStateDict:
    def test_round_trip(self, rng):
        a, b = TwoLayer(), TwoLayer()
        state = a.state_dict()
        b.load_state_dict(state)
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_copies(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"][...] = 0.0
        assert not np.allclose(model.first.weight.data, 0.0)

    def test_load_rejects_missing_keys(self):
        model = TwoLayer()
        state = model.state_dict()
        del state["first.bias"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_rejects_unexpected_keys(self):
        model = TwoLayer()
        state = model.state_dict()
        state["ghost"] = np.zeros(3)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_rejects_shape_mismatch(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_zero_grad_clears_all(self, rng):
        model = TwoLayer()
        out = model(Tensor(rng.normal(size=(2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())
