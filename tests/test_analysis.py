"""Analysis tools: homophily reports, error slicing, embedding diagnostics."""

import numpy as np
import pytest

from repro import nn
from repro.analysis import (
    cold_vs_warm_errors,
    errors_by_popularity,
    errors_by_rating_value,
    evaluate_generated_embeddings,
    neighbourhood_homophily,
    rating_agreement,
)
from repro.core import AGNN, AGNNConfig
from repro.graphs import build_attribute_graph, build_knn_graph
from repro.train import TrainConfig

CFG = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0)
TRAIN = TrainConfig(epochs=3, batch_size=64, learning_rate=0.01, patience=None)


@pytest.fixture(scope="module")
def fitted(ics_task_module):
    nn.init.seed(0)
    model = AGNN(CFG, rng_seed=0)
    model.fit(ics_task_module, TRAIN)
    return model


@pytest.fixture(scope="module")
def ics_task_module(tiny_movielens_module):
    from repro.data import item_cold_split

    return item_cold_split(tiny_movielens_module, 0.2, seed=0)


@pytest.fixture(scope="module")
def tiny_movielens_module():
    from repro.data import generate_movielens
    from tests.conftest import TINY_ML

    return generate_movielens(TINY_ML)


class TestHomophily:
    def test_attribute_graph_is_homophilous_in_true_factors(self, ics_task_module):
        graph = build_attribute_graph(ics_task_module, "item", pool_percent=10.0)
        factors = ics_task_module.dataset.metadata["true_item_factors"]
        report = neighbourhood_homophily(graph, factors, k=5)
        assert report.neighbour_similarity > report.random_similarity
        assert report.lift > 1.0
        assert "lift" in str(report)

    def test_rating_agreement_on_knn_graph(self, ics_task_module):
        graph = build_knn_graph(ics_task_module, "item", k=5)
        report = rating_agreement(ics_task_module, graph, side="item", k=5)
        assert np.isfinite(report.neighbour_similarity)

    def test_mismatched_sizes_raise(self, ics_task_module):
        graph = build_knn_graph(ics_task_module, "item", k=3)
        with pytest.raises(ValueError):
            neighbourhood_homophily(graph, np.zeros((3, 2)))

    def test_side_validation(self, ics_task_module):
        graph = build_knn_graph(ics_task_module, "item", k=3)
        with pytest.raises(ValueError):
            rating_agreement(ics_task_module, graph, side="movie")


class TestErrorSlices:
    def test_popularity_slices_cover_test_set(self, fitted, ics_task_module):
        slices = errors_by_popularity(fitted, ics_task_module, side="item")
        assert sum(s.count for s in slices) == len(ics_task_module.test_idx)
        for s in slices:
            assert np.isfinite(s.rmse) or s.count == 0

    def test_rating_value_slices(self, fitted, ics_task_module):
        slices = errors_by_rating_value(fitted, ics_task_module)
        values = {s.name for s in slices}
        assert any("rating=" in v for v in values)
        assert sum(s.count for s in slices) == len(ics_task_module.test_idx)

    def test_extreme_ratings_are_harder(self, fitted, ics_task_module):
        """Clipped 1-5 scale: 1s and 5s carry more error than 3s or 4s."""
        slices = {s.name: s for s in errors_by_rating_value(fitted, ics_task_module)}
        mid = slices.get("rating=4") or slices.get("rating=3")
        extreme = slices.get("rating=1") or slices.get("rating=5")
        if mid is None or extreme is None or mid.count < 5 or extreme.count < 5:
            pytest.skip("tiny dataset lacks enough examples at the extremes")
        assert extreme.rmse > mid.rmse

    def test_cold_vs_warm_on_strict_split(self, fitted, ics_task_module):
        breakdown = cold_vs_warm_errors(fitted, ics_task_module)
        # strict split: every test pair touches a cold item
        assert breakdown["cold"].count == len(ics_task_module.test_idx)
        assert breakdown["warm"].count == 0

    def test_side_validation(self, fitted, ics_task_module):
        with pytest.raises(ValueError):
            errors_by_popularity(fitted, ics_task_module, side="movie")


class TestEmbeddingDiagnostics:
    def test_report_structure(self, fitted):
        report = evaluate_generated_embeddings(fitted, side="item")
        assert -1.0 <= report.mean_cosine <= 1.0
        assert 0.0 <= report.better_than_permuted <= 1.0
        assert report.generated_norm >= 0.0
        assert "cos(gen, m)" in str(report)

    def test_unfitted_model_raises(self):
        with pytest.raises(RuntimeError):
            evaluate_generated_embeddings(AGNN(CFG))

    def test_side_validation(self, fitted):
        with pytest.raises(ValueError):
            evaluate_generated_embeddings(fitted, side="movie")

    def test_null_strategy_reports_zero_norm(self, ics_task_module):
        from repro.core import agnn_variant

        nn.init.seed(0)
        model = agnn_variant("AGNN_-eVAE", CFG, seed=0)
        model.fit(ics_task_module, TRAIN)
        report = evaluate_generated_embeddings(model, side="item")
        assert report.generated_norm == pytest.approx(0.0)
