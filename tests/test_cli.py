"""CLI: argument parsing, model factory, end-to-end run command."""

import json

import pytest

from repro.cli import available_models, build_parser, main, model_factory
from repro.experiments.configs import get_scale


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--model", "AGNN"])
        assert args.dataset == "ML-100K"
        assert args.scenario == "item_cold"
        assert args.scale == "smoke"

    def test_run_rejects_bad_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--model", "AGNN", "--scenario", "tepid"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_export_bundle_defaults(self):
        args = build_parser().parse_args(["export-bundle", "--output", "bundles/x"])
        assert args.model == "AGNN"
        assert args.scale == "smoke"
        assert args.output == "bundles/x"

    def test_export_bundle_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export-bundle"])

    def test_export_bundle_rejects_baselines(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export-bundle", "--model", "NFM", "--output", "x"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--bundle", "bundles/x"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.cache_size == 100_000
        assert not args.verbose

    def test_serve_requires_bundle(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serving_bench_defaults(self):
        args = build_parser().parse_args(["serving-bench"])
        assert args.output == "BENCH_serving.json"
        assert args.pairs == 200
        assert args.scale == "smoke"

    def test_serve_batching_defaults(self):
        args = build_parser().parse_args(["serve", "--bundle", "bundles/x"])
        assert not args.no_batching
        assert args.tick_interval == 0.0  # adaptive drain: no artificial window
        assert args.max_batch_pairs == 8192
        assert args.max_queue_depth == 1024

    def test_serve_no_batching_flag(self):
        args = build_parser().parse_args(["serve", "--bundle", "bundles/x", "--no-batching"])
        assert args.no_batching

    def test_load_bench_defaults(self):
        args = build_parser().parse_args(["load-bench"])
        assert args.output == "BENCH_load.json"
        assert args.concurrency == [1, 4, 16]
        assert args.duration == pytest.approx(1.0)
        assert args.rate == pytest.approx(300.0)
        assert args.epochs == 2
        assert not args.check
        assert args.bundle is None
        assert args.pairs_per_request == 16
        assert args.dim == 40
        assert args.tick_interval == 0.0

    def test_load_bench_custom_ramp(self):
        args = build_parser().parse_args(["load-bench", "--concurrency", "2", "8", "--check"])
        assert args.concurrency == [2, 8]
        assert args.check

    def test_serve_workers_default_single_process(self):
        args = build_parser().parse_args(["serve", "--bundle", "bundles/x"])
        assert args.workers == 1

    def test_serve_workers_flag(self):
        args = build_parser().parse_args(["serve", "--bundle", "bundles/x", "--workers", "4"])
        assert args.workers == 4

    def test_load_bench_pool_defaults(self):
        args = build_parser().parse_args(["load-bench"])
        assert args.pool_workers == [1, 2, 4]
        assert args.pool_concurrency == 8
        assert not args.no_pool

    def test_load_bench_pool_flags(self):
        args = build_parser().parse_args(
            ["load-bench", "--pool-workers", "1", "8", "--pool-concurrency", "16"]
        )
        assert args.pool_workers == [1, 8]
        assert args.pool_concurrency == 16

    def test_load_bench_no_pool(self):
        args = build_parser().parse_args(["load-bench", "--no-pool"])
        assert args.no_pool

    def test_refresh_defaults(self):
        args = build_parser().parse_args(["refresh", "--store", "stores/live"])
        assert args.store == "stores/live"
        assert args.dataset == "ML-100K"
        assert args.scale == "smoke"
        assert args.epochs is None
        assert args.interaction_fraction == pytest.approx(0.1)
        assert args.new_user_fraction == pytest.approx(0.05)
        assert args.new_item_fraction == pytest.approx(0.05)
        assert args.seed == 0

    def test_refresh_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["refresh"])

    def test_refresh_bench_defaults(self):
        args = build_parser().parse_args(["refresh-bench"])
        assert args.output == "BENCH_refresh.json"
        assert args.refresh_epochs is None
        assert args.swap_threads == 4
        assert args.swap_requests == 50
        assert args.swaps == 6
        assert not args.check

    def test_graph_bench_defaults(self):
        args = build_parser().parse_args(["graph-bench"])
        assert args.n_grid == "2000,8000,32000,100000"
        assert args.exact_grid == "2000,4000,8000"
        assert args.pool_size == 100
        assert args.repeats == 2
        assert args.seed == 0
        assert args.output == "BENCH_training.json"
        assert not args.json

    def test_graph_bench_rejects_bad_grid(self):
        from repro.cli import main

        assert main(["graph-bench", "--n-grid", "2000,oops"]) == 2


class TestModelFactory:
    def test_agnn_variant(self):
        scale = get_scale("smoke")
        model = model_factory("AGNN_-fgate", scale)()
        assert model.name == "AGNN_-fgate"

    def test_baseline(self):
        scale = get_scale("smoke")
        model = model_factory("NFM", scale)()
        assert model.name == "NFM"

    def test_unknown(self):
        with pytest.raises(KeyError):
            model_factory("GPT", get_scale("smoke"))

    def test_available_models_superset(self):
        models = available_models()
        assert "AGNN" in models
        assert "LLAE" in models
        assert len(models) >= 20  # 12 baselines + 15 variants (shared AGNN entry)


class TestCommands:
    def test_list_models(self, capsys):
        assert main(["list-models"]) == 0
        out = capsys.readouterr().out
        assert "AGNN" in out and "baseline" in out

    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Sparsity" in out

    def test_run_json_output(self, capsys):
        code = main(
            ["run", "--model", "NFM", "--scenario", "item_cold", "--scale", "smoke",
             "--epochs", "1", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "NFM"
        assert payload["epochs_trained"] >= 1
        assert payload["rmse"] > 0

    def test_export_bundle_writes_loadable_bundle(self, capsys, tmp_path):
        code = main(
            ["export-bundle", "--scale", "smoke", "--epochs", "1",
             "--output", str(tmp_path / "bundle"), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "AGNN"
        from repro.serving import load_bundle

        bundle = load_bundle(payload["bundle"])
        assert bundle.manifest["model_name"] == "AGNN"

    def test_run_multi_seed(self, capsys):
        code = main(
            ["run", "--model", "NFM", "--scenario", "item_cold", "--scale", "smoke",
             "--epochs", "1", "--seeds", "0", "1", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seeds"] == [0, 1]
        assert payload["rmse_std"] >= 0.0
