"""The gradcheck utility itself must catch wrong gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, numerical_gradient, ops
from repro.autograd.tensor import _unbroadcast


class TestGradcheck:
    def test_passes_on_correct_gradient(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        assert gradcheck(lambda v: ops.mul(v, 2.0), [x])

    def test_fails_on_wrong_gradient(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)

        def broken(v):
            out = ops.mul(v, 2.0)
            # sabotage: replace backward with a wrong one
            original = out._backward

            def bad(grad):
                v.accumulate_grad(grad * 3.0)

            out._backward = bad
            return out

        with pytest.raises(AssertionError):
            gradcheck(broken, [x])

    def test_skips_non_grad_inputs(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        c = Tensor(rng.normal(size=(3,)))  # constant
        assert gradcheck(lambda a, b: ops.mul(a, b), [x, c])

    def test_numerical_gradient_of_square(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        num = numerical_gradient(lambda v: ops.square(v), [x], wrt=0)
        np.testing.assert_allclose(num, [2.0, 4.0], atol=1e-4)


class TestUnbroadcast:
    def test_identity_when_shapes_match(self, rng):
        g = rng.normal(size=(3, 4))
        np.testing.assert_array_equal(_unbroadcast(g, (3, 4)), g)

    def test_sums_prepended_axes(self, rng):
        g = np.ones((5, 3))
        np.testing.assert_array_equal(_unbroadcast(g, (3,)), np.full(3, 5.0))

    def test_sums_size_one_axes(self, rng):
        g = np.ones((3, 4))
        np.testing.assert_array_equal(_unbroadcast(g, (3, 1)), np.full((3, 1), 4.0))

    def test_combination(self):
        g = np.ones((2, 3, 4))
        out = _unbroadcast(g, (1, 4))
        assert out.shape == (1, 4)
        np.testing.assert_array_equal(out, np.full((1, 4), 6.0))
