"""Tensor core behaviour: construction, backward mechanics, detach, modes."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, ops, set_grad_enabled


class TestConstruction:
    def test_wraps_array_as_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_wraps_existing_tensor_without_nesting(self):
        inner = Tensor([1.0, 2.0])
        outer = Tensor(inner)
        assert isinstance(outer.data, np.ndarray)
        np.testing.assert_array_equal(outer.data, inner.data)

    def test_scalar_item(self):
        assert Tensor(3.5).item() == 3.5

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestBackward:
    def test_scalar_backward_seeds_ones(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        x.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones(3))

    def test_backward_requires_scalar_without_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_backward_shape_mismatch_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 1.0
        with pytest.raises(ValueError):
            y.backward(np.zeros(3))

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_gradients_accumulate_across_backward_calls(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 2.0).backward(np.array([1.0]))
        (x * 2.0).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [4.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_reused_node_in_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x  # x used twice by one op
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_deep_chain_does_not_recurse(self):
        # Iterative topological sort must handle graphs deeper than the
        # Python recursion limit.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])


class TestDetachAndModes:
    def test_detach_shares_data_but_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        d = (x * 2.0).detach()
        assert not d.requires_grad
        y = d * 3.0
        assert not y.requires_grad

    def test_no_grad_blocks_graph_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores_mode_after_exception(self):
        x = Tensor([1.0], requires_grad=True)
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert (x * 2.0).requires_grad

    def test_set_grad_enabled_nesting(self):
        x = Tensor([1.0], requires_grad=True)
        with set_grad_enabled(False):
            with set_grad_enabled(True):
                assert (x * 1.0).requires_grad
            assert not (x * 1.0).requires_grad

    def test_requires_grad_false_inside_no_grad_construction(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad

    def test_zero_grad_clears(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None


class TestOperatorSugar:
    def test_radd_rsub_rmul_rtruediv(self):
        x = Tensor([2.0], requires_grad=True)
        np.testing.assert_allclose((1.0 + x).data, [3.0])
        np.testing.assert_allclose((1.0 - x).data, [-1.0])
        np.testing.assert_allclose((3.0 * x).data, [6.0])
        np.testing.assert_allclose((4.0 / x).data, [2.0])

    def test_pow_and_neg(self):
        x = Tensor([3.0], requires_grad=True)
        np.testing.assert_allclose((x**2).data, [9.0])
        np.testing.assert_allclose((-x).data, [-3.0])

    def test_matmul_operator(self):
        a = Tensor(np.eye(2), requires_grad=True)
        b = Tensor([[1.0], [2.0]])
        np.testing.assert_allclose((a @ b).data, [[1.0], [2.0]])

    def test_transpose_property(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.T.shape == (3, 2)

    def test_getitem_slicing(self):
        t = Tensor(np.arange(10.0), requires_grad=True)
        piece = t[2:5]
        piece.sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_array_equal(t.grad, expected)
