"""Gradient checks for every differentiable primitive against finite differences."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, ops


def t(shape, rng, positive=False, scale=1.0):
    data = rng.normal(size=shape) * scale
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True)


class TestElementwiseGradients:
    def test_add(self, rng):
        gradcheck(ops.add, [t((3, 4), rng), t((3, 4), rng)])

    def test_add_broadcast_vector(self, rng):
        gradcheck(ops.add, [t((3, 4), rng), t((4,), rng)])

    def test_add_broadcast_scalar_shape(self, rng):
        gradcheck(ops.add, [t((3, 4), rng), t((1, 4), rng)])

    def test_sub(self, rng):
        gradcheck(ops.sub, [t((2, 5), rng), t((2, 5), rng)])

    def test_mul_broadcast(self, rng):
        gradcheck(ops.mul, [t((3, 4), rng), t((3, 1), rng)])

    def test_div(self, rng):
        gradcheck(ops.div, [t((3, 3), rng), t((3, 3), rng, positive=True)])

    def test_neg(self, rng):
        gradcheck(ops.neg, [t((4,), rng)])

    def test_power(self, rng):
        gradcheck(lambda x: ops.power(x, 3.0), [t((3,), rng, positive=True)])

    def test_exp(self, rng):
        gradcheck(ops.exp, [t((3, 2), rng)])

    def test_log(self, rng):
        gradcheck(ops.log, [t((3, 2), rng, positive=True)])

    def test_sqrt(self, rng):
        gradcheck(ops.sqrt, [t((3, 2), rng, positive=True)])

    def test_square(self, rng):
        gradcheck(ops.square, [t((3, 2), rng)])

    def test_abs_away_from_zero(self, rng):
        gradcheck(ops.absolute, [t((3, 2), rng, positive=True)])

    def test_sigmoid(self, rng):
        gradcheck(ops.sigmoid, [t((3, 4), rng)])

    def test_sigmoid_extreme_values_stable(self):
        out = ops.sigmoid(Tensor([-1000.0, 1000.0]))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_tanh(self, rng):
        gradcheck(ops.tanh, [t((3, 4), rng)])

    def test_relu_away_from_kink(self, rng):
        x = Tensor(rng.normal(size=(4, 4)) + np.sign(rng.normal(size=(4, 4))) * 0.5, requires_grad=True)
        gradcheck(ops.relu, [x])

    def test_leaky_relu(self, rng):
        x = Tensor(np.array([[-2.0, -0.5], [0.5, 2.0]]), requires_grad=True)
        gradcheck(lambda v: ops.leaky_relu(v, 0.01), [x])

    def test_softplus(self, rng):
        gradcheck(ops.softplus, [t((3, 3), rng)])

    def test_clip_interior(self, rng):
        x = Tensor(rng.uniform(-0.5, 0.5, size=(3, 3)), requires_grad=True)
        gradcheck(lambda v: ops.clip(v, -1.0, 1.0), [x])

    def test_clip_blocks_gradient_outside(self):
        x = Tensor([-5.0, 0.0, 5.0], requires_grad=True)
        ops.clip(x, -1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0])

    def test_maximum(self, rng):
        a = Tensor([1.0, 5.0, -2.0], requires_grad=True)
        b = Tensor([2.0, 1.0, -3.0], requires_grad=True)
        gradcheck(ops.maximum, [a, b])

    def test_where(self, rng):
        a, b = t((4,), rng), t((4,), rng)
        gradcheck(lambda x, y: ops.where(np.array([True, False, True, False]), x, y), [a, b])


class TestMatmulGradients:
    def test_2d_2d(self, rng):
        gradcheck(ops.matmul, [t((3, 4), rng), t((4, 5), rng)])

    def test_2d_1d(self, rng):
        gradcheck(ops.matmul, [t((3, 4), rng), t((4,), rng)])

    def test_1d_2d(self, rng):
        gradcheck(ops.matmul, [t((4,), rng), t((4, 3), rng)])

    def test_3d_2d_broadcast(self, rng):
        gradcheck(ops.matmul, [t((2, 3, 4), rng), t((4, 5), rng)])

    def test_3d_3d(self, rng):
        gradcheck(ops.matmul, [t((2, 3, 4), rng), t((2, 4, 5), rng)])


class TestReductionsAndShapes:
    def test_sum_all(self, rng):
        gradcheck(lambda x: ops.sum(x), [t((3, 4), rng)])

    def test_sum_axis(self, rng):
        gradcheck(lambda x: ops.sum(x, axis=1), [t((3, 4), rng)])

    def test_sum_axis_keepdims(self, rng):
        gradcheck(lambda x: ops.sum(x, axis=0, keepdims=True), [t((3, 4), rng)])

    def test_sum_negative_axis(self, rng):
        gradcheck(lambda x: ops.sum(x, axis=-1), [t((2, 3, 4), rng)])

    def test_sum_tuple_axes(self, rng):
        gradcheck(lambda x: ops.sum(x, axis=(0, 2)), [t((2, 3, 4), rng)])

    def test_mean_matches_numpy(self, rng):
        x = t((3, 4), rng)
        np.testing.assert_allclose(ops.mean(x, axis=1).data, x.data.mean(axis=1))

    def test_mean_axis_grad(self, rng):
        gradcheck(lambda x: ops.mean(x, axis=1), [t((3, 4), rng)])

    def test_reshape(self, rng):
        gradcheck(lambda x: ops.reshape(x, (6, 2)), [t((3, 4), rng)])

    def test_transpose_default(self, rng):
        gradcheck(lambda x: ops.transpose(x), [t((3, 4), rng)])

    def test_transpose_axes(self, rng):
        gradcheck(lambda x: ops.transpose(x, (2, 0, 1)), [t((2, 3, 4), rng)])

    def test_broadcast_to(self, rng):
        gradcheck(lambda x: ops.broadcast_to(x, (5, 3, 4)), [t((3, 4), rng)])

    def test_broadcast_to_middle_axis(self, rng):
        gradcheck(lambda x: ops.broadcast_to(ops.reshape(x, (3, 1, 4)), (3, 5, 4)), [t((3, 4), rng)])

    def test_concatenate(self, rng):
        gradcheck(lambda a, b: ops.concatenate([a, b], axis=1), [t((3, 2), rng), t((3, 4), rng)])

    def test_concatenate_axis2(self, rng):
        gradcheck(lambda a, b: ops.concatenate([a, b], axis=2), [t((2, 3, 2), rng), t((2, 3, 3), rng)])

    def test_stack(self, rng):
        gradcheck(lambda a, b: ops.stack([a, b], axis=0), [t((3, 2), rng), t((3, 2), rng)])

    def test_getitem_fancy_index_duplicates(self, rng):
        w = t((5, 3), rng)
        idx = np.array([0, 2, 2, 4])
        gradcheck(lambda x: ops.getitem(x, idx), [w])


class TestEmbeddingAndSoftmax:
    def test_embedding_gather(self, rng):
        w = t((6, 4), rng)
        gradcheck(lambda x: ops.embedding(x, np.array([0, 5, 2, 2])), [w])

    def test_embedding_2d_indices(self, rng):
        w = t((6, 4), rng)
        idx = np.array([[0, 1], [2, 2], [5, 3]])
        out = ops.embedding(w, idx)
        assert out.shape == (3, 2, 4)
        gradcheck(lambda x: ops.embedding(x, idx), [w])

    def test_embedding_duplicate_rows_accumulate(self):
        w = Tensor(np.ones((3, 2)), requires_grad=True)
        ops.embedding(w, np.array([1, 1, 1])).sum().backward()
        np.testing.assert_array_equal(w.grad, [[0, 0], [3, 3], [0, 0]])

    def test_softmax_rows_sum_to_one(self, rng):
        out = ops.softmax(t((4, 5), rng), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_softmax_grad(self, rng):
        gradcheck(lambda x: ops.softmax(x, axis=-1), [t((3, 4), rng)])

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(2, 3))
        np.testing.assert_allclose(
            ops.softmax(Tensor(x)).data, ops.softmax(Tensor(x + 100.0)).data
        )

    def test_log_softmax_grad(self, rng):
        gradcheck(lambda x: ops.log_softmax(x, axis=-1), [t((3, 4), rng)])

    def test_norm_grad(self, rng):
        gradcheck(lambda x: ops.norm(x, axis=1), [t((3, 4), rng)])

    def test_norm_at_zero_is_finite(self):
        x = Tensor(np.zeros((2, 3)), requires_grad=True)
        ops.norm(x, axis=1).sum().backward()
        assert np.isfinite(x.grad).all()


class TestCompositeExpressions:
    def test_mlp_like_composition(self, rng):
        w1, b1 = t((4, 8), rng), t((8,), rng)
        w2 = t((8, 1), rng)
        x = Tensor(rng.normal(size=(5, 4)))

        def f(w1_, b1_, w2_):
            hidden = ops.leaky_relu(ops.add(ops.matmul(x, w1_), b1_), 0.01)
            return ops.matmul(hidden, w2_)

        gradcheck(f, [w1, b1, w2])

    def test_gate_like_composition(self, rng):
        w = t((6, 3), rng)
        target = Tensor(rng.normal(size=(2, 3)))
        neigh = Tensor(rng.normal(size=(2, 4, 3)))

        def f(w_):
            rep = ops.broadcast_to(target.reshape(2, 1, 3), (2, 4, 3))
            gate = ops.sigmoid(ops.matmul(ops.concatenate([rep, neigh], axis=2), w_))
            return ops.mean(ops.mul(neigh, gate), axis=1)

        gradcheck(f, [w])

    def test_no_grad_recorded_for_constant_inputs(self, rng):
        a = Tensor(rng.normal(size=(3,)))
        b = Tensor(rng.normal(size=(3,)))
        out = ops.add(a, b)
        assert not out.requires_grad
        assert out._parents == ()
