"""Sparse-vs-dense equivalence for embedding gradients and optimizer steps.

``Embedding(sparse_grad=True)`` routes the backward pass through
:class:`SparseRowGrad` and the optimizers' row-restricted updates.  The
documented contract is *bitwise* equivalence with the dense path — these tests
hold both paths to ``array_equal``, including the densify handover once most
rows are live and the weight-decay densification.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autograd import SparseRowGrad, Tensor, ops
from repro.autograd.sparse import segment_sum_rows
from repro.optim import Adam, AdamW, clip_grad_norm


class TestSegmentSum:
    def test_matches_np_add_at_bitwise(self, rng):
        indices = rng.integers(0, 50, size=400)
        values = rng.normal(size=(400, 7)) * 10.0 ** rng.integers(-3, 3, size=(400, 1))
        unique, sums = segment_sum_rows(indices, values)
        dense = np.zeros((50, 7))
        np.add.at(dense, indices, values)
        np.testing.assert_array_equal(unique, np.unique(indices))
        np.testing.assert_array_equal(sums, dense[unique])

    def test_single_and_repeated_index(self):
        indices = np.array([3, 3, 3])
        values = np.array([[1.0], [2.0], [4.0]])
        unique, sums = segment_sum_rows(indices, values)
        np.testing.assert_array_equal(unique, [3])
        np.testing.assert_array_equal(sums, [[7.0]])


class TestSparseRowGrad:
    def test_to_dense_and_add_into(self, rng):
        grad = SparseRowGrad(np.array([1, 4]), rng.normal(size=(2, 3)), (6, 3))
        dense = grad.to_dense()
        assert dense.shape == (6, 3)
        np.testing.assert_array_equal(dense[[1, 4]], grad.values)
        assert not dense[[0, 2, 3, 5]].any()
        acc = rng.normal(size=(6, 3))
        expected = acc + dense
        grad.add_into(acc)
        np.testing.assert_array_equal(acc, expected)

    def test_merge_sums_overlapping_rows(self, rng):
        a = SparseRowGrad(np.array([0, 2]), rng.normal(size=(2, 4)), (5, 4))
        b = SparseRowGrad(np.array([2, 3]), rng.normal(size=(2, 4)), (5, 4))
        merged = a.merge(b)
        np.testing.assert_array_equal(merged.to_dense(), a.to_dense() + b.to_dense())

    def test_scale_and_sq_sum_match_dense(self, rng):
        grad = SparseRowGrad(np.array([0, 7, 9]), rng.normal(size=(3, 5)), (12, 5))
        dense = grad.to_dense()
        # Exact vs the touched rows; the full-dense sum may group its pairwise
        # reduction differently (zero rows change the tree), so allclose there.
        assert grad.sq_sum() == float((grad.values ** 2).sum())
        np.testing.assert_allclose(grad.sq_sum(), (dense ** 2).sum(), rtol=1e-15)
        grad.scale_(0.37)
        np.testing.assert_array_equal(grad.to_dense(), dense * 0.37)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SparseRowGrad(np.array([0]), np.zeros((1, 2)), (4,))
        with pytest.raises(ValueError):
            SparseRowGrad(np.array([0, 1]), np.zeros((1, 2)), (4, 2))


class TestEmbeddingBackward:
    def test_sparse_backward_matches_dense_bitwise(self, rng):
        indices = rng.integers(0, 30, size=(8, 5))
        upstream = rng.normal(size=(8, 5, 4))
        grads = {}
        weight_data = rng.normal(size=(30, 4))
        for sparse in (False, True):
            weight = Tensor(weight_data.copy(), requires_grad=True)
            out = ops.embedding(weight, indices, sparse_grad=sparse)
            out.backward(upstream)
            grads[sparse] = weight.grad
        assert isinstance(grads[True], SparseRowGrad)
        assert not isinstance(grads[False], SparseRowGrad)
        np.testing.assert_array_equal(grads[True].to_dense(), grads[False])

    def test_two_gathers_merge_and_stay_sparse(self, rng):
        # Two sparse gathers from the same leaf accumulate via merge() and the
        # result stays sparse — matching the dense double-gather bitwise.
        weight_data = rng.normal(size=(20, 3))
        indices_a, indices_b = np.array([1, 5, 5]), np.array([5, 9])
        grads = {}
        for sparse in (False, True):
            weight = Tensor(weight_data.copy(), requires_grad=True)
            out = ops.add(
                ops.sum(ops.embedding(weight, indices_a, sparse_grad=sparse)),
                ops.sum(ops.embedding(weight, indices_b, sparse_grad=sparse)),
            )
            out.backward()
            grads[sparse] = weight.grad
        assert isinstance(grads[True], SparseRowGrad)
        np.testing.assert_array_equal(grads[True].to_dense(), grads[False])

    def test_mixed_accumulation_densifies(self, rng):
        weight = Tensor(rng.normal(size=(12, 3)), requires_grad=True)
        sparse = SparseRowGrad(np.array([2, 5]), rng.normal(size=(2, 3)), (12, 3))
        dense = rng.normal(size=(12, 3))
        weight.accumulate_grad(sparse)
        assert isinstance(weight.grad, SparseRowGrad)
        weight.accumulate_grad(dense)
        assert isinstance(weight.grad, np.ndarray)
        np.testing.assert_array_equal(weight.grad, sparse.to_dense() + dense)


def _run_steps(optimizer_cls, sparse, steps, rng_seed, vocab=40, dim=6, weight_decay=0.0, clip=None):
    """Train an embedding + dense projection for a few steps; return weights."""
    rng = np.random.default_rng(rng_seed)
    nn.init.seed(rng_seed)
    table = nn.Embedding(vocab, dim, sparse_grad=sparse)
    proj = nn.Linear(dim, 1)
    params = list(table.parameters()) + list(proj.parameters())
    opt = optimizer_cls(params, lr=0.05, weight_decay=weight_decay)
    for _ in range(steps):
        indices = rng.integers(0, vocab, size=(16, 3))
        target = Tensor(rng.normal(size=(16, 3, 1)))
        loss = ops.mean(ops.square(ops.sub(proj(table(indices)), target)))
        for p in params:
            p.zero_grad()
        loss.backward()
        if clip is not None:
            clip_grad_norm(params, clip)
        opt.step()
    return [p.data.copy() for p in params]


class TestOptimizerEquivalence:
    @pytest.mark.parametrize("optimizer_cls", [Adam, AdamW])
    def test_multi_step_training_bitwise_equal(self, optimizer_cls):
        dense = _run_steps(optimizer_cls, sparse=False, steps=6, rng_seed=0)
        sparse = _run_steps(optimizer_cls, sparse=True, steps=6, rng_seed=0)
        for d, s in zip(dense, sparse):
            np.testing.assert_array_equal(d, s)

    def test_with_grad_clipping_bitwise_equal(self):
        dense = _run_steps(Adam, sparse=False, steps=5, rng_seed=1, clip=0.1)
        sparse = _run_steps(Adam, sparse=True, steps=5, rng_seed=1, clip=0.1)
        for d, s in zip(dense, sparse):
            np.testing.assert_array_equal(d, s)

    def test_weight_decay_densifies_and_matches(self):
        # Adam's L2 decay gradients every row, forcing the sparse grad dense.
        dense = _run_steps(Adam, sparse=False, steps=4, rng_seed=2, weight_decay=0.01)
        sparse = _run_steps(Adam, sparse=True, steps=4, rng_seed=2, weight_decay=0.01)
        for d, s in zip(dense, sparse):
            np.testing.assert_array_equal(d, s)

    def test_decoupled_decay_stays_sparse_and_matches(self):
        dense = _run_steps(AdamW, sparse=False, steps=4, rng_seed=3, weight_decay=0.01)
        sparse = _run_steps(AdamW, sparse=True, steps=4, rng_seed=3, weight_decay=0.01)
        for d, s in zip(dense, sparse):
            np.testing.assert_array_equal(d, s)

    def test_densify_handover_once_most_rows_live(self):
        # Tiny vocab: after a couple of batches >=50% of rows are live and
        # _update_sparse hands over to the contiguous dense update.  The
        # handover must be invisible in the resulting weights.
        dense = _run_steps(Adam, sparse=False, steps=8, rng_seed=4, vocab=8)
        sparse = _run_steps(Adam, sparse=True, steps=8, rng_seed=4, vocab=8)
        for d, s in zip(dense, sparse):
            np.testing.assert_array_equal(d, s)

    def test_moments_decay_for_rows_absent_this_step(self):
        # A row touched at step 1 but not step 2 must still have its Adam
        # moments decayed at step 2 (the sparse path revisits all live rows).
        nn.init.seed(0)
        table = nn.Embedding(10, 2, sparse_grad=True)
        opt = Adam(table.parameters(), lr=0.1)
        out = table(np.array([0, 1]))
        ops.sum(out).backward()
        opt.step()
        before = table.weight.data[0].copy()
        table.weight.zero_grad()
        out = table(np.array([1, 2]))
        ops.sum(out).backward()
        opt.step()
        # Row 0 got no gradient at step 2, but its first moment is nonzero, so
        # the bias-corrected update must still move it.
        assert not np.array_equal(table.weight.data[0], before)
