"""Property-based tests for the autograd engine (hypothesis).

Randomised shapes and values probe the algebraic identities the engine must
satisfy: linearity of the backward pass, agreement with finite differences on
random expressions, and shape-invariance of the unbroadcast rule.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, gradcheck, ops

FLOATS = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False)


def arrays(*shape_options):
    shape = st.sampled_from(shape_options)
    return shape.flatmap(lambda s: hnp.arrays(np.float64, s, elements=FLOATS))


class TestAlgebraicIdentities:
    @given(arrays((3,), (2, 3), (2, 1, 3)))
    @settings(max_examples=30, deadline=None)
    def test_add_commutes(self, data):
        a = Tensor(data, requires_grad=True)
        b = Tensor(data[::-1].copy() if data.ndim == 1 else data.copy(), requires_grad=True)
        left = ops.add(a, b).data
        right = ops.add(b, a).data
        np.testing.assert_allclose(left, right)

    @given(arrays((4,), (3, 4)))
    @settings(max_examples=30, deadline=None)
    def test_mul_by_one_is_identity_with_unit_gradient(self, data):
        x = Tensor(data, requires_grad=True)
        out = ops.mul(x, 1.0)
        np.testing.assert_allclose(out.data, data)
        out.backward(np.ones_like(data))
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    @given(arrays((5,), (2, 5)))
    @settings(max_examples=30, deadline=None)
    def test_sub_self_is_zero_gradient_cancels(self, data):
        x = Tensor(data, requires_grad=True)
        out = ops.sub(x, x)
        np.testing.assert_allclose(out.data, 0.0)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, 0.0)  # +1 and −1 paths cancel

    @given(arrays((3, 4)))
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, data):
        x = Tensor(data, requires_grad=True)
        ops.sum(x).backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    @given(arrays((2, 3), (4, 2)))
    @settings(max_examples=30, deadline=None)
    def test_backward_is_linear_in_seed(self, data):
        """grad(2·seed) == 2·grad(seed) — the backward pass is linear."""
        def run(seed_scale):
            x = Tensor(data, requires_grad=True)
            out = ops.sigmoid(ops.mul(x, 0.7))
            out.backward(np.full_like(data, seed_scale))
            return x.grad

        np.testing.assert_allclose(run(2.0), 2.0 * run(1.0), rtol=1e-10)

    @given(arrays((3,), (2, 2)))
    @settings(max_examples=25, deadline=None)
    def test_exp_log_roundtrip_gradient(self, data):
        x = Tensor(np.abs(data) + 0.5, requires_grad=True)
        out = ops.log(ops.exp(x))
        np.testing.assert_allclose(out.data, x.data, rtol=1e-10)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(x.data), rtol=1e-8)


class TestRandomExpressions:
    @given(
        data=arrays((2, 3)),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_composition_passes_gradcheck(self, data, seed):
        """A random three-op composition must agree with finite differences."""
        rng = np.random.default_rng(seed)
        unary = [ops.sigmoid, ops.tanh, lambda t: ops.leaky_relu(t, 0.1),
                 ops.softplus, ops.square]
        chain = [unary[rng.integers(len(unary))] for _ in range(3)]

        # Keep inputs strictly positive so no op sits on the LeakyReLU kink
        # (finite differences are invalid at non-differentiable points).
        x = Tensor(np.abs(data) + 0.3, requires_grad=True)

        def f(v):
            out = v
            for op in chain:
                out = op(out)
            return out

        assert gradcheck(f, [x], atol=1e-4, rtol=1e-3)

    @given(
        rows=st.integers(1, 4),
        inner=st.integers(1, 4),
        cols=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_matmul_any_shape_gradchecks(self, rows, inner, cols, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(size=(rows, inner)), requires_grad=True)
        b = Tensor(rng.normal(size=(inner, cols)), requires_grad=True)
        assert gradcheck(ops.matmul, [a, b])

    @given(
        shape=st.sampled_from([(4,), (2, 3), (2, 2, 2)]),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_softmax_output_is_distribution(self, shape, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=shape) * 5)
        out = ops.softmax(x, axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-12)
        assert (out >= 0).all()


class TestEmbeddingProperties:
    @given(
        vocab=st.integers(2, 8),
        dim=st.integers(1, 5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_embedding_gradient_counts_occurrences(self, vocab, dim, seed):
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, vocab, size=10)
        w = Tensor(rng.normal(size=(vocab, dim)), requires_grad=True)
        ops.embedding(w, idx).sum().backward()
        counts = np.bincount(idx, minlength=vocab).astype(float)
        np.testing.assert_allclose(w.grad, counts[:, None] * np.ones((1, dim)))
