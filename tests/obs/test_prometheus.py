"""Prometheus text exposition: validity, labels, histogram families, round-trip."""

import math

import pytest

from repro.obs.prometheus import DEFAULT_BUCKETS, parse_prometheus, render_prometheus
from repro.telemetry import metrics as telemetry_metrics

pytestmark = pytest.mark.obs


@pytest.fixture()
def registry():
    registry = telemetry_metrics.MetricsRegistry()
    registry.counter("serve.requests").increment(12)
    registry.counter("serve.route_errors.score").increment(3)
    registry.gauge("serve.nodes.user").set(42.0)
    for value in (0.0004, 0.002, 0.03, 0.4):
        registry.histogram("serve.route_latency.score").record(value)
    registry.histogram("span.fit/epoch/batch").record(0.01)
    registry.histogram("train.step").record(0.5)
    return registry


class TestRender:
    def test_counter_total_family(self, registry):
        families = parse_prometheus(render_prometheus(registry))
        assert families["repro_serve_requests_total"][()] == 12

    def test_route_errors_get_route_label(self, registry):
        families = parse_prometheus(render_prometheus(registry))
        assert families["repro_serve_route_errors_total"][(("route", "score"),)] == 3

    def test_gauge(self, registry):
        families = parse_prometheus(render_prometheus(registry))
        assert families["repro_serve_nodes_user"][()] == 42.0

    def test_route_latency_histogram_family(self, registry):
        families = parse_prometheus(render_prometheus(registry))
        buckets = {
            labels: value
            for labels, value in families["repro_serve_route_latency_seconds_bucket"].items()
            if ("route", "score") in labels
        }
        assert len(buckets) == len(DEFAULT_BUCKETS) + 1  # + the +Inf bucket
        # cumulative counts are monotone non-decreasing in the bucket bound
        ordered = sorted(
            ((float(dict(labels)["le"]), value) for labels, value in buckets.items()),
            key=lambda pair: pair[0],
        )
        values = [value for _, value in ordered]
        assert values == sorted(values)
        assert ordered[-1][0] == math.inf and ordered[-1][1] == 4

    def test_histogram_sum_count_exact(self, registry):
        families = parse_prometheus(render_prometheus(registry))
        labels = (("route", "score"),)
        assert families["repro_serve_route_latency_seconds_count"][labels] == 4
        assert families["repro_serve_route_latency_seconds_sum"][labels] == pytest.approx(
            0.0004 + 0.002 + 0.03 + 0.4
        )

    def test_quantile_gauges(self, registry):
        families = parse_prometheus(render_prometheus(registry))
        labels = (("route", "score"),)
        p50 = families["repro_serve_route_latency_p50_seconds"][labels]
        p95 = families["repro_serve_route_latency_p95_seconds"][labels]
        p99 = families["repro_serve_route_latency_p99_seconds"][labels]
        assert 0.0 < p50 <= p95 <= p99 <= 0.4
        hist = registry.histogram("serve.route_latency.score")
        assert p50 == hist.percentile(0.50)

    def test_span_histograms_get_path_label(self, registry):
        families = parse_prometheus(render_prometheus(registry))
        labels = (("path", "fit/epoch/batch"),)
        assert families["repro_span_duration_seconds_count"][labels] == 1

    def test_generic_histogram_name(self, registry):
        families = parse_prometheus(render_prometheus(registry))
        assert families["repro_train_step_seconds_count"][()] == 1

    def test_every_line_is_valid_exposition(self, registry):
        text = render_prometheus(registry)
        assert text.endswith("\n")
        # parse_prometheus raises on any malformed line
        parse_prometheus(text)
        for line in text.splitlines():
            assert line == line.strip()

    def test_type_comments_present_once_per_family(self, registry):
        text = render_prometheus(registry)
        type_lines = [line for line in text.splitlines() if line.startswith("# TYPE ")]
        names = [line.split()[2] for line in type_lines]
        assert len(names) == len(set(names))
        assert "repro_serve_requests_total" in names

    def test_empty_registry_renders(self):
        assert render_prometheus(telemetry_metrics.MetricsRegistry()) == "\n"


class TestParse:
    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is { not } exposition text")

    def test_escaped_labels_round_trip(self):
        registry = telemetry_metrics.MetricsRegistry()
        registry.counter('serve.route_errors.we"ird').increment(1)
        families = parse_prometheus(render_prometheus(registry))
        assert families["repro_serve_route_errors_total"][(("route", 'we"ird'),)] == 1


class TestGlobalRegistryRoundTrip:
    def test_default_registry_counts_match(self):
        telemetry_metrics.increment("serve.requests", 5)
        telemetry_metrics.record_timing("serve.route_latency.topn", 0.001)
        families = parse_prometheus(render_prometheus())
        live = telemetry_metrics.get_registry()
        assert families["repro_serve_requests_total"][()] == live.counters()["serve.requests"]
        hist = live.histogram("serve.route_latency.topn")
        assert families["repro_serve_route_latency_seconds_count"][(("route", "topn"),)] == hist.count
