"""The structured event log: emission, runs, JSONL persistence, gating."""

import json

import pytest

from repro.obs import events
from repro.train import TrainConfig

pytestmark = pytest.mark.obs


class TestEventLog:
    def test_emit_stamps_seq_ts_kind(self):
        log = events.EventLog()
        first = log.emit("alpha", value=1)
        second = log.emit("beta", value=2)
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["kind"] == "alpha"
        assert first["ts"] <= second["ts"]
        assert [e["kind"] for e in log.events()] == ["alpha", "beta"]

    def test_kind_filter(self):
        log = events.EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert len(log.events(kind="a")) == 2

    def test_run_id_stamped_between_start_and_end(self):
        log = events.EventLog()
        log.emit("before")
        run_id = log.start_run({"model": "AGNN"})
        assert run_id.startswith("run-")
        log.emit("during")
        log.end_run(outcome="done")
        log.emit("after")
        by_kind = {e["kind"]: e for e in log.events()}
        assert "run_id" not in by_kind["before"]
        assert by_kind["during"]["run_id"] == run_id
        assert by_kind["run_start"]["manifest"] == {"model": "AGNN"}
        assert by_kind["run_end"]["outcome"] == "done"
        assert "run_id" not in by_kind["after"]

    def test_capacity_ring_drops_oldest(self):
        log = events.EventLog(capacity=3)
        for i in range(5):
            log.emit("e", i=i)
        kept = log.events()
        assert [e["i"] for e in kept] == [2, 3, 4]
        assert log.dropped == 2

    def test_jsonl_persistence_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = events.EventLog(path=path)
        log.start_run({"model": "AGNN", "seed": 0})
        log.emit("epoch", epoch=0, losses={"total": 1.5})
        log.close()
        # one JSON object per line, parseable independently
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(isinstance(json.loads(line), dict) for line in lines)
        back = events.read_events(path)
        assert [e["kind"] for e in back] == ["run_start", "epoch"]
        assert back[1]["losses"] == {"total": 1.5}

    def test_read_events_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "ok", "seq": 1}\nnot json\n\n{"kind": "ok2", "seq": 2}\n')
        assert [e["kind"] for e in events.read_events(path)] == ["ok", "ok2"]

    def test_events_stamp_emitting_pid(self):
        import os

        log = events.EventLog()
        assert log.emit("x")["pid"] == os.getpid()


class TestMultiProcessLog:
    """The fix for interleaved JSONL from pool workers sharing REPRO_OBS_LOG."""

    def test_per_process_log_suffixes_pid(self, tmp_path):
        import os

        base = tmp_path / "run.jsonl"
        log = events.EventLog(path=base, per_process=True)
        log.emit("hello")
        log.close()
        assert not base.exists()
        assert (tmp_path / f"run.jsonl.{os.getpid()}").exists()

    def test_env_configured_global_log_is_per_process(self, tmp_path, monkeypatch):
        import os

        base = tmp_path / "global.jsonl"
        monkeypatch.setenv(events.LOG_PATH_ENV_VAR, str(base))
        events.set_event_log(None)
        try:
            log = events.get_event_log()
            assert log.per_process
            assert log.path == base.parent / f"global.jsonl.{os.getpid()}"
        finally:
            events.set_event_log(events.EventLog())

    def test_read_events_stitches_sibling_files_by_ts(self, tmp_path):
        base = tmp_path / "run.jsonl"
        base.write_text(
            '{"kind": "parent_a", "seq": 1, "ts": 1.0, "pid": 1}\n'
            '{"kind": "parent_b", "seq": 2, "ts": 4.0, "pid": 1}\n'
        )
        (tmp_path / "run.jsonl.100").write_text(
            '{"kind": "worker_a", "seq": 1, "ts": 2.0, "pid": 100}\n'
        )
        (tmp_path / "run.jsonl.200").write_text(
            '{"kind": "worker_b", "seq": 1, "ts": 3.0, "pid": 200}\n'
        )
        stitched = events.read_events(base)
        assert [e["kind"] for e in stitched] == [
            "parent_a", "worker_a", "worker_b", "parent_b",
        ]
        # Non-pid siblings (e.g. a .bak copy) are never stitched in.
        (tmp_path / "run.jsonl.bak").write_text('{"kind": "stale", "ts": 0.0}\n')
        assert all(e["kind"] != "stale" for e in events.read_events(base))

    def test_read_events_stitch_false_reads_one_file(self, tmp_path):
        base = tmp_path / "run.jsonl"
        base.write_text('{"kind": "only", "seq": 1, "ts": 1.0}\n')
        (tmp_path / "run.jsonl.99").write_text('{"kind": "other", "ts": 2.0}\n')
        assert [e["kind"] for e in events.read_events(base, stitch=False)] == ["only"]

    def test_stitch_works_without_base_file(self, tmp_path):
        base = tmp_path / "run.jsonl"
        (tmp_path / "run.jsonl.7").write_text('{"kind": "w", "ts": 1.0}\n')
        assert [e["kind"] for e in events.read_events(base)] == ["w"]

    def test_line_atomic_append_from_threads(self, tmp_path):
        import threading

        path = tmp_path / "run.jsonl"
        log = events.EventLog(path=path)
        threads = [
            threading.Thread(
                target=lambda i=i: [log.emit("t", worker=i, n=n) for n in range(50)]
            )
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()
        back = events.read_events(path)
        assert len(back) == 200  # every line parsed — nothing interleaved

    def test_jsonable_coerces_configs_and_arrays(self):
        import numpy as np

        log = events.EventLog()
        event = log.emit("cfg", train=TrainConfig(epochs=3), arr=np.arange(3), scalar=np.float64(1.5))
        assert event["train"]["epochs"] == 3
        assert event["arr"] == [0, 1, 2]
        assert event["scalar"] == 1.5
        json.dumps(event)  # everything must be JSON-serialisable


class TestGating:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(events.ENV_VAR, raising=False)
        events.set_enabled(None)
        assert not events.is_enabled()

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv(events.ENV_VAR, "1")
        events.set_enabled(None)
        assert events.is_enabled()
        monkeypatch.setenv(events.ENV_VAR, "off")
        assert not events.is_enabled()

    def test_module_level_emit_respects_gate(self):
        log = events.EventLog()
        events.set_event_log(log)
        with events.disabled():
            events.emit("dropped")
        assert log.events() == []
        with events.enabled():
            events.emit("kept")
        assert [e["kind"] for e in log.events()] == ["kept"]

    def test_start_run_disabled_returns_none(self):
        with events.disabled():
            assert events.start_run({"model": "x"}) is None


class TestManifest:
    def test_build_run_manifest_fields(self):
        manifest = events.build_run_manifest(
            "AGNN",
            train_config=TrainConfig(epochs=2),
            seed=7,
            dataset_shape={"name": "tiny", "num_users": 4},
            extra_field="hello",
        )
        assert manifest["model"] == "AGNN"
        assert manifest["seed"] == 7
        assert manifest["train_config"]["epochs"] == 2
        assert manifest["dataset"]["name"] == "tiny"
        assert manifest["extra_field"] == "hello"
        assert isinstance(manifest["pid"], int)
        assert manifest["git"]  # "unknown" at worst, never empty

    def test_git_describe_cached_and_nonempty(self):
        assert events.git_describe() == events.git_describe()
        assert events.git_describe()
