"""Monitors must not perturb numerics: REPRO_OBS on/off is bit-identical.

The monitors recompute gate values and eVAE statistics under ``no_grad`` from
fixed node samples, draw from no RNG and never populate the model's inference
caches — so a monitored fit is bitwise-identical to an unmonitored one.  This
suite is what keeps that contract honest (the golden baselines stay frozen).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import AGNN, AGNNConfig
from repro.obs import events
from repro.train import TrainConfig

pytestmark = pytest.mark.obs

FAST = TrainConfig(epochs=2, batch_size=64, learning_rate=0.01, patience=None, seed=0)
SMALL = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=10.0)


def _fit_and_predict(task):
    nn.init.seed(0)
    model = AGNN(SMALL, rng_seed=0)
    model.fit(task, FAST)
    return model.predict(task.test_users, task.test_items)


class TestMonitorDeterminism:
    def test_monitored_fit_is_bitwise_identical(self, ics_task, monkeypatch):
        # Observe every 2 batches so every monitor runs many times mid-fit.
        monkeypatch.setenv("REPRO_OBS_EVERY", "2")
        with events.disabled():
            baseline = _fit_and_predict(ics_task)
        with events.enabled():
            monitored = _fit_and_predict(ics_task)
            # the run actually happened: manifest + monitor events recorded
            log = events.get_event_log()
            assert len(log.events(kind="run_start")) == 1
            assert len(log.events(kind="monitor")) > 0
            assert len(log.events(kind="fit_end")) == 1
        np.testing.assert_array_equal(baseline, monitored)

    def test_disabled_fit_emits_nothing(self, ics_task):
        with events.disabled():
            _fit_and_predict(ics_task)
        assert events.get_event_log().events() == []

    def test_fit_end_history_matches_model(self, ics_task):
        nn.init.seed(0)
        model = AGNN(SMALL, rng_seed=0)
        with events.enabled():
            model.fit(ics_task, FAST)
            fit_end = events.get_event_log().events(kind="fit_end")[-1]
        assert fit_end["history"] == model.history.to_dict()
        assert fit_end["epochs"] == model.history.num_epochs
