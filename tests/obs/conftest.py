"""Observability fixtures: clean event-log/metrics state + one fitted AGNN."""

from __future__ import annotations

import pytest

from repro import nn
from repro.core import AGNN, AGNNConfig
from repro.train import TrainConfig

OBS_CONFIG = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0)
OBS_TRAIN = TrainConfig(epochs=2, batch_size=64, patience=None)


@pytest.fixture(autouse=True)
def clean_obs():
    """Isolate the global event log, enablement overrides and metrics registry."""
    from repro import telemetry
    from repro.obs import events
    from repro.telemetry import metrics as telemetry_metrics

    previous_obs = events._enabled_override
    previous_telemetry = telemetry_metrics._enabled_override
    previous_log = events._default_log
    events.set_event_log(events.EventLog())
    telemetry.set_enabled(True)
    telemetry.reset()
    telemetry.reset_spans()
    yield
    events.set_enabled(previous_obs)
    events.set_event_log(previous_log)
    telemetry.set_enabled(previous_telemetry)
    telemetry.reset()
    telemetry.reset_spans()


@pytest.fixture()
def fitted_model(ics_task):
    """A small fitted AGNN; function-scoped so monitors see fresh state."""
    nn.init.seed(0)
    model = AGNN(OBS_CONFIG, rng_seed=0)
    model.fit(ics_task, OBS_TRAIN)
    return model
