"""TraceContext + context-aware spans: minting, scoping, propagation, loss.

Unit coverage for the tracing foundation: the wire triple round-trip, the
contextvar scope, parent/child span-id chains within and across simulated
hops, and the span-loss accounting that replaced silent ring-buffer
truncation.
"""

import threading

import pytest

from repro.obs.trace import TraceContext, current_context, trace_scope
from repro.telemetry import metrics, tracing

pytestmark = [pytest.mark.obs, pytest.mark.trace]


class TestTraceContext:
    def test_mint_is_unique_and_carries_request_id(self):
        a = TraceContext.mint("req-1")
        b = TraceContext.mint("req-2")
        assert a.trace_id != b.trace_id
        assert a.request_id == "req-1"
        assert a.span_id == ""

    def test_wire_round_trip(self):
        ctx = TraceContext(trace_id="t1", span_id="s1", request_id="r1")
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        assert TraceContext.from_wire(None) is None

    def test_no_ambient_context_by_default(self):
        assert current_context() is None
        assert tracing.current_trace() is None

    def test_scope_activates_and_restores(self):
        ctx = TraceContext.mint("req-scope")
        with trace_scope(ctx):
            active = current_context()
            assert active.trace_id == ctx.trace_id
            assert active.request_id == "req-scope"
        assert current_context() is None

    def test_nested_none_scope_suppresses_trace(self):
        with trace_scope(TraceContext.mint("req-outer")):
            with trace_scope(None):
                assert current_context() is None
            assert current_context() is not None

    def test_current_trace_parents_to_innermost_live_span(self):
        ctx = TraceContext.mint("req-parent")
        with trace_scope(ctx):
            with tracing.span("outer"):
                outer_id = tracing.current_span_id()
                wire = tracing.current_trace()
                assert wire == (ctx.trace_id, outer_id, "req-parent")


class TestSpanRecords:
    def test_records_carry_trace_and_process_identity(self):
        ctx = TraceContext.mint("req-ids")
        with trace_scope(ctx):
            with tracing.span("a"):
                with tracing.span("b"):
                    pass
        records = {r["name"]: r for r in tracing.export_spans()}
        assert records["a"]["trace_id"] == ctx.trace_id
        assert records["b"]["trace_id"] == ctx.trace_id
        assert records["b"]["parent_span_id"] == records["a"]["span_id"]
        assert records["a"]["request_id"] == "req-ids"
        assert records["a"]["pid"] > 0
        assert records["a"]["tid"] == threading.get_ident()
        assert records["a"]["ts"] > 0

    def test_remote_hop_parents_to_wire_span(self):
        """A span on the far side of a hop parents to the sender's span."""
        with trace_scope(TraceContext.mint("req-hop")):
            with tracing.span("ingress"):
                wire = tracing.current_trace()
        # Simulate the receiving process/thread re-activating the wire triple.
        token = tracing.activate_trace(wire)
        try:
            with tracing.span("remote"):
                pass
        finally:
            tracing.deactivate_trace(token)
        records = {r["name"]: r for r in tracing.export_spans()}
        assert records["remote"]["parent_span_id"] == records["ingress"]["span_id"]
        assert records["remote"]["trace_id"] == records["ingress"]["trace_id"]

    def test_annotate_attaches_attrs(self):
        with tracing.span("tick") as s:
            s.annotate(requests=3)
        (record,) = tracing.export_spans()
        assert record["attrs"] == {"requests": 3}

    def test_untraced_span_has_empty_trace_fields(self):
        with tracing.span("plain"):
            pass
        (record,) = tracing.export_spans()
        assert record["trace_id"] == ""
        assert record["request_id"] == ""
        assert record["parent_span_id"] == ""


class TestSpanLossAccounting:
    def test_dropped_records_are_counted_and_exported(self, monkeypatch):
        monkeypatch.setattr(tracing, "MAX_RECORDS", 3)
        for i in range(5):
            with tracing.span("s"):
                pass
        exported = tracing.export_spans(include_dropped=True)
        assert len(exported["records"]) == 3
        assert exported["dropped"] == 2
        assert tracing.dropped_records() == 2
        assert metrics.get_registry().counters()[tracing.DROPPED_COUNTER] == 2

    def test_summaries_can_surface_drop_count(self, monkeypatch):
        monkeypatch.setattr(tracing, "MAX_RECORDS", 1)
        for _ in range(3):
            with tracing.span("s"):
                pass
        summaries = tracing.span_summaries(include_dropped=True)
        assert summaries["(dropped)"]["count"] == 2.0
        # Aggregates are unaffected by raw-record loss.
        assert summaries["s"]["count"] == 3

    def test_snapshot_exposes_span_dropped(self, monkeypatch):
        from repro.telemetry import report

        monkeypatch.setattr(tracing, "MAX_RECORDS", 1)
        for _ in range(2):
            with tracing.span("s"):
                pass
        snap = report.snapshot()
        assert snap["meta"]["span_dropped"] == 1

    def test_reset_clears_drop_count(self, monkeypatch):
        monkeypatch.setattr(tracing, "MAX_RECORDS", 1)
        for _ in range(2):
            with tracing.span("s"):
                pass
        tracing.reset_spans()
        assert tracing.dropped_records() == 0
        assert tracing.export_spans() == []
