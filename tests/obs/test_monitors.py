"""Training health monitors against a real fitted AGNN."""

import numpy as np
import pytest

from repro.obs import events
from repro.obs.monitors import (
    GateSaturationMonitor,
    GradNormMonitor,
    KLCollapseMonitor,
    Monitor,
    MonitorSuite,
    NaNWatchdog,
    TrainingHealthError,
    default_monitors,
)
from repro.telemetry import metrics as telemetry_metrics

pytestmark = pytest.mark.obs


@pytest.fixture()
def model_with_grads(fitted_model, ics_task):
    """Run one backward pass so every parameter carries a gradient."""
    fitted_model.train()
    users = ics_task.train_users[:32]
    items = ics_task.train_items[:32]
    ratings = ics_task.train_ratings[:32]
    loss, _ = fitted_model.batch_loss(users, items, ratings)
    loss.backward()
    return fitted_model


class TestGradNormMonitor:
    def test_groups_by_first_name_component(self, model_with_grads):
        readings = GradNormMonitor().observe(model_with_grads, epoch=0, step=0)
        assert readings["total"] > 0.0
        groups = {k for k in readings if k.startswith("group.")}
        assert {"group.user_encoder", "group.item_encoder", "group.head"} <= groups
        # total is the L2 norm over all groups combined
        total_sq = sum(readings[k] ** 2 for k in groups)
        assert readings["total"] == pytest.approx(np.sqrt(total_sq))

    def test_empty_without_gradients(self, fitted_model):
        fitted_model.zero_grad()
        assert GradNormMonitor().observe(fitted_model, 0, 0) == {}


class TestGateSaturationMonitor:
    def test_reports_both_gates_per_side(self, fitted_model):
        readings = GateSaturationMonitor().observe(fitted_model, 0, 0)
        for side in ("user", "item"):
            for gate in ("aggregate_gate", "filter_gate"):
                frac = readings[f"{side}.{gate}.saturated_frac"]
                assert 0.0 <= frac <= 1.0
                assert 0.0 <= readings[f"{side}.{gate}.mean"] <= 1.0

    def test_does_not_touch_inference_cache(self, fitted_model):
        fitted_model._invalidate_inference_cache()
        GateSaturationMonitor().observe(fitted_model, 0, 0)
        assert fitted_model._inference_pref == {"user": None, "item": None}
        assert fitted_model._inference_refined == {"user": None, "item": None}

    def test_unprepared_model_is_skipped(self):
        from repro.core import AGNN

        assert GateSaturationMonitor().observe(AGNN(), 0, 0) == {}


class TestKLCollapseMonitor:
    def test_reports_kl_and_approximation(self, fitted_model):
        monitor = KLCollapseMonitor()
        first = monitor.observe(fitted_model, 0, 0)
        for side in ("user", "item"):
            assert first[f"{side}.kl"] >= 0.0
            assert first[f"{side}.approx"] >= 0.0
            assert first[f"{side}.kl_collapsed"] in (0.0, 1.0)
            assert first[f"{side}.approx_drift"] == 0.0  # no previous observation
            assert first[f"{side}.sigma_mean"] > 0.0
        # second observation on an unchanged model: zero drift
        second = monitor.observe(fitted_model, 0, 1)
        assert second["user.approx_drift"] == pytest.approx(0.0)

    def test_deterministic_and_cache_neutral(self, fitted_model):
        a = KLCollapseMonitor().observe(fitted_model, 0, 0)
        b = KLCollapseMonitor().observe(fitted_model, 0, 0)
        assert a == b
        assert fitted_model._inference_pref == {"user": None, "item": None}


class TestNaNWatchdog:
    def test_healthy_model_passes(self, fitted_model):
        readings = NaNWatchdog().observe(fitted_model, 0, 0)
        assert readings["parameters_checked"] > 0

    def test_raises_naming_tensor_and_epoch(self, fitted_model):
        params = dict(fitted_model.named_parameters())
        name, param = next(iter(params.items()))
        param.data.flat[0] = np.nan
        with pytest.raises(TrainingHealthError) as excinfo:
            NaNWatchdog().observe(fitted_model, epoch=3, step=17)
        error = excinfo.value
        assert error.tensor_name == name
        assert error.epoch == 3 and error.step == 17
        assert name in str(error) and "epoch 3" in str(error)

    def test_raises_on_nan_gradient(self, model_with_grads):
        from repro.autograd import SparseRowGrad

        for name, param in model_with_grads.named_parameters():
            if param.grad is not None and not isinstance(param.grad, SparseRowGrad):
                np.asarray(param.grad).flat[0] = np.inf
                break
        with pytest.raises(TrainingHealthError, match="gradient"):
            NaNWatchdog().observe(model_with_grads, 0, 0)


class TestMonitorSuite:
    def test_protocol_conformance(self):
        for monitor in default_monitors():
            assert isinstance(monitor, Monitor)

    def test_cadence(self, fitted_model):
        suite = MonitorSuite(monitors=[NaNWatchdog()], every_n_steps=3)
        for _ in range(7):
            suite.after_batch(fitted_model, epoch=0)
        assert suite.observations == 2  # steps 3 and 6

    def test_every_env_var(self, monkeypatch, fitted_model):
        monkeypatch.setenv("REPRO_OBS_EVERY", "2")
        suite = MonitorSuite(monitors=[NaNWatchdog()])
        assert suite.every_n_steps == 2

    def test_emits_events_and_gauges(self, fitted_model):
        log = events.EventLog()
        events.set_event_log(log)
        suite = MonitorSuite(monitors=[KLCollapseMonitor()], every_n_steps=1)
        with events.enabled():
            readings = suite.observe(fitted_model, epoch=1)
        assert "kl_collapse" in readings
        monitor_events = log.events(kind="monitor")
        assert len(monitor_events) == 1
        assert monitor_events[0]["monitor"] == "kl_collapse"
        assert monitor_events[0]["epoch"] == 1
        gauges = telemetry_metrics.get_registry().gauges()
        assert "obs.kl_collapse.user.kl" in gauges
        assert suite.last["kl_collapse"] == readings["kl_collapse"]

    def test_health_error_event_then_raise(self, fitted_model):
        log = events.EventLog()
        events.set_event_log(log)
        name, param = next(iter(dict(fitted_model.named_parameters()).items()))
        param.data.flat[0] = np.nan
        suite = MonitorSuite(monitors=[NaNWatchdog()], every_n_steps=1)
        with events.enabled(), pytest.raises(TrainingHealthError):
            suite.observe(fitted_model, epoch=0)
        errors = log.events(kind="health_error")
        assert len(errors) == 1
        assert errors[0]["tensor"] == name
