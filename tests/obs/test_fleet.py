"""Fleet merging: snapshots, aggregate registries, merged exposition, Chrome trace.

Satellite coverage for the Prometheus merge semantics: the merged
multi-worker exposition must round-trip through ``parse_prometheus`` with
label escaping intact (quotes, backslashes, newlines), histogram buckets and
counters must genuinely sum across workers, and same-name families carrying
different label sets (aggregate unlabelled + per-worker ``worker="N"``) must
coexist in one exposition.
"""

import math

import pytest

from repro.obs import fleet
from repro.obs.prometheus import parse_prometheus, render_prometheus, render_prometheus_multi
from repro.telemetry import tracing
from repro.telemetry.metrics import MetricsRegistry

pytestmark = [pytest.mark.obs, pytest.mark.trace]


def _registry(counters=(), timings=(), gauges=()):
    registry = MetricsRegistry()
    for name, value in counters:
        registry.counter(name).increment(value)
    for name, samples in timings:
        for sample in samples:
            registry.histogram(name).record(sample)
    for name, value in gauges:
        registry.gauge(name).set(value)
    return registry


def _snapshot_of(registry, pid=1234, spans=(), span_dropped=0):
    return {
        "version": fleet.SNAPSHOT_VERSION,
        "pid": pid,
        "counters": registry.counters(),
        "gauges": registry.gauges(),
        "histograms": {n: h.state() for n, h in registry.histograms().items()},
        "spans": list(spans),
        "span_dropped": span_dropped,
    }


class TestWorkerSnapshot:
    def test_snapshot_is_plain_data_and_complete(self):
        from repro.telemetry import increment, record_timing

        increment("serve.scores", 7)
        record_timing("serve.batch.wait", 0.25)
        with tracing.span("serve.request"):
            pass
        snap = fleet.worker_snapshot()
        assert snap["counters"]["serve.scores"] == 7
        assert snap["histograms"]["serve.batch.wait"]["count"] == 1
        assert snap["spans"][0]["name"] == "serve.request"
        assert snap["span_dropped"] == 0
        import json

        json.dumps(snap["counters"])  # counters/gauges must be JSON-safe

    def test_snapshot_caps_spans_and_counts_the_cut(self):
        for _ in range(10):
            with tracing.span("s"):
                pass
        snap = fleet.worker_snapshot(max_spans=4)
        assert len(snap["spans"]) == 4
        assert snap["span_dropped"] == 6


class TestMerge:
    def test_counters_sum_across_snapshots(self):
        a = _snapshot_of(_registry(counters=[("serve.scores", 5), ("serve.shed", 1)]))
        b = _snapshot_of(_registry(counters=[("serve.scores", 3)]))
        merged = fleet.merge_snapshots([a, b])
        assert merged.counters() == {"serve.scores": 8, "serve.shed": 1}

    def test_histograms_merge_counts_totals_and_max(self):
        a = _snapshot_of(_registry(timings=[("lat", [0.1, 0.2])]))
        b = _snapshot_of(_registry(timings=[("lat", [0.4])]))
        merged = fleet.merge_snapshots([a, b])
        summary = merged.timings()["lat"]
        assert summary["count"] == 3
        assert math.isclose(summary["total_s"], 0.7)
        assert math.isclose(summary["max_s"], 0.4)

    def test_gauges_stay_per_worker_only(self):
        a = _snapshot_of(_registry(gauges=[("depth", 3.0)]))
        merged = fleet.merge_snapshots([a])
        assert merged.gauges() == {}
        assert fleet.registry_from_snapshot(a).gauges() == {"depth": 3.0}


class TestMergedExposition:
    def test_aggregate_equals_sum_of_labelled_series(self):
        worker_a = _snapshot_of(_registry(counters=[("serve.scores", 5)]))
        worker_b = _snapshot_of(_registry(counters=[("serve.scores", 9)]))
        parent = _registry(counters=[("serve.requests", 2)])
        text = fleet.render_fleet(parent, [worker_a, worker_b])
        families = parse_prometheus(text)
        scores = families["repro_serve_scores_total"]
        assert scores[()] == 14
        assert scores[(("worker", "0"),)] == 5
        assert scores[(("worker", "1"),)] == 9
        requests = families["repro_serve_requests_total"]
        assert requests[()] == 2
        assert requests[(("worker", "parent"),)] == 2

    def test_same_family_different_label_sets_coexist(self):
        """Aggregate (no labels) + per-worker (worker=) + route labels all in
        one family must survive render→parse."""
        worker = _snapshot_of(
            _registry(counters=[("serve.route_errors./score", 2)])
        )
        text = fleet.render_fleet(None, [worker])
        families = parse_prometheus(text)
        errors = families["repro_serve_route_errors_total"]
        assert errors[(("route", "/score"),)] == 2
        assert errors[(("worker", "0"), ("route", "/score"))] == 2
        # Exactly one TYPE line per family even though two sections emit it.
        assert text.count("# TYPE repro_serve_route_errors_total counter") == 1

    def test_histogram_buckets_merge_and_round_trip(self):
        worker_a = _snapshot_of(_registry(timings=[("lat", [0.0004, 0.003])]))
        worker_b = _snapshot_of(_registry(timings=[("lat", [0.003, 8.0])]))
        text = fleet.render_fleet(None, [worker_a, worker_b])
        families = parse_prometheus(text)
        buckets = families["repro_lat_seconds_bucket"]
        # Aggregate window holds all four samples.
        assert buckets[(("le", "0.0005"),)] == 1
        assert buckets[(("le", "0.005"),)] == 3
        assert buckets[(("le", "+Inf"),)] == 4
        assert families["repro_lat_seconds_count"][()] == 4
        assert math.isclose(families["repro_lat_seconds_sum"][()], 8.0064)

    def test_label_escaping_round_trips(self):
        """Quotes, backslashes and newlines in label values survive the trip."""
        nasty = 'he said "hi"\\path\nnewline'
        registry = MetricsRegistry()
        for sample in (0.1, 0.2):
            registry.histogram(f"serve.route_latency.{nasty}").record(sample)
        worker = _snapshot_of(registry)
        text = fleet.render_fleet(None, [worker])
        families = parse_prometheus(text)
        latency = families["repro_serve_route_latency_seconds_count"]
        assert latency[(("route", nasty),)] == 2
        assert latency[(("worker", "0"), ("route", nasty))] == 2

    def test_multi_render_matches_single_render_without_sections(self):
        registry = _registry(counters=[("a", 1)], timings=[("t", [0.1])])
        assert render_prometheus_multi([(registry, {})]) == render_prometheus(registry)

    def test_fleet_meta_counters_present(self):
        text = fleet.render_fleet(None, [_snapshot_of(MetricsRegistry(), span_dropped=3)])
        families = parse_prometheus(text)
        assert families["repro_fleet_processes_total"][()] == 1
        assert families["repro_fleet_span_dropped_total"][()] == 3


class TestChromeTrace:
    def _record(self, name, pid, trace_id="t1", request_id="r1", span_id="s1",
                parent="", ts=100.0, dur=0.5, attrs=None):
        record = {
            "name": name, "path": name, "depth": 0, "duration_s": dur,
            "ok": True, "ts": ts, "pid": pid, "tid": 7,
            "span_id": span_id, "parent_span_id": parent,
            "trace_id": trace_id, "request_id": request_id,
        }
        if attrs:
            record["attrs"] = attrs
        return record

    def test_events_carry_pid_tid_and_ids(self):
        trace = fleet.chrome_trace(
            [self._record("serve.request", pid=10, span_id="root")],
            [_snapshot_of(MetricsRegistry(), pid=20,
                          spans=[self._record("serve.score", pid=20,
                                              span_id="w1", parent="root")])],
        )
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in slices} == {10, 20}
        worker_slice = next(e for e in slices if e["pid"] == 20)
        assert worker_slice["args"]["parent_span_id"] == "root"
        assert worker_slice["tid"] == 7
        # Complete events place the slice at start = completion - duration, µs.
        assert math.isclose(worker_slice["ts"], (100.0 - 0.5) * 1e6)
        assert math.isclose(worker_slice["dur"], 0.5 * 1e6)
        names = {e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"}
        assert any("worker 0" in n for n in names)

    def test_filters_narrow_to_one_flow(self):
        records = [
            self._record("a", pid=1, trace_id="t1", request_id="r1", span_id="s1"),
            self._record("b", pid=1, trace_id="t2", request_id="r2", span_id="s2"),
            self._record("bg", pid=1, trace_id="", request_id="", span_id="s3"),
        ]
        by_trace = fleet.chrome_trace(records, trace_id="t1")
        assert [e["name"] for e in by_trace["traceEvents"] if e["ph"] == "X"] == ["a"]
        by_request = fleet.chrome_trace(records, request_id="r2")
        assert [e["name"] for e in by_request["traceEvents"] if e["ph"] == "X"] == ["b"]
        unfiltered = fleet.chrome_trace(records)
        assert len([e for e in unfiltered["traceEvents"] if e["ph"] == "X"]) == 3

    def test_span_dropped_totals_across_fleet(self):
        trace = fleet.chrome_trace(
            [], [_snapshot_of(MetricsRegistry(), span_dropped=2),
                 _snapshot_of(MetricsRegistry(), span_dropped=3)],
        )
        assert trace["metadata"]["span_dropped"] == 5
