"""The unified health report: assembly, rendering, CLI integration."""

import json

import pytest

from repro import nn
from repro.core import AGNN, AGNNConfig
from repro.obs import events
from repro.obs.report import build_report, render_report
from repro.telemetry import report as telemetry_report
from repro.train import TrainConfig

pytestmark = pytest.mark.obs

OBS_CONFIG = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0)
OBS_TRAIN = TrainConfig(epochs=2, batch_size=64, patience=None)


@pytest.fixture()
def fit_events(ics_task):
    """Events + snapshot from a real monitored fit."""
    nn.init.seed(0)
    model = AGNN(OBS_CONFIG, rng_seed=0)
    with events.enabled():
        model.fit(ics_task, OBS_TRAIN)
    return events.get_event_log().events(), telemetry_report.snapshot(note="test")


class TestBuildReport:
    def test_stitches_manifest_history_and_monitors(self, fit_events, tmp_path):
        evts, snapshot = fit_events
        report = build_report(evts, snapshot=snapshot, bench_dir=tmp_path)
        assert report["healthy"]
        (manifest,) = report["runs"]
        assert manifest["model"] == "AGNN"
        assert manifest["run_id"].startswith("run-")
        assert manifest["dataset"]["scenario"] == "item_cold"
        assert report["history"]["total"]  # loss curve recovered from fit_end
        assert report["events"]["epochs"] == OBS_TRAIN.epochs
        assert {"grad_norm", "gate_saturation", "kl_collapse", "nan_watchdog"} <= set(
            report["monitors"]
        )
        # training throughput recovered from the fit/epoch/batch span
        assert report["observed"]["batches_per_sec"] > 0

    def test_missing_bench_files_reported_not_fatal(self, fit_events, tmp_path):
        evts, snapshot = fit_events
        report = build_report(evts, snapshot=snapshot, bench_dir=tmp_path)
        assert all(not entry["present"] for entry in report["bench"].values())

    def test_bench_delta_against_committed_baseline(self, fit_events, tmp_path):
        evts, snapshot = fit_events
        (tmp_path / "BENCH_training.json").write_text(
            json.dumps({"training": {"batches_per_sec": 100.0}, "meta": {"rmse": 0.9}})
        )
        report = build_report(
            evts, snapshot=snapshot, bench_dir=tmp_path, observed={"rmse": 0.9}
        )
        entry = report["bench"]["BENCH_training.json"]
        assert entry["present"]
        assert entry["committed_batches_per_sec"] == 100.0
        assert "throughput_delta_pct" in entry
        assert entry["rmse_matches_committed"] is True

    def test_health_errors_flip_healthy(self):
        evts = [
            {"seq": 1, "kind": "health_error", "monitor": "nan_watchdog",
             "tensor": "head.w", "epoch": 2, "step": 50, "error": "boom"},
        ]
        report = build_report(evts)
        assert not report["healthy"]
        assert report["events"]["health_errors"][0]["tensor"] == "head.w"

    def test_report_is_json_serialisable(self, fit_events, tmp_path):
        evts, snapshot = fit_events
        json.dumps(build_report(evts, snapshot=snapshot, bench_dir=tmp_path))


class TestRenderReport:
    def test_render_contains_sections(self, fit_events, tmp_path):
        evts, snapshot = fit_events
        text = render_report(build_report(evts, snapshot=snapshot, bench_dir=tmp_path))
        assert "# repro health report" in text
        assert "Status: HEALTHY" in text
        assert "## Run manifest" in text
        assert "## Training" in text
        assert "## Monitors" in text
        assert "## Baseline deltas" in text
        assert "kl_collapse" in text

    def test_unhealthy_render(self):
        evts = [
            {"seq": 1, "kind": "health_error", "monitor": "nan_watchdog",
             "tensor": "head.w", "epoch": 0, "step": 1, "error": "non-finite"},
        ]
        text = render_report(build_report(evts))
        assert "Status: UNHEALTHY" in text
        assert "health error" in text


class TestCLIReport:
    def test_report_on_recorded_events(self, ics_task, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.jsonl"
        log = events.EventLog(path=path)
        events.set_event_log(log)
        nn.init.seed(0)
        model = AGNN(OBS_CONFIG, rng_seed=0)
        with events.enabled():
            model.fit(ics_task, OBS_TRAIN)
        log.close()

        exit_code = main(["report", "--events", str(path), "--bench-dir", str(tmp_path), "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["healthy"]
        assert payload["runs"][0]["model"] == "AGNN"

    def test_report_text_mode(self, ics_task, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.jsonl"
        log = events.EventLog(path=path)
        events.set_event_log(log)
        nn.init.seed(0)
        model = AGNN(OBS_CONFIG, rng_seed=0)
        with events.enabled():
            model.fit(ics_task, OBS_TRAIN)
        log.close()

        assert main(["report", "--events", str(path), "--bench-dir", str(tmp_path)]) == 0
        assert "# repro health report" in capsys.readouterr().out
