"""Experiment runners: each table/figure harness produces well-formed output.

These run at a micro scale (tiny datasets, 1–2 epochs) — they verify the
harness plumbing, not the numbers; the numbers live in benchmarks/.
"""

import numpy as np
import pytest

from repro.core import AGNNConfig
from repro.data import MovieLensConfig, YelpConfig
from repro.experiments import (
    ExperimentScale,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    get_scale,
    table1,
    table2,
    table3,
    table4,
)
from repro.train import TrainConfig

MICRO = ExperimentScale(
    name="micro",
    dataset_configs=(
        MovieLensConfig(name="ML-100K", num_users=40, num_items=70, num_ratings=800,
                        num_stars=10, num_directors=8, num_writers=8, seed=3),
        YelpConfig(name="Yelp", num_users=40, num_items=40, num_ratings=420,
                   num_cities=8, num_states=3, mean_friends=4.0, seed=5),
    ),
    train=TrainConfig(epochs=1, batch_size=64, learning_rate=0.01, patience=None),
    agnn=AGNNConfig(embedding_dim=4, num_neighbors=3, pool_percent=20.0),
    baseline_dim=4,
)


class TestScales:
    def test_get_scale(self):
        assert get_scale("bench").name == "bench"
        assert get_scale("paper").agnn.embedding_dim == 40

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_paper_scale_matches_table1(self):
        paper = get_scale("paper")
        names = {cfg.name for cfg in paper.dataset_configs}
        assert names == {"ML-100K", "ML-1M", "Yelp"}
        ml100k = next(c for c in paper.dataset_configs if c.name == "ML-100K")
        assert (ml100k.num_users, ml100k.num_items) == (943, 1682)

    def test_dataset_factories_cache(self):
        a = MICRO.datasets["ML-100K"]()
        b = MICRO.datasets["ML-100K"]()
        assert a is b


class TestTable1:
    def test_stats_for_each_dataset(self):
        stats = table1.run_table1(MICRO)
        assert set(stats) == {"ML-100K", "Yelp"}
        assert stats["ML-100K"].num_users == 40

    def test_render(self):
        text = table1.render(table1.run_table1(MICRO))
        assert "Sparsity" in text and "ML-100K" in text


class TestTable2:
    def test_subset_run_structure(self):
        result = table2.run_table2(
            MICRO, datasets=["ML-100K"], scenarios=("item_cold",), models=["NFM", "MetaEmb"]
        )
        assert result.rmse.get("AGNN", "ML-100K/ICS") > 0
        assert result.rmse.get("NFM", "ML-100K/ICS") > 0
        assert ("AGNN", "ML-100K", "item_cold") in result.raw
        text = result.render()
        assert "Improvement" in text

    def test_srmgcnn_skipped_on_yelp(self):
        result = table2.run_table2(
            MICRO, datasets=["Yelp"], scenarios=("item_cold",), models=["sRMGCNN", "NFM"]
        )
        assert "sRMGCNN" not in result.rmse.values or "Yelp/ICS" not in result.rmse.values.get("sRMGCNN", {})


class TestTables34:
    def test_table3_variants(self):
        tables = table3.run_table3(MICRO, datasets=["ML-100K"], variants=["AGNN", "AGNN_-fgate"])
        assert set(tables) == {"rmse", "mae"}
        assert tables["rmse"].get("AGNN_-fgate", "ML-100K/ICS") > 0

    def test_table4_variants(self):
        tables = table4.run_table4(MICRO, datasets=["ML-100K"], variants=["AGNN_knn"])
        assert tables["mae"].get("AGNN_knn", "ML-100K/UCS") > 0


class TestFigures:
    def test_fig5_sweep(self):
        figures = fig5.run_fig5(MICRO, dimensions=(4, 6), datasets=["ML-100K"])
        fig = figures["ML-100K"]
        assert fig.x_values == [4.0, 6.0]
        assert set(fig.series) == {"ICS", "UCS"}

    def test_fig6_sweep(self):
        figures = fig6.run_fig6(MICRO, lambdas=(0.0, 1.0), datasets=["ML-100K"])
        assert len(figures["ML-100K"].series["ICS"]) == 2

    def test_fig7_sweep(self):
        figures = fig7.run_fig7(MICRO, thresholds=(10.0, 50.0), datasets=["ML-100K"])
        assert figures["ML-100K"].x_label == "p"

    def test_fig8_ratio_sweep(self):
        figures = fig8.run_fig8(
            MICRO, ratios=(0.2, 0.4), datasets=["ML-100K"], baselines=("MetaEmb",),
            scenarios=("item_cold",),
        )
        fig = figures["ML-100K/ICS"]
        assert set(fig.series) == {"AGNN", "MetaEmb"}
        assert fig.x_values == [0.2, 0.4]

    def test_fig9_histories(self):
        histories = fig9.run_fig9(MICRO, datasets=["ML-100K"], scenarios=("item_cold",))
        history = histories["ML-100K/ICS"]
        assert "prediction" in history.losses
        assert "reconstruction" in history.losses
        text = fig9.render(histories)
        assert "training curves" in text
