"""Multi-seed replication machinery."""

import numpy as np
import pytest

from repro.experiments.replicates import ReplicateResult, compare_replicates, run_replicates
from tests.experiments.test_runners import MICRO


class TestRunReplicates:
    def test_runs_one_fit_per_seed(self):
        from repro.baselines import make_baseline

        dataset = MICRO.datasets["ML-100K"]()
        result = run_replicates(
            lambda: make_baseline("NFM", embedding_dim=4),
            dataset,
            "item_cold",
            MICRO,
            seeds=(0, 1),
        )
        assert result.num_seeds == 2
        assert result.model_name == "NFM"
        assert result.rmse_std >= 0.0
        assert "±" in str(result)

    def test_different_seeds_give_different_results(self):
        from repro.baselines import make_baseline

        dataset = MICRO.datasets["ML-100K"]()
        result = run_replicates(
            lambda: make_baseline("NFM", embedding_dim=4),
            dataset,
            "item_cold",
            MICRO,
            seeds=(0, 1, 2),
        )
        assert len(np.unique(result.rmse_values)) > 1

    def test_empty_seeds_raises(self):
        from repro.baselines import make_baseline

        dataset = MICRO.datasets["ML-100K"]()
        with pytest.raises(ValueError):
            run_replicates(lambda: make_baseline("NFM", embedding_dim=4),
                           dataset, "item_cold", MICRO, seeds=())


class TestCompareReplicates:
    def _result(self, values):
        values = np.asarray(values, dtype=float)
        return ReplicateResult(model_name="m", rmse_values=values, mae_values=values)

    def test_identical_results_p_one(self):
        a = self._result([1.0, 1.1, 0.9])
        report = compare_replicates(a, a)
        assert report["p_value"] == 1.0
        assert report["mean_difference"] == 0.0

    def test_clearly_better_low_p(self):
        ours = self._result([0.80, 0.81, 0.79, 0.80])
        theirs = self._result([1.00, 1.01, 0.99, 1.00])
        report = compare_replicates(ours, theirs)
        assert report["mean_difference"] < 0
        assert report["p_value"] < 0.05

    def test_worse_high_p(self):
        ours = self._result([1.00, 1.01, 0.99, 1.00])
        theirs = self._result([0.80, 0.81, 0.79, 0.80])
        assert compare_replicates(ours, theirs)["p_value"] > 0.5

    def test_seed_count_mismatch(self):
        with pytest.raises(ValueError):
            compare_replicates(self._result([1.0]), self._result([1.0, 2.0]))

    def test_single_seed_inconclusive(self):
        report = compare_replicates(self._result([0.8]), self._result([1.0]))
        assert report["p_value"] == 1.0


class TestExtensionExperiments:
    def test_ext_ranking_micro(self):
        from repro.experiments import ext_ranking

        results = ext_ranking.run_ext_ranking(
            MICRO, datasets=["ML-100K"], k=5, num_negatives=15, max_users=10
        )
        models = results["ML-100K"]
        assert set(models) == {"AGNN", "BPR-MF", "Popularity"}
        for result in models.values():
            assert 0.0 <= result.hit_rate <= 1.0
        text = ext_ranking.render(results)
        assert "HR@5" in text

    def test_ext_support_micro(self):
        from repro.experiments import ext_support

        figures = ext_support.run_ext_support(
            MICRO, datasets=["ML-100K"], support_sizes=(0, 3)
        )
        figure = figures["ML-100K"]
        assert set(figure.series) == {"AGNN", "GC-MC"}
        assert figure.x_values == [0.0, 3.0]
