"""Markdown rendering of experiment results."""

from repro.experiments.report import (
    figure_markdown,
    history_markdown,
    markdown_table,
    result_table_markdown,
)
from repro.experiments.reporting import FigureSeries, ResultTable
from repro.train import TrainHistory


class TestMarkdownTable:
    def test_structure(self):
        text = markdown_table(["a", "b"], [["1", "2"]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestResultTableMarkdown:
    def _table(self):
        table = ResultTable(columns=["X"])
        table.set("ours", "X", 0.8, marker="*")
        table.set("them", "X", 1.0)
        table.set("LLAE", "X", 3.0)
        return table

    def test_bolds_best_excluding_llae(self):
        text = result_table_markdown(self._table())
        assert "**0.8000***" in text
        assert "**3.0000**" not in text

    def test_improvement_row(self):
        text = result_table_markdown(self._table(), ours="ours")
        assert "*Improvement*" in text
        assert "+20.00%" in text

    def test_missing_cells_dashed(self):
        table = ResultTable(columns=["X", "Y"])
        table.set("m", "X", 1.0)
        assert "—" in result_table_markdown(table, bold_best=False)


class TestFigureMarkdown:
    def test_renders_series(self):
        fig = FigureSeries(x_label="D", x_values=[10, 20])
        fig.add("ICS", [1.0, 0.9])
        text = figure_markdown(fig)
        assert "| D | 10 | 20 |" in text
        assert "0.9000" in text


class TestHistoryMarkdown:
    def test_renders_curves(self):
        history = TrainHistory()
        history.record({"prediction": 1.0, "reconstruction": 2.0})
        history.record({"prediction": 0.5, "reconstruction": 1.0})
        text = history_markdown(history)
        assert "| prediction | 1.000 | 0.500 |" in text
        assert "reconstruction" in text

    def test_skips_missing_losses(self):
        history = TrainHistory()
        history.record({"prediction": 1.0})
        text = history_markdown(history)
        assert "reconstruction" not in text
