"""Result tables, figure series, and the text formatter."""

import pytest

from repro.experiments import FigureSeries, ResultTable, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_handles_wide_cells(self):
        text = format_table(["x"], [["very-long-cell"]])
        assert "very-long-cell" in text


class TestResultTable:
    def test_set_get(self):
        table = ResultTable(columns=["A", "B"])
        table.set("m1", "A", 1.0)
        assert table.get("m1", "A") == 1.0

    def test_unknown_column_raises(self):
        table = ResultTable(columns=["A"])
        with pytest.raises(KeyError):
            table.set("m1", "Z", 1.0)

    def test_best_in_column(self):
        table = ResultTable(columns=["A"])
        table.set("m1", "A", 1.0)
        table.set("m2", "A", 0.5)
        assert table.best_in_column("A") == ("m2", 0.5)

    def test_best_in_column_excludes(self):
        table = ResultTable(columns=["A"])
        table.set("m1", "A", 1.0)
        table.set("m2", "A", 0.5)
        assert table.best_in_column("A", exclude=["m2"]) == ("m1", 1.0)

    def test_best_in_empty_column_raises(self):
        with pytest.raises(ValueError):
            ResultTable(columns=["A"]).best_in_column("A")

    def test_improvement_row(self):
        table = ResultTable(columns=["A"])
        table.set("ours", "A", 0.9)
        table.set("them", "A", 1.0)
        imp = table.improvement_row("ours")
        assert imp["A"] == pytest.approx(10.0)

    def test_improvement_negative_when_losing(self):
        table = ResultTable(columns=["A"])
        table.set("ours", "A", 1.1)
        table.set("them", "A", 1.0)
        assert table.improvement_row("ours")["A"] == pytest.approx(-10.0)

    def test_render_includes_markers_and_improvement(self):
        table = ResultTable(columns=["A"])
        table.set("ours", "A", 0.9, marker="*")
        table.set("them", "A", 1.0)
        text = table.render(title="T", ours="ours")
        assert "0.9000*" in text
        assert "Improvement" in text

    def test_render_dash_for_missing(self):
        table = ResultTable(columns=["A", "B"])
        table.set("m", "A", 1.0)
        assert "-" in table.render()


class TestFigureSeries:
    def test_add_and_best_x(self):
        fig = FigureSeries(x_label="D", x_values=[10, 20, 30])
        fig.add("ICS", [1.0, 0.8, 0.9])
        assert fig.best_x("ICS") == 20

    def test_length_mismatch_raises(self):
        fig = FigureSeries(x_label="D", x_values=[10, 20])
        with pytest.raises(ValueError):
            fig.add("ICS", [1.0])

    def test_render_contains_values(self):
        fig = FigureSeries(x_label="p", x_values=[1, 5])
        fig.add("UCS", [1.25, 1.5])
        text = fig.render(title="fig")
        assert "1.2500" in text and "UCS" in text
