"""The shared Recommender training loop and prediction protocol."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.nn import Bias
from repro.nn.functional import mse_loss
from repro.train import Recommender, TrainConfig


class BiasOnly(Recommender):
    """Minimal trainable model: μ + b_u + b_i."""

    name = "bias-only"

    def prepare(self, task):
        if not hasattr(self, "user_bias"):
            self.user_bias = Bias(task.dataset.num_users)
            self.item_bias = Bias(task.dataset.num_items)
        self.mu = task.train_global_mean
        self.epochs_begun = []

    def begin_epoch(self, epoch, rng):
        self.epochs_begun.append(epoch)

    def _forward(self, users, items):
        return ops.add(ops.add(self.user_bias(users), self.item_bias(items)), self.mu)

    def batch_loss(self, users, items, ratings):
        loss = mse_loss(self._forward(users, items), ratings)
        return loss, {"prediction": loss.item(), "total": loss.item()}

    def predict_scores(self, users, items):
        return self._forward(users, items).data


class TestTrainingLoop:
    def test_loss_decreases(self, warm_task):
        model = BiasOnly()
        history = model.fit(warm_task, TrainConfig(epochs=5, learning_rate=0.05, patience=None))
        curve = history.curve("prediction")
        assert curve[-1] < curve[0]

    def test_begin_epoch_called_each_epoch(self, warm_task):
        model = BiasOnly()
        model.fit(warm_task, TrainConfig(epochs=4, patience=None))
        assert model.epochs_begun == [0, 1, 2, 3]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(validation_fraction=1.5)
        with pytest.raises(ValueError):
            TrainConfig(patience=0)

    def test_eval_mode_after_fit(self, warm_task):
        model = BiasOnly()
        model.fit(warm_task, TrainConfig(epochs=1, patience=None))
        assert not model.training

    def test_fit_on_empty_train_raises(self, tiny_movielens):
        from repro.data.splits import RecommendationTask

        task = RecommendationTask(
            dataset=tiny_movielens,
            scenario="warm",
            train_idx=np.empty(0, dtype=np.int64),
            test_idx=np.arange(tiny_movielens.num_ratings),
        )
        with pytest.raises(ValueError):
            BiasOnly().fit(task, TrainConfig(epochs=1))


class TestEarlyStopping:
    def test_stops_before_max_epochs_when_plateaued(self, warm_task):
        model = BiasOnly()
        # bias-only converges almost immediately: patience should trigger
        history = model.fit(warm_task, TrainConfig(epochs=50, learning_rate=0.1, patience=2))
        assert history.num_epochs < 50
        assert "val_rmse" in history.losses

    def test_records_validation_curve(self, warm_task):
        model = BiasOnly()
        history = model.fit(warm_task, TrainConfig(epochs=3, patience=3))
        assert len(history.losses["val_rmse"]) == history.num_epochs


class TestPredictionProtocol:
    def test_prediction_clipped(self, warm_task):
        model = BiasOnly()
        model.fit(warm_task, TrainConfig(epochs=1, patience=None))
        model.user_bias.value.data[...] = 100.0  # force out-of-scale raw scores
        preds = model.predict(warm_task.test_users, warm_task.test_items)
        assert preds.max() <= 5.0

    def test_predict_batches_match_single_call(self, warm_task):
        model = BiasOnly()
        model.fit(warm_task, TrainConfig(epochs=1, patience=None))
        users, items = warm_task.test_users, warm_task.test_items
        a = model.predict(users, items, batch_size=7)
        b = model.predict(users, items, batch_size=10_000)
        np.testing.assert_allclose(a, b)

    def test_misaligned_inputs_raise(self, warm_task):
        model = BiasOnly()
        model.fit(warm_task, TrainConfig(epochs=1, patience=None))
        with pytest.raises(ValueError):
            model.predict(np.array([0, 1]), np.array([0]))

    def test_empty_inputs_short_circuit(self, warm_task):
        model = BiasOnly()
        model.fit(warm_task, TrainConfig(epochs=1, patience=None))
        preds = model.predict(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert preds.shape == (0,)
        assert preds.dtype == np.float64

    def test_evaluate_without_task_raises(self):
        with pytest.raises(RuntimeError):
            BiasOnly().evaluate()

    def test_evaluate_uses_test_split(self, warm_task):
        model = BiasOnly()
        model.fit(warm_task, TrainConfig(epochs=3, learning_rate=0.05, patience=None))
        result = model.evaluate()
        manual = model.predict(warm_task.test_users, warm_task.test_items)
        expected = float(np.sqrt(np.mean((manual - warm_task.test_ratings) ** 2)))
        assert result.rmse == pytest.approx(expected)
