"""Grid search and validation-task carving."""

import numpy as np
import pytest

from repro.baselines import NFM
from repro.core import AGNN, AGNNConfig
from repro.train import TrainConfig, grid_search, validation_task

FAST = TrainConfig(epochs=1, batch_size=64, learning_rate=0.01, patience=None)


class TestValidationTask:
    def test_val_rows_come_from_training(self, ics_task):
        val = validation_task(ics_task, 0.15, seed=0)
        assert np.isin(val.test_idx, ics_task.train_idx).all()
        assert np.isin(val.train_idx, ics_task.train_idx).all()

    def test_original_test_rows_never_appear(self, ics_task):
        val = validation_task(ics_task, 0.15, seed=0)
        assert len(np.intersect1d(val.test_idx, ics_task.test_idx)) == 0
        assert len(np.intersect1d(val.train_idx, ics_task.test_idx)) == 0

    def test_partition_of_training(self, ics_task):
        val = validation_task(ics_task, 0.2, seed=0)
        combined = np.sort(np.concatenate([val.train_idx, val.test_idx]))
        np.testing.assert_array_equal(combined, np.sort(ics_task.train_idx))

    def test_invalid_fraction(self, ics_task):
        with pytest.raises(ValueError):
            validation_task(ics_task, 0.0)


class TestGridSearch:
    def test_searches_all_combinations(self, ics_task):
        result = grid_search(
            lambda embedding_dim: NFM(embedding_dim=embedding_dim),
            {"embedding_dim": [4, 6]},
            ics_task,
            FAST,
            refit=False,
        )
        assert len(result.trials) == 2
        assert result.best_params["embedding_dim"] in (4, 6)
        assert result.best_model is None

    def test_cartesian_product(self, ics_task):
        result = grid_search(
            lambda embedding_dim, hidden_dim: NFM(embedding_dim=embedding_dim, hidden_dim=hidden_dim),
            {"embedding_dim": [4, 6], "hidden_dim": [4, 8]},
            ics_task,
            FAST,
            refit=False,
        )
        assert len(result.trials) == 4
        seen = {(t.params["embedding_dim"], t.params["hidden_dim"]) for t in result.trials}
        assert seen == {(4, 4), (4, 8), (6, 4), (6, 8)}

    def test_refit_returns_model_and_test_score(self, ics_task):
        result = grid_search(
            lambda embedding_dim: NFM(embedding_dim=embedding_dim),
            {"embedding_dim": [4]},
            ics_task,
            FAST,
            refit=True,
        )
        assert result.best_model is not None
        assert result.test_rmse is not None and np.isfinite(result.test_rmse)

    def test_best_trial_is_minimum(self, ics_task):
        result = grid_search(
            lambda embedding_dim: NFM(embedding_dim=embedding_dim),
            {"embedding_dim": [4, 6, 8]},
            ics_task,
            FAST,
            refit=False,
        )
        assert result.best_trial.validation_rmse == min(t.validation_rmse for t in result.trials)

    def test_works_with_agnn_configs(self, ics_task):
        configs = [AGNNConfig(embedding_dim=d, num_neighbors=3, pool_percent=15.0) for d in (4, 6)]
        result = grid_search(
            lambda config: AGNN(config),
            {"config": configs},
            ics_task,
            FAST,
            refit=False,
        )
        assert len(result.trials) == 2

    def test_empty_grid_raises(self, ics_task):
        with pytest.raises(ValueError):
            grid_search(lambda: NFM(), {}, ics_task, FAST)

    def test_summary_text(self, ics_task):
        result = grid_search(
            lambda embedding_dim: NFM(embedding_dim=embedding_dim),
            {"embedding_dim": [4]},
            ics_task,
            FAST,
            refit=True,
        )
        text = result.summary()
        assert "val RMSE" in text and "test RMSE" in text
