"""K-fold cross-validation over interactions and cold nodes."""

import numpy as np
import pytest

from repro.baselines import NFM
from repro.train import TrainConfig
from repro.train.cross_validation import (
    CrossValidationResult,
    cross_validate,
    kfold_cold_nodes,
    kfold_interactions,
)

FAST = TrainConfig(epochs=1, batch_size=64, learning_rate=0.01, patience=None)


class TestKFoldInteractions:
    def test_every_interaction_tested_at_most_once(self, tiny_movielens):
        seen = []
        for task in kfold_interactions(tiny_movielens, k=4, seed=0):
            seen.extend(task.test_idx.tolist())
        assert len(seen) == len(set(seen))
        # moved-back rows may be skipped, but coverage stays high
        assert len(seen) >= 0.8 * tiny_movielens.num_ratings

    def test_folds_partition_training(self, tiny_movielens):
        for task in kfold_interactions(tiny_movielens, k=3, seed=0):
            assert len(np.intersect1d(task.train_idx, task.test_idx)) == 0
            assert len(task.train_idx) + len(task.test_idx) == tiny_movielens.num_ratings

    def test_invalid_k(self, tiny_movielens):
        with pytest.raises(ValueError):
            list(kfold_interactions(tiny_movielens, k=1))


class TestKFoldColdNodes:
    def test_every_item_cold_exactly_once(self, tiny_movielens):
        cold_seen = []
        for task in kfold_cold_nodes(tiny_movielens, side="item", k=4, seed=0):
            task.assert_strict_cold()
            cold_seen.extend(task.cold_items.tolist())
        assert sorted(cold_seen) == list(range(tiny_movielens.num_items))

    def test_user_side(self, tiny_movielens):
        tasks = list(kfold_cold_nodes(tiny_movielens, side="user", k=3, seed=0))
        assert all(t.scenario == "user_cold" for t in tasks)
        all_cold = np.concatenate([t.cold_users for t in tasks])
        assert len(np.unique(all_cold)) == tiny_movielens.num_users

    def test_invalid_side(self, tiny_movielens):
        with pytest.raises(ValueError):
            list(kfold_cold_nodes(tiny_movielens, side="movie"))


class TestCrossValidate:
    def test_aggregates_folds(self, tiny_movielens):
        result = cross_validate(
            lambda: NFM(embedding_dim=4),
            kfold_cold_nodes(tiny_movielens, side="item", k=3, seed=0),
            FAST,
        )
        assert result.num_folds == 3
        assert np.isfinite(result.rmse_mean)
        assert result.rmse_std >= 0.0
        assert "folds" in str(result)

    def test_fold_variation_exists(self, tiny_movielens):
        result = cross_validate(
            lambda: NFM(embedding_dim=4),
            kfold_cold_nodes(tiny_movielens, side="item", k=3, seed=0),
            FAST,
        )
        rmses = [r.rmse for r in result.fold_results]
        assert len(set(np.round(rmses, 6))) > 1

    def test_empty_iterator_raises(self):
        with pytest.raises(ValueError):
            cross_validate(lambda: NFM(embedding_dim=4), iter(()), FAST)
