"""TrainHistory: recording, curves, and the to_dict/from_dict round-trip."""

import json

import pytest

from repro.train import TrainHistory


@pytest.fixture()
def history():
    history = TrainHistory()
    history.record({"prediction": 1.2, "reconstruction": 0.8, "total": 2.0})
    history.record({"prediction": 0.9, "reconstruction": 0.5, "total": 1.4})
    return history


class TestRoundTrip:
    def test_to_dict_from_dict_is_identity(self, history):
        restored = TrainHistory.from_dict(history.to_dict())
        assert restored.losses == history.losses
        assert restored.num_epochs == history.num_epochs
        assert restored.summary() == history.summary()

    def test_to_dict_is_plain_json(self, history):
        payload = history.to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_to_dict_copies(self, history):
        payload = history.to_dict()
        payload["prediction"].append(99.0)
        assert history.curve("prediction") == [1.2, 0.9]

    def test_from_dict_coerces_to_float(self):
        restored = TrainHistory.from_dict({"total": [2, 1]})
        assert restored.curve("total") == [2.0, 1.0]
        assert all(isinstance(v, float) for v in restored.curve("total"))

    def test_empty_round_trip(self):
        assert TrainHistory.from_dict(TrainHistory().to_dict()).losses == {}


class TestSummaryUnchanged:
    def test_summary_format(self, history):
        assert history.summary() == "epochs=2 prediction=0.9000 reconstruction=0.5000 total=1.4000"

    def test_empty_summary(self):
        assert TrainHistory().summary() == "epochs=0 "
