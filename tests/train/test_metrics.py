"""Metrics, history, significance tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.train import EvalResult, TrainHistory, mae, paired_significance, rmse, significance_marker


class TestRMSEMAE:
    def test_perfect_prediction(self):
        x = np.array([1.0, 2.0, 3.0])
        assert rmse(x, x) == 0.0
        assert mae(x, x) == 0.0

    def test_known_values(self):
        pred = np.array([2.0, 4.0])
        actual = np.array([1.0, 1.0])
        assert rmse(pred, actual) == pytest.approx(np.sqrt((1 + 9) / 2))
        assert mae(pred, actual) == pytest.approx(2.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mae(np.array([]), np.array([]))

    @given(
        hnp.arrays(np.float64, 10, elements=st.floats(min_value=-5, max_value=5, allow_nan=False))
    )
    @settings(max_examples=40, deadline=None)
    def test_property_rmse_geq_mae(self, errors):
        """RMSE ≥ MAE always (Jensen)."""
        pred = errors
        actual = np.zeros(10)
        assert rmse(pred, actual) >= mae(pred, actual) - 1e-12

    def test_eval_result_matches_functions(self, rng):
        pred = rng.normal(size=20)
        actual = rng.normal(size=20)
        result = EvalResult.from_predictions(pred, actual)
        assert result.rmse == pytest.approx(rmse(pred, actual))
        assert result.mae == pytest.approx(mae(pred, actual))
        assert len(result.squared_errors) == 20

    def test_eval_result_str(self, rng):
        result = EvalResult.from_predictions(np.ones(5), np.ones(5))
        assert "RMSE=0.0000" in str(result)


class TestTrainHistory:
    def test_record_and_curve(self):
        history = TrainHistory()
        history.record({"prediction": 1.0, "reconstruction": 5.0})
        history.record({"prediction": 0.5, "reconstruction": 2.0})
        assert history.num_epochs == 2
        assert history.curve("prediction") == [1.0, 0.5]
        assert history.final("reconstruction") == 2.0

    def test_unknown_curve_raises(self):
        with pytest.raises(KeyError):
            TrainHistory().curve("loss")

    def test_final_on_empty_curve_raises(self):
        history = TrainHistory()
        history.losses["x"] = []
        with pytest.raises(ValueError):
            history.final("x")

    def test_summary_contains_names(self):
        history = TrainHistory()
        history.record({"prediction": 1.2345})
        assert "prediction=1.2345" in history.summary()


class TestSignificance:
    def _results(self, a_errors, b_errors):
        a = EvalResult(rmse=0, mae=0, squared_errors=np.asarray(a_errors), absolute_errors=np.asarray(a_errors))
        b = EvalResult(rmse=0, mae=0, squared_errors=np.asarray(b_errors), absolute_errors=np.asarray(b_errors))
        return a, b

    def test_clearly_better_is_significant(self, rng):
        base = rng.uniform(1.0, 2.0, size=500)
        ours, theirs = self._results(base * 0.5, base)
        report = paired_significance(ours, theirs)
        assert report.significant_01
        assert report.marker() == "*"

    def test_identical_is_not_significant(self, rng):
        base = rng.uniform(1.0, 2.0, size=100)
        ours, theirs = self._results(base, base)
        report = paired_significance(ours, theirs)
        assert report.p_value == 1.0
        assert report.marker() == ""

    def test_worse_is_not_significant(self, rng):
        base = rng.uniform(1.0, 2.0, size=200)
        ours, theirs = self._results(base * 2.0, base)
        report = paired_significance(ours, theirs)
        assert not report.significant_05

    def test_one_sided_p_in_unit_interval(self, rng):
        a = rng.uniform(0, 1, 50)
        b = rng.uniform(0, 1, 50)
        report = paired_significance(*self._results(a, b))
        assert 0.0 <= report.p_value <= 1.0

    def test_marker_daggers_at_modest_significance(self, rng):
        # construct a barely-significant difference
        base = rng.uniform(1.0, 2.0, size=40)
        ours, theirs = self._results(base - 0.05 + rng.normal(0, 0.08, 40), base)
        marker = paired_significance(ours, theirs).marker()
        assert marker in ("", "†", "*")

    def test_shape_mismatch_raises(self, rng):
        ours, theirs = self._results(rng.uniform(size=10), rng.uniform(size=12))
        with pytest.raises(ValueError):
            paired_significance(ours, theirs)

    def test_invalid_metric_raises(self, rng):
        ours, theirs = self._results(rng.uniform(size=10), rng.uniform(size=10))
        with pytest.raises(ValueError):
            paired_significance(ours, theirs, metric="median")

    def test_significance_marker_helper(self, rng):
        base = rng.uniform(1.0, 2.0, size=500)
        ours, theirs = self._results(base * 0.2, base)
        assert significance_marker(ours, theirs) == "*"
