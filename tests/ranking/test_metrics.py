"""Top-N ranking metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranking import (
    RankingResult,
    hit_rate_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)


class TestPointMetrics:
    def test_hit_rate_hit_and_miss(self):
        assert hit_rate_at_k([1, 2, 3], {2}, k=3) == 1.0
        assert hit_rate_at_k([1, 2, 3], {9}, k=3) == 0.0

    def test_hit_rate_respects_k(self):
        assert hit_rate_at_k([1, 2, 9], {9}, k=2) == 0.0

    def test_recall(self):
        assert recall_at_k([1, 2, 3, 4], {1, 9}, k=4) == pytest.approx(0.5)

    def test_precision(self):
        assert precision_at_k([1, 2, 3, 4], {1, 2}, k=4) == pytest.approx(0.5)

    def test_ndcg_perfect_ranking(self):
        assert ndcg_at_k([7, 8, 1, 2], {7, 8}, k=4) == pytest.approx(1.0)

    def test_ndcg_penalises_late_hits(self):
        early = ndcg_at_k([7, 1, 2, 3], {7}, k=4)
        late = ndcg_at_k([1, 2, 3, 7], {7}, k=4)
        assert early > late

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            hit_rate_at_k([1, 2], {1}, k=0)
        with pytest.raises(ValueError):
            recall_at_k([1, 2], set(), k=1)
        with pytest.raises(ValueError):
            ndcg_at_k([1], {1}, k=5)

    @given(
        relevant=st.sets(st.integers(0, 19), min_size=1, max_size=5),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_metrics_in_unit_interval(self, relevant, seed):
        ranked = list(np.random.default_rng(seed).permutation(20))
        for metric in (hit_rate_at_k, recall_at_k, precision_at_k, ndcg_at_k):
            value = metric(ranked, relevant, k=10)
            assert 0.0 <= value <= 1.0

    @given(st.sets(st.integers(0, 9), min_size=1, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_property_perfect_ranking_maximises_ndcg(self, relevant):
        rest = [i for i in range(20) if i not in relevant]
        perfect = sorted(relevant) + rest
        assert ndcg_at_k(perfect, relevant, k=10) == pytest.approx(1.0)


class TestRankingResult:
    def test_aggregation(self):
        rankings = {0: [1, 2, 3], 1: [3, 2, 1]}
        relevant = {0: {1}, 1: {1}}
        result = RankingResult.from_rankings(rankings, relevant, k=3)
        assert result.hit_rate == 1.0
        assert result.num_users == 2
        assert 0 < result.ndcg <= 1.0

    def test_skips_users_without_relevant(self):
        rankings = {0: [1, 2], 1: [1, 2]}
        relevant = {0: {1}}
        result = RankingResult.from_rankings(rankings, relevant, k=2)
        assert result.num_users == 1

    def test_all_empty_raises(self):
        with pytest.raises(ValueError):
            RankingResult.from_rankings({0: [1]}, {}, k=1)

    def test_str(self):
        result = RankingResult(1.0, 1.0, 1.0, 0.5, k=10, num_users=3)
        assert "HR@10" in str(result)
