"""Ranking evaluation protocol and the BPR/popularity baselines."""

import numpy as np
import pytest

from repro import nn
from repro.core import AGNN, AGNNConfig
from repro.ranking import (
    BPRMF,
    BPRConfig,
    PopularityRanker,
    evaluate_ranking,
    rank_items_for_user,
    relevant_items,
)
from repro.train import TrainConfig


class TestRelevantItems:
    def test_threshold_filters(self, ics_task):
        relevant = relevant_items(ics_task, threshold=4.0)
        for user, items in relevant.items():
            for item in items:
                mask = (ics_task.test_users == user) & (ics_task.test_items == item)
                assert (ics_task.test_ratings[mask] >= 4.0).all()

    def test_high_threshold_shrinks(self, ics_task):
        low = relevant_items(ics_task, threshold=3.0)
        high = relevant_items(ics_task, threshold=5.0)
        count = lambda rel: sum(len(v) for v in rel.values())
        assert count(high) <= count(low)


class TestRankItemsForUser:
    def test_orders_by_score(self, ics_task):
        nn.init.seed(0)
        model = AGNN(AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0), rng_seed=0)
        model.fit(ics_task, TrainConfig(epochs=1, batch_size=64, patience=None))
        candidates = np.arange(10)
        ranked = rank_items_for_user(model, 0, candidates)
        scores = model.predict(np.zeros(10, dtype=int), candidates)
        expected = candidates[np.argsort(-scores, kind="stable")].tolist()
        assert ranked == expected


class TestEvaluateRanking:
    def test_full_protocol_on_agnn(self, ics_task):
        nn.init.seed(0)
        model = AGNN(AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0), rng_seed=0)
        model.fit(ics_task, TrainConfig(epochs=3, batch_size=64, learning_rate=0.01, patience=None))
        result = evaluate_ranking(model, ics_task, k=5, num_negatives=30, max_users=20)
        assert 0.0 <= result.hit_rate <= 1.0
        assert 0.0 <= result.ndcg <= 1.0
        assert result.num_users > 0

    def test_deterministic_given_seed(self, ics_task):
        nn.init.seed(0)
        model = AGNN(AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0), rng_seed=0)
        model.fit(ics_task, TrainConfig(epochs=1, batch_size=64, patience=None))
        a = evaluate_ranking(model, ics_task, k=5, num_negatives=20, max_users=10, seed=3)
        b = evaluate_ranking(model, ics_task, k=5, num_negatives=20, max_users=10, seed=3)
        assert a.hit_rate == b.hit_rate
        assert a.ndcg == b.ndcg

    def test_impossible_threshold_raises(self, ics_task):
        nn.init.seed(0)
        model = AGNN(AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0), rng_seed=0)
        model.fit(ics_task, TrainConfig(epochs=1, batch_size=64, patience=None))
        with pytest.raises(ValueError):
            evaluate_ranking(model, ics_task, threshold=6.0)


class TestBPR:
    def test_trains_and_ranks_warm(self, warm_task):
        bpr = BPRMF(BPRConfig(factors=8, epochs=10)).fit(warm_task)
        scores = bpr.predict(warm_task.test_users[:5], warm_task.test_items[:5])
        assert np.isfinite(scores).all()

    def test_better_than_random_on_warm(self, warm_task):
        """BPR must rank held-out liked items above random negatives."""
        bpr = BPRMF(BPRConfig(factors=8, epochs=20, seed=0)).fit(warm_task)
        result = evaluate_ranking(bpr, warm_task, k=10, num_negatives=50, max_users=25)
        # random ranking of ~51+ candidates: HR@10 ≈ 10/51 ≈ 0.2 per positive
        assert result.hit_rate > 0.25

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            BPRMF().predict(np.array([0]), np.array([0]))


class TestPopularityRanker:
    def test_scores_are_train_counts(self, warm_task):
        pop = PopularityRanker().fit(warm_task)
        counts = np.zeros(warm_task.dataset.num_items)
        np.add.at(counts, warm_task.train_items, 1.0)
        items = np.arange(warm_task.dataset.num_items)
        np.testing.assert_array_equal(pop.predict(np.zeros_like(items), items), counts)

    def test_cold_items_score_zero(self, ics_task):
        pop = PopularityRanker().fit(ics_task)
        scores = pop.predict(np.zeros(len(ics_task.cold_items), dtype=int), ics_task.cold_items)
        np.testing.assert_array_equal(scores, 0.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            PopularityRanker().predict(np.array([0]), np.array([0]))
