"""Distributed tracing across the pool: one request, one connected trace.

The acceptance gate for the tracing tentpole: a request served by a
2-worker pool must leave a *single* trace — the ingress ``serve.request``
span, the worker-side ``serve.batch.tick`` span and the engine spans under
it all share one ``trace_id`` across at least two PIDs in the exported
Chrome trace JSON — and the fleet-merged ``/metrics.prom`` must report
aggregate counter totals equal to the sum of the per-worker series.
Tracing must also stay bitwise-neutral: traced and untraced scores carry
identical bit patterns.
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.obs.trace import TraceContext, trace_scope
from repro.serving import BatchingEngine, InferenceEngine, WorkerPool, make_server
from repro.telemetry import disabled as telemetry_disabled
from repro.telemetry import tracing

pytestmark = [pytest.mark.serving, pytest.mark.pool, pytest.mark.trace]

POOL_OPTS = dict(workers=2, cache_size=0, tick_interval=0.0, spawn_timeout=300.0)


@pytest.fixture(scope="module")
def traced_server(bundle_dir):
    with WorkerPool(bundle_dir, **POOL_OPTS) as pool:
        server = make_server(pool=pool, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server, pool
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


def _get(server, path):
    url = f"http://127.0.0.1:{server.port}{path}"
    with urllib.request.urlopen(url, timeout=30) as response:
        body = response.read().decode("utf-8")
        return response.status, dict(response.headers), body


def _post(server, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        body = json.loads(response.read().decode("utf-8"))
        return response.status, dict(response.headers), body


class TestConnectedTrace:
    def test_pool_request_produces_one_connected_trace(self, traced_server):
        server, pool = traced_server
        status, headers, body = _post(server, "/score", {"users": [0, 1], "items": [1, 0]})
        assert status == 200
        trace_id = headers["X-Trace-ID"]
        request_id = headers["X-Request-ID"]
        assert trace_id

        status, _, raw = _get(server, f"/trace.json?trace_id={trace_id}")
        assert status == 200
        trace = json.loads(raw)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert events, "no span events for the request's trace"
        # Every slice belongs to the one trace and carries the request id
        # (the batch tick joined the trace: only one flow was in its batch).
        assert {e["args"]["trace_id"] for e in events} == {trace_id}
        names = {e["name"] for e in events}
        assert "serve.request" in names
        assert any("serve.batch.tick" in name for name in names)
        assert any("serve.score" in name for name in names)
        # ...and the slices span parent + worker processes.
        pids = {e["pid"] for e in events}
        assert len(pids) >= 2
        worker_pids = set(pool.worker_pids())
        assert pids & worker_pids, "no worker-side span joined the trace"
        assert pids - worker_pids, "no parent-side span joined the trace"
        # The request_id filter finds the same flow.
        by_request = [
            e for e in events if e["args"]["request_id"] == request_id
        ]
        assert by_request
        # Metadata rows name each process for Perfetto's process track.
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        named_pids = {e["pid"] for e in metadata if e["name"] == "process_name"}
        assert pids <= named_pids

    def test_trace_parents_link_ingress_to_worker(self, traced_server):
        server, _pool = traced_server
        status, headers, _ = _post(server, "/score", {"users": [2], "items": [3]})
        assert status == 200
        trace_id = headers["X-Trace-ID"]
        _, _, raw = _get(server, f"/trace.json?trace_id={trace_id}")
        events = [e for e in json.loads(raw)["traceEvents"] if e["ph"] == "X"]
        by_span_id = {e["args"]["span_id"]: e for e in events}
        ingress = next(e for e in events if e["name"] == "serve.request")
        tick = next(e for e in events if "serve.batch.tick" in e["name"])
        # The worker-side tick parents (transitively) to the ingress span.
        parent = tick["args"]["parent_span_id"]
        seen = set()
        while parent and parent in by_span_id and parent not in seen:
            seen.add(parent)
            if parent == ingress["args"]["span_id"]:
                break
            parent = by_span_id[parent]["args"]["parent_span_id"]
        assert parent == ingress["args"]["span_id"]


class TestFleetMetrics:
    def test_merged_counters_equal_worker_sums(self, traced_server):
        server, _pool = traced_server
        for i in range(6):
            status, _, _ = _post(server, "/score", {"users": [i % 3], "items": [i % 2]})
            assert status == 200
        status, headers, text = _get(server, "/metrics.prom")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")

        from repro.obs.prometheus import parse_prometheus

        families = parse_prometheus(text)
        scores = families["repro_serve_scores_total"]
        aggregate = scores[()]
        per_worker = [
            value for labels, value in scores.items()
            if any(k == "worker" and v not in ("parent",) for k, v in labels)
        ]
        assert len(per_worker) == 2
        assert aggregate == sum(per_worker) >= 6
        # The parent contributes the HTTP-side families to the aggregate too.
        requests = families["repro_serve_requests_total"]
        parent_series = [
            value for labels, value in requests.items()
            if ("worker", "parent") in labels
        ]
        assert parent_series and requests[()] >= parent_series[0]

    def test_trace_json_without_filter_covers_fleet(self, traced_server):
        server, pool = traced_server
        _post(server, "/score", {"users": [0], "items": [0]})
        status, _, raw = _get(server, "/trace.json")
        assert status == 200
        trace = json.loads(raw)
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert pids >= set(pool.worker_pids())
        assert trace["metadata"]["span_dropped"] == 0


class TestBatchTickLinks:
    def test_single_flow_tick_joins_the_trace(self, engine):
        batching = BatchingEngine(engine, auto_start=False)
        ctx = TraceContext.mint("req-single")
        with trace_scope(ctx):
            future = batching.submit_score([0], [1])
        batching.drain_once()
        np.testing.assert_array_equal(future.result(1), engine.score([0], [1]))
        records = tracing.export_spans()
        tick = next(r for r in records if r["name"] == "serve.batch.tick")
        assert tick["trace_id"] == ctx.trace_id
        assert tick["attrs"]["links"][0]["request_id"] == "req-single"

    def test_multi_flow_tick_links_all_parents(self, engine):
        batching = BatchingEngine(engine, auto_start=False)
        futures = []
        for request_id in ("req-a", "req-b"):
            with trace_scope(TraceContext.mint(request_id)):
                futures.append(batching.submit_score([0], [1]))
        batching.drain_once()
        for future in futures:
            future.result(1)
        records = tracing.export_spans()
        tick = next(r for r in records if r["name"] == "serve.batch.tick")
        # Two distinct flows: the tick cannot join either, it links both.
        assert tick["trace_id"] == ""
        linked = {link["request_id"] for link in tick["attrs"]["links"]}
        assert linked == {"req-a", "req-b"}

    def test_engine_spans_carry_request_identity(self, engine):
        batching = BatchingEngine(engine, auto_start=False)
        ctx = TraceContext.mint("req-attrib")
        with trace_scope(ctx):
            batching.submit_top_n(0, k=3)
        batching.drain_once()
        records = tracing.export_spans()
        topn = next(r for r in records if r["name"] == "serve.topn")
        assert topn["trace_id"] == ctx.trace_id
        assert topn["request_id"] == "req-attrib"


class TestBitwiseNeutrality:
    def test_traced_equals_untraced_scores(self, bundle):
        users = [0, 1, 2, 0]
        items = [3, 2, 1, 0]
        with telemetry_disabled():
            untraced = InferenceEngine(bundle, cache_size=0).score(users, items)
        engine = InferenceEngine(bundle, cache_size=0)
        with trace_scope(TraceContext.mint("req-det")):
            with tracing.span("serve.request"):
                traced = engine.score(users, items)
        np.testing.assert_array_equal(traced, untraced)
        assert traced.tobytes() == untraced.tobytes()
