"""InferenceEngine: offline parity, caching, batch scoring and top-N."""

import numpy as np
import pytest

from repro import telemetry
from repro.serving import InferenceEngine

pytestmark = pytest.mark.serving


class TestParity:
    def test_predict_batch_matches_offline_model(self, engine, fitted_model, ics_task):
        """The engine, fed only the bundle directory, must reproduce the
        fitted model's test-set predictions bit for bit."""
        offline = fitted_model.predict(ics_task.test_users, ics_task.test_items)
        online = engine.predict_batch(ics_task.test_users, ics_task.test_items)
        np.testing.assert_array_equal(online, offline)

    def test_score_matches_predict_batch(self, engine, ics_task):
        users, items = ics_task.test_users[:25], ics_task.test_items[:25]
        np.testing.assert_array_equal(
            engine.score(users, items), engine.predict_batch(users, items)
        )

    def test_scores_respect_rating_scale(self, engine):
        users = np.repeat(np.arange(engine.num_users), 4)
        items = np.tile(np.arange(4), engine.num_users)
        scores = engine.predict_batch(users, items)
        low, high = engine.rating_scale
        assert scores.min() >= low and scores.max() <= high


class TestCache:
    def test_cached_repeat_is_identical(self, engine, ics_task):
        users, items = ics_task.test_users[:10], ics_task.test_items[:10]
        first = engine.score(users, items)
        second = engine.score(users, items)
        np.testing.assert_array_equal(second, first)

    def test_hit_miss_counters(self, engine):
        engine.score([0, 1], [0, 1])  # 2 misses
        engine.score([0, 1], [0, 1])  # 2 hits
        counters = telemetry.get_registry().counters()
        assert counters["serve.scores"] == 4
        assert counters["serve.cache.misses"] == 2
        assert counters["serve.cache.hits"] == 2

    def test_lru_eviction_bounds_entries(self, bundle):
        small = InferenceEngine(bundle, cache_size=5)
        small.score(np.zeros(8, dtype=np.int64), np.arange(8))
        assert small.stats()["cache_entries"] == 5

    def test_cache_size_zero_disables_memoisation(self, bundle):
        uncached = InferenceEngine(bundle, cache_size=0)
        uncached.score([0], [0])
        assert uncached.stats()["cache_entries"] == 0

    def test_negative_cache_size_rejected(self, bundle):
        with pytest.raises(ValueError, match="cache_size"):
            InferenceEngine(bundle, cache_size=-1)


class TestValidation:
    def test_empty_inputs_return_empty(self, engine):
        assert engine.score([], []).shape == (0,)
        assert engine.predict_batch([], []).shape == (0,)

    def test_misaligned_inputs_rejected(self, engine):
        with pytest.raises(ValueError, match="align"):
            engine.score([0, 1], [0])

    def test_unknown_ids_rejected(self, engine):
        with pytest.raises(IndexError, match="unknown user"):
            engine.score([engine.num_users], [0])
        with pytest.raises(IndexError, match="unknown item"):
            engine.predict_batch([0], [-1])


class TestTopN:
    def test_returns_k_sorted_items(self, engine):
        items, scores = engine.top_n(0, k=5, exclude_seen=False)
        assert items.shape == scores.shape == (5,)
        assert np.all(np.diff(scores) <= 0)
        low, high = engine.rating_scale
        assert scores.min() >= low and scores.max() <= high

    def test_excludes_training_items(self, engine):
        seen = engine.seen_items(0)
        assert seen, "fixture user 0 should have training history"
        items, _ = engine.top_n(0, k=engine.num_items, exclude_seen=True)
        assert not seen & set(items.tolist())
        assert len(items) == engine.num_items - len(seen)

    def test_include_seen_covers_catalogue(self, engine):
        items, _ = engine.top_n(0, k=engine.num_items + 50, exclude_seen=False)
        assert len(items) == engine.num_items

    def test_matches_pointwise_scores(self, engine):
        items, scores = engine.top_n(3, k=4, exclude_seen=False)
        np.testing.assert_array_equal(
            scores, engine.predict_batch(np.full(4, 3), items)
        )

    def test_invalid_arguments(self, engine):
        with pytest.raises(ValueError, match="k must be positive"):
            engine.top_n(0, k=0)
        with pytest.raises(IndexError, match="unknown user"):
            engine.top_n(engine.num_users)


class TestResampling:
    def test_resample_keeps_parity_shape_and_clears_cache(self, engine):
        before = engine.refined_embeddings("item").copy()
        engine.score([0], [0])
        engine.resample_neighbourhoods(seed=123)
        assert engine.stats()["cache_entries"] == 0
        after = engine.refined_embeddings("item")
        assert after.shape == before.shape
        assert np.all(np.isfinite(after))

    def test_resample_is_seeded(self, bundle):
        a, b = InferenceEngine(bundle), InferenceEngine(bundle)
        a.resample_neighbourhoods(seed=7)
        b.resample_neighbourhoods(seed=7)
        np.testing.assert_array_equal(
            a.refined_embeddings("user"), b.refined_embeddings("user")
        )


class TestIntrospection:
    def test_stats_shape(self, engine, ics_task):
        stats = engine.stats()
        assert stats["users"] == ics_task.dataset.num_users
        assert stats["items"] == ics_task.dataset.num_items
        assert stats["onboarded_users"] == stats["onboarded_items"] == 0

    def test_refined_embeddings_cover_all_nodes(self, engine):
        for side, count in (("user", engine.num_users), ("item", engine.num_items)):
            refined = engine.refined_embeddings(side)
            assert refined.shape[0] == count
            assert np.all(np.isfinite(refined))

    def test_score_emits_spans(self, engine):
        telemetry.reset_spans()
        engine.score([0], [0])
        engine.score([0], [0])
        summaries = telemetry.span_summaries()
        assert "serve.score" in summaries
        assert "serve.score/serve.cache" in summaries
        assert "serve.score/serve.score_cold" in summaries
