"""Concurrent stress on the engine's LRU score cache (slow; tier-2).

Six hammer threads score seeded pair streams (hits + misses + LRU churn on a
tiny capacity) while an onboarding thread keeps invalidating the cache by
adding nodes.  Every observed score must be bitwise the pristine engine's
value, the cache must never exceed capacity, and the hit/miss accounting must
balance.  Run with ``pytest -m slow``.
"""

import threading

import numpy as np
import pytest

from repro import telemetry
from repro.serving import InferenceEngine

pytestmark = [pytest.mark.serving, pytest.mark.slow]

CACHE_CAPACITY = 64
HAMMER_THREADS = 6
ROUNDS = 40
ONBOARDS = 12


class TestCacheStress:
    def test_concurrent_hits_misses_and_invalidation(self, bundle):
        engine = InferenceEngine(bundle, cache_size=CACHE_CAPACITY)
        reference = InferenceEngine(bundle, cache_size=0)
        n_users, n_items = engine.num_users, engine.num_items
        # Base-node scores are invariant under onboarding (new nodes only
        # append rows), so the pristine engine is a valid oracle throughout.
        oracle = {
            (u, i): reference.score([u], [i])[0]
            for u in range(n_users)
            for i in range(n_items)
        }

        errors = []
        capacity_violations = []
        start = threading.Barrier(HAMMER_THREADS + 1)

        def hammer(worker: int) -> None:
            rng = np.random.default_rng(1000 + worker)
            start.wait()
            try:
                for _ in range(ROUNDS):
                    # A skewed stream: a hot set (cache hits) + a uniform tail
                    # (misses + LRU evictions at this tiny capacity).
                    if rng.random() < 0.5:
                        users = rng.integers(0, 8, size=4)
                        items = rng.integers(0, 8, size=4)
                    else:
                        users = rng.integers(0, n_users, size=4)
                        items = rng.integers(0, n_items, size=4)
                    got = engine.score(users, items)
                    want = np.array([oracle[(u, i)] for u, i in zip(users, items)])
                    if not np.array_equal(got, want):
                        errors.append((users.tolist(), items.tolist(), got, want))
                    entries = engine.stats()["cache_entries"]
                    if entries > CACHE_CAPACITY:
                        capacity_violations.append(entries)
            except Exception as exc:  # pragma: no cover - surfaced via `errors`
                errors.append(exc)

        def onboard() -> None:
            start.wait()
            user_row = bundle.attributes("user")[0]
            item_row = bundle.attributes("item")[0]
            for round_ in range(ONBOARDS):
                if round_ % 2 == 0:
                    engine.add_user(user_row)
                else:
                    engine.add_item(item_row)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(HAMMER_THREADS)
        ]
        threads.append(threading.Thread(target=onboard))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)

        assert not errors, f"stale or wrong scores under concurrency: {errors[:3]}"
        assert not capacity_violations, f"LRU exceeded capacity: {capacity_violations[:5]}"
        assert engine.onboarded("user") == ONBOARDS // 2
        assert engine.onboarded("item") == ONBOARDS // 2

        counters = telemetry.get_registry().counters()
        scored = HAMMER_THREADS * ROUNDS * 4
        assert counters["serve.scores"] == scored + len(oracle)  # oracle used `reference`
        assert counters["serve.cache.hits"] + counters["serve.cache.misses"] == scored + len(oracle)
        stats = engine.stats()
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0
        assert stats["cache_entries"] <= CACHE_CAPACITY

    def test_cache_disabled_engine_under_same_stress(self, bundle):
        """cache_size=0 must stay correct (and never populate the cache)."""
        engine = InferenceEngine(bundle, cache_size=0)
        reference = InferenceEngine(bundle, cache_size=0)
        start = threading.Barrier(4)
        errors = []

        def hammer(worker: int) -> None:
            rng = np.random.default_rng(worker)
            start.wait()
            for _ in range(25):
                users = rng.integers(0, engine.num_users, size=3)
                items = rng.integers(0, engine.num_items, size=3)
                if not np.array_equal(engine.score(users, items), reference.score(users, items)):
                    errors.append((users, items))

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert engine.stats()["cache_entries"] == 0
