"""Serving fixtures: one fitted SMOKE-scale AGNN, exported once per session."""

from __future__ import annotations

import pytest

from repro import nn
from repro.core import AGNN, AGNNConfig
from repro.serving import InferenceEngine, export_bundle, load_bundle
from repro.train import TrainConfig

SERVING_CONFIG = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0)
SERVING_TRAIN = TrainConfig(epochs=2, batch_size=64, patience=None)


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Serving instruments spans/counters; isolate the global registry."""
    from repro import telemetry
    from repro.telemetry import metrics as telemetry_metrics

    previous = telemetry_metrics._enabled_override
    telemetry.set_enabled(True)
    telemetry.reset()
    telemetry.reset_spans()
    yield
    telemetry.set_enabled(previous)
    telemetry.reset()
    telemetry.reset_spans()


@pytest.fixture(scope="session")
def fitted_model(ics_task):
    nn.init.seed(0)
    model = AGNN(SERVING_CONFIG, rng_seed=0)
    model.fit(ics_task, SERVING_TRAIN)
    return model


@pytest.fixture(scope="session")
def bundle_dir(fitted_model, ics_task, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "bundle"
    return export_bundle(fitted_model, ics_task, path, note="test-bundle")


@pytest.fixture(scope="session")
def bundle(bundle_dir):
    return load_bundle(bundle_dir)


@pytest.fixture()
def engine(bundle):
    """A fresh engine per test — onboarding mutates engine state."""
    return InferenceEngine(bundle)
