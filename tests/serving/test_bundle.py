"""Bundle export/load: a server must start from the directory alone."""

import json

import numpy as np
import pytest

from repro.serving import MANIFEST_SCHEMA_VERSION, load_bundle
from repro.serving.bundle import export_bundle

pytestmark = pytest.mark.serving


class TestExport:
    def test_writes_all_artifacts(self, bundle_dir):
        for name in ("manifest.json", "model.npz", "graphs.npz", "attributes.npz"):
            assert (bundle_dir / name).is_file(), f"bundle is missing {name}"

    def test_manifest_contents(self, bundle_dir, ics_task):
        manifest = json.loads((bundle_dir / "manifest.json").read_text())
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert manifest["model_name"] == "AGNN"
        assert manifest["num_users"] == ics_task.dataset.num_users
        assert manifest["num_items"] == ics_task.dataset.num_items
        assert manifest["rating_scale"] == list(ics_task.dataset.rating_scale)
        assert manifest["config"]["embedding_dim"] == 6
        assert manifest["dataset"]["scenario"] == "item_cold"
        assert manifest["dataset"]["cold_items"] > 0

    def test_rejects_unfitted_model(self, ics_task, tmp_path):
        from repro.core import AGNN

        with pytest.raises(RuntimeError, match="fitted"):
            export_bundle(AGNN(), ics_task, tmp_path / "nope")

    def test_rejects_non_agnn(self, ics_task, tmp_path):
        from repro.baselines import make_baseline

        with pytest.raises(TypeError, match="AGNN"):
            export_bundle(make_baseline("NFM", embedding_dim=4), ics_task, tmp_path / "nope")


class TestLoad:
    def test_rebuilds_model_and_state(self, bundle, fitted_model, ics_task):
        assert bundle.model is not fitted_model
        np.testing.assert_array_equal(
            bundle.user_attributes, ics_task.dataset.user_attributes
        )
        np.testing.assert_array_equal(
            bundle.neighbours["item"], fitted_model.neighbour_matrix("item")
        )
        np.testing.assert_array_equal(
            bundle.cold_nodes["item"], fitted_model.cold_node_ids("item")
        )
        assert bundle.user_schema.field_names == ics_task.dataset.user_schema.field_names

    def test_weights_round_trip(self, bundle, fitted_model):
        theirs = fitted_model.state_dict()
        ours = bundle.model.state_dict()
        assert set(theirs) == set(ours)
        for name in theirs:
            np.testing.assert_array_equal(ours[name], theirs[name])

    def test_candidate_graphs_round_trip(self, bundle, fitted_model):
        for side in ("user", "item"):
            original = fitted_model.candidate_graph(side)
            loaded = bundle.graphs[side]
            assert loaded.num_nodes == original.num_nodes
            for ours, theirs in zip(loaded.pools, original.pools):
                np.testing.assert_array_equal(ours, theirs)

    def test_missing_manifest_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            load_bundle(tmp_path)

    def test_unsupported_version_fails(self, bundle_dir, tmp_path):
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(bundle_dir, broken)
        manifest = json.loads((broken / "manifest.json").read_text())
        manifest["schema_version"] = 99
        (broken / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="schema version"):
            load_bundle(broken)
