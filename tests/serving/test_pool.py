"""WorkerPool: multi-process parity, onboarding broadcast, swap, lifecycle.

The acceptance gate for the whole subsystem is **bitwise parity with the
single-process engine**: every pooled response — routed or pinned to a
specific worker, before or after an onboarding broadcast or a hot swap —
must carry exactly the bit pattern ``InferenceEngine`` would have produced.
"""

import threading

import numpy as np
import pytest

from repro.serving import (
    InferenceEngine,
    PoolStoppedError,
    WorkerPool,
    export_bundle,
    make_server,
)

pytestmark = [pytest.mark.serving, pytest.mark.pool]

POOL_OPTS = dict(workers=2, cache_size=0, tick_interval=0.0, spawn_timeout=300.0)


@pytest.fixture(scope="module")
def shared_pool(bundle_dir):
    """A read-only 2-worker pool shared across this module's parity tests."""
    with WorkerPool(bundle_dir, **POOL_OPTS) as pool:
        yield pool


@pytest.fixture()
def fresh_pool(bundle_dir):
    """A per-test pool for anything that mutates state (onboard, swap)."""
    with WorkerPool(bundle_dir, **POOL_OPTS) as pool:
        yield pool


@pytest.fixture()
def oracle(bundle):
    """The single-process reference every pooled response must match bitwise."""
    return InferenceEngine(bundle, cache_size=0)


class TestParity:
    def test_pool_scores_bitwise_oracle(self, shared_pool, oracle):
        rng = np.random.default_rng(29)
        users = rng.integers(0, oracle.num_users, size=48)
        items = rng.integers(0, oracle.num_items, size=48)
        np.testing.assert_array_equal(
            shared_pool.score(users, items), oracle.score(users, items)
        )

    def test_every_worker_bitwise_identical(self, shared_pool, oracle):
        rng = np.random.default_rng(31)
        users = rng.integers(0, oracle.num_users, size=32)
        items = rng.integers(0, oracle.num_items, size=32)
        want = oracle.score(users, items)
        for index in range(shared_pool.num_workers):
            np.testing.assert_array_equal(
                shared_pool.score_on_worker(index, users, items), want
            )

    def test_topn_matches_oracle(self, shared_pool, oracle):
        got_items, got_scores = shared_pool.top_n(2, k=7)
        want_items, want_scores = oracle.top_n(2, k=7)
        np.testing.assert_array_equal(got_items, want_items)
        np.testing.assert_array_equal(got_scores, want_scores)

    def test_concurrent_clients_all_bitwise(self, shared_pool, oracle):
        n_threads, per_thread = 6, 8
        rng = np.random.default_rng(37)
        users = rng.integers(0, oracle.num_users, size=(n_threads, per_thread))
        items = rng.integers(0, oracle.num_items, size=(n_threads, per_thread))
        results = np.zeros((n_threads, per_thread))
        barrier = threading.Barrier(n_threads)

        def client(w):
            barrier.wait()
            for j in range(per_thread):
                results[w, j] = shared_pool.score([users[w, j]], [items[w, j]])[0]

        threads = [threading.Thread(target=client, args=(w,)) for w in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        want = oracle.score(users.ravel(), items.ravel()).reshape(n_threads, per_thread)
        np.testing.assert_array_equal(results, want)


class TestDispatchAndHealth:
    def test_workers_are_distinct_processes(self, shared_pool):
        import os

        pids = shared_pool.worker_pids()
        assert len(pids) == 2
        assert None not in pids
        assert len(set(pids)) == 2
        assert os.getpid() not in pids

    def test_healthz_reports_every_worker(self, shared_pool, bundle):
        health = shared_pool.healthz()
        assert health["num_workers"] == 2
        assert health["healthy_workers"] == 2
        assert health["respawns"] == 0
        for worker in health["workers"]:
            assert worker["responsive"]
            assert worker["alive"]
            assert worker["bundle_fingerprint"] == bundle.fingerprint
            assert worker["users"] == bundle.user_attributes.shape[0]

    def test_stats_counts_dispatches(self, shared_pool):
        before = shared_pool.stats()["dispatched"]
        shared_pool.score([0], [0])
        stats = shared_pool.stats()
        assert stats["dispatched"] == before + 1
        assert stats["live_workers"] == 2
        assert stats["workers"] == 2

    def test_bad_request_raises_without_killing_worker(self, shared_pool):
        with pytest.raises(IndexError):
            shared_pool.score([10**6], [0])
        assert shared_pool.healthz()["healthy_workers"] == 2
        assert shared_pool.stats()["respawns"] == 0

    def test_misaligned_score_rejected(self, shared_pool):
        with pytest.raises(ValueError, match="align"):
            shared_pool.score([0, 1], [0])


class TestOnboardBroadcast:
    def test_all_workers_agree_and_match_oracle(self, fresh_pool, oracle, bundle):
        attrs = np.array(bundle.attributes("item")[0], dtype=np.float64)
        new_id = fresh_pool.add_item(attrs)
        assert new_id == oracle.add_item(attrs)
        assert fresh_pool.onboarded("item") == 1
        users = np.arange(5)
        items = np.full(5, new_id)
        want = oracle.score(users, items)
        for index in range(fresh_pool.num_workers):
            np.testing.assert_array_equal(
                fresh_pool.score_on_worker(index, users, items), want
            )

    def test_user_onboard_with_schema_attributes(self, fresh_pool, oracle):
        attrs = {"gender": 0, "age": 2, "occupation": 4}
        new_id = fresh_pool.add_user(attrs)
        assert new_id == oracle.add_user(attrs)
        assert fresh_pool.onboarded("user") == 1
        want = oracle.score([new_id], [0])
        np.testing.assert_array_equal(fresh_pool.score([new_id], [0]), want)

    def test_request_after_onboard_sees_new_node(self, fresh_pool, bundle):
        """Barrier semantics: a score dispatched after the broadcast cannot
        land on a worker that has not applied it (FIFO pipes + one lock)."""
        new_id = fresh_pool.add_item(np.array(bundle.attributes("item")[1]))
        for _ in range(8):  # hits both workers via round-robin
            assert np.isfinite(fresh_pool.score([0], [new_id])[0])

    def test_sequence_numbers_advance(self, fresh_pool, bundle):
        fresh_pool.add_item(np.array(bundle.attributes("item")[0]))
        fresh_pool.add_item(np.array(bundle.attributes("item")[1]))
        assert fresh_pool.stats()["state_seq"] == 2
        for worker in fresh_pool.healthz()["workers"]:
            assert worker["state_seq"] == 2


@pytest.fixture(scope="module")
def bundle_dir_b(fitted_model, ics_task, tmp_path_factory):
    """A second-generation bundle (distinct fingerprint) to swap onto."""
    path = tmp_path_factory.mktemp("serving-swap") / "bundle-b"
    return export_bundle(fitted_model, ics_task, path, note="test-bundle-b")


class TestHotSwap:
    def test_swap_installs_on_every_worker(self, fresh_pool, bundle_dir_b, oracle):
        from repro.serving import load_bundle

        new_fingerprint = load_bundle(bundle_dir_b).fingerprint
        old_fingerprint = fresh_pool.healthz()["workers"][0]["bundle_fingerprint"]
        assert new_fingerprint != old_fingerprint

        info = fresh_pool.swap_bundle_path(bundle_dir_b)
        assert info["fingerprint"] == new_fingerprint
        health = fresh_pool.healthz()
        assert health["healthy_workers"] == 2
        for worker in health["workers"]:
            assert worker["bundle_fingerprint"] == new_fingerprint
        # same weights, new bundle: scores must still be bitwise the oracle
        np.testing.assert_array_equal(
            fresh_pool.score([0, 1], [2, 3]), oracle.score([0, 1], [2, 3])
        )

    def test_no_request_dropped_during_swap(self, fresh_pool, bundle_dir_b, oracle):
        stop = threading.Event()
        errors = []
        served = []
        want = oracle.score([3], [4])[0]

        def hammer():
            while not stop.is_set():
                try:
                    served.append(fresh_pool.score([3], [4])[0])
                except Exception as exc:  # any drop or mixed response is a failure
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            fresh_pool.swap_bundle_path(bundle_dir_b)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors
        assert served
        assert all(value == want for value in served)

    def test_swap_resets_onboard_log(self, fresh_pool, bundle_dir_b, bundle):
        fresh_pool.add_item(np.array(bundle.attributes("item")[0]))
        assert fresh_pool.onboarded("item") == 1
        fresh_pool.swap_bundle_path(bundle_dir_b)
        assert fresh_pool.onboarded("item") == 0

    def test_live_swap_bundle_delegates_to_pool(self, fresh_pool, bundle_dir_b):
        from repro.live import swap_bundle
        from repro.serving import load_bundle

        candidate = load_bundle(bundle_dir_b)
        report = swap_bundle(fresh_pool, candidate)
        assert report.fingerprint == candidate.fingerprint
        for worker in fresh_pool.healthz()["workers"]:
            assert worker["bundle_fingerprint"] == candidate.fingerprint


class TestLifecycle:
    def test_shutdown_is_idempotent(self, bundle_dir):
        pool = WorkerPool(bundle_dir, **POOL_OPTS)
        assert np.isfinite(pool.score([0], [0])[0])
        pool.shutdown()
        pool.shutdown()  # must return immediately, not deadlock or raise
        with pytest.raises(PoolStoppedError):
            pool.score([0], [0])

    def test_context_manager_shuts_down(self, bundle_dir):
        with WorkerPool(bundle_dir, **POOL_OPTS) as pool:
            assert pool.healthz()["healthy_workers"] == 2
        with pytest.raises(PoolStoppedError):
            pool.score([0], [0])

    def test_rejects_nonpositive_workers(self, bundle_dir):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(bundle_dir, workers=0)


class TestPoolServer:
    """The HTTP front-end dispatching into the pool instead of a local engine."""

    @pytest.fixture()
    def pool_server(self, bundle_dir):
        import threading as _threading

        with WorkerPool(bundle_dir, **POOL_OPTS) as pool:
            server = make_server(pool=pool, port=0)
            thread = _threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                yield server, pool
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)

    def _get(self, server, path):
        import json
        import urllib.request

        url = f"http://127.0.0.1:{server.port}{path}"
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))

    def _post(self, server, path, payload):
        import json
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read().decode("utf-8"))

    def test_healthz_exposes_worker_liveness(self, pool_server, bundle):
        server, pool = pool_server
        status, body = self._get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["healthy_workers"] == 2
        pids = {worker["pid"] for worker in body["workers"]}
        assert pids == set(pool.worker_pids())
        for worker in body["workers"]:
            assert worker["bundle_version"] == bundle.version

    def test_score_bitwise_oracle(self, pool_server, oracle):
        server, _pool = pool_server
        status, body = self._post(server, "/score", {"users": [0, 1], "items": [2, 3]})
        assert status == 200
        np.testing.assert_array_equal(body["scores"], oracle.score([0, 1], [2, 3]))

    def test_onboard_via_pool(self, pool_server, oracle):
        server, pool = pool_server
        status, body = self._post(
            server, "/users", {"attributes": {"gender": 1, "age": 3, "occupation": 5}}
        )
        assert status == 201
        assert body["user"] == oracle.num_users
        assert body["onboarded"] == 1
        assert pool.onboarded("user") == 1

    def test_make_server_rejects_pool_plus_batching(self, bundle_dir, engine):
        from repro.serving import BatchingEngine

        batching = BatchingEngine(engine, auto_start=False)
        with pytest.raises(ValueError, match="batching"):
            make_server(engine, port=0, batching=batching, pool=object())

    def test_make_server_requires_engine_or_pool(self):
        with pytest.raises(ValueError, match="engine"):
            make_server(port=0)
