"""BatchingEngine: coalescing parity, FIFO fairness, delivery, determinism."""

import threading

import numpy as np
import pytest

from repro import telemetry
from repro.serving import BatchingEngine, InferenceEngine

pytestmark = pytest.mark.serving


class FakeClock:
    """A manually advanced clock for deterministic coalescing tests."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def sequential(bundle):
    """A pristine reference engine: the single-request baseline."""
    return InferenceEngine(bundle)


@pytest.fixture()
def manual(engine):
    """A batching engine in manual-tick mode (the caller owns the cadence)."""
    batching = BatchingEngine(engine, auto_start=False)
    yield batching
    batching.stop(drain=True)


class TestParity:
    def test_coalesced_batch_is_bitwise_sequential(self, manual, sequential, engine):
        """One fused tick must return bit-for-bit what per-request calls do."""
        rng = np.random.default_rng(11)
        users = rng.integers(0, engine.num_users, size=40)
        items = rng.integers(0, engine.num_items, size=40)
        futures = [manual.submit_score([u], [i]) for u, i in zip(users, items)]
        assert manual.drain_once() == 40
        assert manual.stats()["coalesced_requests"] == 40
        got = np.array([future.result(0)[0] for future in futures])
        want = np.array([sequential.score([u], [i])[0] for u, i in zip(users, items)])
        np.testing.assert_array_equal(got, want)

    def test_multi_pair_requests_fuse_bitwise(self, manual, sequential, engine):
        rng = np.random.default_rng(13)
        users = rng.integers(0, engine.num_users, size=30)
        items = rng.integers(0, engine.num_items, size=30)
        futures = [
            manual.submit_score(users[lo : lo + 7], items[lo : lo + 7])
            for lo in range(0, 30, 7)
        ]
        manual.drain_once()
        got = np.concatenate([future.result(0) for future in futures])
        np.testing.assert_array_equal(got, sequential.score(users, items))

    def test_threaded_parity_under_concurrency(self, bundle, sequential):
        """N threads through the live coalescing loop == sequential scoring."""
        engine = InferenceEngine(bundle)
        rng = np.random.default_rng(17)
        n_threads, per_thread = 8, 12
        users = rng.integers(0, engine.num_users, size=(n_threads, per_thread))
        items = rng.integers(0, engine.num_items, size=(n_threads, per_thread))
        results = np.zeros((n_threads, per_thread))
        barrier = threading.Barrier(n_threads)

        with BatchingEngine(engine, tick_interval=0.002) as batching:

            def worker(w: int) -> None:
                barrier.wait()
                for j in range(per_thread):
                    results[w, j] = batching.score([users[w, j]], [items[w, j]])[0]

            threads = [threading.Thread(target=worker, args=(w,)) for w in range(n_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        want = sequential.score(users.ravel(), items.ravel()).reshape(n_threads, per_thread)
        np.testing.assert_array_equal(results, want)

    def test_engine_scoring_is_batch_composition_invariant(self, sequential, bundle):
        """The property the coalescer is built on: a pair's score has the same
        bit pattern alone (n=1, BLAS gemv), in a small chunk, or fused."""
        engine = InferenceEngine(bundle, cache_size=0)  # no memoisation masking
        rng = np.random.default_rng(19)
        users = rng.integers(0, engine.num_users, size=57)
        items = rng.integers(0, engine.num_items, size=57)
        fused = engine.score(users, items)
        singles = np.array([engine.score([u], [i])[0] for u, i in zip(users, items)])
        np.testing.assert_array_equal(singles, fused)
        chunked = np.concatenate(
            [engine.score(users[lo : lo + 13], items[lo : lo + 13]) for lo in range(0, 57, 13)]
        )
        np.testing.assert_array_equal(chunked, fused)

    def test_topn_through_queue_matches_engine(self, manual, sequential):
        future = manual.submit_top_n(0, k=5)
        manual.drain_once()
        got_items, got_scores = future.result(0)
        want_items, want_scores = sequential.top_n(0, k=5)
        np.testing.assert_array_equal(got_items, want_items)
        np.testing.assert_array_equal(got_scores, want_scores)


class TestFairness:
    def test_fifo_completion_order(self, manual, engine):
        """Futures complete in arrival order, even across coalesced runs."""
        completed = []
        futures = []
        for idx in range(12):
            if idx == 5:
                future = manual.submit_top_n(0, k=3)
            else:
                future = manual.submit_score([idx % engine.num_users], [0])
            future.add_done_callback(lambda _f, idx=idx: completed.append(idx))
            futures.append(future)
        manual.drain_once()
        assert completed == list(range(12))

    def test_barrier_semantics_for_onboarding(self, manual, engine, bundle):
        """A request submitted after an onboard sees the onboarded node."""
        new_id = engine.num_users  # id the onboard will assign
        first = manual.submit_score([0], [0])
        onboard = manual.submit_onboard("user", bundle.attributes("user")[0])
        after = manual.submit_score([new_id], [0])
        manual.drain_once()
        assert np.isfinite(first.result(0)[0])
        assert onboard.result(0) == new_id
        assert np.isfinite(after.result(0)[0])  # would IndexError without the barrier


class TestDelivery:
    def test_no_dropped_or_duplicated_responses(self, bundle):
        """Every submitted request resolves exactly once with its own answer."""
        engine = InferenceEngine(bundle)
        n_threads, per_thread = 8, 25
        completions = [[0] * per_thread for _ in range(n_threads)]
        values = np.full((n_threads, per_thread), np.nan)

        with BatchingEngine(engine, tick_interval=0.001) as batching:
            barrier = threading.Barrier(n_threads)

            def worker(w: int) -> None:
                barrier.wait()
                for j in range(per_thread):
                    future = batching.submit_score([w], [j])
                    future.add_done_callback(
                        lambda _f, w=w, j=j: completions[w].__setitem__(
                            j, completions[w][j] + 1
                        )
                    )
                    values[w, j] = future.result(30.0)[0]

            threads = [threading.Thread(target=worker, args=(w,)) for w in range(n_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert all(count == 1 for per in completions for count in per)
        assert np.isfinite(values).all()
        counters = telemetry.get_registry().counters()
        assert counters["serve.scores"] == n_threads * per_thread
        assert counters["serve.batch.requests"] == n_threads * per_thread

    def test_stop_with_drain_completes_queued_work(self, engine):
        batching = BatchingEngine(engine, auto_start=False)
        futures = [batching.submit_score([i], [i]) for i in range(5)]
        batching.start()
        batching.stop(drain=True)
        assert all(np.isfinite(future.result(0)[0]) for future in futures)

    def test_stop_without_drain_fails_pending_futures(self, engine):
        batching = BatchingEngine(engine, auto_start=False)
        futures = [batching.submit_score([i], [i]) for i in range(3)]
        batching.stop(drain=False)
        for future in futures:
            with pytest.raises(RuntimeError, match="stopped"):
                future.result(0)


class TestDeterministicCoalescing:
    def test_one_tick_under_fake_clock(self, engine):
        clock = FakeClock(start=100.0)
        batching = BatchingEngine(engine, auto_start=False, clock=clock)
        for idx in range(5):
            batching.submit_score([idx], [idx])
        clock.advance(0.25)
        assert batching.drain_once() == 5
        stats = batching.stats()
        assert stats["ticks"] == 1
        assert stats["requests"] == 5
        assert stats["coalesced_requests"] == 5
        histograms = telemetry.get_registry().histograms()
        waits = histograms["serve.batch.wait"].samples()
        assert waits == [0.25] * 5  # exact: both stamps came from the fake clock
        assert histograms["serve.batch.size"].samples() == [5.0]

    def test_batch_budget_splits_ticks_deterministically(self, engine):
        batching = BatchingEngine(
            engine, auto_start=False, max_batch_pairs=4, clock=FakeClock()
        )
        futures = [batching.submit_score([i], [i]) for i in range(10)]
        assert batching.drain_once() == 10
        stats = batching.stats()
        assert stats["ticks"] == 3  # 4 + 4 + 2 under the pair budget
        assert all(future.done() for future in futures)

    def test_queue_wait_accumulates_scripted_clock_steps(self, engine):
        clock = FakeClock()
        batching = BatchingEngine(engine, auto_start=False, clock=clock)
        batching.submit_score([0], [0])
        clock.advance(0.1)
        batching.submit_score([1], [1])
        clock.advance(0.2)
        batching.drain_once()
        waits = sorted(telemetry.get_registry().histograms()["serve.batch.wait"].samples())
        assert waits == pytest.approx([0.2, 0.30000000000000004])


class TestValidationAndLifecycle:
    def test_misaligned_submit_fails_fast(self, manual):
        with pytest.raises(ValueError, match="align"):
            manual.submit_score([0, 1], [0])

    def test_bad_side_rejected(self, manual):
        with pytest.raises(ValueError, match="side"):
            manual.submit_onboard("basket", {})

    def test_submit_after_stop_rejected(self, engine):
        batching = BatchingEngine(engine, auto_start=False)
        batching.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            batching.submit_score([0], [0])

    def test_constructor_validation(self, engine):
        with pytest.raises(ValueError, match="max_batch_pairs"):
            BatchingEngine(engine, max_batch_pairs=0, auto_start=False)
        with pytest.raises(ValueError, match="max_queue_depth"):
            BatchingEngine(engine, max_queue_depth=0, auto_start=False)
        with pytest.raises(ValueError, match="tick_interval"):
            BatchingEngine(engine, tick_interval=-1.0, auto_start=False)

    def test_start_is_idempotent(self, engine):
        batching = BatchingEngine(engine)
        try:
            batching.start()
            assert batching.running
        finally:
            batching.stop()
        assert not batching.running


class TestIdempotentShutdown:
    """Regression: shutdown() must be safe to call from atexit hooks, signal
    unwinds, and context exits — any number of times, in any order with stop()."""

    def test_shutdown_twice_is_a_noop(self, engine):
        batching = BatchingEngine(engine, tick_interval=0.001)
        assert np.isfinite(batching.score([0], [0])[0])
        batching.shutdown()
        assert not batching.running
        batching.shutdown()  # must return immediately, not raise or deadlock
        assert not batching.running

    def test_shutdown_drains_queued_work(self, engine):
        batching = BatchingEngine(engine, auto_start=False)
        futures = [batching.submit_score([i], [i]) for i in range(4)]
        batching.start()
        batching.shutdown(drain=True)
        assert all(np.isfinite(future.result(0)[0]) for future in futures)

    def test_shutdown_without_drain_fails_pending(self, engine):
        batching = BatchingEngine(engine, auto_start=False)
        future = batching.submit_score([0], [0])
        batching.shutdown(drain=False)
        with pytest.raises(RuntimeError, match="stopped"):
            future.result(0)

    def test_shutdown_after_stop_is_a_noop(self, engine):
        batching = BatchingEngine(engine)
        batching.stop()
        batching.shutdown()
        assert not batching.running

    def test_concurrent_shutdowns_race_safely(self, engine):
        batching = BatchingEngine(engine, tick_interval=0.001)
        barrier = threading.Barrier(4)

        def closer():
            barrier.wait()
            batching.shutdown()

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert not batching.running

    def test_submit_after_shutdown_rejected(self, engine):
        batching = BatchingEngine(engine)
        batching.shutdown()
        with pytest.raises(RuntimeError, match="stopped"):
            batching.submit_score([0], [0])
