"""Live strict-cold-start onboarding: encoding, graph splice, engine adds."""

import numpy as np
import pytest

from repro import telemetry
from repro.serving import encode_attribute_row, splice_neighbours

pytestmark = pytest.mark.serving

USER_ATTRS = {"gender": 1, "age": 3, "occupation": 5}
ITEM_ATTRS = {"category": [0, 4], "star": 2, "director": 7, "writer": 1, "country": 0}


class TestEncodeAttributeRow:
    def test_mapping_goes_through_schema(self, bundle):
        row = encode_attribute_row(USER_ATTRS, bundle.user_schema, bundle.user_attributes.shape[1])
        assert row.shape == (bundle.user_attributes.shape[1],)
        assert row.sum() == 3  # one hot per categorical field

    def test_raw_row_passes_validation(self, bundle):
        source = bundle.item_attributes[0]
        row = encode_attribute_row(source.tolist(), bundle.item_schema, source.shape[0])
        np.testing.assert_array_equal(row, source)

    def test_wrong_width_rejected(self, bundle):
        with pytest.raises(ValueError, match="expected"):
            encode_attribute_row([1.0, 0.0], bundle.user_schema, bundle.user_attributes.shape[1])

    def test_non_finite_rejected(self, bundle):
        dim = bundle.user_attributes.shape[1]
        row = np.zeros(dim)
        row[0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            encode_attribute_row(row, bundle.user_schema, dim)

    def test_all_zero_rejected(self, bundle):
        dim = bundle.user_attributes.shape[1]
        with pytest.raises(ValueError, match="all-zero"):
            encode_attribute_row(np.zeros(dim), bundle.user_schema, dim)

    def test_mapping_without_schema_rejected(self):
        with pytest.raises(ValueError, match="no attribute schema"):
            encode_attribute_row({"city": 1}, None, 4)


class TestSpliceNeighbours:
    def test_deterministic_splice_takes_pool_head(self, bundle):
        attrs = bundle.user_attributes
        row = attrs[0]
        neighbours, pool, weights = splice_neighbours(
            row, attrs, pool_percent=15.0, k=3, min_pool=3
        )
        assert neighbours.shape == (3,)
        np.testing.assert_array_equal(neighbours, pool[:3])
        assert len(pool) == len(weights)
        assert np.all(weights > 0)
        # The node's own duplicate profile (if any) or itself tops the pool.
        assert pool[0] in np.flatnonzero((attrs == row).all(axis=1))

    def test_pool_respects_percent_and_floor(self, bundle):
        attrs = bundle.user_attributes
        _, pool, _ = splice_neighbours(attrs[1], attrs, pool_percent=15.0, k=3, min_pool=3)
        assert len(pool) == max(round(len(attrs) * 0.15), 3)
        _, floored, _ = splice_neighbours(attrs[1], attrs, pool_percent=0.0, k=2, min_pool=5)
        assert len(floored) == 5

    def test_small_pool_pads_by_repetition(self, bundle):
        attrs = bundle.user_attributes[:2]
        neighbours, pool, _ = splice_neighbours(
            bundle.user_attributes[5], attrs, pool_percent=1.0, k=5, min_pool=1
        )
        assert len(pool) == 1
        np.testing.assert_array_equal(neighbours, np.repeat(pool[0], 5))

    def test_rng_sampling_draws_from_pool(self, bundle):
        attrs = bundle.user_attributes
        rng = np.random.default_rng(0)
        neighbours, pool, _ = splice_neighbours(
            attrs[2], attrs, pool_percent=25.0, k=4, min_pool=3, rng=rng
        )
        assert set(neighbours.tolist()) <= set(pool.tolist())

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="empty graph"):
            splice_neighbours(np.ones(4), np.empty((0, 4)), pool_percent=10.0, k=2, min_pool=1)


class TestEngineOnboarding:
    def test_add_user_allocates_sequential_ids(self, engine):
        base = engine.num_users
        first = engine.add_user(USER_ATTRS)
        second = engine.add_user({"gender": 0, "age": 1, "occupation": 2})
        assert (first, second) == (base, base + 1)
        assert engine.onboarded("user") == 2
        assert engine.num_users == base + 2

    def test_new_user_scores_are_finite_and_clipped(self, engine):
        user = engine.add_user(USER_ATTRS)
        scores = engine.score(np.full(5, user), np.arange(5))
        assert np.all(np.isfinite(scores))
        low, high = engine.rating_scale
        assert scores.min() >= low and scores.max() <= high

    def test_new_user_gets_valid_top_n(self, engine):
        user = engine.add_user(USER_ATTRS)
        items, scores = engine.top_n(user, k=10)
        assert len(items) == 10
        assert len(set(items.tolist())) == 10
        assert np.all(np.isfinite(scores))
        assert engine.seen_items(user) == set()

    def test_add_item_becomes_scoreable_and_retrievable(self, engine):
        item = engine.add_item(ITEM_ATTRS)
        assert item == engine.num_items - 1
        score = engine.score([0], [item])
        assert np.isfinite(score[0])
        items, _ = engine.top_n(0, k=engine.num_items)
        assert item in items

    def test_cold_cross_score_between_onboarded_nodes(self, engine):
        user = engine.add_user(USER_ATTRS)
        item = engine.add_item(ITEM_ATTRS)
        low, high = engine.rating_scale
        assert low <= engine.score([user], [item])[0] <= high

    def test_onboarding_invalidates_result_cache(self, engine):
        engine.score([0], [0])
        assert engine.stats()["cache_entries"] == 1
        engine.add_user(USER_ATTRS)
        assert engine.stats()["cache_entries"] == 0

    def test_onboarding_preserves_existing_embeddings(self, engine):
        before = engine.refined_embeddings("user")[: engine.num_users].copy()
        engine.add_user(USER_ATTRS)
        np.testing.assert_array_equal(engine.refined_embeddings("user")[: len(before)], before)

    def test_onboarding_with_raw_row_matches_schema_dict(self, bundle):
        # Two fresh engines: within one engine the second add would see the
        # first onboarded node in the graph and splice differently.
        from repro.serving import InferenceEngine

        a, b = InferenceEngine(bundle), InferenceEngine(bundle)
        via_dict = a.add_user(USER_ATTRS)
        via_row = b.add_user(bundle.user_schema.encode(USER_ATTRS))
        assert via_dict == via_row
        np.testing.assert_array_equal(
            a.refined_embeddings("user")[via_dict],
            b.refined_embeddings("user")[via_row],
        )

    def test_onboarding_telemetry(self, engine):
        telemetry.reset_spans()
        engine.add_user(USER_ATTRS)
        engine.add_item(ITEM_ATTRS)
        counters = telemetry.get_registry().counters()
        assert counters["serve.onboarded.users"] == 1
        assert counters["serve.onboarded.items"] == 1
        assert "serve.onboard" in telemetry.span_summaries()
        gauges = telemetry.get_registry().gauges()
        assert gauges["serve.nodes.user"] == engine.num_users
