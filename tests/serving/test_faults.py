"""Fault injection: poisoned batchmates, backpressure sheds, error isolation."""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import telemetry
from repro.serving import BatchingEngine, EngineOverloadedError, InferenceEngine, make_server

pytestmark = pytest.mark.serving

POISON_USER = 7


def _poison(engine, monkeypatch):
    """Make ``engine.score`` blow up whenever the poison user appears."""
    original = engine.score

    def score(users, items):
        if POISON_USER in np.atleast_1d(np.asarray(users)):
            raise RuntimeError("poisoned request")
        return original(users, items)

    monkeypatch.setattr(engine, "score", score)


def _post(port, path, payload, timeout=10):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


@pytest.fixture()
def batched_server(bundle):
    """A server whose batching queue is drained manually by the test."""
    engine = InferenceEngine(bundle)
    batching = BatchingEngine(engine, auto_start=False, max_queue_depth=4)
    server = make_server(engine, port=0, batching=batching)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, batching, engine
    batching.start()  # let shutdown's drain complete any stragglers
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def _wait_for_queue(batching, depth, timeout=5.0):
    deadline = time.monotonic() + timeout
    while batching.stats()["queue_depth"] < depth:
        if time.monotonic() > deadline:
            raise AssertionError(
                f"queue never reached depth {depth}: {batching.stats()}"
            )
        time.sleep(0.005)


class TestPoisonedBatchmate:
    def test_only_the_poisoned_request_errors(self, bundle, monkeypatch):
        """A fused-call failure falls back per-request: batchmates succeed."""
        engine = InferenceEngine(bundle)
        reference = InferenceEngine(bundle)
        _poison(engine, monkeypatch)
        batching = BatchingEngine(engine, auto_start=False)

        healthy = [(0, 3), (1, 4), (2, 5)]
        futures = [batching.submit_score([u], [i]) for u, i in healthy]
        poisoned = batching.submit_score([POISON_USER], [0])
        futures_after = [batching.submit_score([u + 10], [i]) for u, i in healthy]
        batching.drain_once()

        with pytest.raises(RuntimeError, match="poisoned"):
            poisoned.result(0)
        got = np.array([f.result(0)[0] for f in futures + futures_after])
        want = np.array(
            [reference.score([u], [i])[0] for u, i in healthy]
            + [reference.score([u + 10], [i])[0] for u, i in healthy]
        )
        np.testing.assert_array_equal(got, want)
        assert batching.stats()["fallbacks"] == 1
        assert telemetry.get_registry().counters()["serve.batch.fallbacks"] == 1

    def test_unknown_id_isolated_to_its_request(self, bundle):
        """Out-of-range ids poison only their own future, not the batch."""
        engine = InferenceEngine(bundle)
        batching = BatchingEngine(engine, auto_start=False)
        good = batching.submit_score([0], [0])
        bad = batching.submit_score([engine.num_users + 99], [0])
        also_good = batching.submit_score([1], [1])
        batching.drain_once()
        with pytest.raises(IndexError, match="unknown user"):
            bad.result(0)
        assert np.isfinite(good.result(0)[0])
        assert np.isfinite(also_good.result(0)[0])

    def test_http_poison_in_coalesced_batch(self, batched_server, monkeypatch):
        """Over HTTP: the poisoned request gets a JSON 500 with its request id
        while its coalesced batchmates are answered 200."""
        server, batching, engine = batched_server
        _poison(engine, monkeypatch)
        results = {}

        def client(name, user):
            results[name] = _post(server.port, "/score", {"users": [user], "items": [0]})

        threads = [
            threading.Thread(target=client, args=(name, user))
            for name, user in [("a", 0), ("poison", POISON_USER), ("b", 1)]
        ]
        for thread in threads:
            thread.start()
        _wait_for_queue(batching, 3)  # all three requests coalesce in one tick
        batching.drain_once()
        for thread in threads:
            thread.join(timeout=10)

        status, headers, body = results["poison"]
        assert status == 500
        assert "poisoned" in body["error"]
        assert body["request_id"].startswith("req-")
        assert headers["X-Request-ID"] == body["request_id"]
        for name in ("a", "b"):
            status, _, body = results[name]
            assert status == 200
            assert np.isfinite(body["scores"][0])
        assert batching.stats()["fallbacks"] == 1


class TestBackpressure:
    def test_submit_against_full_queue_sheds(self, engine):
        batching = BatchingEngine(engine, auto_start=False, max_queue_depth=2)
        keep = [batching.submit_score([i], [i]) for i in range(2)]
        with pytest.raises(EngineOverloadedError) as excinfo:
            batching.submit_score([2], [2])
        assert excinfo.value.queue_depth == 2
        assert telemetry.get_registry().counters()["serve.shed"] == 1
        batching.drain_once()
        assert all(f.done() for f in keep)  # queued work is unaffected by the shed

    def test_http_queue_full_is_429(self, batched_server):
        """A full queue sheds immediately: HTTP 429 with retry hint and id."""
        server, batching, _engine = batched_server
        backlog = [batching.submit_score([i], [i]) for i in range(4)]  # fill to max_queue_depth

        status, headers, body = _post(server.port, "/score", {"users": [0], "items": [0]})
        assert status == 429
        assert "shed" in body["error"]
        assert body["retry"] is True
        assert body["request_id"].startswith("req-")
        assert headers["X-Request-ID"] == body["request_id"]
        counters = telemetry.get_registry().counters()
        assert counters["serve.shed"] >= 1
        assert counters["serve.request_errors"] >= 1

        batching.drain_once()
        assert all(f.done() for f in backlog)

    def test_shed_recovers_after_drain(self, batched_server):
        server, batching, _engine = batched_server
        for i in range(4):
            batching.submit_score([i], [i])
        status, _, _ = _post(server.port, "/score", {"users": [0], "items": [0]})
        assert status == 429
        batching.drain_once()

        done = threading.Event()
        results = {}

        def client():
            results["r"] = _post(server.port, "/score", {"users": [0], "items": [0]})
            done.set()

        threading.Thread(target=client, daemon=True).start()
        _wait_for_queue(batching, 1)
        batching.drain_once()
        assert done.wait(10)
        status, _, body = results["r"]
        assert status == 200
        assert np.isfinite(body["scores"][0])
