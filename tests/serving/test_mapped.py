"""Mapped bundle state: bitwise parity, read-only enforcement, migration."""

import json
import shutil

import numpy as np
import pytest

from repro.serving import (
    BundleMappingError,
    InferenceEngine,
    materialise_mapped,
    mapped_is_fresh,
    open_bundle_mapped,
)
from repro.serving.engine import _take_rows
from repro.serving.mapped import MAPPED_DIR_NAME

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def mapped_bundle(bundle_dir):
    """The session bundle opened mapped (materialises ``mapped/`` once)."""
    return open_bundle_mapped(bundle_dir)


@pytest.fixture()
def mapped_engine(mapped_bundle):
    """A fresh engine over mmap state per test — onboarding mutates it."""
    return InferenceEngine(mapped_bundle, cache_size=0)


@pytest.fixture()
def heap_engine(bundle):
    """The single-process oracle: a plain heap engine over the same bundle."""
    return InferenceEngine(bundle, cache_size=0)


class TestMaterialise:
    def test_writes_mapped_dir(self, bundle_dir, mapped_bundle):
        mapped_dir = bundle_dir / MAPPED_DIR_NAME
        assert (mapped_dir / "mapped.json").is_file()
        meta = json.loads((mapped_dir / "mapped.json").read_text())
        for relative in meta["arrays"].values():
            assert (mapped_dir / relative).is_file()
        for relative in meta["weights"].values():
            assert (mapped_dir / relative).is_file()
        assert mapped_is_fresh(bundle_dir)

    def test_fresh_mapping_is_reused(self, bundle_dir, mapped_bundle):
        meta_path = bundle_dir / MAPPED_DIR_NAME / "mapped.json"
        before = meta_path.stat().st_mtime_ns
        materialise_mapped(bundle_dir)  # no force: must not rewrite
        assert meta_path.stat().st_mtime_ns == before

    def test_force_rewrites(self, bundle_dir, mapped_bundle):
        meta_path = bundle_dir / MAPPED_DIR_NAME / "mapped.json"
        before = meta_path.stat().st_mtime_ns
        materialise_mapped(bundle_dir, force=True)
        assert meta_path.stat().st_mtime_ns != before
        assert mapped_is_fresh(bundle_dir)

    def test_changed_bundle_invalidates_mapping(self, bundle_dir, tmp_path):
        copy = tmp_path / "copy"
        shutil.copytree(bundle_dir, copy, ignore=shutil.ignore_patterns(MAPPED_DIR_NAME))
        materialise_mapped(copy)
        assert mapped_is_fresh(copy)
        manifest = json.loads((copy / "manifest.json").read_text())
        manifest["note"] = "refreshed"
        (copy / "manifest.json").write_text(json.dumps(manifest))
        assert not mapped_is_fresh(copy)
        # the default open transparently re-materialises against the new content
        reopened = open_bundle_mapped(copy)
        assert mapped_is_fresh(copy)
        assert reopened.mapped is not None

    def test_unmapped_bundle_rejected_without_materialise(self, bundle_dir, tmp_path):
        copy = tmp_path / "premap"
        shutil.copytree(bundle_dir, copy, ignore=shutil.ignore_patterns(MAPPED_DIR_NAME))
        with pytest.raises(BundleMappingError, match="materialise_mapped"):
            open_bundle_mapped(copy, materialise=False)


class TestReadOnlyState:
    def test_all_mapped_arrays_are_read_only(self, mapped_bundle):
        for side in ("user", "item"):
            for name, array in mapped_bundle.mapped[side].items():
                assert not array.flags.writeable, f"{side}/{name} is writable"

    def test_engine_adopts_arrays_without_copying(self, mapped_engine, mapped_bundle):
        for side in ("user", "item"):
            assert mapped_engine._refined[side] is mapped_bundle.mapped[side]["refined"]
            assert not mapped_engine._refined[side].flags.writeable

    def test_scoring_leaves_store_read_only(self, mapped_engine):
        mapped_engine.score([0, 1, 2], [3, 4, 5])
        mapped_engine.top_n(0, k=5)
        for side in ("user", "item"):
            assert not mapped_engine._refined[side].flags.writeable

    def test_resample_does_not_write_through(self, mapped_engine, mapped_bundle):
        shared = mapped_bundle.mapped["item"]["neigh"]
        before = np.array(shared)
        mapped_engine.resample_neighbourhoods(seed=7)
        np.testing.assert_array_equal(np.array(shared), before)


class TestTakeRows:
    def test_constant_id_is_broadcast_view(self):
        matrix = np.arange(12.0).reshape(4, 3)
        rows = _take_rows(matrix, np.array([2, 2, 2, 2, 2]))
        assert np.may_share_memory(rows, matrix)
        assert not rows.flags.writeable
        np.testing.assert_array_equal(rows, matrix[[2] * 5])

    def test_contiguous_range_is_slice_view(self):
        matrix = np.arange(20.0).reshape(5, 4)
        rows = _take_rows(matrix, np.arange(1, 4))
        assert np.may_share_memory(rows, matrix)
        assert not rows.flags.writeable
        np.testing.assert_array_equal(rows, matrix[1:4])

    def test_arbitrary_ids_copy(self):
        matrix = np.arange(20.0).reshape(5, 4)
        rows = _take_rows(matrix, np.array([3, 0, 4]))
        assert not np.may_share_memory(rows, matrix)
        np.testing.assert_array_equal(rows, matrix[[3, 0, 4]])

    def test_views_over_readonly_memmap(self, mapped_bundle):
        store = mapped_bundle.mapped["user"]["refined"]
        view = _take_rows(store, np.arange(store.shape[0]))
        assert not view.flags.writeable
        copy = _take_rows(store, np.array([1, 0]))
        np.testing.assert_array_equal(copy, np.array(store)[[1, 0]])


class TestParityWithHeapEngine:
    def test_scores_bitwise_equal(self, mapped_engine, heap_engine):
        rng = np.random.default_rng(23)
        users = rng.integers(0, heap_engine.num_users, size=64)
        items = rng.integers(0, heap_engine.num_items, size=64)
        np.testing.assert_array_equal(
            mapped_engine.score(users, items), heap_engine.score(users, items)
        )

    def test_single_pair_bitwise_equal(self, mapped_engine, heap_engine):
        np.testing.assert_array_equal(
            mapped_engine.score([0], [0]), heap_engine.score([0], [0])
        )

    def test_topn_bitwise_equal(self, mapped_engine, heap_engine):
        got_items, got_scores = mapped_engine.top_n(1, k=10)
        want_items, want_scores = heap_engine.top_n(1, k=10)
        np.testing.assert_array_equal(got_items, want_items)
        np.testing.assert_array_equal(got_scores, want_scores)

    def test_onboarding_pays_copy_on_grow_only(self, mapped_engine, heap_engine, bundle):
        attrs = bundle.attributes("user")[0]
        assert mapped_engine.add_user(attrs) == heap_engine.add_user(attrs)
        new_id = mapped_engine.num_users - 1
        np.testing.assert_array_equal(
            mapped_engine.score([new_id] * 4, [0, 1, 2, 3]),
            heap_engine.score([new_id] * 4, [0, 1, 2, 3]),
        )
        # the grown side is a fresh heap array; the untouched side stays mapped
        assert mapped_engine._refined["user"].flags.writeable
        assert not mapped_engine._refined["item"].flags.writeable


class TestSchemaMigration:
    """v2 bundles (pre-mmap) must load and upgrade transparently."""

    @pytest.fixture()
    def v2_bundle_dir(self, bundle_dir, tmp_path):
        copy = tmp_path / "v2"
        shutil.copytree(bundle_dir, copy, ignore=shutil.ignore_patterns(MAPPED_DIR_NAME))
        manifest = json.loads((copy / "manifest.json").read_text())
        manifest["schema_version"] = 2
        (copy / "manifest.json").write_text(json.dumps(manifest))
        return copy

    def test_v2_loads_transparently(self, v2_bundle_dir, heap_engine):
        from repro.serving import load_bundle

        bundle = load_bundle(v2_bundle_dir)
        engine = InferenceEngine(bundle, cache_size=0)
        np.testing.assert_array_equal(
            engine.score([0, 1], [2, 3]), heap_engine.score([0, 1], [2, 3])
        )

    def test_v2_upgrades_to_mapped_on_open(self, v2_bundle_dir, heap_engine):
        bundle = open_bundle_mapped(v2_bundle_dir)
        assert mapped_is_fresh(v2_bundle_dir)
        engine = InferenceEngine(bundle, cache_size=0)
        np.testing.assert_array_equal(
            engine.score([0, 1], [2, 3]), heap_engine.score([0, 1], [2, 3])
        )

    def test_v2_without_materialise_has_clear_message(self, v2_bundle_dir):
        with pytest.raises(BundleMappingError, match="repro export-bundle"):
            open_bundle_mapped(v2_bundle_dir, materialise=False)

    def test_unsupported_version_still_rejected(self, v2_bundle_dir):
        manifest = json.loads((v2_bundle_dir / "manifest.json").read_text())
        manifest["schema_version"] = 99
        (v2_bundle_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="schema version"):
            open_bundle_mapped(v2_bundle_dir)
