"""HTTP front-end on an ephemeral localhost port."""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving import BatchingEngine, InferenceEngine, make_server

pytestmark = pytest.mark.serving


@pytest.fixture()
def server(engine):
    server = make_server(engine, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def _get(server, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{server.port}{path}", timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _post(server, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestEndpoints:
    def test_healthz(self, server, engine):
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["users"] == engine.num_users
        assert body["items"] == engine.num_items

    def test_score_matches_engine(self, server, engine):
        status, body = _post(server, "/score", {"users": [0, 1, 2], "items": [3, 4, 5]})
        assert status == 200
        np.testing.assert_allclose(body["scores"], engine.score([0, 1, 2], [3, 4, 5]))

    def test_topn(self, server, engine):
        status, body = _post(server, "/topn", {"user": 0, "k": 5})
        assert status == 200
        assert body["user"] == 0
        assert len(body["items"]) == len(body["scores"]) == 5
        expected_items, expected_scores = engine.top_n(0, k=5)
        assert body["items"] == expected_items.tolist()
        np.testing.assert_allclose(body["scores"], expected_scores)

    def test_onboard_user_and_item(self, server, engine):
        base_users, base_items = engine.num_users, engine.num_items
        status, body = _post(
            server, "/users", {"attributes": {"gender": 0, "age": 2, "occupation": 4}}
        )
        assert status == 201
        assert body == {"user": base_users, "onboarded": 1}

        item_row = engine.bundle.item_attributes[0].tolist()
        status, body = _post(server, "/items", {"attributes": item_row})
        assert status == 201
        assert body == {"item": base_items, "onboarded": 1}

        status, body = _post(server, "/score", {"users": [base_users], "items": [base_items]})
        assert status == 200
        assert np.isfinite(body["scores"][0])

    def test_metrics_snapshot(self, server):
        _post(server, "/score", {"users": [0], "items": [0]})
        status, body = _get(server, "/metrics")
        assert status == 200
        assert {"schema_version", "counters", "spans"} <= set(body)
        assert body["counters"]["serve.requests"] >= 2
        assert any(path.startswith("serve.request") for path in body["spans"])


class TestErrors:
    def test_unknown_path_is_404(self, server):
        status, body = _post(server, "/nope", {"x": 1})
        assert status == 404
        assert "unknown path" in body["error"]

    def test_missing_body_is_400(self, server):
        status, body = _post(server, "/score", {})
        assert status == 400
        assert "users" in body["error"]

    def test_bad_ids_are_400(self, server, engine):
        status, body = _post(
            server, "/score", {"users": [engine.num_users + 5], "items": [0]}
        )
        assert status == 400
        assert "unknown user" in body["error"]

    def test_invalid_json_is_400(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/score",
            data=b"not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_error_counter_increments(self, server):
        _post(server, "/score", {})
        status, body = _get(server, "/metrics")
        assert status == 200
        assert body["counters"]["serve.request_errors"] >= 1

    def test_unexpected_exception_is_json_500_with_request_id(self, server, engine, monkeypatch):
        def boom(users, items):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(engine, "score", boom)
        status, body = _post(server, "/score", {"users": [0], "items": [0]})
        assert status == 500
        assert "engine exploded" in body["error"]
        assert body["request_id"].startswith("req-")
        status, metrics = _get(server, "/metrics")
        assert metrics["counters"]["serve.errors"] == 1
        assert metrics["counters"]["serve.route_errors.score"] == 1


class TestRequestObservability:
    def test_request_id_header_monotonic(self, server):
        request = urllib.request.Request(f"http://127.0.0.1:{server.port}/healthz")
        with urllib.request.urlopen(request, timeout=10) as response:
            first = response.headers["X-Request-ID"]
        with urllib.request.urlopen(request, timeout=10) as response:
            second = response.headers["X-Request-ID"]
        assert first.startswith("req-") and second.startswith("req-")
        assert int(second.split("-")[1]) > int(first.split("-")[1])

    def test_client_error_body_carries_request_id(self, server):
        status, body = _post(server, "/score", {})
        assert status == 400
        assert body["request_id"].startswith("req-")

    def test_healthz_enriched(self, server, engine):
        _post(server, "/score", {"users": [0], "items": [0]})
        _post(server, "/score", {"users": [0], "items": [0]})
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["bundle_fingerprint"] == engine.bundle.fingerprint
        assert len(body["bundle_fingerprint"]) == 12
        assert body["uptime_s"] >= 0.0
        assert 0.0 < body["cache_hit_rate"] <= 0.5  # 1 hit / 2 lookups

    def test_per_route_latency_recorded(self, server):
        _post(server, "/score", {"users": [0], "items": [0]})
        _get(server, "/healthz")
        status, body = _get(server, "/metrics")
        assert status == 200
        timings = body["timings"]
        assert timings["serve.route_latency.score"]["count"] >= 1
        assert timings["serve.route_latency.healthz"]["count"] >= 1


class TestPrometheusEndpoint:
    def _get_text(self, server, path):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}{path}", timeout=10
        ) as response:
            return response.status, response.headers["Content-Type"], response.read().decode("utf-8")

    def test_metrics_prom_is_valid_exposition(self, server):
        from repro.obs.prometheus import parse_prometheus

        _post(server, "/score", {"users": [0, 1], "items": [0, 1]})
        _post(server, "/score", {})  # a client error for the error family
        status, content_type, text = self._get_text(server, "/metrics.prom")
        assert status == 200
        assert content_type.startswith("text/plain")
        families = parse_prometheus(text)  # raises on malformed lines
        assert families["repro_serve_requests_total"][()] >= 2
        assert families["repro_serve_route_errors_total"][(("route", "score"),)] >= 1

    def test_route_latency_histogram_families(self, server):
        from repro.obs.prometheus import parse_prometheus

        _post(server, "/score", {"users": [0], "items": [0]})
        _, _, text = self._get_text(server, "/metrics.prom")
        families = parse_prometheus(text)
        labels = (("route", "score"),)
        count = families["repro_serve_route_latency_seconds_count"][labels]
        assert count >= 1
        assert families["repro_serve_route_latency_seconds_sum"][labels] > 0.0
        inf_bucket = families["repro_serve_route_latency_seconds_bucket"][labels + (("le", "+Inf"),)]
        assert inf_bucket == count

    def test_counts_round_trip_against_registry(self, server):
        from repro.obs.prometheus import parse_prometheus
        from repro.telemetry import metrics as telemetry_metrics

        _post(server, "/score", {"users": [0], "items": [0]})
        _, _, text = self._get_text(server, "/metrics.prom")
        families = parse_prometheus(text)
        live = telemetry_metrics.get_registry().counters()
        assert families["repro_serve_requests_total"][()] == live["serve.requests"]
        assert families["repro_serve_scores_total"][()] == live["serve.scores"]


class TestBatchedEndpoints:
    """The same routes, served through the coalescing queue."""

    @pytest.fixture()
    def batched_server(self, bundle):
        engine = InferenceEngine(bundle)
        batching = BatchingEngine(engine, tick_interval=0.001)
        server = make_server(engine, port=0, batching=batching)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server, engine
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    def test_score_parity_through_queue(self, batched_server, bundle):
        server, _engine = batched_server
        reference = InferenceEngine(bundle)
        status, body = _post(server, "/score", {"users": [0, 1, 2], "items": [3, 4, 5]})
        assert status == 200
        np.testing.assert_array_equal(body["scores"], reference.score([0, 1, 2], [3, 4, 5]))

    def test_topn_through_queue(self, batched_server, bundle):
        server, _engine = batched_server
        reference = InferenceEngine(bundle)
        status, body = _post(server, "/topn", {"user": 0, "k": 5})
        assert status == 200
        want_items, want_scores = reference.top_n(0, k=5)
        assert body["items"] == want_items.tolist()
        np.testing.assert_array_equal(body["scores"], want_scores)

    def test_onboarding_through_queue(self, batched_server, engine):
        server, served_engine = batched_server
        base = served_engine.num_users
        status, body = _post(
            server, "/users", {"attributes": {"gender": 0, "age": 2, "occupation": 4}}
        )
        assert status == 201
        assert body == {"user": base, "onboarded": 1}
        status, body = _post(server, "/score", {"users": [base], "items": [0]})
        assert status == 200
        assert np.isfinite(body["scores"][0])

    def test_concurrent_clients_all_answered(self, batched_server, bundle):
        server, _engine = batched_server
        reference = InferenceEngine(bundle)
        results = {}

        def client(worker):
            results[worker] = _post(
                server, "/score", {"users": [worker], "items": [worker + 1]}
            )

        threads = [threading.Thread(target=client, args=(w,)) for w in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(results) == 12
        for worker, (status, body) in results.items():
            assert status == 200
            want = reference.score([worker], [worker + 1])[0]
            assert body["scores"][0] == want


class TestShutdownDrain:
    """shutdown() must answer every accepted request before returning."""

    def _make(self, engine, batching=None):
        server = make_server(engine, port=0, batching=batching)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return server, thread

    def test_request_issued_mid_shutdown_is_served_not_reset(self, engine, monkeypatch):
        """Regression: the old shutdown returned while a handler was mid-flight,
        so server_close() could reset the connection under the client."""
        original = engine.score
        started = threading.Event()

        def slow_score(users, items):
            started.set()
            time.sleep(0.3)
            return original(users, items)

        monkeypatch.setattr(engine, "score", slow_score)
        server, thread = self._make(engine)
        result = {}

        def client():
            try:
                result["response"] = _post(server, "/score", {"users": [0], "items": [0]})
            except Exception as exc:  # a reset surfaces here
                result["error"] = exc

        client_thread = threading.Thread(target=client)
        client_thread.start()
        assert started.wait(10), "request never reached the engine"
        drained = server.shutdown()
        # The drain guarantee: by the time shutdown() returns, nothing is
        # mid-flight, so closing the socket cannot reset the request.
        assert drained
        assert server.inflight_requests == 0
        server.server_close()
        client_thread.join(timeout=10)
        thread.join(timeout=10)
        assert "error" not in result, f"client connection failed: {result.get('error')}"
        status, body = result["response"]
        assert status == 200
        assert np.isfinite(body["scores"][0])

    def test_shutdown_stops_batching_after_drain(self, engine):
        batching = BatchingEngine(engine, tick_interval=0.001)
        server, thread = self._make(engine, batching=batching)
        status, _ = _post(server, "/score", {"users": [0], "items": [0]})
        assert status == 200
        assert server.shutdown()
        assert not batching.running
        assert server.inflight_requests == 0
        server.server_close()
        thread.join(timeout=10)

    def test_wait_for_drain_times_out_honestly(self, engine, monkeypatch):
        release = threading.Event()
        started = threading.Event()
        original = engine.score

        def stuck_score(users, items):
            started.set()
            release.wait(30)
            return original(users, items)

        monkeypatch.setattr(engine, "score", stuck_score)
        server, thread = self._make(engine)
        client_thread = threading.Thread(
            target=lambda: _post(server, "/score", {"users": [0], "items": [0]})
        )
        client_thread.start()
        assert started.wait(10)
        assert server.inflight_requests == 1
        assert not server.wait_for_drain(timeout=0.1)  # request is genuinely stuck
        release.set()
        assert server.wait_for_drain(timeout=10)
        server.shutdown()
        server.server_close()
        client_thread.join(timeout=10)
        thread.join(timeout=10)
