"""Fault isolation: a SIGKILLed worker never takes the pool down with it.

The pool's crash contract, pinned here:

* siblings keep serving throughout — their in-flight requests are untouched;
* read-only requests that were on the dead worker re-dispatch transparently;
* the pool respawns back to full strength, and the replacement replays the
  sequence-numbered state log so it converges to its siblings' node set;
* post-respawn responses are still bitwise the single-process oracle.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.serving import InferenceEngine, WorkerPool

pytestmark = [pytest.mark.serving, pytest.mark.pool]

POOL_OPTS = dict(workers=2, cache_size=0, tick_interval=0.0, spawn_timeout=300.0)


def wait_until(predicate, timeout=120.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture()
def pool(bundle_dir):
    with WorkerPool(bundle_dir, **POOL_OPTS) as pool:
        yield pool


@pytest.fixture()
def oracle(bundle):
    return InferenceEngine(bundle, cache_size=0)


def test_sigkill_mid_load_siblings_unaffected(pool, oracle):
    """Kill one worker under sustained traffic: zero client-visible errors."""
    stop = threading.Event()
    errors = []
    served = []
    want = oracle.score([1], [2])[0]

    def hammer():
        while not stop.is_set():
            try:
                served.append(pool.score([1], [2], timeout=120)[0])
            except Exception as exc:
                errors.append(exc)
                return

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        time.sleep(0.2)  # let traffic land on both workers
        victim = pool.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        assert wait_until(
            lambda: pool.stats()["respawns"] >= 1
            and pool.stats()["live_workers"] == 2
        ), f"pool never recovered: {pool.stats()}"
        time.sleep(0.2)  # post-respawn traffic
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=60)

    assert not errors, f"client saw {errors[0]!r} during the crash"
    assert served
    assert all(value == want for value in served)
    health = pool.healthz()
    assert health["healthy_workers"] == 2
    assert victim not in {w.get("pid") for w in health["workers"]}


def test_respawned_worker_is_bitwise_oracle(pool, oracle):
    victim_index = 1
    victim = pool.worker_pids()[victim_index]
    os.kill(victim, signal.SIGKILL)
    assert wait_until(
        lambda: pool.stats()["respawns"] >= 1 and pool.stats()["live_workers"] == 2
    )
    rng = np.random.default_rng(41)
    users = rng.integers(0, oracle.num_users, size=24)
    items = rng.integers(0, oracle.num_items, size=24)
    want = oracle.score(users, items)
    for index in range(pool.num_workers):
        np.testing.assert_array_equal(pool.score_on_worker(index, users, items), want)
    assert pool.worker_pids()[victim_index] != victim


def test_replacement_replays_onboard_log(pool, oracle, bundle):
    """The replacement must converge to the siblings' node set via replay."""
    attrs = np.array(bundle.attributes("item")[0], dtype=np.float64)
    new_id = pool.add_item(attrs)
    assert new_id == oracle.add_item(attrs)

    os.kill(pool.worker_pids()[0], signal.SIGKILL)
    assert wait_until(
        lambda: pool.stats()["respawns"] >= 1 and pool.stats()["live_workers"] == 2
    )

    want = oracle.score([0, 1, 2], [new_id] * 3)
    for index in range(pool.num_workers):
        np.testing.assert_array_equal(
            pool.score_on_worker(index, [0, 1, 2], [new_id] * 3), want
        )
    health = pool.healthz(timeout=60.0)
    assert health["healthy_workers"] == 2
    for worker in health["workers"]:
        assert worker["onboarded_items"] == 1


def test_respawn_counted_and_reported(pool):
    os.kill(pool.worker_pids()[0], signal.SIGKILL)
    assert wait_until(
        lambda: pool.stats()["respawns"] >= 1 and pool.stats()["live_workers"] == 2
    )
    stats = pool.stats()
    assert stats["respawns"] == 1
    assert pool.healthz()["respawns"] == 1
