"""The REPRO_VERIFY=1 runtime hooks in Recommender.fit and InferenceEngine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.verify import InvariantViolation
from repro.verify.invariants import (
    maybe_verify_engine,
    maybe_verify_fit,
    runtime_verification_enabled,
)

pytestmark = pytest.mark.verify


class TestFlagParsing:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VERIFY", value)
        assert runtime_verification_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "banana"])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VERIFY", value)
        assert not runtime_verification_enabled()

    def test_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert not runtime_verification_enabled()


class TestFitHook:
    def test_flag_off_is_a_no_op_even_on_a_corrupted_model(self, monkeypatch, golden_model):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        _, weight = next(iter(golden_model.head.named_parameters()))
        original = weight.data.copy()
        try:
            weight.data.flat[0] = np.nan
            maybe_verify_fit(golden_model)  # must not raise
        finally:
            weight.data[...] = original

    def test_flag_on_sweeps_and_passes_on_a_healthy_model(self, monkeypatch, golden_model):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        maybe_verify_fit(golden_model)

    def test_flag_on_raises_on_a_corrupted_model(self, monkeypatch, golden_model):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        _, weight = next(iter(golden_model.head.named_parameters()))
        original = weight.data.copy()
        try:
            weight.data.flat[0] = np.nan
            with pytest.raises(InvariantViolation, match="REPRO_VERIFY fit sweep"):
                maybe_verify_fit(golden_model)
        finally:
            weight.data[...] = original

    def test_fit_invokes_the_sweep_under_the_flag(self, monkeypatch):
        """End-to-end: a real fit with the flag set bumps the sweep counter."""
        from repro.telemetry import metrics
        from repro.verify.goldens import GOLDEN_SPECS, fit_golden_model

        monkeypatch.setenv("REPRO_VERIFY", "1")
        metrics.reset()
        with metrics.enabled():
            fit_golden_model(GOLDEN_SPECS[0])
            counters = metrics.get_registry().counters()
        metrics.reset()
        assert counters.get("verify.fit_sweeps") == 1


class TestEngineHook:
    def test_flag_on_sweeps_the_engine(self, monkeypatch, golden_engine):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        maybe_verify_engine(golden_engine)

    def test_flag_on_raises_on_a_corrupted_engine(self, monkeypatch, golden_engine):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        original = golden_engine._refined["user"].copy()
        try:
            golden_engine._refined["user"][...] = np.nan
            golden_engine._cache.clear()
            with pytest.raises(InvariantViolation, match="REPRO_VERIFY engine sweep"):
                maybe_verify_engine(golden_engine)
        finally:
            golden_engine._refined["user"][...] = original
            golden_engine._cache.clear()

    def test_engine_construction_sweeps_under_the_flag(self, monkeypatch, golden_model, golden_task, tmp_path):
        from repro.serving import InferenceEngine, export_bundle, load_bundle
        from repro.telemetry import metrics

        monkeypatch.setenv("REPRO_VERIFY", "1")
        bundle = load_bundle(export_bundle(golden_model, golden_task, tmp_path / "bundle"))
        metrics.reset()
        with metrics.enabled():
            InferenceEngine(bundle)
            counters = metrics.get_registry().counters()
        metrics.reset()
        assert counters.get("verify.engine_sweeps") == 1
