"""Fixtures for the correctness-harness suite: one golden model + engine."""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest

from repro.serving import InferenceEngine, export_bundle, load_bundle
from repro.verify.goldens import GOLDEN_SPECS, fit_golden_model


@pytest.fixture(scope="session")
def golden_fit():
    """The item-cold golden run: (model, task, history), fitted once."""
    return fit_golden_model(GOLDEN_SPECS[0])


@pytest.fixture(scope="session")
def golden_model(golden_fit):
    return golden_fit[0]


@pytest.fixture(scope="session")
def golden_task(golden_fit):
    return golden_fit[1]


@pytest.fixture(scope="session")
def golden_engine(golden_fit):
    model, task, _ = golden_fit
    with tempfile.TemporaryDirectory() as tmp:
        bundle = load_bundle(export_bundle(model, task, Path(tmp) / "bundle", note="verify-tests"))
    return InferenceEngine(bundle)
