"""Model/engine invariant checks: clean on a trained model, loud on corruption."""

from __future__ import annotations

import numpy as np
import pytest

from repro.verify import (
    InvariantViolation,
    check_engine_consistency,
    check_finite_parameters,
    check_index_matrix,
    check_offline_parity,
    check_onboarding_determinism,
    check_proximity_matrix,
    check_symmetric,
    check_unit_interval,
    engine_invariant_report,
    model_invariant_report,
    verify_engine,
    verify_model,
)

pytestmark = pytest.mark.verify


class TestPrimitives:
    def test_unit_interval_accepts_probabilities(self):
        assert check_unit_interval("p", np.array([0.0, 0.5, 1.0])) == []

    def test_unit_interval_rejects_out_of_range(self):
        assert check_unit_interval("p", np.array([0.5, 1.5]))
        assert check_unit_interval("p", np.array([-0.1]))

    def test_open_interval_rejects_saturated_gates(self):
        assert check_unit_interval("gate", np.array([0.0, 0.5]), open_interval=True)
        assert check_unit_interval("gate", np.array([0.5, 1.0]), open_interval=True)
        assert check_unit_interval("gate", np.array([0.01, 0.99]), open_interval=True) == []

    def test_unit_interval_rejects_nan(self):
        assert check_unit_interval("p", np.array([0.5, np.nan]))

    def test_symmetric(self):
        assert check_symmetric("m", np.eye(3)) == []
        assert check_symmetric("m", np.array([[0.0, 1.0], [2.0, 0.0]]))
        assert check_symmetric("m", np.zeros((2, 3)))

    def test_proximity_matrix(self):
        good = np.array([[0.0, 0.4], [0.4, 1.0]])
        assert check_proximity_matrix("prox", good) == []
        assert check_proximity_matrix("prox", good * 2.0)

    def test_index_matrix(self):
        assert check_index_matrix("idx", np.array([[0, 1], [2, 0]]), 3) == []
        assert check_index_matrix("idx", np.array([[0, 3]]), 3)
        assert check_index_matrix("idx", np.array([[-1, 0]]), 3)
        assert check_index_matrix("idx", np.array([[0.5]]), 3)


class TestModelInvariants:
    def test_trained_golden_model_is_clean(self, golden_model):
        assert model_invariant_report(golden_model) == []

    def test_verify_model_passes_silently(self, golden_model):
        verify_model(golden_model)

    def test_gate_values_lie_strictly_inside_unit_interval(self, golden_model):
        neighbours = golden_model.neighbour_matrix("user")
        ids = np.arange(8, dtype=np.int64)
        attributes = golden_model._attributes["user"]
        preferences = golden_model.generated_preferences("user")
        targets = golden_model.raw_node_embeddings("user", attributes, preferences, ids)
        rows = golden_model.raw_node_embeddings(
            "user", attributes, preferences, neighbours[ids].reshape(-1)
        ).reshape(len(ids), neighbours.shape[1], -1)
        gates = golden_model.user_aggregator.gate_values(targets, rows)
        assert set(gates) == {"aggregate_gate", "filter_gate"}
        for values in gates.values():
            assert values.min() > 0.0 and values.max() < 1.0

    def test_nan_parameter_is_caught(self, golden_model):
        _, weight = next(iter(golden_model.head.named_parameters()))
        original = weight.data.copy()
        try:
            weight.data.flat[0] = np.nan
            violations = check_finite_parameters(golden_model)
            assert violations and "non-finite" in violations[0]
            with pytest.raises(InvariantViolation) as excinfo:
                verify_model(golden_model)
            assert "non-finite" in str(excinfo.value)
        finally:
            weight.data[...] = original

    def test_out_of_range_neighbour_is_caught(self, golden_model):
        neighbours = golden_model._neighbours["item"]
        original = neighbours[0, 0]
        try:
            neighbours[0, 0] = golden_model._attributes["item"].shape[0] + 5
            violations = model_invariant_report(golden_model)
            assert any("neighbour matrix" in v for v in violations)
        finally:
            neighbours[0, 0] = original

    def test_nan_in_evae_encoder_is_caught(self, golden_model):
        vae = golden_model.item_cold.vae
        original = vae.logvar_head.weight.data.copy()
        try:
            vae.logvar_head.weight.data[...] = np.nan
            violations = model_invariant_report(golden_model)
            assert any("eVAE" in v for v in violations)
        finally:
            vae.logvar_head.weight.data[...] = original


class TestEngineInvariants:
    def test_fresh_engine_is_clean(self, golden_engine):
        assert engine_invariant_report(golden_engine) == []

    def test_verify_engine_passes_silently(self, golden_engine):
        verify_engine(golden_engine)

    def test_offline_parity_holds_bitwise(self, golden_engine, golden_model, golden_task):
        users = golden_task.test_users[:48]
        items = golden_task.test_items[:48]
        assert check_offline_parity(golden_engine, golden_model, users, items) == []

    def test_corrupted_refined_embeddings_break_parity(self, golden_engine, golden_model, golden_task):
        users = golden_task.test_users[:16]
        items = golden_task.test_items[:16]
        original = golden_engine._refined["user"].copy()
        try:
            golden_engine._refined["user"] += 0.01
            golden_engine._cache.clear()
            violations = check_offline_parity(golden_engine, golden_model, users, items)
            assert violations and "parity" in violations[0]
        finally:
            golden_engine._refined["user"][...] = original
            golden_engine._cache.clear()

    def test_score_and_predict_batch_agree(self, golden_engine):
        assert check_engine_consistency(golden_engine) == []

    def test_onboarding_is_deterministic(self, golden_engine):
        for side in ("user", "item"):
            assert check_onboarding_determinism(golden_engine, side) == []

    def test_onboarding_check_does_not_mutate_the_engine(self, golden_engine):
        before = golden_engine.stats()
        check_onboarding_determinism(golden_engine, "user")
        assert golden_engine.stats()["users"] == before["users"]
        assert golden_engine.stats()["onboarded_users"] == before["onboarded_users"]
