"""Differential autograd fuzzing: clean campaign, mutation tests, shrinking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.verify import OP_NAMES, run_fuzz, run_single
from repro.verify.fuzz import check_program, shrink_program
from repro.verify.opspecs import Node, build_program, program_trace, run_numpy, run_tensor

pytestmark = pytest.mark.verify


class TestCleanCampaign:
    def test_200_graphs_zero_violations(self):
        """The ISSUE acceptance criterion: ≥200 random graphs, rtol 1e-4, clean."""
        report = run_fuzz(iterations=200, seed=0, rtol=1e-4)
        assert report.ok, report.summary()
        assert report.iterations == 200

    def test_every_op_is_exercised(self):
        report = run_fuzz(iterations=200, seed=0)
        assert set(report.op_counts) == set(OP_NAMES)
        assert all(count > 0 for count in report.op_counts.values())

    def test_campaign_is_seed_deterministic(self):
        first = run_fuzz(iterations=40, seed=3)
        second = run_fuzz(iterations=40, seed=3)
        assert first.op_counts == second.op_counts
        assert first.ok and second.ok

    def test_report_to_dict_is_json_shaped(self):
        import json

        report = run_fuzz(iterations=10, seed=1)
        payload = report.to_dict()
        json.dumps(payload)
        assert payload["ok"] is True
        assert payload["iterations"] == 10
        assert payload["ops_covered"] >= 10


class TestProgramExecution:
    def test_numpy_and_tensor_agree_on_random_programs(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            program = build_program(rng)
            reference = run_numpy(program)[-1]
            out, _ = run_tensor(program, with_grad=False)
            np.testing.assert_allclose(out.data, reference, rtol=1e-9, atol=1e-10)

    def test_trace_names_every_node(self):
        rng = np.random.default_rng(0)
        program = build_program(rng)
        trace = program_trace(program)
        assert len(trace) == len(program)
        assert all(line.startswith(f"%{i} = ") for i, line in enumerate(trace))


def _mutant_tanh(a):
    """Correct forward, wrong backward: grad·(1 − out) instead of grad·(1 − out²)."""
    a = ops.as_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad * (1.0 - out_data))

    return Tensor._result(out_data, (a,), backward, "tanh")


def _mutant_mul(a, b):
    """Correct forward, swapped adjoints dropped: both sides get grad·a."""
    a = ops.as_tensor(a)
    b = ops.as_tensor(b)
    out_data = a.data * b.data

    def backward(grad):
        from repro.autograd.tensor import _unbroadcast

        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad * a.data, a.data.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad * a.data, b.data.shape))

    return Tensor._result(out_data, (a, b), backward, "mul")


class TestMutationDetection:
    """A deliberately injected backward bug must be caught (ISSUE criterion)."""

    def test_bad_tanh_backward_is_caught(self, monkeypatch):
        monkeypatch.setattr(ops, "tanh", _mutant_tanh)
        report = run_fuzz(iterations=60, seed=1, include={"tanh", "add", "mul"})
        assert not report.ok
        assert any(f.kind == "backward" for f in report.failures)

    def test_bad_mul_backward_is_caught(self, monkeypatch):
        monkeypatch.setattr(ops, "mul", _mutant_mul)
        report = run_fuzz(iterations=60, seed=2, include={"mul", "add", "tanh"})
        assert not report.ok
        assert any(f.kind == "backward" for f in report.failures)

    def test_failure_carries_reproduction_seed(self, monkeypatch):
        monkeypatch.setattr(ops, "tanh", _mutant_tanh)
        report = run_fuzz(iterations=60, seed=1, include={"tanh", "add", "mul"})
        failure = report.failures[0]
        # Same (seed, iteration) replays the same failing program...
        _, result = run_single(failure.seed, failure.iteration, include={"tanh", "add", "mul"})
        assert result is not None and result[0] == "backward"
        # ...and the un-mutated engine passes the very same program.
        monkeypatch.undo()
        _, clean = run_single(failure.seed, failure.iteration, include={"tanh", "add", "mul"})
        assert clean is None

    def test_shrinking_reduces_to_the_culprit_op(self, monkeypatch):
        monkeypatch.setattr(ops, "tanh", _mutant_tanh)
        report = run_fuzz(iterations=60, seed=1, include={"tanh", "add", "mul", "sigmoid"})
        failure = report.failures[0]
        assert len(failure.shrunk_trace) <= len(failure.trace)
        assert any("tanh" in line for line in failure.shrunk_trace)

    def test_exceptions_are_reported_not_raised(self, monkeypatch):
        def exploding_exp(a):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(ops, "exp", exploding_exp)
        report = run_fuzz(iterations=40, seed=4, include={"exp", "add"})
        assert not report.ok
        assert any(f.kind == "exception" and "kaboom" in f.message for f in report.failures)


class TestShrinking:
    def test_shrunk_program_still_fails(self):
        # Hand-built failing program: a leaf whose "gradient" the checker sees
        # as wrong because the forward reference is deliberately inconsistent.
        program = [
            Node("leaf", value=np.array([0.5, -0.3, 1.2]), requires_grad=True),
            Node("tanh", args=(0,)),
            Node("sigmoid", args=(1,)),
            Node("sum", args=(2,), params={"axis": None, "keepdims": False}),
        ]
        assert check_program(program) is None  # sanity: clean engine passes
        shrunk = shrink_program(program, rtol=1e-4, atol=1e-5)
        # Nothing to shrink on a passing program: it is returned whole.
        assert len(shrunk) == len(program)
