"""The one-shot verify gate (runner + `repro verify` CLI front end)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.verify.runner import STAGES, run_verify

pytestmark = pytest.mark.verify


class TestRunner:
    def test_full_gate_passes(self, tmp_path):
        report = run_verify(fuzz_iterations=25, goldens_dir=tmp_path, update_goldens_flag=True)
        assert report["ok"], report
        assert set(report["stages"]) == set(STAGES)
        assert report["stages"]["goldens"]["updated"]

    def test_skip_stages(self, tmp_path):
        report = run_verify(goldens_dir=tmp_path, update_goldens_flag=True,
                            skip={"fuzz", "invariants"})
        assert report["ok"]
        assert set(report["stages"]) == {"goldens"}
        assert report["skipped"] == ["fuzz", "invariants"]

    def test_unknown_skip_stage_raises(self):
        with pytest.raises(ValueError, match="unknown verify stage"):
            run_verify(skip={"everything"})

    def test_missing_goldens_fail_the_gate(self, tmp_path):
        report = run_verify(goldens_dir=tmp_path, skip={"fuzz", "invariants"})
        assert not report["ok"]
        assert report["stages"]["goldens"]["mismatches"]


class TestParser:
    def test_verify_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.command == "verify"
        assert args.fuzz_iterations == 200
        assert args.seed == 0
        assert args.rtol == pytest.approx(1e-4)
        assert args.goldens_dir is None
        assert not args.update_goldens
        assert args.skip is None

    def test_verify_skip_choices(self):
        args = build_parser().parse_args(["verify", "--skip", "fuzz", "goldens"])
        assert args.skip == ["fuzz", "goldens"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--skip", "nonsense"])


class TestCommand:
    def test_update_goldens_round_trips_cleanly(self, tmp_path, capsys):
        """The ISSUE acceptance criterion for the CLI workflow."""
        goldens = tmp_path / "goldens"
        code = main(["verify", "--update-goldens", "--skip", "fuzz", "invariants",
                     "--goldens-dir", str(goldens)])
        assert code == 0
        assert "regenerated" in capsys.readouterr().out
        code = main(["verify", "--skip", "fuzz", "invariants", "--goldens-dir", str(goldens)])
        out = capsys.readouterr().out
        assert code == 0
        assert "verify: OK" in out

    def test_failure_sets_exit_code(self, tmp_path, capsys):
        code = main(["verify", "--skip", "fuzz", "invariants",
                     "--goldens-dir", str(tmp_path / "empty")])
        out = capsys.readouterr().out
        assert code == 1
        assert "verify: FAILED" in out

    def test_json_report(self, tmp_path, capsys):
        goldens = tmp_path / "goldens"
        main(["verify", "--update-goldens", "--skip", "fuzz", "invariants",
              "--goldens-dir", str(goldens), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert "goldens" in payload["stages"]
