"""Seeded determinism: two identical SMOKE fits agree bitwise end-to-end.

This guards the repo-wide claim that nothing outside the seeded RNGs —
telemetry, caching, dict ordering, the verify hooks themselves — touches the
training or inference path.  The telemetry suite covers tiny configs; this
test runs the full SMOKE scale (ML-100K preset, SMOKE train/AGNN configs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AGNN
from repro.data import make_split
from repro.experiments.configs import SMOKE
from repro.nn import init as nn_init

pytestmark = pytest.mark.verify


def _fit_smoke(seed: int):
    nn_init.seed(seed)
    dataset = SMOKE.datasets["ML-100K"]()
    task = make_split(dataset, "item_cold", SMOKE.split_fraction, seed=seed)
    model = AGNN(SMOKE.agnn, rng_seed=seed)
    history = model.fit(task, SMOKE.train)
    predictions = model.predict(task.test_users, task.test_items)
    return history, predictions, model


class TestSeededDeterminism:
    def test_same_seed_gives_identical_histories_and_predictions(self):
        history_a, predictions_a, model_a = _fit_smoke(seed=0)
        history_b, predictions_b, model_b = _fit_smoke(seed=0)

        assert sorted(history_a.losses) == sorted(history_b.losses)
        for name, curve in history_a.losses.items():
            assert curve == history_b.losses[name], f"loss curve {name!r} diverged"
        np.testing.assert_array_equal(predictions_a, predictions_b)

        state_a, state_b = model_a.state_dict(), model_b.state_dict()
        assert sorted(state_a) == sorted(state_b)
        for name in state_a:
            np.testing.assert_array_equal(state_a[name], state_b[name])

    def test_different_seed_actually_changes_the_run(self):
        _, predictions_a, _ = _fit_smoke(seed=0)
        _, predictions_b, _ = _fit_smoke(seed=1)
        assert not np.array_equal(predictions_a, predictions_b)
