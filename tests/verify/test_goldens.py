"""Golden regression baselines: round trips, drift detection, frozen files."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.verify.goldens import (
    GOLDEN_SPECS,
    check_goldens,
    compare_golden,
    default_goldens_dir,
    run_golden,
    update_goldens,
)

pytestmark = pytest.mark.verify


@pytest.fixture(scope="module")
def payload():
    """One golden payload, generated once for the comparison tests."""
    return run_golden(GOLDEN_SPECS[0])


class TestFrozenGoldens:
    def test_repo_goldens_exist_for_every_spec(self):
        directory = default_goldens_dir()
        for spec in GOLDEN_SPECS:
            assert (directory / spec.filename).exists(), (
                f"{spec.filename} missing — run `repro verify --update-goldens`"
            )

    def test_current_code_matches_frozen_goldens(self):
        """The regression gate: replay every spec against tests/goldens."""
        results = check_goldens()
        failed = {name: [str(m) for m in found] for name, found in results.items() if found}
        assert not failed, f"golden drift: {json.dumps(failed, indent=2)}"


class TestRoundTrip:
    def test_update_then_check_is_clean(self, tmp_path):
        written = update_goldens(tmp_path)
        assert sorted(p.name for p in written) == sorted(s.filename for s in GOLDEN_SPECS)
        results = check_goldens(tmp_path)
        assert all(not found for found in results.values())

    def test_missing_file_is_reported(self, tmp_path):
        results = check_goldens(tmp_path)
        assert all(found for found in results.values())
        assert any("missing" in str(m) for found in results.values() for m in found)


class TestComparison:
    def test_identical_payloads_match(self, payload):
        assert compare_golden(payload, payload) == []

    def test_json_round_trip_is_exact(self, payload):
        rehydrated = json.loads(json.dumps(payload))
        assert compare_golden(payload, rehydrated) == []

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p["close"]["eval"].__setitem__("rmse", p["close"]["eval"]["rmse"] + 1e-3),
            lambda p: p["close"]["eval"].__setitem__("mae", p["close"]["eval"]["mae"] - 1e-3),
            lambda p: p["close"]["history"]["prediction"].__setitem__(
                0, p["close"]["history"]["prediction"][0] + 1e-3
            ),
            lambda p: p["close"]["predictions_sample"].__setitem__(
                3, p["close"]["predictions_sample"][3] + 1e-3
            ),
            lambda p: p["close"]["evae"]["item"].__setitem__(
                "kl", p["close"]["evae"]["item"]["kl"] + 1e-3
            ),
            lambda p: p["close"]["preference"]["item"].__setitem__(
                "mean", p["close"]["preference"]["item"]["mean"] + 1e-3
            ),
        ],
        ids=["rmse", "mae", "loss-curve", "prediction", "evae-kl", "pref-mean"],
    )
    def test_1e3_perturbation_to_any_metric_is_detected(self, payload, mutate):
        """The ISSUE acceptance criterion: every frozen float guards 1e-3 drift."""
        perturbed = json.loads(json.dumps(payload))
        mutate(perturbed)
        mismatches = compare_golden(perturbed, payload)
        assert mismatches, "1e-3 perturbation slipped through"
        assert all("drifted" in m.detail for m in mismatches)

    def test_exact_tier_catches_integer_changes(self, payload):
        perturbed = json.loads(json.dumps(payload))
        perturbed["exact"]["num_epochs"] += 1
        mismatches = compare_golden(perturbed, payload)
        assert any(m.path == "exact.num_epochs" for m in mismatches)

    def test_missing_and_extra_keys_are_reported(self, payload):
        perturbed = json.loads(json.dumps(payload))
        del perturbed["close"]["eval"]["rmse"]
        perturbed["close"]["eval"]["new_metric"] = 1.0
        paths = {m.path for m in compare_golden(payload, perturbed)}
        assert "close.eval.rmse" in paths
        assert "close.eval.new_metric" in paths

    def test_curve_length_change_is_reported(self, payload):
        perturbed = json.loads(json.dumps(payload))
        perturbed["close"]["history"]["prediction"].append(0.0)
        mismatches = compare_golden(payload, perturbed)
        assert any("length changed" in m.detail for m in mismatches)


class TestDeterminism:
    def test_two_golden_runs_are_bitwise_identical(self):
        spec = GOLDEN_SPECS[1]
        assert compare_golden(run_golden(spec), run_golden(spec), rtol=0.0, atol=0.0) == []

    def test_goldens_dir_points_into_tests(self):
        directory = default_goldens_dir()
        assert directory.parts[-2:] == ("tests", "goldens")
        assert Path(__file__).resolve().parent.parent == directory.parent
