"""Cross-module integration: full pipelines exercising the public API."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import make_baseline
from repro.core import AGNN, AGNNConfig, agnn_variant
from repro.data import (
    MovieLensConfig,
    generate_movielens,
    generate_yelp,
    item_cold_split,
    make_split,
    user_cold_split,
    warm_split,
)
from repro.train import TrainConfig, paired_significance

CFG = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0)
TRAIN = TrainConfig(epochs=4, batch_size=64, learning_rate=0.01, patience=None)


class TestAGNNAcrossScenarios:
    @pytest.mark.parametrize("scenario", ["warm", "item_cold", "user_cold"])
    def test_full_pipeline(self, tiny_movielens, scenario):
        nn.init.seed(0)
        task = make_split(tiny_movielens, scenario, 0.2, seed=0)
        model = AGNN(CFG, rng_seed=0)
        model.fit(task, TRAIN)
        result = model.evaluate()
        assert 0.3 < result.rmse < 1.8

    def test_yelp_social_pipeline(self, tiny_yelp):
        """Yelp path: social adjacency rows as user attributes."""
        nn.init.seed(0)
        task = user_cold_split(tiny_yelp, 0.2, seed=0)
        model = AGNN(CFG, rng_seed=0)
        model.fit(task, TRAIN)
        assert np.isfinite(model.evaluate().rmse)

    def test_refit_on_new_task_resets_state(self, tiny_movielens):
        nn.init.seed(0)
        model = AGNN(CFG, rng_seed=0)
        task1 = item_cold_split(tiny_movielens, 0.2, seed=0)
        model.fit(task1, TRAIN)
        first = model.evaluate().rmse
        task2 = item_cold_split(tiny_movielens, 0.2, seed=7)
        model.fit(task2, TRAIN)
        second = model.evaluate(task2).rmse
        assert np.isfinite(first) and np.isfinite(second)

    def test_reproducible_given_seeds(self, tiny_movielens):
        task = item_cold_split(tiny_movielens, 0.2, seed=0)

        def run():
            nn.init.seed(11)
            model = AGNN(CFG, rng_seed=11)
            model.fit(task, TRAIN)
            return model.evaluate().rmse

        assert run() == pytest.approx(run())


class TestColdStartBehaviour:
    def test_agnn_beats_interaction_only_model_on_cold_items(self, tiny_movielens):
        """The headline claim at miniature scale: on strict cold items, the
        attribute-graph model must beat a model that needs interactions."""
        task = item_cold_split(tiny_movielens, 0.2, seed=0)
        train = TrainConfig(epochs=6, batch_size=64, learning_rate=0.01, patience=None)
        nn.init.seed(0)
        agnn = AGNN(CFG, rng_seed=0)
        agnn.fit(task, train)
        nn.init.seed(0)
        igmc = make_baseline("IGMC", embedding_dim=6)
        igmc.fit(task, train)
        assert agnn.evaluate().rmse < igmc.evaluate().rmse

    def test_significance_machinery_on_real_models(self, tiny_movielens):
        task = item_cold_split(tiny_movielens, 0.2, seed=0)
        nn.init.seed(0)
        agnn = AGNN(CFG, rng_seed=0)
        agnn.fit(task, TRAIN)
        nn.init.seed(0)
        llae = make_baseline("LLAE")
        llae.fit(task, TRAIN)
        report = paired_significance(agnn.evaluate(), llae.evaluate())
        assert report.significant_01  # AGNN ≫ LLAE, always

    def test_variant_and_trunk_share_everything_but_the_switch(self, tiny_movielens):
        task = item_cold_split(tiny_movielens, 0.2, seed=0)
        nn.init.seed(0)
        trunk = agnn_variant("AGNN", CFG, seed=0)
        trunk.fit(task, TRAIN)
        nn.init.seed(0)
        nogate = agnn_variant("AGNN_-gGNN", CFG, seed=0)
        nogate.fit(task, TRAIN)
        # same parameter names except gate weights
        trunk_names = {n for n, _ in trunk.named_parameters()}
        nogate_names = {n for n, _ in nogate.named_parameters()}
        removed = trunk_names - nogate_names
        assert removed and all("aggregator" in n for n in removed)


class TestDataToGraphConsistency:
    def test_graphs_only_see_training_ratings(self, tiny_movielens):
        """The preference-proximity graph must be identical whether or not the
        test ratings exist — i.e., no leakage from the test set."""
        from repro.graphs import build_attribute_graph
        from repro.data.dataset import RatingDataset

        task = item_cold_split(tiny_movielens, 0.2, seed=0)
        graph_full = build_attribute_graph(task, "user", pool_percent=20.0)

        censored = RatingDataset(
            name="censored",
            user_attributes=tiny_movielens.user_attributes,
            item_attributes=tiny_movielens.item_attributes,
            user_ids=tiny_movielens.user_ids[task.train_idx],
            item_ids=tiny_movielens.item_ids[task.train_idx],
            ratings=tiny_movielens.ratings[task.train_idx],
            user_schema=tiny_movielens.user_schema,
            item_schema=tiny_movielens.item_schema,
        )
        from repro.data.splits import RecommendationTask

        censored_task = RecommendationTask(
            dataset=censored,
            scenario="item_cold",
            train_idx=np.arange(censored.num_ratings),
            test_idx=np.empty(0, dtype=np.int64),
        )
        graph_censored = build_attribute_graph(censored_task, "user", pool_percent=20.0)
        for a, b in zip(graph_full.pools, graph_censored.pools):
            np.testing.assert_array_equal(a, b)
