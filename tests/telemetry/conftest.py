"""Telemetry test fixtures: every test gets a clean, enabled registry.

The registry and span store are process-global; without this autouse reset,
metrics recorded by one test (or by instrumented code under other test
modules) would leak into the next test's assertions.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.telemetry import metrics as telemetry_metrics


@pytest.fixture(autouse=True)
def clean_telemetry():
    previous = telemetry_metrics._enabled_override
    telemetry.set_enabled(True)
    telemetry.reset()
    telemetry.reset_spans()
    yield
    telemetry.set_enabled(previous)
    telemetry.reset()
    telemetry.reset_spans()
