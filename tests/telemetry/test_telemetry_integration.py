"""Integration: a real fit emits the expected span tree; snapshots round-trip."""

from __future__ import annotations

import json

import pytest

from repro import nn, telemetry
from repro.core import AGNN, AGNNConfig
from repro.telemetry import report, span_summaries
from repro.telemetry.bench import EXPECTED_SPAN_PATHS, run_telemetry_bench
from repro.train import TrainConfig

pytestmark = pytest.mark.telemetry

FAST = TrainConfig(epochs=2, batch_size=64, learning_rate=0.01, patience=None)
SMALL = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=10.0)

#: top-level snapshot keys — the stable schema future tooling parses
SNAPSHOT_KEYS = {"schema_version", "meta", "counters", "gauges", "spans", "timings", "ops"}
SUMMARY_KEYS = {"count", "total_s", "mean_s", "p50_s", "p95_s", "max_s"}


class TestFitSpanTree:
    def test_fit_emits_epoch_over_batch_tree(self, ics_task):
        nn.init.seed(0)
        model = AGNN(SMALL, rng_seed=0)
        model.fit(ics_task, FAST)
        summaries = span_summaries()

        # The hierarchy is encoded in the paths: fit > epoch > batch.
        assert "fit" in summaries
        assert "fit/epoch" in summaries
        assert "fit/epoch/batch" in summaries
        assert summaries["fit"]["count"] == 1
        assert summaries["fit/epoch"]["count"] == FAST.epochs
        assert summaries["fit/epoch/batch"]["count"] >= FAST.epochs  # ≥1 batch/epoch

        # Nested totals cannot exceed their parents'.
        assert summaries["fit"]["total_s"] >= summaries["fit/epoch"]["total_s"]
        assert summaries["fit/epoch"]["total_s"] >= summaries["fit/epoch/batch"]["total_s"]

        # The AGNN-specific hot paths hang off the right parents.
        assert "fit/prepare/agnn.prepare" in summaries
        assert "fit/epoch/agnn.resample/graph.neighbours" in summaries
        assert "fit/epoch/batch/autograd.backward" in summaries

    def test_fit_counters_match_history(self, ics_task):
        nn.init.seed(0)
        model = AGNN(SMALL, rng_seed=0)
        history = model.fit(ics_task, FAST)
        counters = telemetry.get_registry().counters()
        assert counters["train.epochs"] == history.num_epochs == FAST.epochs
        assert counters["train.batches"] == counters["train.epochs"] * -(
            -len(ics_task.train_users) // FAST.batch_size
        )
        assert counters["train.examples"] == FAST.epochs * len(ics_task.train_users)


class TestSnapshotSchema:
    def test_snapshot_round_trips_through_json(self, ics_task, tmp_path):
        nn.init.seed(0)
        model = AGNN(SMALL, rng_seed=0)
        model.fit(ics_task, FAST)

        path = tmp_path / "telemetry.json"
        written = report.write_snapshot(str(path), note="integration")
        loaded = json.loads(path.read_text())

        assert loaded == written  # everything JSON-serialisable, nothing lossy
        assert set(loaded) == SNAPSHOT_KEYS
        assert loaded["schema_version"] == report.SCHEMA_VERSION
        assert loaded["meta"]["note"] == "integration"
        for summary in loaded["spans"].values():
            assert set(summary) == SUMMARY_KEYS
        assert all(isinstance(v, int) for v in loaded["counters"].values())

    def test_telemetry_bench_writes_the_baseline(self, tmp_path):
        path = tmp_path / "BENCH_telemetry.json"
        snap = run_telemetry_bench(epochs=1, output=str(path))
        loaded = json.loads(path.read_text())
        assert loaded == snap
        assert set(loaded) == SNAPSHOT_KEYS
        for expected in EXPECTED_SPAN_PATHS:
            assert expected in loaded["spans"], f"missing span path {expected}"
            assert loaded["spans"][expected]["total_s"] > 0.0
        assert loaded["ops"], "autograd profiler stats missing"
        assert loaded["ops"]["matmul"]["count"] > 0
