"""Instrumentation must not perturb numerics: telemetry on/off is bit-identical.

Spans and counters read the wall clock, never the RNG; the profiler wraps ops
without touching their maths.  Two fits from the same seed must therefore
produce identical predictions whatever the telemetry state — this is the
regression net that keeps future instrumentation honest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn, telemetry
from repro.core import AGNN, AGNNConfig
from repro.telemetry import AutogradProfiler
from repro.train import TrainConfig

pytestmark = pytest.mark.telemetry

FAST = TrainConfig(epochs=2, batch_size=64, learning_rate=0.01, patience=None, seed=0)
SMALL = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=10.0)


def _fit_and_predict(task):
    nn.init.seed(0)
    model = AGNN(SMALL, rng_seed=0)
    model.fit(task, FAST)
    return model.predict(task.test_users, task.test_items)


class TestSeedDeterminism:
    def test_same_seed_same_predictions_with_telemetry_on(self, ics_task):
        first = _fit_and_predict(ics_task)
        second = _fit_and_predict(ics_task)
        np.testing.assert_array_equal(first, second)

    def test_telemetry_off_changes_no_predictions(self, ics_task):
        with telemetry.enabled():
            on = _fit_and_predict(ics_task)
        with telemetry.disabled():
            off = _fit_and_predict(ics_task)
        np.testing.assert_array_equal(on, off)

    def test_profiler_changes_no_predictions(self, ics_task):
        baseline = _fit_and_predict(ics_task)
        with AutogradProfiler():
            profiled = _fit_and_predict(ics_task)
        np.testing.assert_array_equal(baseline, profiled)

    def test_disabled_run_leaves_registry_empty(self, ics_task):
        with telemetry.disabled():
            _fit_and_predict(ics_task)
            assert telemetry.get_registry().counters() == {}
            assert telemetry.span_summaries() == {}
