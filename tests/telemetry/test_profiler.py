"""AutogradProfiler: counting, timing, allocation, install/uninstall hygiene."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, ops
from repro.core import AGNN, AGNNConfig
from repro.telemetry import AutogradProfiler, active_profiler
from repro.train import TrainConfig

pytestmark = pytest.mark.telemetry

FAST = TrainConfig(epochs=1, batch_size=64, learning_rate=0.01, patience=None)
SMALL = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=10.0)


class TestInstall:
    def test_context_manager_installs_and_restores(self):
        original_add = ops.add
        with AutogradProfiler() as profiler:
            assert active_profiler() is profiler
            assert ops.add is not original_add
        assert active_profiler() is None
        assert ops.add is original_add

    def test_only_one_profiler_at_a_time(self):
        with AutogradProfiler():
            with pytest.raises(RuntimeError):
                AutogradProfiler().install()

    def test_uninstall_is_idempotent(self):
        profiler = AutogradProfiler().install()
        profiler.uninstall()
        profiler.uninstall()
        assert active_profiler() is None

    def test_wrapped_ops_compute_identical_values(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(5, 4)), rng.normal(size=(4, 3))
        plain = ops.matmul(Tensor(a), Tensor(b)).data
        with AutogradProfiler():
            profiled = ops.matmul(Tensor(a), Tensor(b)).data
        np.testing.assert_array_equal(plain, profiled)


class TestOpAccounting:
    def test_forward_and_backward_counts(self):
        with AutogradProfiler() as profiler:
            a = Tensor(np.ones((3, 3)), requires_grad=True)
            b = Tensor(np.ones((3, 3)), requires_grad=True)
            out = ops.sum(ops.mul(ops.add(a, b), b))
            out.backward()
        stats = profiler.snapshot()
        for name in ("add", "mul", "sum"):
            assert stats[name]["count"] == 1
            assert stats[name]["backward_count"] == 1
            assert stats[name]["forward_s"] >= 0.0
            assert stats[name]["backward_s"] > 0.0
            assert stats[name]["alloc_bytes"] > 0

    def test_alloc_bytes_track_output_shapes(self):
        with AutogradProfiler() as profiler:
            a = Tensor(np.ones((10, 20)))
            ops.add(a, a)  # (10, 20) float64 output
        assert profiler.snapshot()["add"]["alloc_bytes"] == 10 * 20 * 8

    def test_fused_ops_count_once(self):
        # mean and linear are single fused nodes: no sum/mul or matmul/add
        # sub-ops appear in the accounting.
        with AutogradProfiler() as profiler:
            ops.mean(Tensor(np.ones(7)))
            ops.linear(Tensor(np.ones((3, 4))), Tensor(np.ones((4, 2))), Tensor(np.ones(2)))
        stats = profiler.snapshot()
        assert stats["mean"]["count"] == 1
        assert stats["linear"]["count"] == 1
        for piece in ("sum", "mul", "matmul", "add"):
            assert stats.get(piece, {"count": 0})["count"] == 0

    def test_reset_zeroes_but_keeps_metering(self):
        with AutogradProfiler() as profiler:
            ops.add(Tensor(np.ones(2)), Tensor(np.ones(2)))
            profiler.reset()
            assert profiler.op_count("add") == 0
            ops.add(Tensor(np.ones(2)), Tensor(np.ones(2)))
            assert profiler.op_count("add") == 1


class TestAgnnProfile:
    def test_tiny_agnn_forward_backward_op_counts(self, ics_task):
        nn.init.seed(0)
        model = AGNN(SMALL, rng_seed=0)
        model.fit(ics_task, FAST)

        users = ics_task.train_users[:16]
        items = ics_task.train_items[:16]
        ratings = ics_task.train_ratings[:16]

        def metered_batch():
            with AutogradProfiler() as profiler:
                model.zero_grad()
                loss, _ = model.batch_loss(users, items, ratings)
                loss.backward()
            return {name: s["count"] for name, s in profiler.snapshot().items()}, profiler

        counts, profiler = metered_batch()
        # The AGNN pipeline must exercise these primitives every batch:
        # embeddings (interaction layer), matmuls (linear layers), the
        # LeakyReLU nonlinearity, and a final scalar loss reduction.
        for expected in ("embedding", "matmul", "add", "mul", "leaky_relu", "sum"):
            assert counts.get(expected, 0) > 0, f"expected {expected} in a batch"
        stats = profiler.snapshot()
        assert stats["matmul"]["backward_count"] > 0
        assert stats["matmul"]["alloc_bytes"] > 0

        # The op mix of one batch is deterministic: a second identical batch
        # through a fresh profiler yields exactly the same invocation counts.
        counts_again, _ = metered_batch()
        assert counts_again == counts
