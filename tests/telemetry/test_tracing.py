"""Span nesting, paths, exception safety, decorator form, disabled mode."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.telemetry.tracing import current_path, export_spans, span, span_summaries

pytestmark = pytest.mark.telemetry


class TestNesting:
    def test_paths_encode_the_stack(self):
        with span("fit"):
            assert current_path() == "fit"
            with span("epoch"):
                assert current_path() == "fit/epoch"
                with span("batch"):
                    assert current_path() == "fit/epoch/batch"
            assert current_path() == "fit"
        assert current_path() == ""
        assert set(span_summaries()) == {"fit", "fit/epoch", "fit/epoch/batch"}

    def test_sibling_spans_share_a_path(self):
        with span("outer"):
            for _ in range(3):
                with span("inner"):
                    pass
        summary = span_summaries()["outer/inner"]
        assert summary["count"] == 3
        assert summary["total_s"] >= summary["p50_s"] >= 0.0

    def test_durations_are_positive_and_ordered(self):
        with span("outer"):
            with span("inner"):
                pass
        summaries = span_summaries()
        assert summaries["outer"]["total_s"] >= summaries["outer/inner"]["total_s"] > 0.0

    def test_export_is_completion_ordered_and_flagged(self):
        with span("a"):
            with span("b"):
                pass
        records = export_spans()
        assert [r["path"] for r in records] == ["a/b", "a"]
        assert all(r["ok"] for r in records)
        assert records[0]["depth"] == 1 and records[1]["depth"] == 0

    def test_rejects_slash_in_name(self):
        with pytest.raises(ValueError):
            span("a/b")


class TestExceptionSafety:
    def test_stack_unwinds_and_duration_is_recorded(self):
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("boom")
        assert current_path() == ""  # nothing leaked on the stack
        summaries = span_summaries()
        assert summaries["outer"]["count"] == 1
        assert summaries["outer/inner"]["count"] == 1
        assert all(not r["ok"] for r in export_spans())

    def test_span_after_exception_nests_from_the_root(self):
        with pytest.raises(ValueError):
            with span("failed"):
                raise ValueError
        with span("next"):
            assert current_path() == "next"


class TestDecorator:
    def test_decorated_function_records_per_call(self):
        @span("work")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert work(1) == 2
        assert span_summaries()["work"]["count"] == 2

    def test_decorated_function_nests_under_caller(self):
        @span("leaf")
        def leaf():
            return current_path()

        with span("root"):
            assert leaf() == "root/leaf"
        assert "root/leaf" in span_summaries()


class TestDisabledMode:
    def test_disabled_spans_record_nothing(self):
        with telemetry.disabled():
            with span("invisible"):
                with span("also-invisible"):
                    pass
        assert span_summaries() == {}
        assert export_spans() == []

    def test_disabled_spans_keep_no_stack(self):
        with telemetry.disabled():
            with span("a"):
                assert current_path() == ""

    def test_reenabling_mid_run_stays_balanced(self):
        with telemetry.disabled():
            with span("outer"):  # not recorded
                pass
        with span("outer"):  # recorded, fresh stack
            pass
        assert span_summaries()["outer"]["count"] == 1
