"""Counters, gauges, histograms, the registry, and the enable switch."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry.metrics import (
    ENV_VAR,
    TimingHistogram,
    get_registry,
    is_enabled,
    quantile,
)

pytestmark = pytest.mark.telemetry


class TestRegistryIsolation:
    """Both tests pass only if the autouse fixture isolates registry state."""

    def test_counter_starts_clean_a(self):
        assert get_registry().counters() == {}
        telemetry.increment("isolation.check", 7)
        assert get_registry().counter("isolation.check").value == 7

    def test_counter_starts_clean_b(self):
        assert get_registry().counters() == {}
        telemetry.increment("isolation.check", 7)
        assert get_registry().counter("isolation.check").value == 7

    def test_reset_clears_everything(self):
        telemetry.increment("c")
        telemetry.set_gauge("g", 1.5)
        telemetry.record_timing("t", 0.1)
        telemetry.reset()
        registry = get_registry()
        assert registry.counters() == {}
        assert registry.gauges() == {}
        assert registry.timings() == {}


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        counter = get_registry().counter("events")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_counter_get_or_create_returns_same_object(self):
        assert get_registry().counter("x") is get_registry().counter("x")

    def test_gauge_holds_latest(self):
        gauge = get_registry().gauge("lr")
        gauge.set(0.1)
        gauge.set(0.01)
        assert gauge.value == pytest.approx(0.01)

    def test_thread_safety_of_counter(self):
        counter = get_registry().counter("parallel")

        def bump():
            for _ in range(1000):
                counter.increment()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestHistogramQuantiles:
    def test_quantile_matches_numpy_on_random_samples(self):
        rng = np.random.default_rng(42)
        for size in (1, 2, 7, 100, 1001):
            data = sorted(rng.exponential(scale=0.01, size=size).tolist())
            for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
                assert quantile(data, q) == pytest.approx(
                    float(np.quantile(data, q)), rel=1e-12, abs=1e-15
                )

    def test_histogram_summary_matches_numpy(self):
        rng = np.random.default_rng(7)
        samples = rng.gamma(2.0, 0.005, size=500)
        histogram = TimingHistogram("t")
        for s in samples:
            histogram.record(float(s))
        summary = histogram.summary()
        assert summary["count"] == 500
        assert summary["total_s"] == pytest.approx(float(samples.sum()))
        assert summary["p50_s"] == pytest.approx(float(np.quantile(samples, 0.5)))
        assert summary["p95_s"] == pytest.approx(float(np.quantile(samples, 0.95)))
        assert summary["max_s"] == pytest.approx(float(samples.max()))

    def test_ring_buffer_windows_quantiles_but_counts_everything(self):
        histogram = TimingHistogram("t", capacity=4)
        for value in (10.0, 10.0, 10.0, 10.0, 1.0, 2.0, 3.0, 4.0):
            histogram.record(value)
        assert histogram.count == 8  # exact, not windowed
        assert histogram.total == pytest.approx(50.0)
        # The window holds only the last four samples.
        assert sorted(histogram.samples()) == [1.0, 2.0, 3.0, 4.0]
        assert histogram.summary()["max_s"] == pytest.approx(10.0)  # all-time max

    def test_empty_histogram_summary_is_zero(self):
        summary = TimingHistogram("t").summary()
        assert summary == {
            "count": 0, "total_s": 0.0, "mean_s": 0.0, "p50_s": 0.0, "p95_s": 0.0, "max_s": 0.0,
        }

    def test_quantile_rejects_bad_input(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestEnableSwitch:
    def test_disabled_helpers_are_no_ops(self):
        with telemetry.disabled():
            telemetry.increment("c")
            telemetry.set_gauge("g", 3.0)
            telemetry.record_timing("t", 0.1)
        registry = get_registry()
        assert registry.counters() == {}
        assert registry.gauges() == {}
        assert registry.timings() == {}

    def test_nested_override_restores(self):
        assert is_enabled()
        with telemetry.disabled():
            assert not is_enabled()
            with telemetry.enabled():
                assert is_enabled()
            assert not is_enabled()
        assert is_enabled()

    def test_env_var_controls_default(self, monkeypatch):
        telemetry.set_enabled(None)  # hand control back to the environment
        monkeypatch.setenv(ENV_VAR, "0")
        assert not is_enabled()
        monkeypatch.setenv(ENV_VAR, "off")
        assert not is_enabled()
        monkeypatch.setenv(ENV_VAR, "1")
        assert is_enabled()
        monkeypatch.delenv(ENV_VAR)
        assert is_enabled()  # default: on
