"""Serialisation round-trips for datasets and model weights."""

import numpy as np
import pytest

from repro import nn
from repro.core import AGNN, AGNNConfig
from repro.io import load_dataset, load_model_into, save_dataset, save_model
from repro.train import TrainConfig


class TestDatasetRoundTrip:
    def test_movielens_round_trip(self, tiny_movielens, tmp_path):
        path = tmp_path / "ml.npz"
        save_dataset(tiny_movielens, path)
        loaded = load_dataset(path)
        assert loaded.name == tiny_movielens.name
        np.testing.assert_array_equal(loaded.ratings, tiny_movielens.ratings)
        np.testing.assert_array_equal(loaded.user_attributes, tiny_movielens.user_attributes)
        assert loaded.rating_scale == tiny_movielens.rating_scale

    def test_schema_survives(self, tiny_movielens, tmp_path):
        path = tmp_path / "ml.npz"
        save_dataset(tiny_movielens, path)
        loaded = load_dataset(path)
        assert loaded.user_schema.field_names == tiny_movielens.user_schema.field_names
        assert loaded.item_schema.dim == tiny_movielens.item_schema.dim

    def test_yelp_social_metadata_survives(self, tiny_yelp, tmp_path):
        path = tmp_path / "yelp.npz"
        save_dataset(tiny_yelp, path)
        loaded = load_dataset(path)
        assert loaded.user_schema is None
        np.testing.assert_array_equal(
            loaded.metadata["social_adjacency"], tiny_yelp.metadata["social_adjacency"]
        )

    def test_loaded_dataset_is_usable(self, tiny_movielens, tmp_path):
        from repro.data import item_cold_split

        path = tmp_path / "ml.npz"
        save_dataset(tiny_movielens, path)
        task = item_cold_split(load_dataset(path), 0.2, seed=0)
        task.assert_strict_cold()


class TestModelRoundTrip:
    def test_agnn_weights_round_trip(self, ics_task, tmp_path):
        config = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0)
        train = TrainConfig(epochs=1, batch_size=64, patience=None)

        nn.init.seed(0)
        model = AGNN(config, rng_seed=0)
        model.fit(ics_task, train)
        reference = model.predict(ics_task.test_users[:20], ics_task.test_items[:20])

        path = tmp_path / "agnn.npz"
        save_model(model, path)

        nn.init.seed(99)  # different init: weights must come from the file
        fresh = AGNN(config, rng_seed=0)
        fresh.fit(ics_task, TrainConfig(epochs=1, batch_size=64, patience=None, seed=0))
        load_model_into(fresh, path)
        fresh._invalidate_inference_cache()
        restored = fresh.predict(ics_task.test_users[:20], ics_task.test_items[:20])
        np.testing.assert_allclose(restored, reference, atol=1e-10)

    def test_load_into_mismatched_model_fails(self, ics_task, tmp_path):
        nn.init.seed(0)
        model = AGNN(AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0), rng_seed=0)
        model.fit(ics_task, TrainConfig(epochs=1, batch_size=64, patience=None))
        path = tmp_path / "agnn.npz"
        save_model(model, path)

        nn.init.seed(0)
        other = AGNN(AGNNConfig(embedding_dim=8, num_neighbors=3, pool_percent=15.0), rng_seed=0)
        other.fit(ics_task, TrainConfig(epochs=1, batch_size=64, patience=None))
        with pytest.raises(ValueError):
            load_model_into(other, path)
