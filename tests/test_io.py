"""Serialisation round-trips for datasets and model weights."""

import numpy as np
import pytest

from repro import nn
from repro.core import AGNN, AGNNConfig
from repro.io import load_dataset, load_model_into, save_dataset, save_model
from repro.train import TrainConfig


class TestDatasetRoundTrip:
    def test_movielens_round_trip(self, tiny_movielens, tmp_path):
        path = tmp_path / "ml.npz"
        save_dataset(tiny_movielens, path)
        loaded = load_dataset(path)
        assert loaded.name == tiny_movielens.name
        np.testing.assert_array_equal(loaded.ratings, tiny_movielens.ratings)
        np.testing.assert_array_equal(loaded.user_attributes, tiny_movielens.user_attributes)
        assert loaded.rating_scale == tiny_movielens.rating_scale

    def test_schema_survives(self, tiny_movielens, tmp_path):
        path = tmp_path / "ml.npz"
        save_dataset(tiny_movielens, path)
        loaded = load_dataset(path)
        assert loaded.user_schema.field_names == tiny_movielens.user_schema.field_names
        assert loaded.item_schema.dim == tiny_movielens.item_schema.dim

    def test_yelp_social_metadata_survives(self, tiny_yelp, tmp_path):
        path = tmp_path / "yelp.npz"
        save_dataset(tiny_yelp, path)
        loaded = load_dataset(path)
        assert loaded.user_schema is None
        np.testing.assert_array_equal(
            loaded.metadata["social_adjacency"], tiny_yelp.metadata["social_adjacency"]
        )

    def test_loaded_dataset_is_usable(self, tiny_movielens, tmp_path):
        from repro.data import item_cold_split

        path = tmp_path / "ml.npz"
        save_dataset(tiny_movielens, path)
        task = item_cold_split(load_dataset(path), 0.2, seed=0)
        task.assert_strict_cold()


class TestModelRoundTrip:
    def test_agnn_weights_round_trip(self, ics_task, tmp_path):
        config = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0)
        train = TrainConfig(epochs=1, batch_size=64, patience=None)

        nn.init.seed(0)
        model = AGNN(config, rng_seed=0)
        model.fit(ics_task, train)
        reference = model.predict(ics_task.test_users[:20], ics_task.test_items[:20])

        path = tmp_path / "agnn.npz"
        save_model(model, path)

        nn.init.seed(99)  # different init: weights must come from the file
        fresh = AGNN(config, rng_seed=0)
        fresh.fit(ics_task, TrainConfig(epochs=1, batch_size=64, patience=None, seed=0))
        load_model_into(fresh, path)
        fresh._invalidate_inference_cache()
        restored = fresh.predict(ics_task.test_users[:20], ics_task.test_items[:20])
        np.testing.assert_allclose(restored, reference, atol=1e-10)

    def test_load_into_mismatched_model_fails(self, ics_task, tmp_path):
        nn.init.seed(0)
        model = AGNN(AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0), rng_seed=0)
        model.fit(ics_task, TrainConfig(epochs=1, batch_size=64, patience=None))
        path = tmp_path / "agnn.npz"
        save_model(model, path)

        nn.init.seed(0)
        other = AGNN(AGNNConfig(embedding_dim=8, num_neighbors=3, pool_percent=15.0), rng_seed=0)
        other.fit(ics_task, TrainConfig(epochs=1, batch_size=64, patience=None))
        with pytest.raises(ValueError):
            load_model_into(other, path)

    def test_bitwise_round_trip_on_warm_and_cold_pairs(self, ics_task, tmp_path):
        """Save → load into a fresh model must be *bitwise* lossless, for
        warm (training) pairs and strict-cold (test) pairs alike."""
        config = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0)
        train = TrainConfig(epochs=1, batch_size=64, patience=None, seed=0)

        nn.init.seed(0)
        model = AGNN(config, rng_seed=0)
        model.fit(ics_task, train)
        warm_ref = model.predict(ics_task.train_users[:30], ics_task.train_items[:30])
        cold_ref = model.predict(ics_task.test_users[:30], ics_task.test_items[:30])

        path = tmp_path / "agnn.npz"
        save_model(model, path)

        nn.init.seed(99)  # different init: every weight must come from disk
        fresh = AGNN(config, rng_seed=0)
        fresh.fit(ics_task, train)
        load_model_into(fresh, path)
        fresh._invalidate_inference_cache()
        np.testing.assert_array_equal(
            fresh.predict(ics_task.train_users[:30], ics_task.train_items[:30]), warm_ref
        )
        np.testing.assert_array_equal(
            fresh.predict(ics_task.test_users[:30], ics_task.test_items[:30]), cold_ref
        )


class TestLoadDiagnostics:
    """``load_model_into`` reports the full file↔model diff in one error."""

    @pytest.fixture()
    def small_fitted(self, ics_task):
        nn.init.seed(0)
        model = AGNN(AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0), rng_seed=0)
        model.fit(ics_task, TrainConfig(epochs=1, batch_size=64, patience=None))
        return model

    def test_shape_mismatches_are_listed(self, small_fitted, ics_task, tmp_path):
        path = tmp_path / "agnn.npz"
        save_model(small_fitted, path)
        nn.init.seed(0)
        other = AGNN(AGNNConfig(embedding_dim=8, num_neighbors=3, pool_percent=15.0), rng_seed=0)
        other.fit(ics_task, TrainConfig(epochs=1, batch_size=64, patience=None))
        with pytest.raises(ValueError, match="shape mismatches") as excinfo:
            load_model_into(other, path)
        message = str(excinfo.value)
        assert "cannot load" in message and "AGNN" in message
        assert "file (" in message and "vs model (" in message

    def test_missing_and_unexpected_keys_are_listed(self, small_fitted, tmp_path):
        state = small_fitted.state_dict()
        dropped = sorted(state)[0]
        del state[dropped]
        state["bogus.extra"] = np.zeros(3)
        path = tmp_path / "edited.npz"
        np.savez_compressed(path, **{k.replace(".", "__"): v for k, v in state.items()})

        with pytest.raises(ValueError) as excinfo:
            load_model_into(small_fitted, path)
        message = str(excinfo.value)
        assert f"missing parameters (in model, not in file): ['{dropped}']" in message
        assert "unexpected parameters (in file, not in model): ['bogus.extra']" in message

    def test_all_three_problem_classes_reported_in_one_error(self, small_fitted, tmp_path):
        state = small_fitted.state_dict()
        dropped = sorted(state)[0]
        del state[dropped]
        reshaped = sorted(state)[0]
        state[reshaped] = np.zeros(np.asarray(state[reshaped]).size + 1)
        state["bogus.extra"] = np.zeros(3)
        path = tmp_path / "broken.npz"
        np.savez_compressed(path, **{k.replace(".", "__"): v for k, v in state.items()})

        with pytest.raises(ValueError) as excinfo:
            load_model_into(small_fitted, path)
        message = str(excinfo.value)
        assert dropped in message and "missing parameters" in message
        assert "bogus.extra" in message and "unexpected parameters" in message
        assert reshaped in message and "shape mismatches" in message

    def test_clean_archive_loads_without_error(self, small_fitted, tmp_path):
        path = tmp_path / "agnn.npz"
        save_model(small_fitted, path)
        assert load_model_into(small_fitted, path) is small_fitted
