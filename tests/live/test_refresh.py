"""The full crank: stream → refresh → gate → publish → (optional) hot swap."""

import numpy as np
import pytest

from repro.live import GateConfig, run_refresh, simulate_stream
from repro.obs import events as obs_events
from repro.serving import BatchingEngine, InferenceEngine
from repro.telemetry import snapshot

pytestmark = pytest.mark.live


class TestSimulateStream:
    def test_prefix_consistent_id_space(self, tiny_movielens, live_split):
        base, stream = live_split
        assert base.num_users + stream.new_user_attributes.shape[0] == (
            tiny_movielens.num_users
        )
        assert base.num_items + stream.new_item_attributes.shape[0] == (
            tiny_movielens.num_items
        )
        np.testing.assert_array_equal(
            base.user_attributes, tiny_movielens.user_attributes[: base.num_users]
        )
        np.testing.assert_array_equal(
            stream.new_item_attributes, tiny_movielens.item_attributes[base.num_items :]
        )

    def test_stream_ids_within_extended_space(self, tiny_movielens, live_split):
        _, stream = live_split
        assert len(stream.ratings) > 0
        assert stream.users.max() < tiny_movielens.num_users
        assert stream.items.max() < tiny_movielens.num_items

    def test_deterministic(self, tiny_movielens, live_split):
        base, stream = live_split
        base2, stream2 = simulate_stream(tiny_movielens, seed=0)
        assert base2.num_users == base.num_users
        np.testing.assert_array_equal(stream2.users, stream.users)
        np.testing.assert_array_equal(stream2.ratings, stream.ratings)

    def test_describe_mentions_arrivals(self, live_split):
        _, stream = live_split
        text = stream.describe()
        assert "new users" in text and "new items" in text


class TestAcceptedRefresh:
    def test_publishes_next_generation(self, fresh_store, live_split):
        _, stream = live_split
        result = run_refresh(
            fresh_store,
            stream.interactions,
            new_users=stream.new_user_attributes,
            new_items=stream.new_item_attributes,
        )
        assert result.accepted
        assert result.parent_version == 1
        assert result.version == 2
        assert result.epochs > 0
        assert not result.swapped, "no target was attached"
        assert fresh_store.latest_version == 2
        assert fresh_store.entry(2)["parent"] == 1
        assert "eval_rmse" in fresh_store.entry(2)["metrics"]

    def test_swaps_onto_target(self, fresh_store, live_split):
        _, stream = live_split
        engine = InferenceEngine(fresh_store.load(1), cache_size=0)
        with BatchingEngine(engine) as batching:
            result = run_refresh(
                fresh_store,
                stream.interactions,
                new_users=stream.new_user_attributes,
                new_items=stream.new_item_attributes,
                target=batching,
            )
            assert result.accepted and result.swapped
            assert result.swap_report is not None
            assert batching.engine.bundle.version == 2
            assert batching.engine.bundle.parent_version == 1
            # the new generation serves the extended catalogue immediately
            assert batching.engine.num_users == fresh_store.load(2).user_attributes.shape[0]


class TestRejectedRefresh:
    def test_old_generation_keeps_serving(self, fresh_store, live_split):
        _, stream = live_split
        engine = InferenceEngine(fresh_store.load(1), cache_size=0)
        with BatchingEngine(engine) as batching:
            result = run_refresh(
                fresh_store,
                stream.interactions,
                new_users=stream.new_user_attributes,
                new_items=stream.new_item_attributes,
                gate_config=GateConfig(max_rmse_ratio=1e-6),
                target=batching,
            )
            assert not result.accepted
            assert result.version is None
            assert not result.swapped
            assert result.reasons, "a rejection must carry its reasons"
            assert batching.engine is engine, "rejected refresh must not touch serving"
        assert fresh_store.latest_version == 1, "rejected refresh must not publish"
        assert snapshot()["counters"].get("serve.swap.rejected") == 1
        rejected = obs_events.get_event_log().events(kind="live.refresh_rejected")
        assert rejected, "a rejected refresh must leave an audit event"
