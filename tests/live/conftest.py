"""Continuous-learning fixtures: one base generation plus a simulated stream.

The expensive pieces (base fit, incremental refresh) are session-scoped; the
store fixtures come in two flavours — a read-only ``seed_store`` / ``two_gen_store``
shared across tests and a per-test ``fresh_store`` for anything that publishes.
"""

from __future__ import annotations

import pytest

from repro import nn
from repro.core import AGNN, AGNNConfig
from repro.data import warm_split
from repro.live import BundleStore, simulate_stream
from repro.train import TrainConfig

LIVE_CONFIG = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=15.0)
LIVE_TRAIN = TrainConfig(
    epochs=2, batch_size=64, validation_fraction=0.0, patience=None, seed=0
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    """The live loop instruments spans/counters and emits audit events;
    isolate both global registries per test."""
    from repro import telemetry
    from repro.obs import events as obs_events
    from repro.telemetry import metrics as telemetry_metrics

    previous = telemetry_metrics._enabled_override
    previous_obs = obs_events._enabled_override
    telemetry.set_enabled(True)
    telemetry.reset()
    telemetry.reset_spans()
    obs_events.set_enabled(True)
    obs_events.reset()
    yield
    telemetry.set_enabled(previous)
    telemetry.reset()
    telemetry.reset_spans()
    obs_events.set_enabled(previous_obs)
    obs_events.reset()


@pytest.fixture(scope="session")
def live_split(tiny_movielens):
    """(base_dataset, stream): the pre-launch slice and what arrived after."""
    return simulate_stream(tiny_movielens, seed=0)


@pytest.fixture(scope="session")
def base_task(live_split):
    base, _ = live_split
    return warm_split(base, 0.2, seed=0)


@pytest.fixture(scope="session")
def base_model(base_task):
    nn.init.seed(0)
    model = AGNN(LIVE_CONFIG, rng_seed=0)
    model.fit(base_task, LIVE_TRAIN)
    return model


@pytest.fixture(scope="session")
def seed_store(base_model, base_task, tmp_path_factory):
    """Read-only single-generation store — do NOT publish into it."""
    store = BundleStore(tmp_path_factory.mktemp("live-seed") / "store")
    store.publish(base_model, base_task, note="gen-1")
    return store


@pytest.fixture(scope="session")
def base_bundle(seed_store):
    return seed_store.load()


@pytest.fixture(scope="session")
def refreshed_model(base_bundle, live_split):
    _, stream = live_split
    model = AGNN()
    model.fit_incremental(
        base_bundle,
        stream.interactions,
        new_users=stream.new_user_attributes,
        new_items=stream.new_item_attributes,
    )
    return model


@pytest.fixture(scope="session")
def two_gen_store(base_model, base_task, refreshed_model, tmp_path_factory):
    """Read-only two-generation store: gen-2 refreshed from gen-1."""
    store = BundleStore(tmp_path_factory.mktemp("live-two") / "store")
    store.publish(base_model, base_task, note="gen-1")
    store.publish(refreshed_model, refreshed_model.task, note="gen-2", parent_version=1)
    return store


@pytest.fixture()
def fresh_store(base_model, base_task, tmp_path):
    """A per-test store holding only gen-1 — safe to publish into."""
    store = BundleStore(tmp_path / "store")
    store.publish(base_model, base_task, note="gen-1")
    return store
