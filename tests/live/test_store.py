"""BundleStore: versioned generations with lineage and integrity fingerprints."""

import numpy as np
import pytest

from repro.live import BundleIntegrityError, BundleStore

pytestmark = pytest.mark.live


class TestPublish:
    def test_first_generation(self, seed_store):
        assert seed_store.versions() == [1]
        assert seed_store.latest_version == 1
        entry = seed_store.entry(1)
        assert entry["parent"] is None
        assert entry["note"] == "gen-1"
        assert entry["fingerprint"]

    def test_second_generation_records_parent(self, two_gen_store):
        assert two_gen_store.versions() == [1, 2]
        assert two_gen_store.latest_version == 2
        assert two_gen_store.entry(2)["parent"] == 1

    def test_unknown_parent_rejected(self, base_model, base_task, tmp_path):
        store = BundleStore(tmp_path / "store")
        with pytest.raises(KeyError, match="parent version"):
            store.publish(base_model, base_task, parent_version=7)

    def test_metrics_survive(self, base_model, base_task, fresh_store):
        version = fresh_store.publish(
            base_model, base_task, parent_version=1, metrics={"eval_rmse": 0.5}
        )
        assert fresh_store.entry(version)["metrics"] == {"eval_rmse": 0.5}


class TestLoad:
    def test_round_trip_latest(self, two_gen_store):
        bundle = two_gen_store.load()
        assert bundle.version == 2
        assert bundle.parent_version == 1
        assert bundle.fingerprint == two_gen_store.entry(2)["fingerprint"]

    def test_explicit_version(self, two_gen_store, base_model):
        bundle = two_gen_store.load(1)
        assert bundle.version == 1
        assert bundle.parent_version is None
        theirs = base_model.state_dict()
        ours = bundle.model.state_dict()
        for name in theirs:
            np.testing.assert_array_equal(ours[name], theirs[name])

    def test_lineage_records_parent_fingerprint(self, two_gen_store):
        child = two_gen_store.load(2)
        assert child.lineage["parent_fingerprint"] == two_gen_store.entry(1)["fingerprint"]

    def test_empty_store_raises(self, tmp_path):
        with pytest.raises(KeyError, match="empty"):
            BundleStore(tmp_path / "store").load()

    def test_unknown_version_raises(self, seed_store):
        with pytest.raises(KeyError):
            seed_store.load(99)


class TestIntegrity:
    def test_verify_clean(self, two_gen_store):
        assert two_gen_store.verify(1)
        assert two_gen_store.verify(2)

    def test_tamper_detected(self, fresh_store):
        target = fresh_store.path(1) / "model.npz"
        blob = bytearray(target.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        target.write_bytes(bytes(blob))
        assert not fresh_store.verify(1)
        with pytest.raises(BundleIntegrityError, match="fingerprint"):
            fresh_store.load(1)


class TestLineage:
    def test_chain_newest_first(self, two_gen_store):
        chain = two_gen_store.lineage()
        assert [link["version"] for link in chain] == [2, 1]
        assert chain[0]["parent"] == 1
        assert chain[1]["parent"] is None

    def test_empty_store_has_no_lineage(self, tmp_path):
        assert BundleStore(tmp_path / "store").lineage() == []
