"""Promotion gates: health monitors plus RMSE drift against the parent."""

import numpy as np
import pytest

from repro.live import GateConfig, evaluate_promotion

pytestmark = pytest.mark.live


def _poison(model):
    """Write a NaN into the first trainable tensor; returns (param, saved)."""
    name, param = next(iter(model.named_parameters()))
    saved = param.data.copy()
    param.data.flat[0] = np.nan
    return param, saved


class TestConfig:
    def test_defaults_valid(self):
        config = GateConfig()
        assert 0.0 < config.max_gate_saturation <= 1.0
        assert config.max_rmse_ratio > 1.0

    def test_invalid_saturation(self):
        with pytest.raises(ValueError, match="max_gate_saturation"):
            GateConfig(max_gate_saturation=1.5)

    def test_invalid_rmse_ratio(self):
        with pytest.raises(ValueError, match="max_rmse_ratio"):
            GateConfig(max_rmse_ratio=-1.0)


class TestHealthyRefresh:
    def test_accepted(self, refreshed_model, base_bundle):
        decision = evaluate_promotion(refreshed_model, refreshed_model.task, base_bundle)
        assert decision.accepted
        assert decision.reasons == []

    def test_readings_and_rmse_recorded(self, refreshed_model, base_bundle):
        decision = evaluate_promotion(refreshed_model, refreshed_model.task, base_bundle)
        assert "gate_saturation" in decision.readings
        assert "kl_collapse" in decision.readings
        assert np.isfinite(decision.rmse)
        assert np.isfinite(decision.baseline_rmse)
        assert np.isfinite(decision.warm_rmse)

    def test_parent_kl_recorded_for_context(self, refreshed_model, base_bundle):
        decision = evaluate_promotion(refreshed_model, refreshed_model.task, base_bundle)
        kl = decision.readings["kl_collapse"]
        for side in ("user", "item"):
            assert f"{side}.kl" in kl

    def test_as_dict_round_trips(self, refreshed_model, base_bundle):
        decision = evaluate_promotion(refreshed_model, refreshed_model.task, base_bundle)
        payload = decision.as_dict()
        assert payload["accepted"] is True
        assert payload["reasons"] == []
        assert payload["rmse"] == decision.rmse


class TestRejection:
    def test_nan_weights_rejected(self, refreshed_model, base_bundle):
        param, saved = _poison(refreshed_model)
        try:
            decision = evaluate_promotion(refreshed_model, refreshed_model.task, base_bundle)
        finally:
            param.data[...] = saved
        assert not decision.accepted
        assert any("nan_watchdog" in reason for reason in decision.reasons)

    def test_rmse_drift_rejected(self, refreshed_model, base_bundle):
        strict = GateConfig(max_rmse_ratio=1e-6)
        decision = evaluate_promotion(
            refreshed_model, refreshed_model.task, base_bundle, strict
        )
        assert not decision.accepted
        assert any("drifted past parent" in reason for reason in decision.reasons)

    def test_rejection_never_mutates_model(self, refreshed_model, base_bundle):
        before = {n: p.data.copy() for n, p in refreshed_model.named_parameters()}
        evaluate_promotion(
            refreshed_model, refreshed_model.task, base_bundle, GateConfig(max_rmse_ratio=1e-6)
        )
        for name, param in refreshed_model.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])
