"""Zero-downtime guarantee: concurrent traffic across repeated hot swaps.

Clients hammer score and top-N through the BatchingEngine while the main
thread swaps between two generations.  Every response must be bitwise equal
to ONE of the two engines' direct answers — a response matching neither
would mean a fused batch mixed bundles mid-swap.
"""

import threading

import numpy as np
import pytest

from repro.serving import BatchingEngine, InferenceEngine

pytestmark = [pytest.mark.live, pytest.mark.serving]

CLIENT_THREADS = 4
REQUESTS_PER_THREAD = 40
SWAPS = 6
PAIRS_PER_REQUEST = 8


@pytest.fixture(scope="module")
def engines(base_bundle, two_gen_store):
    return (
        InferenceEngine(base_bundle, cache_size=0),
        InferenceEngine(two_gen_store.load(2), cache_size=0),
    )


@pytest.fixture(scope="module")
def catalogue(engines):
    """Fixed requests + per-engine oracle answers, computed before any load."""
    engine_a, engine_b = engines
    n_users = min(engine_a.num_users, engine_b.num_users)
    n_items = min(engine_a.num_items, engine_b.num_items)
    rng = np.random.default_rng(7)
    requests = []
    for _ in range(16):
        users = rng.integers(0, n_users, size=PAIRS_PER_REQUEST)
        items = rng.integers(0, n_items, size=PAIRS_PER_REQUEST)
        oracles = (engine_a.score(users, items), engine_b.score(users, items))
        requests.append((users, items, oracles))
    topn_user = int(rng.integers(0, n_users))
    topn_oracles = (
        engine_a.top_n(topn_user, k=5, exclude_seen=False),
        engine_b.top_n(topn_user, k=5, exclude_seen=False),
    )
    return requests, topn_user, topn_oracles


def test_no_response_mixes_bundles_across_swaps(engines, catalogue):
    engine_a, engine_b = engines
    requests, topn_user, topn_oracles = catalogue
    errors = []
    mismatches = []
    completed = [0] * CLIENT_THREADS
    started = threading.Barrier(CLIENT_THREADS + 1)

    def client(thread_idx):
        started.wait()
        for step in range(REQUESTS_PER_THREAD):
            users, items, oracles = requests[(thread_idx + step) % len(requests)]
            try:
                scores = batching.score(users, items)
            except Exception as exc:  # noqa: BLE001 - any failure is a drop
                errors.append(repr(exc))
                continue
            if not any(np.array_equal(scores, oracle) for oracle in oracles):
                mismatches.append((thread_idx, step))
                continue
            if step % 10 == 0:
                ids, top_scores = batching.top_n(topn_user, k=5, exclude_seen=False)
                ok = any(
                    np.array_equal(ids, o_ids) and np.array_equal(top_scores, o_scores)
                    for o_ids, o_scores in topn_oracles
                )
                if not ok:
                    mismatches.append((thread_idx, step, "top_n"))
                    continue
            completed[thread_idx] += 1

    with BatchingEngine(engine_a) as batching:
        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(CLIENT_THREADS)
        ]
        for thread in threads:
            thread.start()
        started.wait()
        previous = engine_a
        for i in range(SWAPS):
            incoming = engine_b if previous is engine_a else engine_a
            displaced = batching.swap_engine(incoming)
            assert displaced is previous, "swap displaced the wrong engine"
            previous = incoming
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "client thread hung"

    assert errors == [], f"requests errored during swaps: {errors[:5]}"
    assert mismatches == [], f"responses matched neither bundle: {mismatches[:5]}"
    assert sum(completed) == CLIENT_THREADS * REQUESTS_PER_THREAD, (
        "some requests were dropped"
    )
