"""Incremental refresh: warm-start copy, graph splice, deterministic fit."""

import dataclasses

import numpy as np
import pytest

from repro.core import AGNN
from repro.live import DEFAULT_REFRESH_CONFIG, build_refresh_task

pytestmark = pytest.mark.live


class TestRefreshTask:
    def test_replay_plus_stream(self, base_bundle, live_split):
        _, stream = live_split
        task = build_refresh_task(
            base_bundle,
            stream.interactions,
            new_users=stream.new_user_attributes,
            new_items=stream.new_item_attributes,
        )
        replay = len(base_bundle.train_ratings)
        assert len(task.train_ratings) + len(task.test_ratings) == replay + len(stream.ratings)
        assert task.dataset.num_users == base_bundle.user_attributes.shape[0] + len(
            stream.new_user_attributes
        )
        assert task.dataset.num_items == base_bundle.item_attributes.shape[0] + len(
            stream.new_item_attributes
        )

    def test_holdout_drawn_from_stream_only(self, base_bundle, live_split):
        _, stream = live_split
        task = build_refresh_task(
            base_bundle,
            stream.interactions,
            new_users=stream.new_user_attributes,
            new_items=stream.new_item_attributes,
        )
        stream_triples = set(
            zip(stream.users.tolist(), stream.items.tolist(), stream.ratings.tolist())
        )
        for triple in zip(
            task.test_users.tolist(), task.test_items.tolist(), task.test_ratings.tolist()
        ):
            assert triple in stream_triples, "holdout leaked a replayed interaction"

    def test_v1_bundle_without_replay_ratings_rejected(self, base_bundle, live_split):
        _, stream = live_split
        v1 = dataclasses.replace(base_bundle, train_ratings=np.empty(0, dtype=np.float64))
        with pytest.raises(ValueError, match="re-export"):
            build_refresh_task(v1, stream.interactions)

    def test_malformed_stream_rejected(self, base_bundle):
        with pytest.raises(ValueError, match="triple"):
            build_refresh_task(base_bundle, (np.arange(3), np.arange(3)))

    def test_misaligned_stream_rejected(self, base_bundle):
        with pytest.raises(ValueError, match="equal length"):
            build_refresh_task(base_bundle, (np.arange(3), np.arange(3), np.arange(5)))


class TestWarmStart:
    def test_zero_epoch_refresh_is_pure_warm_start(self, base_bundle, live_split):
        """With no optimisation steps the refresh IS the copied parent."""
        _, stream = live_split
        config = dataclasses.replace(DEFAULT_REFRESH_CONFIG, epochs=0)
        model = AGNN()
        model.fit_incremental(
            base_bundle,
            stream.interactions,
            new_users=stream.new_user_attributes,
            new_items=stream.new_item_attributes,
            config=config,
        )
        parent = dict(base_bundle.model.named_parameters())
        for name, param in model.named_parameters():
            rows = parent[name].data.shape[0]
            np.testing.assert_array_equal(
                param.data[:rows],
                parent[name].data,
                err_msg=f"{name}: warm-started rows diverged from the parent",
            )

    def test_new_preference_rows_seeded_by_parent_evae(self, base_bundle, live_split):
        _, stream = live_split
        config = dataclasses.replace(DEFAULT_REFRESH_CONFIG, epochs=0)
        model = AGNN()
        model.fit_incremental(
            base_bundle,
            stream.interactions,
            new_users=stream.new_user_attributes,
            new_items=stream.new_item_attributes,
            config=config,
        )
        for side, new_attrs in (
            ("user", stream.new_user_attributes),
            ("item", stream.new_item_attributes),
        ):
            old_n = base_bundle.model._encoder(side).preference.weight.data.shape[0]
            seeded = model._encoder(side).preference.weight.data[old_n:]
            expected = base_bundle.model.generate_cold_preference(side, new_attrs)
            np.testing.assert_array_equal(seeded, expected)


class TestRefreshedModel:
    def test_node_counts_extended(self, refreshed_model, base_bundle, live_split):
        _, stream = live_split
        task = refreshed_model.task
        assert task.dataset.num_users == base_bundle.user_attributes.shape[0] + len(
            stream.new_user_attributes
        )
        assert task.dataset.num_items == base_bundle.item_attributes.shape[0] + len(
            stream.new_item_attributes
        )

    def test_spliced_graphs_cover_all_nodes(self, refreshed_model):
        for side in ("user", "item"):
            graph = refreshed_model.candidate_graph(side)
            n = refreshed_model.task.dataset.num_users if side == "user" else (
                refreshed_model.task.dataset.num_items
            )
            assert graph.num_nodes == n
            for node, pool in enumerate(graph.pools):
                pool = np.asarray(pool)
                assert pool.size > 0
                assert node not in pool, f"{side} node {node} is its own candidate"
                assert pool.min() >= 0 and pool.max() < n

    def test_refresh_is_bitwise_deterministic(self, refreshed_model, base_bundle, live_split):
        _, stream = live_split
        again = AGNN()
        again.fit_incremental(
            base_bundle,
            stream.interactions,
            new_users=stream.new_user_attributes,
            new_items=stream.new_item_attributes,
        )
        first = dict(refreshed_model.named_parameters())
        for name, param in again.named_parameters():
            np.testing.assert_array_equal(
                param.data, first[name].data, err_msg=f"{name} differs between refreshes"
            )

    def test_refresh_scores_finite_for_new_nodes(self, refreshed_model, base_bundle):
        task = refreshed_model.task
        base_users = base_bundle.user_attributes.shape[0]
        new_users = np.arange(base_users, task.dataset.num_users, dtype=np.int64)
        items = np.zeros(len(new_users), dtype=np.int64)
        scores = refreshed_model.predict(new_users, items)
        assert np.all(np.isfinite(scores))
