"""Hot swap: validated install, rejection keeps the old engine, healthz lineage."""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.live import SwapValidationError, swap_bundle, validate_engine
from repro.serving import BatchingEngine, InferenceEngine, make_server
from repro.telemetry import snapshot

pytestmark = [pytest.mark.live, pytest.mark.serving]


@pytest.fixture()
def engine_v1(base_bundle):
    return InferenceEngine(base_bundle, cache_size=0)


@pytest.fixture()
def bundle_v2(two_gen_store):
    return two_gen_store.load(2)


class TestSwapBundle:
    def test_swap_installs_new_generation(self, engine_v1, bundle_v2):
        with BatchingEngine(engine_v1) as batching:
            report = swap_bundle(batching, bundle_v2)
            assert batching.engine is not engine_v1
            assert batching.engine.bundle.version == 2
        assert report.version == 2
        assert report.parent_version == 1
        assert report.previous_fingerprint == engine_v1.bundle.fingerprint
        assert report.validated_pairs > 0
        assert snapshot()["counters"].get("serve.swap.count") == 1

    def test_target_without_swap_engine_rejected(self, bundle_v2):
        with pytest.raises(TypeError, match="swap_engine"):
            swap_bundle(object(), bundle_v2)

    def test_poisoned_candidate_rejected_old_engine_kept(
        self, engine_v1, two_gen_store
    ):
        poisoned = two_gen_store.load(2)
        for _, param in poisoned.model.named_parameters():
            param.data[...] = np.nan
        with BatchingEngine(engine_v1) as batching:
            with pytest.raises(SwapValidationError):
                swap_bundle(batching, poisoned)
            assert batching.engine is engine_v1, "failed swap must keep the old engine"
            np.testing.assert_array_equal(
                batching.score([0, 1], [0, 1]), engine_v1.score([0, 1], [0, 1])
            )
        assert snapshot()["counters"].get("serve.swap.rejected") == 1
        assert snapshot()["counters"].get("serve.swap.count") is None

    def test_validate_engine_accepts_healthy(self, engine_v1):
        assert validate_engine(engine_v1) > 0


class TestServerSwap:
    @pytest.fixture()
    def server(self, engine_v1):
        server = make_server(engine_v1, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    def _get(self, server, path):
        url = f"http://127.0.0.1:{server.port}{path}"
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode("utf-8")

    def test_healthz_reports_lineage_and_swaps(self, server, bundle_v2):
        status, body = self._get(server, "/healthz")
        before = json.loads(body)
        assert status == 200
        assert before["bundle_version"] == 1
        assert before["bundle_parent_version"] is None
        assert before["swaps"] == 0
        assert before["last_swap_unix"] is None

        swap_bundle(server, bundle_v2)

        _, body = self._get(server, "/healthz")
        after = json.loads(body)
        assert after["bundle_version"] == 2
        assert after["bundle_parent_version"] == 1
        assert after["bundle_fingerprint"] == bundle_v2.fingerprint
        assert after["swaps"] == 1
        assert after["last_swap_unix"] is not None

    def test_metrics_exposes_swap_counter(self, server, bundle_v2):
        swap_bundle(server, bundle_v2)
        _, body = self._get(server, "/metrics.prom")
        assert "repro_serve_swap_count_total 1" in body

    def test_scores_served_after_swap(self, server, bundle_v2):
        swap_bundle(server, bundle_v2)
        expected = InferenceEngine(bundle_v2, cache_size=0).score([0, 1, 2], [3, 4, 5])
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/score",
            data=json.dumps({"users": [0, 1, 2], "items": [3, 4, 5]}).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            scores = json.loads(response.read().decode("utf-8"))["scores"]
        np.testing.assert_array_equal(scores, expected)
