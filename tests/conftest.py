"""Shared fixtures: tiny datasets and tasks every test module can reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    MovieLensConfig,
    YelpConfig,
    generate_movielens,
    generate_yelp,
    item_cold_split,
    user_cold_split,
    warm_split,
)


TINY_ML = MovieLensConfig(
    name="tiny-ml",
    num_users=40,
    num_items=60,
    num_ratings=700,
    num_stars=12,
    num_directors=10,
    num_writers=10,
    seed=3,
)

TINY_YELP = YelpConfig(
    name="tiny-yelp",
    num_users=45,
    num_items=40,
    num_ratings=500,
    num_cities=12,
    num_states=4,
    mean_friends=5.0,
    seed=5,
)


@pytest.fixture(scope="session")
def tiny_movielens():
    return generate_movielens(TINY_ML)


@pytest.fixture(scope="session")
def tiny_yelp():
    return generate_yelp(TINY_YELP)


@pytest.fixture(scope="session")
def warm_task(tiny_movielens):
    return warm_split(tiny_movielens, 0.2, seed=0)


@pytest.fixture(scope="session")
def ics_task(tiny_movielens):
    return item_cold_split(tiny_movielens, 0.2, seed=0)


@pytest.fixture(scope="session")
def ucs_task(tiny_movielens):
    return user_cold_split(tiny_movielens, 0.2, seed=0)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
