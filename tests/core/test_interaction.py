"""Attribute interaction layer: the FM identity, fusion, overrides."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.core import AttributeInteraction, NodeEncoder


class TestBiInteraction:
    def test_output_shape(self, rng):
        layer = AttributeInteraction(attr_dim=10, embedding_dim=6)
        attrs = (rng.random((4, 10)) < 0.3).astype(float)
        assert layer(attrs).shape == (4, 6)

    def test_wrong_width_raises(self, rng):
        layer = AttributeInteraction(attr_dim=10, embedding_dim=6)
        with pytest.raises(ValueError):
            layer(np.zeros((4, 7)))

    def test_fm_identity_matches_explicit_double_sum(self, rng):
        """½[(Σ a_i v_i)² − Σ (a_i v_i)²] must equal Σ_i Σ_{j>i} a_i v_i ⊙ a_j v_j."""
        layer = AttributeInteraction(attr_dim=6, embedding_dim=4)
        attrs = (rng.random((3, 6)) < 0.5).astype(float)
        v = layer.value_embeddings.data

        explicit = np.zeros((3, 4))
        for b in range(3):
            for i in range(6):
                for j in range(i + 1, 6):
                    explicit[b] += (attrs[b, i] * v[i]) * (attrs[b, j] * v[j])

        summed = attrs @ v
        squared = (attrs**2) @ (v**2)
        fast = 0.5 * (summed**2 - squared)
        np.testing.assert_allclose(fast, explicit, atol=1e-10)

    def test_single_attribute_has_no_interactions(self):
        """With exactly one active attribute, f_BI is zero and only the linear
        path contributes."""
        layer = AttributeInteraction(attr_dim=5, embedding_dim=3)
        attrs = np.zeros((1, 5))
        attrs[0, 2] = 1.0
        v = layer.value_embeddings.data
        f_bi = 0.5 * ((attrs @ v) ** 2 - (attrs**2) @ (v**2))
        np.testing.assert_allclose(f_bi, 0.0, atol=1e-12)

    def test_gradcheck_through_layer(self, rng):
        layer = AttributeInteraction(attr_dim=5, embedding_dim=3)
        attrs = (rng.random((2, 5)) < 0.6).astype(float)
        params = [layer.value_embeddings, layer.fc_bi.weight, layer.fc_linear.weight, layer.fc_linear.bias]

        def f(*_):
            return layer(attrs)

        gradcheck(f, params)


class TestNodeEncoder:
    def test_node_embedding_shape(self, rng):
        enc = NodeEncoder(num_nodes=8, attr_dim=5, embedding_dim=4)
        attrs = (rng.random((8, 5)) < 0.5).astype(float)
        out = enc.node_embedding(np.array([0, 3, 7]), attrs)
        assert out.shape == (3, 4)

    def test_preference_override_used(self, rng):
        enc = NodeEncoder(num_nodes=4, attr_dim=3, embedding_dim=2)
        attrs = np.eye(4, 3)
        override = np.zeros((4, 2))
        ids = np.array([1, 2])
        with_override = enc.node_embedding(ids, attrs, preference_override=override)
        without = enc.node_embedding(ids, attrs)
        assert not np.allclose(with_override.data, without.data)

    def test_preference_mask_zeroes_rows(self, rng):
        enc = NodeEncoder(num_nodes=4, attr_dim=3, embedding_dim=2)
        attrs = np.eye(4, 3)
        ids = np.array([0, 1])
        masked = enc.node_embedding(ids, attrs, preference_mask=np.array([0.0, 1.0]))
        overridden = enc.node_embedding(
            ids, attrs, preference_override=np.vstack([np.zeros(2), enc.preference.weight.data[1:2], np.zeros((2, 2))])
        )
        np.testing.assert_allclose(masked.data[0], overridden.data[0])

    def test_attribute_embedding_matches_interaction(self, rng):
        enc = NodeEncoder(num_nodes=4, attr_dim=3, embedding_dim=2)
        attrs = (rng.random((4, 3)) < 0.5).astype(float)
        direct = enc.interaction(attrs[[1, 3]])
        via = enc.attribute_embedding(np.array([1, 3]), attrs)
        np.testing.assert_allclose(direct.data, via.data)
