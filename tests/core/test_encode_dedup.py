"""Parity: deduplicated batch encoding vs the per-occurrence reference.

``_encode_side`` now encodes each *distinct* node once and gathers the
per-occurrence rows differentiably.  Since every encoder stage is row-wise,
the dedup path must reproduce the encode-every-occurrence reference — the
pre-change implementation, reconstructed here from the encoder primitives —
including gradients and the corruption-mask training path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autograd import SparseRowGrad, ops
from repro.core import AGNN, AGNNConfig

SMALL = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=10.0)


def _dense(grad):
    return grad.to_dense() if isinstance(grad, SparseRowGrad) else grad


def _reference_encode(model, side, ids, preference_override=None, corruption_mask=None):
    """The pre-dedup path: encode the target and every neighbour occurrence."""
    encoder = model._encoder(side)
    attributes = model._attributes[side]
    target = encoder.node_embedding(ids, attributes, preference_override, corruption_mask)
    neighbour_ids = model._neighbours[side][np.asarray(ids, dtype=np.int64)]
    batch, k = neighbour_ids.shape
    flat = encoder.node_embedding(neighbour_ids.reshape(-1), attributes, preference_override)
    neighbours = ops.reshape(flat, (batch, k, model.config.embedding_dim))
    aggregated = model._aggregator(side)(target, neighbours)
    return aggregated, target


@pytest.fixture(scope="module")
def prepared_model(ics_task):
    nn.init.seed(0)
    model = AGNN(SMALL, rng_seed=0)
    model.task = ics_task
    model.prepare(ics_task)
    return model


class TestForwardParity:
    @pytest.mark.parametrize("side", ["user", "item"])
    def test_duplicate_heavy_batch_matches_reference(self, prepared_model, side):
        # Repeated ids guarantee the dedup path actually deduplicates.
        ids = np.array([0, 1, 2, 1, 0, 3, 2, 2], dtype=np.int64)
        got_agg, got_target = prepared_model._encode_side(side, ids)
        ref_agg, ref_target = _reference_encode(prepared_model, side, ids)
        np.testing.assert_array_equal(got_target.data, ref_target.data)
        np.testing.assert_array_equal(got_agg.data, ref_agg.data)

    def test_random_batches_match_reference(self, prepared_model, rng):
        n = prepared_model._attributes["item"].shape[0]
        for _ in range(5):
            ids = rng.integers(0, n, size=17)
            got_agg, _ = prepared_model._encode_side("item", ids)
            ref_agg, _ = _reference_encode(prepared_model, "item", ids)
            np.testing.assert_array_equal(got_agg.data, ref_agg.data)

    def test_preference_override_matches_reference(self, prepared_model, rng):
        n = prepared_model._attributes["user"].shape[0]
        override = rng.normal(size=(n, SMALL.embedding_dim))
        ids = np.array([4, 4, 5, 6, 5], dtype=np.int64)
        got_agg, _ = prepared_model._encode_side("user", ids, preference_override=override)
        ref_agg, _ = _reference_encode(prepared_model, "user", ids, preference_override=override)
        np.testing.assert_array_equal(got_agg.data, ref_agg.data)

    def test_corruption_mask_path_matches_reference(self, prepared_model, rng):
        # With a per-occurrence mask the targets cannot dedup (each row has its
        # own corruption) but the unmasked neighbours still must match.
        ids = np.array([1, 3, 3, 7], dtype=np.int64)
        mask = (rng.random(4) < 0.5).astype(np.float64)
        got_agg, got_target = prepared_model._encode_side("user", ids, corruption_mask=mask)
        ref_agg, ref_target = _reference_encode(prepared_model, "user", ids, corruption_mask=mask)
        np.testing.assert_array_equal(got_target.data, ref_target.data)
        np.testing.assert_array_equal(got_agg.data, ref_agg.data)


class TestGradientParity:
    @pytest.mark.parametrize("side", ["user", "item"])
    def test_parameter_gradients_match_reference(self, prepared_model, side):
        model = prepared_model
        ids = np.array([0, 2, 1, 2, 0], dtype=np.int64)

        def grads_from(encode):
            for p in model.parameters():
                p.zero_grad()
            aggregated, target = encode()
            loss = ops.add(ops.sum(ops.square(aggregated)), ops.sum(ops.square(target)))
            loss.backward()
            return {name: _dense(p.grad).copy() for name, p in model.named_parameters() if p.grad is not None}

        got = grads_from(lambda: model._encode_side(side, ids))
        ref = grads_from(lambda: _reference_encode(model, side, ids))
        assert set(got) == set(ref)
        # Forward values are bitwise-equal (gathers), but the backward
        # scatter-add groups contributions per *unique* node while the
        # reference accumulates per occurrence — a different summation
        # order, so gradients agree only to the last few ulps.
        for name in ref:
            np.testing.assert_allclose(got[name], ref[name], rtol=1e-12, atol=1e-15, err_msg=name)


class TestAttrCache:
    def test_cache_holds_detached_unique_attribute_rows(self, prepared_model):
        model = prepared_model
        ids = np.array([5, 1, 5, 2], dtype=np.int64)
        model._encode_side("item", ids)
        cache = model._encode_attr_cache["item"]
        assert cache is not None
        unique, attr_rows = cache
        neighbour_ids = model._neighbours["item"][ids]
        expected_unique = np.unique(np.concatenate([ids, neighbour_ids.reshape(-1)]))
        np.testing.assert_array_equal(unique, expected_unique)
        encoder = model._encoder("item")
        fresh = encoder.attribute_embedding(unique, model._attributes["item"])
        np.testing.assert_array_equal(attr_rows, fresh.data)

    def test_masked_encode_invalidates_cache(self, prepared_model, rng):
        model = prepared_model
        ids = np.array([0, 1], dtype=np.int64)
        model._encode_side("user", ids)
        assert model._encode_attr_cache["user"] is not None
        mask = (rng.random(2) < 0.5).astype(np.float64)
        model._encode_side("user", ids, corruption_mask=mask)
        assert model._encode_attr_cache["user"] is None
