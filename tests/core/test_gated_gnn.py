"""Gated-GNN and the replacement aggregators."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, ops
from repro.core import (
    GATAggregator,
    GatedGNN,
    GCNAggregator,
    IdentityAggregator,
    make_aggregator,
)


def batch(rng, b=3, k=4, d=5):
    return (
        Tensor(rng.normal(size=(b, d))),
        Tensor(rng.normal(size=(b, k, d))),
    )


class TestGatedGNN:
    def test_output_shape(self, rng):
        target, neigh = batch(rng)
        out = GatedGNN(5)(target, neigh)
        assert out.shape == (3, 5)

    def test_filter_gate_starts_nearly_closed(self):
        """At init the filter bias is −2, so the target keeps ≈88% of itself."""
        gnn = GatedGNN(5)
        gnn.w_filter.weight.data[...] = 0.0  # isolate the bias initialisation
        target = Tensor(np.ones((1, 5)))
        neigh = Tensor(np.zeros((1, 2, 5)))
        out = gnn(target, neigh)
        # with zero neighbours, out = LeakyReLU(target ⊙ (1−σ(−2)))
        expected = 1.0 - 1.0 / (1.0 + np.exp(2.0))
        np.testing.assert_allclose(out.data, expected, atol=1e-9)

    def test_no_aggregate_gate_is_plain_mean(self, rng):
        gnn = GatedGNN(5, use_aggregate_gate=False, use_filter_gate=False)
        target, neigh = batch(rng)
        out = gnn(target, neigh)
        expected = ops.leaky_relu(ops.add(target, ops.mean(neigh, axis=1)), 0.01)
        np.testing.assert_allclose(out.data, expected.data)

    def test_gates_affect_output(self, rng):
        target, neigh = batch(rng)
        full = GatedGNN(5)(target, neigh)
        ungated = GatedGNN(5, use_aggregate_gate=False, use_filter_gate=False)(target, neigh)
        assert not np.allclose(full.data, ungated.data)

    def test_gradients_flow_to_gate_weights(self, rng):
        gnn = GatedGNN(5)
        target, neigh = batch(rng)
        gnn(target, neigh).sum().backward()
        assert gnn.w_aggregate.weight.grad is not None
        assert gnn.w_filter.weight.grad is not None

    def test_gradcheck_small(self, rng):
        gnn = GatedGNN(3)
        target = Tensor(rng.normal(size=(2, 3)))
        neigh = Tensor(rng.normal(size=(2, 2, 3)))
        params = [gnn.w_aggregate.weight, gnn.w_filter.weight]
        gradcheck(lambda *_: gnn(target, neigh), params)

    def test_homophily_filter_suppresses_inconsistent_dims(self):
        """A trained-like filter gate removes target information; verify the
        mechanism: f_gate=1 ⇒ target contributes nothing."""
        gnn = GatedGNN(2, use_aggregate_gate=False)
        gnn.w_filter.weight.data[...] = 0.0
        gnn.w_filter.bias.data[...] = 100.0  # sigmoid → 1: filter everything
        target = Tensor(np.array([[5.0, -5.0]]))
        neigh = Tensor(np.zeros((1, 3, 2)))
        out = gnn(target, neigh)
        np.testing.assert_allclose(out.data, 0.0, atol=1e-10)


class TestReplacementAggregators:
    def test_gcn_shape(self, rng):
        target, neigh = batch(rng)
        assert GCNAggregator(5)(target, neigh).shape == (3, 5)

    def test_gat_weights_sum_to_one(self, rng):
        """GAT attention is a convex combination: equal neighbours → plain mean + residual."""
        gat = GATAggregator(5)
        target = Tensor(rng.normal(size=(2, 5)))
        same = Tensor(np.tile(rng.normal(size=(2, 1, 5)), (1, 4, 1)))
        out = gat(target, same)
        expected = ops.leaky_relu(ops.add(target, ops.mean(same, axis=1)), 0.01)
        np.testing.assert_allclose(out.data, expected.data, atol=1e-10)

    def test_identity_ignores_neighbours(self, rng):
        target, neigh = batch(rng)
        out = IdentityAggregator()(target, neigh)
        np.testing.assert_array_equal(out.data, target.data)

    def test_factory_dispatch(self):
        assert isinstance(make_aggregator("gated", 4), GatedGNN)
        assert isinstance(make_aggregator("gcn", 4), GCNAggregator)
        assert isinstance(make_aggregator("gat", 4), GATAggregator)
        assert isinstance(make_aggregator("none", 4), IdentityAggregator)

    def test_factory_unknown(self):
        with pytest.raises(ValueError):
            make_aggregator("transformer", 4)

    def test_factory_gate_switches(self):
        gnn = make_aggregator("gated", 4, use_aggregate_gate=False, use_filter_gate=True)
        assert not gnn.use_aggregate_gate
        assert gnn.use_filter_gate
