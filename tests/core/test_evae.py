"""eVAE: shapes, reparameterisation, loss components, generation."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.core import ExtendedVAE
from repro.core.cold_modules import EVAEStrategy


@pytest.fixture()
def vae():
    return ExtendedVAE(embedding_dim=6, hidden_dim=8, latent_dim=4, rng=np.random.default_rng(0))


class TestForward:
    def test_shapes(self, vae, rng):
        x = Tensor(rng.normal(size=(5, 6)))
        recon, mu, log_var = vae(x)
        assert recon.shape == (5, 6)
        assert mu.shape == (5, 4)
        assert log_var.shape == (5, 4)

    def test_deterministic_without_sampling(self, vae, rng):
        x = Tensor(rng.normal(size=(3, 6)))
        a, _, _ = vae(x, sample=False)
        b, _, _ = vae(x, sample=False)
        np.testing.assert_array_equal(a.data, b.data)

    def test_sampling_is_stochastic(self, vae, rng):
        x = Tensor(rng.normal(size=(3, 6)))
        a, _, _ = vae(x, sample=True)
        b, _, _ = vae(x, sample=True)
        assert not np.allclose(a.data, b.data)

    def test_log_var_clipped(self, vae, rng):
        x = Tensor(rng.normal(size=(3, 6)) * 1000)
        _, _, log_var = vae(x)
        assert (log_var.data >= -8.0).all() and (log_var.data <= 8.0).all()

    def test_generate_equals_deterministic_decode(self, vae, rng):
        x = Tensor(rng.normal(size=(3, 6)))
        gen = vae.generate(x)
        recon, _, _ = vae(x, sample=False)
        np.testing.assert_array_equal(gen.data, recon.data)


class TestLoss:
    def test_loss_is_scalar_and_finite(self, vae, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        m = Tensor(rng.normal(size=(4, 6)))
        loss, recon = vae.loss(x, preference_target=m)
        assert loss.data.shape == ()
        assert np.isfinite(loss.item())

    def test_approximation_requires_target(self, vae, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        with pytest.raises(ValueError):
            vae.loss(x, preference_target=None, use_approximation=True)

    def test_standard_vae_mode_needs_no_target(self, vae, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        loss, _ = vae.loss(x, use_approximation=False)
        assert np.isfinite(loss.item())

    def test_backward_reaches_all_vae_parameters(self, vae, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        m = Tensor(rng.normal(size=(4, 6)))
        vae.train()
        loss, _ = vae.loss(x, preference_target=m)
        loss.backward()
        for name, param in vae.named_parameters():
            assert param.grad is not None, f"no gradient for {name}"

    def test_quadratic_target_detached(self, vae, rng):
        """The NLL generation target must not receive gradients; the bounded
        approximation norm may."""
        x = Tensor(rng.normal(size=(4, 6)))
        m = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        vae.train()
        loss, _ = vae.loss(x, preference_target=m)
        loss.backward()
        # Gradient exists (via the approximation norm) but is bounded:
        # per-row gradient norm of mean ‖x'−m‖ is ≤ 1/batch.
        assert m.grad is not None
        row_norms = np.linalg.norm(m.grad, axis=1)
        assert (row_norms <= 1.0 / 4 + 1e-9).all()

    def test_training_can_learn_identity_map(self, rng):
        """The eVAE must be able to regress a learnable attr→pref mapping."""
        from repro.optim import Adam

        vae = ExtendedVAE(4, 16, 4, rng=np.random.default_rng(1))
        W = rng.normal(size=(4, 4))
        X = rng.normal(size=(64, 4))
        target = X @ W * 0.3
        opt = Adam(vae.parameters(), lr=0.01)
        vae.train()
        for _ in range(300):
            opt.zero_grad()
            loss, _ = vae.loss(Tensor(X), preference_target=Tensor(target))
            loss.backward()
            opt.step()
        vae.eval()
        with no_grad():
            gen = vae.generate(Tensor(X)).data
        # correlation between generated and target should be clearly positive
        corr = np.corrcoef(gen.reshape(-1), target.reshape(-1))[0, 1]
        assert corr > 0.5


class TestEVAEStrategy:
    def test_generate_returns_array(self, rng):
        strat = EVAEStrategy(6, 8, 4, 0.01, rng=np.random.default_rng(0))
        out = strat.generate(Tensor(rng.normal(size=(3, 6))))
        assert isinstance(out, np.ndarray)
        assert out.shape == (3, 6)

    def test_loss_normalised_by_dim(self, rng):
        """Strategy loss = vae loss / D — checked indirectly via magnitudes."""
        strat = EVAEStrategy(6, 8, 4, 0.01, rng=np.random.default_rng(0))
        strat.eval()
        x = Tensor(rng.normal(size=(4, 6)))
        m = Tensor(rng.normal(size=(4, 6)))
        strategy_loss = strat.reconstruction_loss(x, m).item()
        raw_loss, _ = strat.vae.loss(x, preference_target=m)
        assert strategy_loss == pytest.approx(raw_loss.item() / 6)
