"""AGNN end-to-end: config validation, training, cold-start inference paths."""

import numpy as np
import pytest

from repro import nn
from repro.core import AGNN, AGNNConfig, agnn_variant, ALL_VARIANTS
from repro.train import TrainConfig

FAST = TrainConfig(epochs=2, batch_size=64, learning_rate=0.01, patience=None)
SMALL = AGNNConfig(embedding_dim=6, num_neighbors=3, pool_percent=10.0)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = AGNNConfig()
        assert cfg.embedding_dim == 40
        assert cfg.pool_percent == 5.0
        assert cfg.recon_weight == 1.0
        assert cfg.num_neighbors == 10
        assert cfg.leaky_slope == 0.01

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"embedding_dim": 0},
            {"num_neighbors": 0},
            {"pool_percent": 0.0},
            {"pool_percent": 101.0},
            {"recon_weight": -1.0},
            {"mask_rate": 1.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AGNNConfig(**kwargs)

    def test_with_overrides(self):
        cfg = AGNNConfig().with_overrides(embedding_dim=8)
        assert cfg.embedding_dim == 8
        assert cfg.pool_percent == 5.0

    def test_default_constructed_models_do_not_share_config(self):
        # Regression: a mutable default AGNNConfig() in the signature would be
        # evaluated once and aliased across every default-constructed model.
        first, second = AGNN(), AGNN()
        assert first.config is not second.config
        assert first.config == second.config


class TestTraining:
    def test_fit_and_evaluate_ics(self, ics_task):
        nn.init.seed(0)
        model = AGNN(SMALL, rng_seed=0)
        history = model.fit(ics_task, FAST)
        assert history.num_epochs == 2
        result = model.evaluate()
        assert 0.3 < result.rmse < 2.0

    def test_history_has_both_loss_curves(self, ics_task):
        nn.init.seed(0)
        model = AGNN(SMALL, rng_seed=0)
        history = model.fit(ics_task, FAST)
        assert "prediction" in history.losses
        assert "reconstruction" in history.losses

    def test_no_evae_variant_has_no_reconstruction(self, ics_task):
        nn.init.seed(0)
        model = agnn_variant("AGNN_-eVAE", SMALL, seed=0)
        history = model.fit(ics_task, FAST)
        assert "reconstruction" not in history.losses

    def test_predictions_within_scale(self, ics_task):
        nn.init.seed(0)
        model = AGNN(SMALL, rng_seed=0)
        model.fit(ics_task, FAST)
        preds = model.predict(ics_task.test_users, ics_task.test_items)
        assert (preds >= 1.0).all() and (preds <= 5.0).all()

    def test_predict_before_fit_raises(self):
        model = AGNN(SMALL)
        with pytest.raises(RuntimeError):
            model.predict(np.array([0]), np.array([0]))

    def test_beats_global_mean_on_cold_items(self, ics_task):
        nn.init.seed(0)
        model = AGNN(SMALL, rng_seed=0)
        model.fit(ics_task, TrainConfig(epochs=6, batch_size=64, learning_rate=0.01, patience=None))
        rmse_model = model.evaluate().rmse
        mean_pred = np.full(len(ics_task.test_idx), ics_task.train_global_mean)
        rmse_mean = float(np.sqrt(np.mean((mean_pred - ics_task.test_ratings) ** 2)))
        assert rmse_model < rmse_mean


class TestColdInference:
    def test_cold_items_get_generated_preferences(self, ics_task):
        nn.init.seed(0)
        model = AGNN(SMALL, rng_seed=0)
        model.fit(ics_task, FAST)
        prefs = model.generated_preferences("item")
        cold = ics_task.cold_items
        trained = model.item_encoder.preference.weight.data
        # Cold rows replaced, warm rows untouched.
        warm = np.setdiff1d(np.arange(ics_task.dataset.num_items), cold)
        np.testing.assert_array_equal(prefs[warm], trained[warm])
        assert not np.allclose(prefs[cold], trained[cold])

    def test_null_strategy_zeroes_cold_rows(self, ics_task):
        nn.init.seed(0)
        model = agnn_variant("AGNN_-eVAE", SMALL, seed=0)
        model.fit(ics_task, FAST)
        prefs = model.generated_preferences("item")
        np.testing.assert_array_equal(prefs[ics_task.cold_items], 0.0)

    def test_generated_preferences_bad_side(self, ics_task):
        nn.init.seed(0)
        model = AGNN(SMALL, rng_seed=0)
        model.fit(ics_task, FAST)
        with pytest.raises(ValueError):
            model.generated_preferences("movie")

    def test_cold_predictions_differ_across_items(self, ics_task):
        """Cold items with different attributes must get different scores —
        the model is not collapsing to a constant."""
        nn.init.seed(0)
        model = AGNN(SMALL, rng_seed=0)
        model.fit(ics_task, FAST)
        user = ics_task.test_users[0]
        cold = ics_task.cold_items[:10]
        preds = model.predict(np.full(len(cold), user), cold)
        assert preds.std() > 1e-4


class TestVariants:
    @pytest.mark.parametrize("name", sorted(ALL_VARIANTS))
    def test_every_variant_trains(self, ics_task, name):
        nn.init.seed(0)
        model = agnn_variant(name, SMALL, seed=0)
        model.fit(ics_task, TrainConfig(epochs=1, batch_size=64, learning_rate=0.01, patience=None))
        result = model.evaluate()
        assert np.isfinite(result.rmse)
        assert model.name == name

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            agnn_variant("AGNN_turbo")

    def test_variant_configs_differ_from_trunk(self):
        knn = agnn_variant("AGNN_knn", SMALL)
        assert knn.config.graph_strategy == "knn"
        nogate = agnn_variant("AGNN_-agate", SMALL)
        assert not nogate.config.use_aggregate_gate
        llae = agnn_variant("AGNN_LLAE", SMALL)
        assert llae.config.aggregator == "none"
        assert llae.config.cold_module == "dae"


class TestEarlyStopping:
    def test_early_stopping_restores_best(self, ics_task):
        nn.init.seed(0)
        model = AGNN(SMALL, rng_seed=0)
        config = TrainConfig(epochs=20, batch_size=64, learning_rate=0.02, patience=2)
        history = model.fit(ics_task, config)
        assert history.num_epochs <= 20
        assert "val_rmse" in history.losses
        # Restored weights correspond to the best recorded validation epoch.
        best = min(history.losses["val_rmse"])
        assert best <= history.losses["val_rmse"][-1] + 1e-9

    def test_patience_none_runs_all_epochs(self, ics_task):
        nn.init.seed(0)
        model = AGNN(SMALL, rng_seed=0)
        history = model.fit(ics_task, TrainConfig(epochs=3, batch_size=64, patience=None))
        assert history.num_epochs == 3
        assert "val_rmse" not in history.losses
