"""Cold-start strategies: eVAE / VAE / DAE / mask / dropout / none."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.cold_modules import (
    CorruptionStrategy,
    DAEStrategy,
    EVAEStrategy,
    NullStrategy,
    make_cold_module,
)


class TestFactory:
    @pytest.mark.parametrize(
        "kind, cls",
        [
            ("evae", EVAEStrategy),
            ("vae", EVAEStrategy),
            ("dae", DAEStrategy),
            ("mask", CorruptionStrategy),
            ("dropout", CorruptionStrategy),
            ("none", NullStrategy),
        ],
    )
    def test_dispatch(self, kind, cls):
        strategy, _ = make_cold_module(kind, 8, 8, 8, 0.01, 0.2)
        assert isinstance(strategy, cls)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_cold_module("gan", 8, 8, 8, 0.01, 0.2)

    def test_vae_variant_disables_approximation(self):
        evae, _ = make_cold_module("evae", 8, 8, 8, 0.01, 0.2)
        vae, _ = make_cold_module("vae", 8, 8, 8, 0.01, 0.2)
        assert evae.use_approximation
        assert not vae.use_approximation

    def test_mask_reconstructs_dropout_does_not(self):
        mask, _ = make_cold_module("mask", 8, 8, 8, 0.01, 0.2)
        drop, _ = make_cold_module("dropout", 8, 8, 8, 0.01, 0.2)
        assert mask.reconstruct and mask.has_reconstruction_loss
        assert not drop.reconstruct and not drop.has_reconstruction_loss


class TestCorruption:
    def test_mask_rate_respected(self, rng):
        strategy = CorruptionStrategy(rate=0.3, reconstruct=False, embedding_dim=4)
        masks = np.concatenate([strategy.corruption_mask(1000, rng) for _ in range(5)])
        zero_rate = 1.0 - masks.mean()
        assert 0.25 < zero_rate < 0.35

    def test_zero_rate_never_masks(self, rng):
        strategy = CorruptionStrategy(rate=0.0, reconstruct=False, embedding_dim=4)
        np.testing.assert_array_equal(strategy.corruption_mask(50, rng), np.ones(50))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            CorruptionStrategy(rate=1.0, reconstruct=False, embedding_dim=4)

    def test_decode_loss_only_for_mask(self, rng):
        drop = CorruptionStrategy(rate=0.2, reconstruct=False, embedding_dim=4)
        with pytest.raises(RuntimeError):
            drop.decode_loss(Tensor(np.zeros((2, 4))), Tensor(np.zeros((2, 4))))

    def test_generate_returns_none_for_corruption(self, rng):
        strategy = CorruptionStrategy(rate=0.2, reconstruct=True, embedding_dim=4)
        assert strategy.generate(Tensor(np.zeros((2, 4)))) is None


class TestDAE:
    def test_generate_deterministic(self, rng):
        strategy = DAEStrategy(4, 6, rng=np.random.default_rng(0))
        x = Tensor(rng.normal(size=(3, 4)))
        a = strategy.generate(x)
        b = strategy.generate(x)
        np.testing.assert_array_equal(a, b)

    def test_noise_applied_in_training_loss_path(self, rng):
        strategy = DAEStrategy(4, 6, noise_std=0.5, rng=np.random.default_rng(0))
        x = Tensor(rng.normal(size=(3, 4)))
        m = Tensor(rng.normal(size=(3, 4)))
        a = strategy.reconstruction_loss(x, m).item()
        b = strategy.reconstruction_loss(x, m).item()
        assert a != b  # fresh noise each call

    def test_learns_linear_map(self, rng):
        from repro.optim import Adam

        strategy = DAEStrategy(4, 8, noise_std=0.05, rng=np.random.default_rng(0))
        W = rng.normal(size=(4, 4)) * 0.5
        X = rng.normal(size=(64, 4))
        target = X @ W
        opt = Adam(strategy.parameters(), lr=0.01)
        for _ in range(300):
            opt.zero_grad()
            loss = strategy.reconstruction_loss(Tensor(X), Tensor(target))
            loss.backward()
            opt.step()
        gen = strategy.generate(Tensor(X))
        corr = np.corrcoef(gen.reshape(-1), target.reshape(-1))[0, 1]
        assert corr > 0.9


class TestNull:
    def test_no_reconstruction_no_generation(self, rng):
        strategy = NullStrategy()
        assert not strategy.has_reconstruction_loss
        assert not strategy.corrupts_preference
        assert strategy.generate(Tensor(np.zeros((2, 4)))) is None
        assert strategy.corruption_mask(10, rng) is None
