"""The candidate-pool parity harness: approximate vs exact graph construction.

Three contracts:

* the default ``"exact"`` strategy is **bitwise-identical** to the fused
  blockwise build it refactored (zero golden drift);
* the ``"inverted"`` strategy clears the committed score-recall floor on the
  seeded parity sweep, and is deterministic call-to-call;
* the strategy flag plumbs through ``AGNNConfig`` / ``build_graph_from_arrays``
  with validation at both layers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AGNNConfig
from repro.graphs.candidates import CandidateIndex, build_candidate_graph, default_budgets
from repro.graphs.construction import CANDIDATE_STRATEGIES, build_graph_from_arrays
from repro.graphs.parity import (
    DEFAULT_SWEEP,
    assert_overlap_floor,
    parity_case,
    parity_sweep,
    pool_overlap,
    synthetic_inputs,
)
from repro.graphs.proximity import combined_proximity
from repro.perf import build_fused

pytestmark = pytest.mark.graphs

OVERLAP_FLOOR = 0.95


def _assert_graphs_identical(got, expected):
    assert got.num_nodes == expected.num_nodes
    for i in range(expected.num_nodes):
        np.testing.assert_array_equal(got.pools[i], expected.pools[i], err_msg=f"pools[{i}]")
        np.testing.assert_array_equal(got.weights[i], expected.weights[i], err_msg=f"weights[{i}]")


class TestExactDefaultBitwise:
    def test_exact_strategy_matches_fused_reference_bitwise(self):
        attributes, ratings = synthetic_inputs(180, attr_dim=30, num_ratings=40, seed=7)
        got = build_graph_from_arrays(attributes, ratings, 12)
        _assert_graphs_identical(got, build_fused(attributes, ratings, 12))

    def test_exact_is_the_default_strategy(self):
        attributes, ratings = synthetic_inputs(60, attr_dim=20, num_ratings=15, seed=1)
        default = build_graph_from_arrays(attributes, ratings, 8)
        explicit = build_graph_from_arrays(attributes, ratings, 8, candidate_strategy="exact")
        _assert_graphs_identical(default, explicit)


class TestParitySweep:
    def test_default_sweep_clears_committed_floor(self):
        payload = parity_sweep(floor=OVERLAP_FLOOR)
        assert payload["aggregate"]["ok"], payload["aggregate"]
        assert_overlap_floor(payload)  # must not raise
        assert payload["aggregate"]["cases"] == len(DEFAULT_SWEEP)

    def test_single_case_reports_distributions(self):
        entry = parity_case(n=150, attr_dim=25, num_ratings=30, pool_percent=8.0, seed=3)
        for metric in ("jaccard", "recall", "score_recall"):
            summary = entry[metric]
            assert set(summary) == {"mean", "min", "p10", "p50", "p90"}
            assert 0.0 <= summary["min"] <= summary["mean"] <= 1.0

    def test_assert_overlap_floor_raises_below_bar(self):
        payload = parity_sweep(floor=OVERLAP_FLOOR)
        with pytest.raises(AssertionError, match="overlap below floor"):
            assert_overlap_floor(payload, floor=1.01)

    def test_score_recall_passes_tied_substitutions_and_fails_misses(self):
        # Node 0's exact pool is {1}, approx pool is {2}; with equal scores the
        # substitution passes, with a lower score it fails.
        from repro.graphs.construction import DynamicNeighborGraph

        pools = lambda ids: DynamicNeighborGraph(
            pools=[np.array(p, dtype=np.int64) for p in ids],
            weights=[np.ones(len(p)) for p in ids],
        )
        exact = pools([[1], [0], [0]])
        approx = pools([[2], [0], [0]])
        tied = np.array([[0.0, 0.5, 0.5], [0.5, 0.0, 0.1], [0.5, 0.1, 0.0]])
        worse = np.array([[0.0, 0.5, 0.2], [0.5, 0.0, 0.1], [0.2, 0.1, 0.0]])
        assert pool_overlap(exact, approx, proximity=tied)["score_recall"][0] == 1.0
        assert pool_overlap(exact, approx, proximity=worse)["score_recall"][0] == 0.0


class TestInvertedDeterminism:
    def test_repeated_builds_are_bitwise_identical(self):
        attributes, ratings = synthetic_inputs(220, attr_dim=35, num_ratings=50, seed=11)
        first = build_candidate_graph(attributes, ratings, 14)
        second = build_candidate_graph(attributes, ratings, 14)
        _assert_graphs_identical(first, second)

    def test_pools_are_id_sorted_on_score_ties(self):
        # Identical attribute rows make every candidate score tie: the pool
        # must be the lowest candidate ids, ascending (lexsort contract).
        attributes = np.tile(np.array([[1.0, 0.0, 1.0]]), (12, 1))
        graph = build_candidate_graph(attributes, None, 4, use_preference=False)
        for i in range(12):
            expected = np.array([j for j in range(12) if j != i][:4], dtype=np.int64)
            np.testing.assert_array_equal(graph.pools[i], expected)


class TestCandidateIndex:
    def test_postings_are_id_sorted_and_growable(self):
        features = np.array([[1, 0], [1, 1], [0, 1], [1, 0]], dtype=np.float64)
        index = CandidateIndex(features)
        np.testing.assert_array_equal(index._postings[0], [0, 1, 3])
        np.testing.assert_array_equal(index._postings[1], [1, 2])
        new_id = index.add_row(np.array([0.0, 2.5]))
        assert new_id == 4 and index.num_nodes == 5
        np.testing.assert_array_equal(index._postings[1], [1, 2, 4])

    def test_exclude_and_cap(self):
        features = np.ones((10, 1))
        index = CandidateIndex(features, scan_budget=100, max_candidates=4)
        got = index.candidates_for_features(np.array([0]), exclude=2)
        assert 2 not in got and got.size == 4
        np.testing.assert_array_equal(got, np.sort(got))

    def test_scan_budget_truncates_single_giant_posting(self):
        features = np.ones((50, 1))
        index = CandidateIndex(features, scan_budget=8, max_candidates=100)
        got = index.candidates_for_features(np.array([0]))
        assert got.size <= 8
        np.testing.assert_array_equal(got, np.sort(got))
        # Deterministic: same query, same subsample.
        np.testing.assert_array_equal(got, index.candidates_for_features(np.array([0])))

    def test_row_width_validation(self):
        index = CandidateIndex(np.ones((3, 2)))
        with pytest.raises(ValueError, match="feature row has"):
            index.candidates_for_row(np.ones(3))
        with pytest.raises(ValueError, match="feature row has"):
            index.add_row(np.ones(5))

    def test_budgets_scale_with_pool_not_n(self):
        assert default_budgets(10) == (1024, 256)
        scan, cap = default_budgets(100)
        assert scan >= 16 * 100 and cap >= 4 * 100


class TestStrategyPlumbing:
    def test_unknown_strategy_rejected_at_graph_layer(self):
        attributes, ratings = synthetic_inputs(20, attr_dim=8, num_ratings=10, seed=0)
        with pytest.raises(ValueError, match="unknown candidate strategy"):
            build_graph_from_arrays(attributes, ratings, 5, candidate_strategy="lsh")

    def test_unknown_strategy_rejected_at_config_layer(self):
        with pytest.raises(ValueError, match="graph_candidate_strategy"):
            AGNNConfig(graph_candidate_strategy="annoy")

    def test_config_default_is_exact(self):
        assert AGNNConfig().graph_candidate_strategy == "exact"
        assert CANDIDATE_STRATEGIES == ("exact", "inverted")

    def test_inverted_strategy_routes_to_candidate_builder(self):
        attributes, ratings = synthetic_inputs(90, attr_dim=25, num_ratings=20, seed=5)
        via_flag = build_graph_from_arrays(
            attributes, ratings, 9, candidate_strategy="inverted"
        )
        direct = build_candidate_graph(attributes, ratings, 9)
        _assert_graphs_identical(via_flag, direct)

    def test_model_level_flag_changes_built_graph(self, ics_task):
        # End-to-end: an AGNN configured with "inverted" builds pools whose
        # exact-score profile matches the exact strategy's (same model, same
        # task) to the committed floor.
        from repro.core.model import AGNN

        task = ics_task
        exact_model = AGNN(AGNNConfig(embedding_dim=6))
        inverted_model = AGNN(
            AGNNConfig(embedding_dim=6, graph_candidate_strategy="inverted")
        )
        exact_graph = exact_model._build_graph(task, "item")
        inverted_graph = inverted_model._build_graph(task, "item")
        assert inverted_graph.num_nodes == exact_graph.num_nodes
        matrix = task.train_rating_matrix()
        proximity = combined_proximity(task.dataset.item_attributes, matrix.T)
        overlap = pool_overlap(exact_graph, inverted_graph, proximity=proximity)
        assert overlap["score_recall"].mean() >= OVERLAP_FLOOR
