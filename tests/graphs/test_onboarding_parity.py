"""Cross-oracle parity: serving splice and live splice vs the batch builder.

``serving.onboarding.splice_neighbours`` and ``live.incremental._splice_side``
both re-derive a cold node's candidate pool with attribute-cosine proximity —
historically with no shared oracle against the batch path.  These tests make
``build_attribute_graph``-style pools the oracle: for a history-less node the
batch builder's combined proximity reduces to min–max-normalised attribute
cosine, which is monotone in the raw cosine both splice paths rank by, so the
pools must agree as score profiles (ties between equal-cosine candidates may
resolve differently — the same tie-awareness the parity sweep uses).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.candidates import CandidateIndex, default_budgets
from repro.graphs.construction import DynamicNeighborGraph, build_graph_from_arrays
from repro.graphs.parity import pool_overlap, synthetic_inputs
from repro.live.incremental import _splice_side
from repro.serving.onboarding import splice_neighbours

pytestmark = pytest.mark.graphs

FLOOR = 0.95


class _Config:
    def __init__(self, pool_percent=10.0, num_neighbors=5, strategy="exact"):
        self.pool_percent = pool_percent
        self.num_neighbors = num_neighbors
        self.graph_candidate_strategy = strategy


def _score_recall(exact_pool, got_pool, scores):
    """Position-wise score recall of one pool against the oracle pool."""
    ve = np.sort(scores[exact_pool])[::-1]
    va = np.sort(scores[got_pool])[::-1]
    if va.size < ve.size:
        va = np.concatenate([va, np.full(ve.size - va.size, -np.inf)])
    return float(np.mean(va[: ve.size] >= ve - 1e-9))


class TestServingSpliceVsBatchBuilder:
    def _oracle(self, attributes, pool_percent, min_pool):
        # History-less node set: the batch builder with preference off is the
        # ground truth the serving splice mirrors per-node.
        n = attributes.shape[0]
        pool_size = int(np.clip(max(round(n * pool_percent / 100.0), min_pool), 1, n - 1))
        return build_graph_from_arrays(
            attributes, None, pool_size, use_preference=False
        )

    def test_exact_splice_matches_batch_pools(self):
        attributes, _ = synthetic_inputs(120, attr_dim=30, num_ratings=5, seed=9)
        oracle = self._oracle(attributes, pool_percent=10.0, min_pool=5)
        recalls = []
        for i in range(attributes.shape[0]):
            _, pool, _ = splice_neighbours(
                attributes[i], attributes, pool_percent=10.0, k=3, min_pool=5, exclude=i
            )
            sims = attributes @ attributes[i] / np.maximum(
                np.linalg.norm(attributes, axis=1) * np.linalg.norm(attributes[i]), 1e-12
            )
            sims[i] = -np.inf
            recalls.append(_score_recall(oracle.pools[i], pool, sims))
        assert np.mean(recalls) >= FLOOR, np.mean(recalls)

    def test_indexed_splice_matches_exact_splice(self):
        attributes, _ = synthetic_inputs(150, attr_dim=40, num_ratings=5, seed=4)
        scan, cap = default_budgets(15)
        index = CandidateIndex(attributes != 0, scan_budget=scan, max_candidates=cap)
        recalls = []
        for i in range(attributes.shape[0]):
            _, exact_pool, _ = splice_neighbours(
                attributes[i], attributes, pool_percent=10.0, k=3, min_pool=5, exclude=i
            )
            _, fast_pool, _ = splice_neighbours(
                attributes[i], attributes, pool_percent=10.0, k=3, min_pool=5,
                index=index, exclude=i,
            )
            sims = attributes @ attributes[i] / np.maximum(
                np.linalg.norm(attributes, axis=1) * np.linalg.norm(attributes[i]), 1e-12
            )
            sims[i] = -np.inf
            recalls.append(_score_recall(exact_pool, fast_pool, sims))
        assert np.mean(recalls) >= FLOOR, np.mean(recalls)

    def test_default_path_unchanged_without_new_args(self):
        # The new parameters must be inert when unused: identical output to a
        # hand-rolled call of the original algorithm.
        attributes, _ = synthetic_inputs(60, attr_dim=20, num_ratings=5, seed=2)
        row = attributes[0] * 0.5 + 0.5  # a novel row, not in the matrix
        neighbours, pool, weights = splice_neighbours(
            row, attributes, pool_percent=12.0, k=4, min_pool=6
        )
        from repro.nn.functional import cosine_similarity_matrix

        similarity = cosine_similarity_matrix(row[None, :], attributes)[0]
        pool_size = int(np.clip(max(round(60 * 12.0 / 100.0), 6), 1, 60))
        expected = np.argpartition(-similarity, pool_size - 1)[:pool_size]
        expected = expected[np.argsort(-similarity[expected], kind="stable")]
        np.testing.assert_array_equal(pool, expected)
        np.testing.assert_array_equal(neighbours, pool[:4])
        np.testing.assert_array_equal(weights, similarity[expected] - similarity[expected].min() + 1e-6)


class TestLiveSpliceVsRebuild:
    def _setup(self, n_old=90, n_new=14, seed=6):
        attributes, _ = synthetic_inputs(n_old + n_new, attr_dim=30, num_ratings=5, seed=seed)
        base = build_graph_from_arrays(attributes[:n_old], None, 9, use_preference=False)
        return attributes, base, n_old

    @pytest.mark.parametrize("strategy", ["exact", "inverted"])
    def test_spliced_pools_match_from_scratch_rebuild(self, strategy):
        attributes, base, n_old = self._setup()
        config = _Config(strategy=strategy)
        spliced = _splice_side(base, attributes, config)
        assert isinstance(spliced, DynamicNeighborGraph)
        assert spliced.num_nodes == attributes.shape[0]
        # Old nodes' pools are untouched by contract.
        for i in range(n_old):
            np.testing.assert_array_equal(spliced.pools[i], base.pools[i])
        # New nodes: compare against a from-scratch rebuild on the full node
        # set (all nodes history-less → pure attribute proximity), tie-aware.
        n = attributes.shape[0]
        pool_size = max(int(round(n * config.pool_percent / 100.0)), config.num_neighbors)
        rebuilt = build_graph_from_arrays(attributes, None, pool_size, use_preference=False)
        unit = attributes / np.maximum(
            np.linalg.norm(attributes, axis=1, keepdims=True), 1e-12
        )
        proximity = unit @ unit.T
        np.fill_diagonal(proximity, -np.inf)
        recalls = [
            _score_recall(rebuilt.pools[i], spliced.pools[i], proximity[i])
            for i in range(n_old, n)
        ]
        assert np.mean(recalls) >= FLOOR, (strategy, np.mean(recalls))

    def test_splice_is_noop_when_no_new_nodes(self):
        attributes, base, n_old = self._setup(n_new=0)
        assert _splice_side(base, attributes, _Config()) is base

    def test_shrunken_attributes_rejected(self):
        attributes, base, n_old = self._setup()
        with pytest.raises(ValueError, match="extended attribute matrix"):
            _splice_side(base, attributes[: n_old - 1], _Config())
