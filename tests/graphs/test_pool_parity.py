"""Parity: vectorised graph construction vs the pre-optimisation reference.

The blockwise pool extraction and the fused proximity builder replaced
per-row / materialise-everything implementations.  These tests pin the
optimised paths to the originals, which live on in ``repro.perf.bench`` as
the micro-benchmark baselines:

* pools and weights from ``_pool_from_proximity`` must match the per-row
  reference **exactly** (the per-row argpartition/argsort calls are the same,
  so nothing may drift — including tie handling);
* ``BlockwiseProximity`` must reproduce ``combined_proximity`` to the last
  few ulps (row-blocked GEMMs may round differently at some shapes);
* the fused build must select the same pools as materialise-then-pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.construction import FixedNeighborGraph, _pool_from_proximity
from repro.graphs.proximity import BlockwiseProximity, combined_proximity
from repro.perf import build_fused, build_reference, pool_reference, synthetic_graph_inputs


def _random_proximity(rng, n):
    matrix = rng.normal(size=(n, n))
    np.fill_diagonal(matrix, -np.inf)
    return matrix


def _assert_graphs_equal(got, expected, weights_exact=True):
    assert got.num_nodes == expected.num_nodes
    for i in range(expected.num_nodes):
        np.testing.assert_array_equal(got.pools[i], expected.pools[i], err_msg=f"pools[{i}]")
        if weights_exact:
            np.testing.assert_array_equal(got.weights[i], expected.weights[i], err_msg=f"weights[{i}]")
        else:
            np.testing.assert_allclose(got.weights[i], expected.weights[i], rtol=1e-9, err_msg=f"weights[{i}]")


class TestPoolParity:
    @pytest.mark.parametrize("n,pool_size,block_rows", [(60, 7, 16), (123, 30, 50), (41, 40, 512)])
    def test_random_matrices_match_reference_exactly(self, rng, n, pool_size, block_rows):
        proximity = _random_proximity(rng, n)
        got = _pool_from_proximity(proximity, pool_size, block_rows=block_rows)
        _assert_graphs_equal(got, pool_reference(proximity, pool_size))

    def test_tie_heavy_matrix_matches_reference(self, rng):
        # Quantised values create massive ties: argpartition/argsort order among
        # equals is implementation-defined but must agree since both paths run
        # the same per-row kernels.
        proximity = np.round(rng.random((80, 80)) * 4) / 4
        np.fill_diagonal(proximity, -np.inf)
        got = _pool_from_proximity(proximity, 10, block_rows=32)
        _assert_graphs_equal(got, pool_reference(proximity, 10))

    def test_rows_with_nonfinite_entries_fall_back_per_row(self, rng):
        proximity = _random_proximity(rng, 50)
        # Row 3 has fewer finite entries than the pool: the clean fast path
        # cannot apply, and the result must still match the reference filter.
        proximity[3, :45] = -np.inf
        proximity[7, ::2] = np.inf  # +inf entries rank first and are kept
        got = _pool_from_proximity(proximity, 12, block_rows=20)
        _assert_graphs_equal(got, pool_reference(proximity, 12))

    def test_all_rows_nearly_empty(self, rng):
        proximity = np.full((12, 12), -np.inf)
        finite = rng.random((12, 12)) < 0.25
        np.fill_diagonal(finite, False)
        finite[np.flatnonzero(finite.sum(axis=1) == 0), 0] = True  # >=1 finite per row
        finite[np.arange(12) == 0, 1] = True
        proximity[finite] = rng.random(int(finite.sum()))
        np.fill_diagonal(proximity, -np.inf)
        got = _pool_from_proximity(proximity, 5, block_rows=4)
        _assert_graphs_equal(got, pool_reference(proximity, 5))


class TestBlockwiseProximity:
    @pytest.mark.parametrize("use_attribute,use_preference", [(True, True), (True, False), (False, True)])
    def test_materialise_matches_combined(self, use_attribute, use_preference):
        attributes, ratings = synthetic_graph_inputs(n=157, attr_dim=23, num_ratings=40, seed=3)
        ratings[::5] = 0.0  # some nodes with no history
        reference = combined_proximity(
            attributes, ratings if use_preference else None,
            use_attribute=use_attribute, use_preference=use_preference,
        )
        got = BlockwiseProximity(
            attributes, ratings if use_preference else None,
            use_attribute=use_attribute, use_preference=use_preference, block_rows=48,
        ).materialise()
        # Row-blocked GEMMs are not universally bitwise-equal to the full GEMM,
        # so the contract is last-ulps closeness plus an identical -inf diagonal.
        np.testing.assert_allclose(got, reference, rtol=1e-12, atol=1e-15)
        np.testing.assert_array_equal(np.isneginf(got), np.isneginf(reference))

    def test_no_history_at_all_zeroes_preference_term(self):
        attributes, _ = synthetic_graph_inputs(n=30, attr_dim=10, num_ratings=8, seed=1)
        ratings = np.zeros((30, 8))
        reference = combined_proximity(attributes, ratings)
        got = BlockwiseProximity(attributes, ratings, block_rows=7).materialise()
        np.testing.assert_allclose(got, reference, rtol=1e-12, atol=1e-15)

    def test_constant_attributes_degenerate_range(self):
        # max - min < 1e-12: min_max_normalise maps everything to zero.
        attributes = np.ones((20, 6))
        _, ratings = synthetic_graph_inputs(n=20, attr_dim=6, num_ratings=12, seed=2)
        reference = combined_proximity(attributes, ratings)
        got = BlockwiseProximity(attributes, ratings, block_rows=6).materialise()
        np.testing.assert_allclose(got, reference, rtol=1e-12, atol=1e-15)

    def test_flag_validation_matches_combined(self):
        attributes, ratings = synthetic_graph_inputs(n=10, attr_dim=4, num_ratings=6, seed=0)
        with pytest.raises(ValueError):
            BlockwiseProximity(attributes, ratings, use_attribute=False, use_preference=False)
        with pytest.raises(ValueError):
            BlockwiseProximity(attributes, None, use_preference=True)


class TestFusedBuild:
    def test_fused_build_matches_materialised_build(self):
        attributes, ratings = synthetic_graph_inputs(n=220, attr_dim=18, num_ratings=35, seed=5)
        got = build_fused(attributes, ratings, pool_size=15)
        expected = build_reference(attributes, ratings, pool_size=15)
        # Proximity values may differ in the last ulps (blocked GEMM), which can
        # in principle reorder near-ties; at these shapes the selection agrees
        # and weights match to 1e-9.
        _assert_graphs_equal(got, expected, weights_exact=False)


class TestFixedNeighborPadding:
    def test_modular_padding_equals_tile(self, rng):
        matrix = rng.integers(0, 50, size=(50, 4))
        graph = FixedNeighborGraph(matrix=matrix)
        for k in (5, 8, 11):
            expected = np.tile(matrix, (1, -(-k // 4)))[:, :k]
            np.testing.assert_array_equal(graph.neighbours(k), expected)

    def test_within_stored_width_is_a_prefix(self, rng):
        matrix = rng.integers(0, 9, size=(9, 6))
        graph = FixedNeighborGraph(matrix=matrix)
        np.testing.assert_array_equal(graph.neighbours(3), matrix[:, :3])
