"""Property-based parity: BlockwiseProximity vs all-pairs combined_proximity.

Randomised inputs (seeded and derandomised — CI never flakes) sweep node
counts, feature widths, block sizes and the degenerate corners the fixtures
never quite hit: constant attribute rows (range < 1e-12 → the term zeroes),
all-empty rating vectors (no history anywhere → preference term zeroes), and
single-history nodes (the mask keeps exactly one row's pairs).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.proximity import BlockwiseProximity, combined_proximity

pytestmark = pytest.mark.graphs

SETTINGS = dict(max_examples=25, deadline=None, derandomize=True)


def _inputs(seed: int, n: int, attr_dim: int, num_ratings: int, attr_density: float,
            rating_density: float) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    attributes = (rng.random((n, attr_dim)) < attr_density).astype(np.float64)
    ratings = np.where(
        rng.random((n, num_ratings)) < rating_density,
        rng.integers(1, 6, (n, num_ratings)),
        0,
    ).astype(np.float64)
    return attributes, ratings


def _assert_parity(attributes, ratings, block_rows, use_attribute=True, use_preference=True):
    reference = combined_proximity(
        attributes, ratings if use_preference else None,
        use_attribute=use_attribute, use_preference=use_preference,
    )
    got = BlockwiseProximity(
        attributes, ratings if use_preference else None,
        use_attribute=use_attribute, use_preference=use_preference,
        block_rows=block_rows,
    ).materialise()
    np.testing.assert_allclose(got, reference, rtol=1e-12, atol=1e-15)
    np.testing.assert_array_equal(np.isneginf(got), np.isneginf(reference))


class TestRandomisedParity:
    @settings(**SETTINGS)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(3, 64),
        attr_dim=st.integers(1, 20),
        num_ratings=st.integers(1, 24),
        attr_density=st.floats(0.02, 0.9),
        rating_density=st.floats(0.0, 0.4),
        block_rows=st.sampled_from([1, 3, 7, 16, 512]),
    )
    def test_random_inputs(self, seed, n, attr_dim, num_ratings, attr_density,
                           rating_density, block_rows):
        attributes, ratings = _inputs(seed, n, attr_dim, num_ratings, attr_density, rating_density)
        _assert_parity(attributes, ratings, block_rows)

    @settings(**SETTINGS)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(3, 40),
        block_rows=st.sampled_from([2, 5, 512]),
        use_preference=st.booleans(),
    )
    def test_constant_attribute_rows(self, seed, n, block_rows, use_preference):
        # Identical rows: attribute similarity is constant, max - min < 1e-12,
        # and min_max_normalise's degenerate branch must zero the whole term.
        attributes = np.ones((n, 6))
        _, ratings = _inputs(seed, n, 6, 12, 0.5, 0.3)
        _assert_parity(attributes, ratings, block_rows, use_preference=use_preference)

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 2**16), n=st.integers(3, 40), block_rows=st.sampled_from([3, 512]))
    def test_empty_rating_vectors(self, seed, n, block_rows):
        # Nobody has history: the preference mask is empty and the term zeroes.
        attributes, _ = _inputs(seed, n, 8, 6, 0.4, 0.0)
        ratings = np.zeros((n, 6))
        _assert_parity(attributes, ratings, block_rows)

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 2**16), block_rows=st.sampled_from([2, 512]))
    def test_single_history_node(self, seed, block_rows):
        # Exactly one node with history: the masked preference range collapses
        # (a single diagonal entry → max - min < 1e-12 → zeros).
        attributes, ratings = _inputs(seed, 20, 8, 10, 0.4, 0.0)
        ratings[:] = 0.0
        ratings[seed % 20, seed % 10] = 3.0
        _assert_parity(attributes, ratings, block_rows)
