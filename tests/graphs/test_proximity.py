"""Proximity functions: cosine behaviour, normalisation, cold-node fallback."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.graphs import (
    attribute_proximity,
    combined_proximity,
    cosine_distance_matrix,
    min_max_normalise,
    preference_proximity,
)


class TestCosine:
    def test_identical_rows_distance_zero(self):
        x = np.array([[1.0, 2.0], [1.0, 2.0]])
        dist = cosine_distance_matrix(x)
        assert dist[0, 1] == pytest.approx(0.0, abs=1e-12)

    def test_orthogonal_rows_distance_one(self):
        x = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert cosine_distance_matrix(x)[0, 1] == pytest.approx(1.0)

    def test_attribute_proximity_symmetric(self, rng):
        attrs = (rng.random((10, 6)) < 0.4).astype(float)
        prox = attribute_proximity(attrs)
        np.testing.assert_allclose(prox, prox.T)


class TestPreferenceProximity:
    def test_flags_history_less_nodes(self):
        vectors = np.array([[1.0, 0.0], [0.0, 0.0], [1.0, 1.0]])
        sim, has_history = preference_proximity(vectors)
        np.testing.assert_array_equal(has_history, [True, False, True])
        assert sim[1].sum() == 0.0
        assert sim[:, 1].sum() == 0.0

    def test_similar_histories_high_proximity(self):
        vectors = np.array([[5.0, 4.0, 0.0], [5.0, 5.0, 0.0], [0.0, 0.0, 5.0]])
        sim, _ = preference_proximity(vectors)
        assert sim[0, 1] > sim[0, 2]


class TestMinMaxNormalise:
    def test_output_in_unit_interval(self, rng):
        x = rng.normal(size=(5, 5)) * 10
        out = min_max_normalise(x)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_constant_matrix_maps_to_zero(self):
        np.testing.assert_array_equal(min_max_normalise(np.full((3, 3), 7.0)), np.zeros((3, 3)))

    def test_masked_entries_zeroed(self):
        x = np.array([[1.0, 100.0], [2.0, 3.0]])
        mask = np.array([[True, False], [True, True]])
        out = min_max_normalise(x, mask)
        assert out[0, 1] == 0.0
        assert out[1, 1] == 1.0  # max among masked entries

    def test_all_false_mask(self):
        out = min_max_normalise(np.ones((2, 2)), np.zeros((2, 2), dtype=bool))
        np.testing.assert_array_equal(out, np.zeros((2, 2)))

    def test_constant_matrix_raises_no_divide_warning(self):
        # Regression: max == min must short-circuit, never reach the division.
        with np.errstate(divide="raise", invalid="raise"):
            out = min_max_normalise(np.full((4, 4), -3.25))
        np.testing.assert_array_equal(out, np.zeros((4, 4)))

    def test_constant_masked_entries_map_to_zero(self):
        x = np.array([[2.0, 99.0], [2.0, 2.0]])
        mask = np.array([[True, False], [True, True]])  # masked entries constant
        with np.errstate(divide="raise", invalid="raise"):
            out = min_max_normalise(x, mask)
        np.testing.assert_array_equal(out, np.zeros((2, 2)))

    def test_non_finite_entries_excluded_from_range(self):
        x = np.array([[1.0, 3.0], [-np.inf, 2.0]])
        out = min_max_normalise(x)
        assert out[0, 0] == 0.0 and out[0, 1] == 1.0
        assert out[1, 1] == pytest.approx(0.5)
        assert out[1, 0] == 0.0  # -inf clips to the bottom of the range

    def test_all_non_finite_maps_to_zero(self):
        x = np.full((2, 2), -np.inf)
        with np.errstate(divide="raise", invalid="raise"):
            out = min_max_normalise(x)
        np.testing.assert_array_equal(out, np.zeros((2, 2)))

    def test_nan_entries_do_not_leak_into_output(self):
        x = np.array([[np.nan, 0.0], [2.0, 4.0]])
        out = min_max_normalise(x)
        assert np.isfinite(out).all()
        assert out[0, 0] == 0.0
        np.testing.assert_allclose(out[1], [0.5, 1.0])

    def test_positive_inf_clips_to_one(self):
        x = np.array([[np.inf, 0.0], [1.0, 2.0]])
        out = min_max_normalise(x)
        assert out[0, 0] == 1.0
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_all_nan_maps_to_zero(self):
        with np.errstate(divide="raise", invalid="raise"):
            out = min_max_normalise(np.full((3, 3), np.nan))
        np.testing.assert_array_equal(out, np.zeros((3, 3)))

    def test_empty_matrix(self):
        out = min_max_normalise(np.empty((0, 0)))
        assert out.shape == (0, 0)
        out = min_max_normalise(np.empty((0, 4)), np.empty((0, 4), dtype=bool))
        assert out.shape == (0, 4)

    def test_nan_mixed_with_mask(self):
        x = np.array([[np.nan, 5.0], [1.0, 3.0]])
        mask = np.array([[True, False], [True, True]])
        out = min_max_normalise(x, mask)
        assert out[0, 0] == 0.0  # NaN zeroed, not propagated
        assert out[0, 1] == 0.0  # unmasked
        np.testing.assert_allclose(out[1], [0.0, 1.0])  # range from finite masked entries

    @given(
        hnp.arrays(
            np.float64,
            (4, 4),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_bounds(self, x):
        out = min_max_normalise(x)
        assert (out >= 0.0).all() and (out <= 1.0).all()


class TestCombinedProximity:
    def test_diagonal_excluded(self, rng):
        attrs = (rng.random((6, 4)) < 0.5).astype(float)
        prox = combined_proximity(attrs, None, use_preference=False)
        assert (np.diag(prox) == -np.inf).all()

    def test_requires_at_least_one_source(self, rng):
        with pytest.raises(ValueError):
            combined_proximity(np.eye(3), None, use_attribute=False, use_preference=False)

    def test_preference_without_vectors_raises(self):
        with pytest.raises(ValueError):
            combined_proximity(np.eye(3), None, use_preference=True)

    def test_cold_nodes_fall_back_to_attributes(self):
        attrs = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        ratings = np.array([[5.0, 3.0], [0.0, 0.0], [4.0, 2.0]])  # node 1 cold
        both = combined_proximity(attrs, ratings)
        attr_only = combined_proximity(attrs, None, use_preference=False)
        # Cold node's row is purely attribute-driven.
        np.testing.assert_allclose(both[1, 2], attr_only[1, 2])
        np.testing.assert_allclose(both[1, 0], attr_only[1, 0])

    def test_combined_exceeds_single_source_for_doubly_similar(self):
        attrs = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        ratings = np.array([[5.0, 3.0], [5.0, 3.0], [1.0, 0.0]])
        both = combined_proximity(attrs, ratings)
        # nodes 0,1 agree on both attribute and preference: top proximity
        assert both[0, 1] == both[~np.isinf(both)].max()
