"""Graph construction: dynamic pools, kNN, co-purchase, bipartite helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    DynamicNeighborGraph,
    FixedNeighborGraph,
    build_attribute_graph,
    build_copurchase_graph,
    build_knn_graph,
    normalised_bipartite,
    social_adjacency,
    user_item_lists,
)


class TestDynamicNeighborGraph:
    def test_sampling_respects_pools(self, ics_task, rng):
        graph = build_attribute_graph(ics_task, "item", pool_percent=10.0)
        sample = graph.neighbours(4, rng)
        for node, pool in enumerate(graph.pools):
            assert set(sample[node]).issubset(set(pool.tolist()))

    def test_no_self_neighbours(self, ics_task, rng):
        graph = build_attribute_graph(ics_task, "item", pool_percent=10.0)
        sample = graph.neighbours(5, rng)
        assert not (sample == np.arange(len(sample))[:, None]).any()

    def test_resampling_varies(self, ics_task):
        graph = build_attribute_graph(ics_task, "item", pool_percent=10.0)
        rng = np.random.default_rng(0)
        a = graph.neighbours(5, rng)
        b = graph.neighbours(5, rng)
        assert (a != b).mean() > 0.3

    def test_small_pool_pads_with_replacement(self):
        graph = DynamicNeighborGraph(pools=[np.array([1]), np.array([0])], weights=[np.ones(1), np.ones(1)])
        sample = graph.neighbours(4, np.random.default_rng(0))
        assert sample.shape == (2, 4)
        np.testing.assert_array_equal(sample[0], [1, 1, 1, 1])

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            DynamicNeighborGraph(pools=[np.array([], dtype=int)], weights=[np.array([])])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            DynamicNeighborGraph(pools=[np.array([1, 2])], weights=[np.ones(1)])

    def test_pool_percent_controls_pool_size(self, ics_task):
        small = build_attribute_graph(ics_task, "item", pool_percent=5.0, min_pool=1)
        large = build_attribute_graph(ics_task, "item", pool_percent=50.0, min_pool=1)
        assert len(large.pools[0]) > len(small.pools[0])

    def test_higher_proximity_sampled_more_often(self, rng):
        graph = DynamicNeighborGraph(
            pools=[np.array([1, 2])], weights=[np.array([10.0, 0.1])]
        )
        counts = np.zeros(3)
        for _ in range(200):
            counts[graph.neighbours(1, rng)[0, 0]] += 1
        assert counts[1] > counts[2]


class TestFixedGraphs:
    def test_knn_shape_and_no_self(self, ics_task):
        graph = build_knn_graph(ics_task, "item", k=6)
        neigh = graph.neighbours(6)
        assert neigh.shape == (ics_task.dataset.num_items, 6)
        assert not (neigh == np.arange(len(neigh))[:, None]).any()

    def test_knn_request_more_than_stored_tiles(self, ics_task):
        graph = build_knn_graph(ics_task, "item", k=3)
        neigh = graph.neighbours(7)
        assert neigh.shape[1] == 7

    def test_copurchase_cold_items_get_self_loops(self, ics_task):
        graph = build_copurchase_graph(ics_task, "item", k=5)
        cold = ics_task.cold_items
        np.testing.assert_array_equal(
            graph.matrix[cold], np.repeat(cold[:, None], graph.matrix.shape[1], axis=1)
        )

    def test_copurchase_warm_items_share_raters(self, warm_task):
        graph = build_copurchase_graph(warm_task, "item", k=3)
        matrix = (warm_task.train_rating_matrix() > 0).astype(float)
        co = matrix.T @ matrix
        item = int(np.argmax(matrix.sum(axis=0)))  # most-rated item
        top_neighbour = graph.matrix[item, 0]
        assert co[item, top_neighbour] > 0

    def test_user_side_copurchase(self, warm_task):
        graph = build_copurchase_graph(warm_task, "user", k=4)
        assert graph.matrix.shape == (warm_task.dataset.num_users, 4)


class TestBipartiteHelpers:
    def test_row_normalisation(self, warm_task):
        u2i, i2u = normalised_bipartite(warm_task)
        sums = u2i.sum(axis=1)
        nonzero = sums > 0
        np.testing.assert_allclose(sums[nonzero], 1.0)
        sums_i = i2u.sum(axis=1)
        np.testing.assert_allclose(sums_i[sums_i > 0], 1.0)

    def test_cold_rows_all_zero(self, ics_task):
        u2i, i2u = normalised_bipartite(ics_task)
        np.testing.assert_array_equal(i2u[ics_task.cold_items].sum(axis=1), 0.0)

    def test_user_item_lists_consistent(self, warm_task):
        items_of_user, users_of_item = user_item_lists(warm_task)
        total = sum(len(lst) for lst in items_of_user)
        assert total == len(warm_task.train_idx)
        assert sum(len(lst) for lst in users_of_item) == total

    def test_social_adjacency_uses_dataset_links(self, tiny_yelp):
        from repro.data import warm_split

        task = warm_split(tiny_yelp, 0.2, seed=0)
        social = social_adjacency(task)
        sums = social.sum(axis=1)
        np.testing.assert_allclose(sums[sums > 0], 1.0)

    def test_social_adjacency_knn_fallback(self, warm_task):
        social = social_adjacency(warm_task)  # MovieLens: no social links
        assert social.shape == (warm_task.dataset.num_users,) * 2
        sums = social.sum(axis=1)
        np.testing.assert_allclose(sums[sums > 0], 1.0)


@given(seed=st.integers(0, 20), k=st.integers(1, 8))
@settings(max_examples=10, deadline=None)
def test_property_neighbour_matrix_always_dense(seed, k):
    """Any (seed, k): neighbour matrices are dense, in-range, and self-free
    for the dynamic strategy."""
    from repro.data import generate_movielens, item_cold_split
    from tests.conftest import TINY_ML

    task = item_cold_split(generate_movielens(TINY_ML), 0.2, seed=seed)
    graph = build_attribute_graph(task, "item", pool_percent=10.0)
    sample = graph.neighbours(k, np.random.default_rng(seed))
    assert sample.shape == (task.dataset.num_items, k)
    assert sample.min() >= 0 and sample.max() < task.dataset.num_items
    assert not (sample == np.arange(len(sample))[:, None]).any()
