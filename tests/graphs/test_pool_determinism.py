"""Determinism of the exact pool extraction under ties.

``_pool_from_proximity`` top-k selection runs ``argpartition`` (introselect —
its order among equal values is implementation-defined, *not* documented as
stable) followed by ``argsort``.  These tests pin the properties the repo
actually depends on:

* repeated calls on the same matrix produce bitwise-identical pools — NumPy's
  selection is deterministic for a fixed input, even though the tie order is
  arbitrary;
* the block size used to stream rows never changes the result, because
  blocking only batches whole rows and each row's kernels see identical data;
* the selected *multiset of values* per node is the true top-k even under
  massive ties (the guarantee ranking quality rests on, independent of which
  tied ids are chosen).

If a NumPy upgrade ever breaks the first property, this file is the tripwire
that says a stable tie-break must be added — deliberately not added today,
since reordering ties would shift every committed golden of the default path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.construction import _pool_from_proximity

pytestmark = pytest.mark.graphs


def _tie_heavy_matrix(rng, n, levels=4):
    matrix = np.round(rng.random((n, n)) * levels) / levels
    np.fill_diagonal(matrix, -np.inf)
    return matrix


def _assert_identical(a, b):
    assert a.num_nodes == b.num_nodes
    for i in range(a.num_nodes):
        np.testing.assert_array_equal(a.pools[i], b.pools[i], err_msg=f"pools[{i}]")
        np.testing.assert_array_equal(a.weights[i], b.weights[i], err_msg=f"weights[{i}]")


class TestTieDeterminism:
    @pytest.mark.parametrize("levels", [2, 4, 16])
    def test_repeated_calls_are_bitwise_identical(self, rng, levels):
        matrix = _tie_heavy_matrix(rng, 70, levels)
        first = _pool_from_proximity(matrix, 9)
        for _ in range(3):
            _assert_identical(_pool_from_proximity(matrix, 9), first)

    @pytest.mark.parametrize("block_rows", [3, 16, 512])
    def test_block_size_never_changes_the_result(self, rng, block_rows):
        matrix = _tie_heavy_matrix(rng, 61, levels=3)
        reference = _pool_from_proximity(matrix, 8, block_rows=512)
        _assert_identical(_pool_from_proximity(matrix, 8, block_rows=block_rows), reference)

    def test_all_equal_rows_still_deterministic(self, rng):
        # Every off-diagonal entry ties: the selected ids are arbitrary but
        # must be the same arbitrary ids on every call and block size.
        matrix = np.ones((40, 40))
        np.fill_diagonal(matrix, -np.inf)
        reference = _pool_from_proximity(matrix, 6)
        for block_rows in (5, 13, 512):
            _assert_identical(_pool_from_proximity(matrix, 6, block_rows=block_rows), reference)

    def test_selected_values_are_true_topk_under_ties(self, rng):
        matrix = _tie_heavy_matrix(rng, 50, levels=2)
        graph = _pool_from_proximity(matrix, 7)
        for i in range(50):
            got = np.sort(matrix[i][graph.pools[i]])[::-1]
            expected = np.sort(matrix[i][np.isfinite(matrix[i])])[::-1][:7]
            np.testing.assert_array_equal(got, expected, err_msg=f"row {i}")
