"""Optimizers: convergence on convex problems, state handling, clipping, schedules."""

import numpy as np
import pytest

from repro import nn, optim
from repro.autograd import Tensor, ops
from repro.nn import functional as F


def quadratic_loss(param):
    """(p - 3)^2 summed — minimum at 3."""
    return ops.sum(ops.square(ops.sub(param, 3.0)))


class TestSGD:
    def test_converges_on_quadratic(self):
        p = nn.Parameter(np.zeros(4))
        opt = optim.SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = nn.Parameter(np.zeros(1))
            opt = optim.SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return abs(p.data[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = nn.Parameter(np.ones(3))
        opt = optim.SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        ops.sum(ops.mul(p, 0.0)).backward()  # zero task gradient
        opt.step()
        assert (p.data < 1.0).all()

    def test_invalid_momentum_raises(self):
        with pytest.raises(ValueError):
            optim.SGD([nn.Parameter(np.zeros(1))], lr=0.1, momentum=1.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = nn.Parameter(np.zeros(4))
        opt = optim.Adam([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-2)

    def test_skips_params_without_grad(self):
        a, b = nn.Parameter(np.zeros(2)), nn.Parameter(np.ones(2))
        opt = optim.Adam([a, b], lr=0.1)
        quadratic_loss(a).backward()
        opt.step()
        np.testing.assert_array_equal(b.data, np.ones(2))
        assert not np.allclose(a.data, 0.0)

    def test_bias_correction_first_step_magnitude(self):
        # With bias correction the first Adam step is ≈ lr regardless of grad scale.
        p = nn.Parameter(np.zeros(1))
        opt = optim.Adam([p], lr=0.1)
        p.grad = np.array([1000.0])
        opt.step()
        assert abs(p.data[0] + 0.1) < 1e-6

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            optim.Adam([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            optim.Adam([nn.Parameter(np.zeros(1))], lr=-1.0)

    def test_adamw_decouples_decay(self):
        p = nn.Parameter(np.ones(2))
        opt = optim.AdamW([p], lr=0.0001, weight_decay=0.5)
        p.grad = np.zeros(2)
        opt.step()
        # decoupled decay applies even with zero gradient
        np.testing.assert_allclose(p.data, np.ones(2) * (1 - 0.0001 * 0.5))


class TestClipGradNorm:
    def test_no_clip_under_threshold(self):
        p = nn.Parameter(np.zeros(3))
        p.grad = np.array([0.1, 0.1, 0.1])
        norm = optim.clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1, 0.1])
        assert norm == pytest.approx(np.sqrt(0.03))

    def test_clips_over_threshold(self):
        p = nn.Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])
        optim.clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_ignores_none_grads(self):
        p = nn.Parameter(np.zeros(2))
        assert optim.clip_grad_norm([p], max_norm=1.0) == 0.0


class TestSchedules:
    def test_exponential_decay(self):
        p = nn.Parameter(np.zeros(1))
        opt = optim.Adam([p], lr=1.0)
        sched = optim.ExponentialDecay(opt, gamma=0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_step_decay(self):
        p = nn.Parameter(np.zeros(1))
        opt = optim.Adam([p], lr=1.0)
        sched = optim.StepDecay(opt, every=2, factor=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_invalid_gamma(self):
        opt = optim.Adam([nn.Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            optim.ExponentialDecay(opt, gamma=0.0)
