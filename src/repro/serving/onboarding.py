"""Live strict-cold-start onboarding: attributes in, a servable node out.

This is the paper's SCS story as a runtime API instead of a batch split.  A
new user/item arrives with nothing but attributes; onboarding

1. **encodes** them — either a schema-validated ``{field: value}`` mapping
   (via the bundle's :class:`~repro.data.schema.AttributeSchema`) or a raw
   multi-hot row;
2. **generates** the missing preference embedding with the trained eVAE
   (Eq. 6–8, handled by :meth:`AGNN.generate_cold_preference`);
3. **splices** the node into the attribute graph: cosine attribute proximity
   against every known node (the preference term is undefined for a node with
   no history — exactly the paper's fallback), a top-``p%`` candidate pool,
   and a neighbourhood drawn from the head of that pool;
4. **refines** the node through the gated-GNN over its spliced neighbours.

Steps 2–4 are orchestrated by :meth:`InferenceEngine.add_user` /
:meth:`~InferenceEngine.add_item`; this module owns the attribute encoding
and the graph-splice math so they are testable in isolation.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

import numpy as np

from ..data.schema import AttributeSchema
from ..graphs.candidates import CandidateIndex
from ..nn.functional import cosine_similarity_matrix

__all__ = ["encode_attribute_row", "splice_neighbours"]


def encode_attribute_row(
    attributes,
    schema: Optional[AttributeSchema],
    dim: int,
) -> np.ndarray:
    """Normalise onboarding input to one multi-hot row of width ``dim``.

    Accepts a ``{field: value}`` mapping (requires the bundle to carry a
    schema) or an already-encoded row (validated for width and finiteness —
    Yelp-style bundles have no schema, their social rows come pre-encoded).
    """
    if isinstance(attributes, Mapping):
        if schema is None:
            raise ValueError(
                "this bundle has no attribute schema; pass a raw multi-hot row instead"
            )
        return schema.encode(dict(attributes))
    row = np.asarray(attributes, dtype=np.float64).reshape(-1)
    if row.shape != (dim,):
        raise ValueError(f"attribute row has {row.shape[0]} entries, expected {dim}")
    if not np.all(np.isfinite(row)):
        raise ValueError("attribute row contains non-finite values")
    if not row.any():
        raise ValueError("attribute row is all-zero; a node needs at least one attribute")
    return row


def splice_neighbours(
    row: np.ndarray,
    attributes: np.ndarray,
    pool_percent: float,
    k: int,
    min_pool: int,
    rng: Optional[np.random.Generator] = None,
    index: Optional[CandidateIndex] = None,
    exclude: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Neighbourhood for a history-less node: attribute proximity only.

    Mirrors :func:`repro.graphs.construction.build_attribute_graph` for a
    single incoming node: the candidate pool is the top ``p%`` most proximal
    existing nodes (at least ``min_pool``), with shifted-positive sampling
    weights.  Deterministic serving takes the pool head; passing ``rng``
    re-enables the paper's proximity-weighted sampling.

    With an ``index`` (a :class:`~repro.graphs.candidates.CandidateIndex`
    over the same attribute rows) only the index's candidates are scored —
    the sublinear onboarding path for ``graph_candidate_strategy="inverted"``.
    ``exclude`` masks one existing id (used when ``row`` is already a row of
    ``attributes``, e.g. the onboarding-parity oracle).

    Returns ``(neighbour_ids, pool_ids, pool_weights)``.
    """
    n = attributes.shape[0]
    if n == 0:
        raise ValueError("cannot splice a node into an empty graph")
    limit = n if exclude is None else n - 1
    if limit < 1:
        raise ValueError("cannot splice a node into a graph with no other nodes")
    pool_size = int(np.clip(max(round(n * pool_percent / 100.0), min_pool), 1, limit))
    if index is not None:
        cands = index.candidates_for_row(row, exclude=exclude)
        if cands.size == 0:
            # No shared attribute with anything: an information-free pool,
            # mirroring build_candidate_graph's deterministic low-id fallback.
            cands = np.arange(n, dtype=np.int64)
            if exclude is not None:
                cands = cands[cands != exclude]
            cands = cands[:pool_size]
            sims = np.zeros(cands.size)
        else:
            sims = cosine_similarity_matrix(row[None, :], attributes[cands])[0]
        order = np.lexsort((cands, -sims))[: min(pool_size, cands.size)]
        pool = cands[order].astype(np.int64)
        top = sims[order]
        weights = top - top.min() + 1e-6
    else:
        similarity = cosine_similarity_matrix(row[None, :], attributes)[0]
        if exclude is not None:
            similarity[exclude] = -np.inf
        pool = np.argpartition(-similarity, pool_size - 1)[:pool_size]
        pool = pool[np.argsort(-similarity[pool], kind="stable")].astype(np.int64)
        weights = similarity[pool] - similarity[pool].min() + 1e-6

    if rng is not None:
        probs = weights / weights.sum()
        neighbours = rng.choice(pool, size=k, replace=len(pool) < k, p=probs)
    elif len(pool) >= k:
        neighbours = pool[:k]
    else:
        reps = -(-k // len(pool))  # ceil division, pad by repetition
        neighbours = np.tile(pool, reps)[:k]
    return neighbours.astype(np.int64), pool, weights
