"""Online inference: model bundles, the serving engine, onboarding, HTTP.

The offline stack (``repro.core`` + ``repro.train``) produces a fitted AGNN;
this package turns it into a *service*:

* :mod:`~repro.serving.bundle` — export/load a self-contained artifact
  directory (weights, config, graphs, attribute schemas, manifest) so a
  server starts without the training dataset;
* :mod:`~repro.serving.engine` — :class:`InferenceEngine`: precomputed
  refined-embedding caches, LRU-cached ``score``, ``predict_batch`` and
  ``top_n`` retrieval, all under ``no_grad``;
* :mod:`~repro.serving.onboarding` — live strict-cold-start onboarding:
  attribute encoding, eVAE preference generation, attribute-graph splice;
* :mod:`~repro.serving.batching` — :class:`BatchingEngine`: the
  request-coalescing core — concurrent score/top-N/onboarding requests are
  queued and fused into per-tick vectorised calls, with bounded-queue
  backpressure (shed → HTTP 429) and per-tick telemetry;
* :mod:`~repro.serving.mapped` — memory-mapped bundle state: the serving
  arrays materialised once as ``.npy`` files and shared read-only across
  processes via ``np.load(..., mmap_mode="r")``;
* :mod:`~repro.serving.workers` — :class:`WorkerPool`: N ``spawn``-ed serving
  processes over one mmap-shared bundle, with least-outstanding dispatch,
  sequence-numbered onboarding/swap broadcasts, and crash respawn;
* :mod:`~repro.serving.server` — a stdlib JSON HTTP front-end
  (``/score``, ``/topn``, ``/users``, ``/items``, ``/healthz``, ``/metrics``)
  with draining shutdown, single-process or pool-backed (``--workers N``);
* :mod:`~repro.serving.bench` — the metered producer of ``BENCH_serving.json``;
* :mod:`~repro.serving.loadgen` — the load generator behind ``repro
  load-bench`` (open/closed loop, concurrency ramp) and ``BENCH_load.json``.

CLI entry points: ``repro export-bundle``, ``repro serve``,
``repro serving-bench``, ``repro load-bench``.
"""

from .bundle import (
    MANIFEST_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    ServingBundle,
    export_bundle,
    load_bundle,
)
from .engine import InferenceEngine
from .batching import BatchingEngine, EngineOverloadedError
from .mapped import (
    BundleMappingError,
    materialise_mapped,
    mapped_is_fresh,
    open_bundle_mapped,
)
from .workers import PoolStoppedError, WorkerCrashedError, WorkerPool
from .onboarding import encode_attribute_row, splice_neighbours
from .server import ServingHTTPServer, make_server, serve_forever
from .bench import EXPECTED_SERVING_SPANS, run_serving_bench
from .loadgen import render_load_bench, run_load_bench

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "ServingBundle",
    "export_bundle",
    "load_bundle",
    "InferenceEngine",
    "BatchingEngine",
    "EngineOverloadedError",
    "BundleMappingError",
    "materialise_mapped",
    "mapped_is_fresh",
    "open_bundle_mapped",
    "WorkerPool",
    "WorkerCrashedError",
    "PoolStoppedError",
    "encode_attribute_row",
    "splice_neighbours",
    "ServingHTTPServer",
    "make_server",
    "serve_forever",
    "EXPECTED_SERVING_SPANS",
    "run_serving_bench",
    "render_load_bench",
    "run_load_bench",
]
