"""A dependency-free JSON front-end over :class:`InferenceEngine`.

Built on the stdlib threading ``http.server`` — the engine's lock makes the
handler re-entrant.  When the server is built with a
:class:`~repro.serving.batching.BatchingEngine` (``make_server(...,
batching=...)``, the default for ``repro serve``), the ``/score``, ``/topn``
and onboarding routes submit into the coalescing queue instead of calling the
engine directly: concurrent requests are fused into per-tick vectorised
calls, and a full queue is *shed* — the request is answered immediately with
HTTP 429 (``serve.shed`` counts the sheds) instead of piling onto an engine
that is already behind.  Endpoints:

====== ============= =========================================================
Method Path          Body / response
====== ============= =========================================================
GET    /healthz      ``{"status": "ok", "users": M, "items": N,
                     "bundle_fingerprint": ..., "bundle_version": ...,
                     "bundle_parent_version": ..., "swaps": ...,
                     "last_swap_unix": ..., "uptime_s": ...,
                     "cache_hit_rate": ...}``
GET    /metrics      the full telemetry snapshot (``repro.telemetry.snapshot``)
GET    /metrics.prom the telemetry registry in Prometheus text exposition
                     format — per-route latency histograms, error counters;
                     pool-backed servers serve the *fleet-merged* view
                     (aggregate families + per-worker ``worker="N"`` series)
GET    /trace.json   Chrome trace-event JSON over parent + workers (open in
                     Perfetto); ``?trace_id=`` / ``?request_id=`` narrow it
                     to one request flow
POST   /score        ``{"users": [...], "items": [...]}`` → ``{"scores": [...]}``
POST   /topn         ``{"user": u, "k": 10, "exclude_seen": true}`` →
                     ``{"items": [...], "scores": [...]}``
POST   /users        ``{"attributes": {...} | [multi-hot row]}`` →
                     ``{"user": new_id}`` (201) — live SCS onboarding
POST   /items        symmetric → ``{"item": new_id}`` (201)
====== ============= =========================================================

Request-level observability: every request gets a per-process request id,
echoed as the ``X-Request-ID`` response header and embedded in every error
body, plus a freshly minted distributed :class:`~repro.obs.trace.TraceContext`
(echoed as ``X-Trace-ID``) that follows the request through the batching
queue and worker pipes.  Every request runs inside a ``serve.request`` span, bumps
``serve.requests``, and records its latency in the per-route
``serve.route_latency.<route>`` histogram.  Client errors bump
``serve.request_errors`` plus ``serve.route_errors.<route>``; *unexpected*
handler exceptions are converted to a JSON 500 carrying the request id and
bump ``serve.errors`` — the server never drops the connection on a bug.

Shutdown is *draining*: the server counts in-flight requests from the moment
a connection is accepted, :meth:`ServingHTTPServer.shutdown` blocks until
every accepted request has been answered (then stops the batching engine or
worker pool, if any), and only afterwards should the socket be closed — a
request issued mid-shutdown is served, never reset.

With ``repro serve --workers N`` the server fronts a
:class:`~repro.serving.workers.WorkerPool` instead of an in-process engine:
scoring and onboarding dispatch to N processes over mmap-shared bundle state,
``/healthz`` grows a ``workers`` section (per-worker pid, liveness,
responsiveness, outstanding depth, bundle identity) and the pool's
``serve.pool.*`` counters/gauges surface through ``/metrics.prom``.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Union

from ..obs.trace import TraceContext, trace_scope
from ..telemetry import increment, record_timing, snapshot, span
from .batching import BatchingEngine, EngineOverloadedError
from .engine import InferenceEngine
from .workers import PoolStoppedError, WorkerCrashedError, WorkerPool

__all__ = ["ServingHTTPServer", "make_server", "serve_forever"]

MAX_BODY_BYTES = 8 * 1024 * 1024


class _RequestError(Exception):
    """A client error carrying an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Handler(BaseHTTPRequestHandler):
    server: "ServingHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ plumbing
    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _reply(
        self,
        status: int,
        payload: Union[Dict[str, Any], str],
        request_id: str = "",
        trace_id: str = "",
    ) -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if request_id:
            self.send_header("X-Request-ID", request_id)
        if trace_id:
            self.send_header("X-Trace-ID", trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _RequestError(400, "request body required")
        if length > MAX_BODY_BYTES:
            raise _RequestError(413, "request body too large")
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _RequestError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise _RequestError(400, "JSON body must be an object")
        return payload

    def _dispatch(self, handler, route: str = "unknown") -> None:
        request_id = self.server.next_request_id()
        increment("serve.requests")
        started = time.perf_counter()
        # Ingress is where the distributed trace is minted: everything this
        # request touches downstream — the batching queue, worker pipes,
        # engine spans in other processes — inherits this identity.
        ctx = TraceContext.mint(request_id)
        with trace_scope(ctx), span("serve.request") as request_span:
            request_span.annotate(route=route)
            try:
                status, payload = handler()
            except _RequestError as exc:
                increment("serve.request_errors")
                status, payload = exc.status, {"error": str(exc), "request_id": request_id}
            except EngineOverloadedError as exc:
                # Backpressure shed: the queue was full at submit time.  The
                # 429 is immediate — the client should back off and retry.
                increment("serve.request_errors")
                status = 429
                payload = {"error": str(exc), "request_id": request_id, "retry": True}
            except (WorkerCrashedError, PoolStoppedError) as exc:
                # The worker died mid-request (after the pool's own retry) or
                # the pool is draining: retryable from the client's side.
                increment("serve.request_errors")
                status = 503
                payload = {"error": str(exc), "request_id": request_id, "retry": True}
            except (ValueError, IndexError, KeyError, TypeError) as exc:
                increment("serve.request_errors")
                status, payload = 400, {"error": str(exc), "request_id": request_id}
            except Exception as exc:  # unexpected bug: JSON 500, never a dropped socket
                increment("serve.errors")
                status = 500
                payload = {
                    "error": f"internal error: {type(exc).__name__}: {exc}",
                    "request_id": request_id,
                }
        record_timing(f"serve.route_latency.{route}", time.perf_counter() - started)
        if status >= 400:
            increment(f"serve.route_errors.{route}")
        self._reply(status, payload, request_id=request_id, trace_id=ctx.trace_id)

    # ------------------------------------------------------------------ routes
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        routes = {
            "/healthz": self._get_healthz,
            "/metrics": self._get_metrics,
            "/metrics.prom": self._get_metrics_prom,
            "/trace.json": self._get_trace_json,
        }
        path = self.path.split("?")[0]
        handler = routes.get(path)
        if handler is None:
            self._dispatch(lambda: (404, {"error": f"unknown path {self.path!r}"}))
        else:
            self._dispatch(handler, route=path.lstrip("/").replace(".", "_"))

    def do_POST(self) -> None:  # noqa: N802
        routes = {
            "/score": self._post_score,
            "/topn": self._post_topn,
            "/users": lambda: self._post_onboard("user"),
            "/items": lambda: self._post_onboard("item"),
        }
        path = self.path.split("?")[0]
        handler = routes.get(path)
        if handler is None:
            self._dispatch(lambda: (404, {"error": f"unknown path {self.path!r}"}))
        else:
            self._dispatch(handler, route=path.lstrip("/"))

    def _get_healthz(self) -> Tuple[int, Dict[str, Any]]:
        pool = self.server.pool
        if pool is not None:
            health = pool.healthz()
            degraded = health["healthy_workers"] < health["num_workers"]
            return 200, {
                "status": "degraded" if degraded else "ok",
                **health,
                **self.server.swap_state(),
            }
        stats = self.server.engine.stats()
        return 200, {"status": "ok", **stats, **self.server.swap_state()}

    def _get_metrics(self) -> Tuple[int, Dict[str, Any]]:
        return 200, snapshot(note="serve.metrics")

    def _get_metrics_prom(self) -> Tuple[int, str]:
        # Imported at call time: repro.obs pulls in the report layer, which the
        # serving module should not require just to import.
        from ..obs.prometheus import render_prometheus

        pool = self.server.pool
        if pool is not None:
            from ..obs.fleet import render_fleet
            from ..telemetry import get_registry

            return 200, render_fleet(get_registry(), pool.collect_telemetry())
        return 200, render_prometheus()

    def _get_trace_json(self) -> Tuple[int, Dict[str, Any]]:
        """Chrome trace-event JSON over the whole fleet (Perfetto-loadable).

        Optional ``?trace_id=`` / ``?request_id=`` query parameters narrow
        the timeline to one request flow.
        """
        from urllib.parse import parse_qs, urlparse

        from ..obs.fleet import chrome_trace
        from ..telemetry.tracing import export_spans

        query = parse_qs(urlparse(self.path).query)
        trace_id = query.get("trace_id", [None])[0]
        request_id = query.get("request_id", [None])[0]
        pool = self.server.pool
        worker_snaps = pool.collect_telemetry() if pool is not None else []
        return 200, chrome_trace(
            export_spans(), worker_snaps, trace_id=trace_id, request_id=request_id
        )

    def _post_score(self) -> Tuple[int, Dict[str, Any]]:
        body = self._read_json()
        if "users" not in body or "items" not in body:
            raise _RequestError(400, "body must contain 'users' and 'items' id arrays")
        backend = self.server.pool or self.server.batching or self.server.engine
        scores = backend.score(body["users"], body["items"])
        return 200, {"scores": scores.tolist()}

    def _post_topn(self) -> Tuple[int, Dict[str, Any]]:
        body = self._read_json()
        if "user" not in body:
            raise _RequestError(400, "body must contain 'user'")
        backend = self.server.pool or self.server.batching or self.server.engine
        items, scores = backend.top_n(
            int(body["user"]),
            k=int(body.get("k", 10)),
            exclude_seen=bool(body.get("exclude_seen", True)),
        )
        return 200, {"user": int(body["user"]), "items": items.tolist(), "scores": scores.tolist()}

    def _post_onboard(self, side: str) -> Tuple[int, Dict[str, Any]]:
        body = self._read_json()
        if "attributes" not in body:
            raise _RequestError(400, "body must contain 'attributes'")
        pool = self.server.pool
        if pool is not None:
            add = pool.add_user if side == "user" else pool.add_item
            new_id = add(body["attributes"])
            return 201, {side: new_id, "onboarded": pool.onboarded(side)}
        engine = self.server.engine
        if self.server.batching is not None:
            new_id = self.server.batching.onboard(side, body["attributes"])
        else:
            add = engine.add_user if side == "user" else engine.add_item
            new_id = add(body["attributes"])
        return 201, {side: new_id, "onboarded": engine.onboarded(side)}


class ServingHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one engine (optionally coalescing)."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        engine: Optional[InferenceEngine] = None,
        verbose: bool = False,
        batching: Optional[BatchingEngine] = None,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        if engine is None and pool is None:
            raise ValueError("a server needs an engine or a worker pool")
        if pool is not None and batching is not None:
            raise ValueError(
                "pool and batching are mutually exclusive — each pool worker "
                "runs its own in-process batching engine"
            )
        super().__init__(address, _Handler)
        self.engine = engine
        self.batching = batching
        self.pool = pool
        self.verbose = verbose
        self._request_counter = itertools.count(1)
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._swaps = 0
        self._last_swap_unix: Optional[float] = None

    # -------------------------------------------------------------- hot swap
    def swap_engine(self, engine: InferenceEngine) -> InferenceEngine:
        """Atomically replace the served engine with zero downtime.

        With a batching engine attached the swap goes through its FIFO queue
        (requests already queued finish on the old bundle, nothing is dropped
        and no fused call mixes bundles); the handler-visible ``self.engine``
        is then repointed — handlers read it once per request, so every
        request observes exactly one engine.  Returns the displaced engine.
        """
        if self.pool is not None:
            raise RuntimeError(
                "a pool-backed server swaps by bundle path; use swap_bundle_path()"
            )
        previous = self.engine
        if self.batching is not None:
            previous = self.batching.swap_engine(engine)
        else:
            increment("serve.swap.count")
        self.engine = engine
        self._swaps += 1
        self._last_swap_unix = time.time()
        return previous

    def swap_bundle_path(self, path, validate_pairs: int = 32) -> Dict[str, Any]:
        """Hot-swap a pool-backed server onto the bundle directory at ``path``."""
        if self.pool is None:
            raise RuntimeError("swap_bundle_path requires a pool-backed server")
        info = self.pool.swap_bundle_path(path, validate_pairs=validate_pairs)
        self._swaps += 1
        self._last_swap_unix = time.time()
        return info

    def swap_state(self) -> Dict[str, Any]:
        """Swap history surfaced in ``/healthz``."""
        return {"swaps": self._swaps, "last_swap_unix": self._last_swap_unix}

    def next_request_id(self) -> str:
        """Per-process request id (``itertools.count`` is atomic under the GIL)."""
        return f"req-{next(self._request_counter):08d}"

    @property
    def port(self) -> int:
        return self.server_address[1]

    # ------------------------------------------------------- draining shutdown
    @property
    def inflight_requests(self) -> int:
        """Accepted connections whose handler has not finished yet."""
        with self._inflight_cond:
            return self._inflight

    def process_request(self, request, client_address) -> None:
        # Count the request from the instant it is accepted — before the
        # handler thread even exists — so shutdown() can never miss it.
        with self._inflight_cond:
            self._inflight += 1
        super().process_request(request, client_address)

    def process_request_thread(self, request, client_address) -> None:
        try:
            super().process_request_thread(request, client_address)
        finally:
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()

    def wait_for_drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every accepted request has been answered."""
        with self._inflight_cond:
            return self._inflight_cond.wait_for(lambda: self._inflight == 0, timeout)

    def shutdown(self, drain_timeout: Optional[float] = 10.0) -> bool:  # type: ignore[override]
        """Stop the serve loop, then drain: block until in-flight requests
        finish and the batching queue (if any) is empty.  Returns whether the
        drain completed within ``drain_timeout`` — only then is
        ``server_close()`` guaranteed not to reset a live request."""
        super().shutdown()
        drained = self.wait_for_drain(drain_timeout)
        if self.batching is not None:
            self.batching.shutdown(drain=True)
        if self.pool is not None:
            self.pool.shutdown(drain=True)
        return drained


def make_server(
    engine: Optional[InferenceEngine] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    batching: Optional[BatchingEngine] = None,
    pool: Optional[WorkerPool] = None,
) -> ServingHTTPServer:
    """Bind a server (``port=0`` → ephemeral) without starting its loop.

    Pass a started :class:`BatchingEngine` wrapping ``engine`` to serve the
    scoring routes through the coalescing queue, or a :class:`WorkerPool` to
    serve them from N processes over mmap-shared bundle state; the server
    takes ownership of either and shuts it down with the socket.
    """
    return ServingHTTPServer(
        (host, port), engine, verbose=verbose, batching=batching, pool=pool
    )


def serve_forever(server: ServingHTTPServer) -> None:
    """Run until interrupted; drains in-flight requests, always releases the
    socket."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        # The loop has already exited here, so don't call shutdown() (it would
        # deadlock waiting for the loop) — just drain before closing.
        server.wait_for_drain(10.0)
        if server.batching is not None:
            server.batching.shutdown(drain=True)
        if server.pool is not None:
            server.pool.shutdown(drain=True)
        server.server_close()
