"""Request coalescing: the micro-batching core of the serving tier.

Under concurrent load the plain :class:`~repro.serving.engine.InferenceEngine`
serialises every request on its lock and each one pays the full Python
dispatch cost alone — sixteen threads scoring one pair each run sixteen small
numpy pipelines back to back.  :class:`BatchingEngine` turns that workload
into vectorised work: callers *submit* requests into a bounded FIFO queue and
a single drain thread collects everything in flight once per tick, fusing
consecutive ``score`` requests into one :meth:`InferenceEngine.score` call
over the concatenated id arrays.

Draining is *adaptive* by default (``tick_interval=0``): the drain thread
takes whatever is queued the moment it is free, so batches form naturally
from the requests that arrived while the previous batch executed — no
artificial wait is ever added to a request.  A positive ``tick_interval``
instead opens a fixed coalescing window after the first request of a tick,
trading a bounded latency floor for larger fused calls; it exists as a
smoothing knob for bursty open-loop traffic and for deterministic tests that
drive the window with a fake clock.  Under a closed 16-caller load the
adaptive mode is what makes batching *faster* than direct calls — a fixed
window caps throughput at ``batch_size / (window + execute)``.

Semantics are exactly those of the sequential engine:

* **Bitwise parity** — scoring is row-independent (pinned by
  ``tests/serving/test_batching.py``), so the fused call returns bit-for-bit
  the values the per-request calls would have; results are split back by
  request in arrival order.
* **FIFO fairness** — requests are drained and completed in arrival order;
  a top-N or onboarding request acts as a barrier between coalesced runs, so
  every request observes the node set its arrival order implies.
* **Fault isolation** — when a fused call fails, the run is retried
  request-by-request so only the poisoned request carries the error; its
  batchmates still succeed (``serve.batch.fallbacks`` counts these retries).
* **Backpressure** — the queue is bounded; a submit against a full queue is
  *shed* immediately with :class:`EngineOverloadedError` (never silently
  queued) and counted in ``serve.shed``.  The HTTP layer maps this to 429.

Per-tick telemetry: ``serve.batch.ticks`` / ``serve.batch.requests`` /
``serve.batch.coalesced`` / ``serve.batch.fallbacks`` / ``serve.shed``
counters, ``serve.batch.size`` (pairs per fused call) and
``serve.batch.wait`` (queue wait seconds) distributions, and
``serve.batch.queue_depth`` / ``serve.batch.last_size`` gauges.

The clock is injectable (``clock=``) and the drain loop can be driven
manually (``auto_start=False`` + :meth:`drain_once`), which makes coalescing
deterministic under test: enqueue from N threads, tick once, observe one
fused batch.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from time import monotonic
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import events as obs_events
from ..telemetry import increment, record_timing, set_gauge, tracing
from ..telemetry.tracing import span
from .engine import InferenceEngine

__all__ = ["BatchingEngine", "EngineOverloadedError"]


class EngineOverloadedError(RuntimeError):
    """Raised on submit when the request queue is full (backpressure shed)."""

    def __init__(self, queue_depth: int) -> None:
        super().__init__(
            f"serving queue full ({queue_depth} requests in flight); request shed"
        )
        self.queue_depth = queue_depth


class _Request:
    """One queued unit of work; ``future`` completes exactly once.

    ``trace`` is the distributed-trace wire triple active on the submitting
    thread — ``(trace_id, parent_span_id, request_id)`` or ``None`` — so the
    drain thread can re-activate the request's identity while executing it
    and engine-side spans/fallbacks stay attributable to the HTTP request.
    """

    __slots__ = ("kind", "payload", "future", "enqueued_at", "pairs", "trace")

    def __init__(self, kind: str, payload: Tuple[Any, ...], enqueued_at: float, pairs: int) -> None:
        self.kind = kind
        self.payload = payload
        self.future: "Future[Any]" = Future()
        self.enqueued_at = enqueued_at
        self.pairs = pairs
        self.trace = tracing.current_trace()


class BatchingEngine:
    """Coalesce concurrent serving requests into per-tick vectorised calls."""

    def __init__(
        self,
        engine: InferenceEngine,
        max_batch_pairs: int = 8192,
        max_queue_depth: int = 1024,
        tick_interval: float = 0.0,
        clock: Callable[[], float] = monotonic,
        auto_start: bool = True,
    ) -> None:
        if max_batch_pairs < 1:
            raise ValueError("max_batch_pairs must be positive")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive")
        if tick_interval < 0:
            raise ValueError("tick_interval must be non-negative")
        self.engine = engine
        self.max_batch_pairs = max_batch_pairs
        self.max_queue_depth = max_queue_depth
        self.tick_interval = tick_interval
        self._clock = clock
        self._queue: Deque[_Request] = deque()
        self._queued_pairs = 0  # running sum of queued request pairs (O(1) budget checks)
        self._cond = threading.Condition()
        self._stopping = False
        self._shutdown_called = False
        self._thread: Optional[threading.Thread] = None
        self._ticks = 0
        self._requests_drained = 0
        self._coalesced = 0
        self._fallbacks = 0
        self._shed = 0
        self._swaps = 0
        if auto_start:
            self.start()

    # ------------------------------------------------------------- lifecycle
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the drain thread (idempotent)."""
        with self._cond:
            if self.running:
                return
            self._stopping = False
            self._shutdown_called = False
            self._thread = threading.Thread(
                target=self._run, name="repro-batching", daemon=True
            )
            self._thread.start()
        obs_events.emit("serve.batching_start", max_queue_depth=self.max_queue_depth)

    def stop(self, drain: bool = True, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting work and shut the drain thread down.

        With ``drain`` (default) everything already queued is still executed;
        otherwise pending futures fail with :class:`RuntimeError`.

        Safe to call repeatedly and from any thread — including the drain
        thread itself (a done-callback, say): a second call finds no queue and
        no living thread and falls through, and a thread never joins itself.
        """
        with self._cond:
            self._stopping = True
            if not drain:
                pending = list(self._queue)
                self._queue.clear()
                self._queued_pairs = 0
            else:
                pending = []
            self._cond.notify_all()
            # Claim the thread under the lock so concurrent stop() calls
            # cannot both try to join (or see a half-cleared handle).
            thread = self._thread
            self._thread = None
        for request in pending:
            request.future.set_exception(RuntimeError("batching engine stopped"))
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)
        obs_events.emit("serve.batching_stop", drained=drain)

    def shutdown(self, drain: bool = True, timeout: Optional[float] = 10.0) -> None:
        """Idempotent terminal stop, safe from ``atexit`` and signal handlers.

        Exactly one caller performs the actual :meth:`stop`; every later (or
        re-entrant) call returns immediately.  The claim is a plain attribute
        flip — atomic under the GIL, no lock taken — so the duplicate
        deliveries that happen in practice (atexit after a SIGTERM handler,
        repeated signals, an explicit close racing either) cost nothing and
        cannot deadlock.  The one winning call still acquires the condition
        lock inside :meth:`stop`; trigger it from the serving loop's unwind
        path (as ``serve_forever`` does) rather than from inside a frame that
        already holds it.
        """
        if self._shutdown_called:
            return
        self._shutdown_called = True
        self.stop(drain=drain, timeout=timeout)

    def __enter__(self) -> "BatchingEngine":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ---------------------------------------------------------------- submit
    def _submit(self, kind: str, payload: Tuple[Any, ...], pairs: int) -> "Future[Any]":
        with self._cond:
            if self._stopping:
                raise RuntimeError("batching engine is stopped")
            if len(self._queue) >= self.max_queue_depth:
                self._shed += 1
                increment("serve.shed")
                raise EngineOverloadedError(len(self._queue))
            request = _Request(kind, payload, self._clock(), pairs)
            self._queue.append(request)
            self._queued_pairs += pairs
            # This is the hot path; wake the drain thread only when it can act:
            # on the first queued request (it may be idle-waiting for work) or
            # when the pair budget fills (end the coalescing window early).  A
            # submit landing mid-window would otherwise cost a futex wake and a
            # GIL handoff just for the worker to look at the clock and re-sleep.
            # The queue-depth gauge is refreshed per tick in _take_batch_locked.
            if len(self._queue) == 1 or self._queued_pairs >= self.max_batch_pairs:
                self._cond.notify()
        return request.future

    def submit_score(self, users, items) -> "Future[np.ndarray]":
        """Enqueue a score request; the future resolves to the score array.

        Alignment is validated here (a malformed request must fail fast, not
        poison a fused batch); id-range validation happens at execution time
        inside the engine, isolated per request.
        """
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        items = np.atleast_1d(np.asarray(items, dtype=np.int64))
        if users.shape != items.shape:
            raise ValueError("users and items must align")
        return self._submit("score", (users, items), pairs=max(len(users), 1))

    def submit_top_n(self, user: int, k: int = 10, exclude_seen: bool = True) -> "Future[Tuple[np.ndarray, np.ndarray]]":
        return self._submit("topn", (int(user), int(k), bool(exclude_seen)), pairs=1)

    def submit_onboard(self, side: str, attributes: Any) -> "Future[int]":
        if side not in ("user", "item"):
            raise ValueError(f"side must be 'user' or 'item', got {side!r}")
        return self._submit("onboard", (side, attributes), pairs=1)

    def submit_swap(self, engine: InferenceEngine) -> "Future[InferenceEngine]":
        """Enqueue a zero-downtime engine swap; resolves to the *old* engine.

        The swap rides the FIFO queue like any non-score request, so it acts
        as a natural barrier: every request queued before it executes on the
        old engine, every request queued after it on the new one, and no fused
        score call ever spans the boundary — a response can never mix bundles.
        """
        if not isinstance(engine, InferenceEngine):
            raise TypeError(f"swap target must be an InferenceEngine, got {type(engine).__name__}")
        return self._submit("swap", (engine,), pairs=1)

    # ------------------------------------------------------- blocking facade
    def score(self, users, items, timeout: Optional[float] = 60.0) -> np.ndarray:
        """Blocking score through the coalescing queue (engine-compatible)."""
        return self.submit_score(users, items).result(timeout)

    def top_n(
        self, user: int, k: int = 10, exclude_seen: bool = True, timeout: Optional[float] = 60.0
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.submit_top_n(user, k, exclude_seen).result(timeout)

    def onboard(self, side: str, attributes: Any, timeout: Optional[float] = 60.0) -> int:
        return self.submit_onboard(side, attributes).result(timeout)

    def swap_engine(self, engine: InferenceEngine, timeout: Optional[float] = 60.0) -> InferenceEngine:
        """Blocking hot-swap: returns the displaced engine once the barrier
        has passed (all earlier requests answered from the old bundle)."""
        return self.submit_swap(engine).result(timeout)

    # ------------------------------------------------------------- the ticks
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait()
                if self._stopping and not self._queue:
                    return
                if self.tick_interval > 0:
                    # Coalescing window: give in-flight peers a beat to land in
                    # the same tick, unless the batch budget is already full.
                    deadline = monotonic() + self.tick_interval
                    while not self._stopping and self._queued_pairs < self.max_batch_pairs:
                        remaining = deadline - monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                batch = self._take_batch_locked()
            if batch:
                self._execute(batch)

    def _take_batch_locked(self) -> List[_Request]:
        """Pop the next tick's worth of requests (caller holds the lock)."""
        batch: List[_Request] = []
        pairs = 0
        while self._queue:
            if batch and pairs + self._queue[0].pairs > self.max_batch_pairs:
                break
            request = self._queue.popleft()
            batch.append(request)
            pairs += request.pairs
        self._queued_pairs -= pairs
        set_gauge("serve.batch.queue_depth", float(len(self._queue)))
        return batch

    def drain_once(self) -> int:
        """Synchronously execute everything queued right now (manual tick).

        The deterministic test/embedding mode: with ``auto_start=False`` the
        caller owns the tick cadence.  Returns the number of requests served.
        """
        served = 0
        while True:
            with self._cond:
                batch = self._take_batch_locked()
            if not batch:
                return served
            self._execute(batch)
            served += len(batch)

    # -------------------------------------------------------------- execution
    def _execute(self, batch: List[_Request]) -> None:
        now = self._clock()
        self._ticks += 1
        self._requests_drained += len(batch)
        increment("serve.batch.ticks")
        increment("serve.batch.requests", len(batch))
        set_gauge("serve.batch.last_size", float(len(batch)))
        for request in batch:
            record_timing("serve.batch.wait", max(now - request.enqueued_at, 0.0))

        # One tick span covers the whole drain.  A tick belongs to every
        # request it fused: with one distinct trace in the batch the tick
        # span *joins* that trace (shares trace_id, parents to the ingress
        # span); with several it stays trace-free and carries the flows as
        # ``links`` — the standard many-parents batch-span shape.
        traces = [r.trace for r in batch if r.trace is not None]
        distinct = {t[0] for t in traces}
        token = tracing.activate_trace(traces[0]) if len(distinct) == 1 else None
        try:
            with span("serve.batch.tick") as tick:
                if traces:
                    tick.annotate(
                        requests=len(batch),
                        links=[
                            {"trace_id": t[0], "parent_span_id": t[1], "request_id": t[2]}
                            for t in traces
                        ],
                    )
                index = 0
                while index < len(batch):
                    request = batch[index]
                    if request.kind == "score":
                        run = [request]
                        while index + len(run) < len(batch) and batch[index + len(run)].kind == "score":
                            run.append(batch[index + len(run)])
                        self._execute_score_run(run)
                        index += len(run)
                    else:
                        self._execute_single(request)
                        index += 1
        finally:
            if token is not None:
                tracing.deactivate_trace(token)

    def _execute_score_run(self, run: List[_Request]) -> None:
        """One fused ``engine.score`` over a run of consecutive score requests."""
        record_timing("serve.batch.size", float(sum(r.pairs for r in run)))
        if len(run) == 1:
            self._execute_single(run[0])
            return
        self._coalesced += len(run)
        increment("serve.batch.coalesced", len(run))
        users = np.concatenate([r.payload[0] for r in run])
        items = np.concatenate([r.payload[1] for r in run])
        try:
            fused = self.engine.score(users, items)
        except Exception:
            # A poisoned request fails the whole fused call; retry one by one
            # so only the culprit carries the error.
            self._fallbacks += 1
            increment("serve.batch.fallbacks")
            obs_events.emit(
                "serve.batch_fallback",
                requests=len(run),
                request_ids=[r.trace[2] for r in run if r.trace is not None],
            )
            for request in run:
                self._execute_single(request)
            return
        offset = 0
        for request in run:
            count = len(request.payload[0])
            self._complete(request, fused[offset : offset + count])
            offset += count

    def _execute_single(self, request: _Request) -> None:
        # Re-activate the request's own trace so engine-side spans carry its
        # trace_id/request_id even when the tick span stayed trace-free.
        token = tracing.activate_trace(request.trace) if request.trace is not None else None
        try:
            self._execute_single_traced(request)
        finally:
            if token is not None:
                tracing.deactivate_trace(token)

    def _execute_single_traced(self, request: _Request) -> None:
        try:
            if request.kind == "score":
                result: Any = self.engine.score(*request.payload)
            elif request.kind == "topn":
                user, k, exclude_seen = request.payload
                result = self.engine.top_n(user, k=k, exclude_seen=exclude_seen)
            elif request.kind == "onboard":
                side, attributes = request.payload
                add = self.engine.add_user if side == "user" else self.engine.add_item
                result = add(attributes)
            elif request.kind == "swap":
                (new_engine,) = request.payload
                result = self.engine
                self.engine = new_engine
                self._swaps += 1
                increment("serve.swap.count")
                obs_events.emit(
                    "serve.swap",
                    fingerprint=new_engine.bundle.fingerprint,
                    version=new_engine.bundle.version,
                    parent_version=new_engine.bundle.parent_version,
                )
            else:  # pragma: no cover - submit() only produces the kinds above
                raise RuntimeError(f"unknown request kind {request.kind!r}")
        except Exception as exc:
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(exc)
            return
        self._complete(request, result)

    @staticmethod
    def _complete(request: _Request, result: Any) -> None:
        if not request.future.set_running_or_notify_cancel():
            return  # caller cancelled while queued; nothing to deliver
        request.future.set_result(result)

    # ------------------------------------------------------------------ state
    def stats(self) -> Dict[str, Any]:
        with self._cond:
            queue_depth = len(self._queue)
        return {
            "running": self.running,
            "queue_depth": queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "max_batch_pairs": self.max_batch_pairs,
            "tick_interval_s": self.tick_interval,
            "ticks": self._ticks,
            "requests": self._requests_drained,
            "coalesced_requests": self._coalesced,
            "fallbacks": self._fallbacks,
            "shed": self._shed,
            "swaps": self._swaps,
        }
