"""The online inference engine: cached refined embeddings + scoring + top-N.

The engine wraps a loaded :class:`~repro.serving.bundle.ServingBundle` and
keeps *growable* copies of everything the gated-GNN pipeline needs per side:

* ``_attr``      — multi-hot attribute matrices;
* ``_pref``      — preference matrices (trained rows; eVAE-generated rows for
  strict-cold-start and onboarded nodes);
* ``_neigh``     — the ``(n, k)`` neighbour index matrices;
* ``_raw``       — pre-aggregation node embeddings ``p`` (feeds neighbours);
* ``_refined``   — post-gated-GNN embeddings ``p̃`` for *all* known nodes,
  precomputed once so a score is two gathers and one small MLP;
* ``_bias``      — per-node rating biases (zero for onboarded nodes, which
  live beyond the trained bias tables).

Scoring runs under ``no_grad`` throughout and is clipped to the bundle's
rating scale.  A bounded LRU cache memoises per-pair scores; it is
invalidated whenever onboarding changes the node set.  All public methods are
thread-safe (one re-entrant lock), so the stdlib threading HTTP server can
call straight into the engine.

Telemetry: ``serve.refresh`` (embedding precompute), ``serve.score`` with
``serve.cache`` (lookup) and ``serve.score_cold`` (uncached compute) children,
``serve.topn``, and counters ``serve.scores`` / ``serve.cache.hits`` /
``serve.cache.misses`` / ``serve.topn.requests``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from ..graphs.candidates import CandidateIndex, default_budgets
from ..obs import events as obs_events
from ..telemetry import increment, set_gauge, span
from .bundle import ServingBundle
from .onboarding import encode_attribute_row, splice_neighbours

__all__ = ["InferenceEngine"]

_SIDES = ("user", "item")


def _take_rows(matrix: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Gather ``matrix`` rows by id without copying when a view suffices.

    Fancy indexing always copies; two request shapes dominate serving and
    need no copy at all — important when the backing store is a read-only
    mmap shared across worker processes:

    * a constant id (the user side of top-N: one user against every item)
      becomes a broadcast view of that single row;
    * a contiguous ascending range (the item side of top-N: ``arange(n)``)
      becomes a plain slice.

    Views are returned read-only so no caller can write through to the
    (possibly process-shared) store; everything else falls back to the
    fancy-index gather, which owns its data.
    """
    n = ids.size
    if n > 1:
        first = int(ids[0])
        last = int(ids[-1])
        if first == last and not np.any(ids != first):
            return np.broadcast_to(matrix[first], (n,) + matrix.shape[1:])
        if last - first == n - 1 and bool((np.diff(ids) == 1).all()):
            view = matrix[first : first + n]
            if view.flags.writeable:
                view = view.view()
                view.flags.writeable = False
            return view
    return matrix[ids]


class InferenceEngine:
    """Serve rating predictions and top-N retrieval from a model bundle."""

    def __init__(
        self,
        bundle: ServingBundle,
        cache_size: int = 100_000,
        batch_size: int = 2048,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.bundle = bundle
        self.model = bundle.model
        self.model.eval()
        self.rating_scale = bundle.rating_scale
        self.cache_size = cache_size
        self.batch_size = batch_size
        self.created_at = time.time()
        self._lock = threading.RLock()
        self._cache_hits = 0
        self._cache_misses = 0

        mapped = getattr(bundle, "mapped", None)
        if mapped is not None:
            # Mapped bundle: adopt the read-only mmap arrays as-is.  No copy,
            # no precompute — the parent process materialised them through a
            # donor engine, so they are bitwise what we would derive here, and
            # every sibling worker shares the same physical pages.  Growth
            # (onboarding) replaces whole arrays via copy-on-grow, so the
            # read-only store is never written through.
            self._attr: Dict[str, np.ndarray] = {s: mapped[s]["attr"] for s in _SIDES}
            self._neigh: Dict[str, np.ndarray] = {s: mapped[s]["neigh"] for s in _SIDES}
            self._bias: Dict[str, np.ndarray] = {s: mapped[s]["bias"] for s in _SIDES}
            self._pref: Dict[str, np.ndarray] = {s: mapped[s]["pref"] for s in _SIDES}
        else:
            self._attr = {side: bundle.attributes(side).copy() for side in _SIDES}
            self._neigh = {side: bundle.neighbours[side].copy() for side in _SIDES}
            self._bias = {
                "user": self.model.head.user_bias.value.data.copy(),
                "item": self.model.head.item_bias.value.data.copy(),
            }
            self._pref = {}
            for side in _SIDES:
                pref = self.model._encoder(side).preference.weight.data.copy()
                cold = bundle.cold_nodes.get(side, np.empty(0, dtype=np.int64))
                if len(cold):
                    pref[cold] = self.model.generate_cold_preference(
                        side, self._attr[side][cold]
                    )
                self._pref[side] = pref
        self._base_count: Dict[str, int] = {
            side: self._attr[side].shape[0] for side in _SIDES
        }

        self._seen: Dict[int, Set[int]] = {}
        for user, item in zip(bundle.train_users.tolist(), bundle.train_items.tolist()):
            self._seen.setdefault(user, set()).add(item)

        self._raw: Dict[str, np.ndarray] = {}
        self._refined: Dict[str, np.ndarray] = {}
        # Per-side inverted indexes for sublinear onboarding splices; built
        # lazily on first onboard when the bundle's config opted in.
        self._cand_index: Dict[str, Optional[CandidateIndex]] = {
            side: None for side in _SIDES
        }
        self._cache: "OrderedDict[Tuple[int, int], float]" = OrderedDict()
        if mapped is not None:
            self._raw = {s: mapped[s]["raw"] for s in _SIDES}
            self._refined = {s: mapped[s]["refined"] for s in _SIDES}
            for side in _SIDES:
                set_gauge(f"serve.nodes.{side}", float(self.count(side)))
        else:
            self._derive_embeddings()
        # Opt-in construction-time invariant sweep (REPRO_VERIFY=1); imported
        # at call time to keep repro.serving importable without repro.verify.
        from ..verify.invariants import maybe_verify_engine

        maybe_verify_engine(self)
        obs_events.emit(
            "serve.engine_start",
            fingerprint=bundle.fingerprint,
            users=self.num_users,
            items=self.num_items,
            cold_users=int(len(bundle.cold_nodes.get("user", ()))),
            cold_items=int(len(bundle.cold_nodes.get("item", ()))),
        )

    # ------------------------------------------------------------------ state
    @property
    def num_users(self) -> int:
        return self._attr["user"].shape[0]

    @property
    def num_items(self) -> int:
        return self._attr["item"].shape[0]

    def count(self, side: str) -> int:
        return self._attr[side].shape[0]

    def onboarded(self, side: str) -> int:
        """How many nodes were added live (beyond the bundle's base count)."""
        return self.count(side) - self._base_count[side]

    def seen_items(self, user: int) -> Set[int]:
        """Training-time items of ``user`` (empty for onboarded users)."""
        return set(self._seen.get(int(user), set()))

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            lookups = self._cache_hits + self._cache_misses
            return {
                "users": self.num_users,
                "items": self.num_items,
                "onboarded_users": self.onboarded("user"),
                "onboarded_items": self.onboarded("item"),
                "cache_entries": len(self._cache),
                "cache_capacity": self.cache_size,
                "cache_hit_rate": (self._cache_hits / lookups) if lookups else 0.0,
                "bundle_fingerprint": self.bundle.fingerprint,
                "bundle_version": self.bundle.version,
                "bundle_parent_version": self.bundle.parent_version,
                "uptime_s": time.time() - self.created_at,
            }

    # ------------------------------------------------------------- embeddings
    def _derive_embeddings(self) -> None:
        """Recompute raw + refined embeddings for every known node."""
        with self._lock, span("serve.refresh"):
            for side in _SIDES:
                n = self.count(side)
                attr, pref, neigh = self._attr[side], self._pref[side], self._neigh[side]
                # subok=False: pref may be a read-only np.memmap; the scratch
                # buffers must be plain writable heap arrays.
                raw = np.empty_like(pref, subok=False)
                for start in range(0, n, self.batch_size):
                    ids = np.arange(start, min(start + self.batch_size, n), dtype=np.int64)
                    raw[ids] = self.model.raw_node_embeddings(side, attr, pref, ids)
                refined = np.empty_like(raw)
                for start in range(0, n, self.batch_size):
                    stop = min(start + self.batch_size, n)
                    refined[start:stop] = self.model.refine_node_embeddings(
                        side, raw[start:stop], raw[neigh[start:stop]]
                    )
                self._raw[side] = raw
                self._refined[side] = refined
                set_gauge(f"serve.nodes.{side}", float(n))
            self._cache.clear()

    def refined_embeddings(self, side: str) -> np.ndarray:
        """The cached post-gated-GNN embedding matrix (read-only view)."""
        return self._refined[side]

    def resample_neighbourhoods(self, seed: int = 0) -> None:
        """Redraw the bundle's base nodes from their candidate pools (the
        paper's dynamic-diversity sampling as a live operation).  Onboarded
        nodes keep their spliced neighbourhoods; all refined embeddings are
        recomputed and the result cache is invalidated."""
        rng = np.random.default_rng(seed)
        with self._lock:
            for side in _SIDES:
                k = self._neigh[side].shape[1]
                base = self._base_count[side]
                fresh = self.bundle.graphs[side].neighbours(k, rng)
                # Rebuild rather than write in place: the current matrix may
                # be a read-only mmap shared with sibling processes.
                self._neigh[side] = np.concatenate(
                    [fresh[:base], self._neigh[side][base:]], axis=0
                )
            self._derive_embeddings()

    # ---------------------------------------------------------------- scoring
    def _check_ids(self, side: str, ids: np.ndarray) -> None:
        n = self.count(side)
        if ids.size and (ids.min() < 0 or ids.max() >= n):
            bad = ids[(ids < 0) | (ids >= n)]
            raise IndexError(f"unknown {side} id(s) {np.unique(bad).tolist()} (have {n})")

    def _compute_scores(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Uncached score path: gather refined rows, run the prediction head."""
        user_rows = _take_rows(self._refined["user"], users)
        item_rows = _take_rows(self._refined["item"], items)
        # Scoring must never hold a writable alias into the refined-embedding
        # store: a view it could write through would corrupt state shared
        # read-only across worker processes.  (Gathers either own their data
        # or come back as explicitly read-only views.)
        for rows, store in ((user_rows, self._refined["user"]), (item_rows, self._refined["item"])):
            assert not rows.flags.writeable or not np.may_share_memory(rows, store)
        scores = self.model.pairwise_scores(
            user_rows,
            item_rows,
            _take_rows(self._bias["user"], users),
            _take_rows(self._bias["item"], items),
        )
        low, high = self.rating_scale
        return np.clip(scores, low, high)

    def score(self, users, items) -> np.ndarray:
        """Clipped rating predictions for aligned id arrays, LRU-cached per pair."""
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        items = np.atleast_1d(np.asarray(items, dtype=np.int64))
        if users.shape != items.shape:
            raise ValueError("users and items must align")
        if users.size == 0:
            return np.empty(0, dtype=np.float64)
        with self._lock, span("serve.score"):
            self._check_ids("user", users)
            self._check_ids("item", items)
            out = np.empty(len(users), dtype=np.float64)
            if self.cache_size:
                misses: List[int] = []
                with span("serve.cache"):
                    for j, key in enumerate(zip(users.tolist(), items.tolist())):
                        cached = self._cache.get(key)
                        if cached is None:
                            misses.append(j)
                        else:
                            self._cache.move_to_end(key)
                            out[j] = cached
            else:
                # Memoisation disabled: skip the per-pair Python lookup loop so
                # large fused batches stay fully vectorised.
                misses = list(range(len(users)))
            if misses:
                with span("serve.score_cold"):
                    rows = np.asarray(misses, dtype=np.int64)
                    fresh = self._compute_scores(users[rows], items[rows])
                out[rows] = fresh
                if self.cache_size:
                    for j, value in zip(misses, fresh.tolist()):
                        self._cache[(int(users[j]), int(items[j]))] = value
                    while len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
            increment("serve.scores", len(users))
            increment("serve.cache.hits", len(users) - len(misses))
            increment("serve.cache.misses", len(misses))
            self._cache_hits += len(users) - len(misses)
            self._cache_misses += len(misses)
            return out

    def predict_batch(self, users, items, batch_size: Optional[int] = None) -> np.ndarray:
        """Bulk scoring that bypasses the result cache (bench / evaluation path)."""
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        items = np.atleast_1d(np.asarray(items, dtype=np.int64))
        if users.shape != items.shape:
            raise ValueError("users and items must align")
        if users.size == 0:
            return np.empty(0, dtype=np.float64)
        step = batch_size or self.batch_size
        with self._lock, span("serve.score"):
            self._check_ids("user", users)
            self._check_ids("item", items)
            with span("serve.score_cold"):
                chunks = [
                    self._compute_scores(users[start : start + step], items[start : start + step])
                    for start in range(0, len(users), step)
                ]
            increment("serve.scores", len(users))
            increment("serve.cache.misses", len(users))
            self._cache_misses += len(users)
            return np.concatenate(chunks)

    def top_n(self, user: int, k: int = 10, exclude_seen: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """The ``k`` highest-scoring items for ``user`` → (item ids, scores).

        With ``exclude_seen`` the user's training-time items are removed —
        recommendation, not rating prediction.  Onboarded items compete on
        equal footing with catalogue items."""
        if k < 1:
            raise ValueError("k must be positive")
        user = int(user)
        with self._lock, span("serve.topn"):
            self._check_ids("user", np.asarray([user]))
            items = np.arange(self.num_items, dtype=np.int64)
            scores = self._compute_scores(np.full(len(items), user, dtype=np.int64), items)
            if exclude_seen:
                seen = self._seen.get(user)
                if seen:
                    scores = scores.copy()
                    scores[np.fromiter(seen, dtype=np.int64)] = -np.inf
            valid = np.flatnonzero(np.isfinite(scores))
            k = min(k, len(valid))
            top = valid[np.argsort(-scores[valid], kind="stable")[:k]]
            increment("serve.topn.requests")
            return top, scores[top]

    # ------------------------------------------------------------- onboarding
    def _candidate_index(self, side: str) -> Optional[CandidateIndex]:
        """The side's onboarding index, or None on the exact (default) path.

        Built lazily from the current attribute matrix the first time an
        inverted-strategy bundle onboards a node; :meth:`_add_node` keeps it
        in sync afterwards, so later arrivals are discoverable as candidates.
        """
        config = self.model.config
        if getattr(config, "graph_candidate_strategy", "exact") != "inverted":
            return None
        index = self._cand_index[side]
        if index is None:
            pool_size = max(
                int(round(self.count(side) * config.pool_percent / 100.0)),
                config.num_neighbors,
            )
            scan_budget, max_candidates = default_budgets(pool_size)
            index = CandidateIndex(
                self._attr[side] != 0,
                scan_budget=scan_budget,
                max_candidates=max_candidates,
            )
            self._cand_index[side] = index
        return index

    def add_user(self, attributes) -> int:
        """Onboard a brand-new strict-cold-start user from attributes alone."""
        return self._add_node("user", attributes)

    def add_item(self, attributes) -> int:
        """Onboard a brand-new strict-cold-start item from attributes alone."""
        return self._add_node("item", attributes)

    def _add_node(self, side: str, attributes) -> int:
        model = self.model
        with self._lock, span("serve.onboard"):
            row = encode_attribute_row(
                attributes, self.bundle.schema(side), self._attr[side].shape[1]
            )
            # Eq. 6–8 at runtime: the eVAE generates the preference embedding
            # the node never trained.
            pref_row = model.generate_cold_preference(side, row[None])
            # Splice into the attribute graph: proximity against every known
            # node (or, with an inverted-strategy bundle, only against the
            # index's candidates), top-p% pool, neighbourhood from its head.
            index = self._candidate_index(side)
            neighbour_ids, _, _ = splice_neighbours(
                row,
                self._attr[side],
                pool_percent=model.config.pool_percent,
                k=self._neigh[side].shape[1],
                min_pool=model.config.num_neighbors,
                index=index,
            )
            raw_row = model.raw_node_embeddings(
                side, row[None], pref_row, np.zeros(1, dtype=np.int64)
            )
            refined_row = model.refine_node_embeddings(
                side, raw_row, self._raw[side][neighbour_ids][None]
            )

            new_id = self.count(side)
            if index is not None:
                # new_id == index.num_nodes: the index grows in lockstep with
                # the attribute matrix, keeping this arrival discoverable.
                index.add_row(row != 0)
            self._attr[side] = np.vstack([self._attr[side], row[None]])
            self._pref[side] = np.vstack([self._pref[side], pref_row])
            self._neigh[side] = np.vstack([self._neigh[side], neighbour_ids[None]])
            self._raw[side] = np.vstack([self._raw[side], raw_row])
            self._refined[side] = np.vstack([self._refined[side], refined_row])
            self._bias[side] = np.append(self._bias[side], 0.0)
            if side == "user":
                self._seen[new_id] = set()
            # The node set changed: cached (user, item) results may be stale
            # for retrieval purposes, so the result cache is invalidated.
            self._cache.clear()
            increment(f"serve.onboarded.{side}s")
            set_gauge(f"serve.nodes.{side}", float(self.count(side)))
            obs_events.emit(
                "serve.onboard",
                side=side,
                node_id=new_id,
                neighbours=neighbour_ids,
                onboarded=self.onboarded(side),
            )
            return new_id
