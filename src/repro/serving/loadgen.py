"""The load generator: producer of ``BENCH_load.json`` (``repro load-bench``).

Latency-under-concurrency is a tracked number like train throughput: this
module drives a serving engine with concurrent scoring traffic and reports
throughput and tail latency for the *direct* path (every caller thread hits
:meth:`InferenceEngine.score` alone — the single-request baseline) against
the *batched* path (callers submit through the coalescing
:class:`~repro.serving.batching.BatchingEngine`).  Two load models:

* **closed loop** — ``C`` worker threads each keep exactly one request in
  flight, back to back, for a fixed duration; run over a concurrency ramp
  (default 1 → 4 → 16).  Throughput is completed requests over the overlap
  window; latency percentiles are per-request wall times.
* **open loop** — requests are *scheduled* at a fixed arrival rate regardless
  of completions, and latency is measured from the scheduled send time, so a
  backed-up server honestly accumulates queueing delay instead of silently
  slowing the generator (no coordinated omission).

Both paths score identical seeded workloads and the batched results are
checked bitwise against the direct path before any timing runs — the bench
refuses to compare paths that disagree.  Engines run with ``cache_size=0``:
the LRU would otherwise answer the second pass from memory and the bench
would measure the cache, not the serving path.

A third phase sweeps the **multi-process pool** (schema v2): for each worker
count in ``pool_worker_counts`` a :class:`~repro.serving.workers.WorkerPool`
is stood up over the same bundle (mmap-shared state), checked for bitwise
parity against the single-process oracle on *every* worker — before and after
an onboarding broadcast — then driven with the closed-loop workload.  Memory
sharing is measured from ``/proc/<pid>/smaps``: the per-mapping **Pss** of the
bundle's ``mapped/`` files summed over all workers (Pss divides shared pages
among their sharers, so N workers over one physical copy sum to ~the same
number as one worker — unlike ``VmRSS``, which would count the shared pages N
times).  The ``pool`` section records throughput scaling, the mapped-Pss
growth ratio, parity, respawns, and the machine's ``cpu_count`` — the
scaling tripwire in ``benchmarks/test_pool_baseline.py`` only binds when the
recording machine actually had cores to scale onto.

A fourth phase (schema v3) measures **tracing overhead**: the same direct
scoring workload with and without a per-request
:class:`~repro.obs.trace.TraceContext` + ingress span, best-of-N p50s, plus
span-loss accounting — the numbers ``benchmarks/test_trace_overhead.py``
gates at ≤5% overhead and zero dropped spans.

``run_load_bench`` writes the ``BENCH_load.json`` baseline consumed by
``benchmarks/test_load_baseline.py`` + ``benchmarks/test_pool_baseline.py`` +
``benchmarks/test_trace_overhead.py`` (the tripwires) and surfaced by
``repro report``; ``check=True`` is the quick smoke invocation wired into the
benchmark suite.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..telemetry import metrics, tracing
from .batching import BatchingEngine, EngineOverloadedError
from .engine import InferenceEngine

__all__ = ["LOAD_SCHEMA_VERSION", "run_load_bench", "render_load_bench"]

#: v2 added the multi-process ``pool`` section; v3 the ``tracing`` overhead
#: section (traced vs untraced p50 + span-loss accounting)
LOAD_SCHEMA_VERSION = 3

_MS = 1e3


def _summarise(latencies: List[float], completed: int, elapsed: float, errors: int, shed: int) -> Dict[str, Any]:
    """Throughput + latency percentiles for one load cell."""
    data = np.asarray(latencies, dtype=np.float64)
    if data.size == 0:
        data = np.zeros(1)
    return {
        "requests": int(completed),
        "errors": int(errors),
        "shed": int(shed),
        "elapsed_s": float(elapsed),
        "throughput_rps": float(completed / elapsed) if elapsed > 0 else 0.0,
        "mean_ms": float(data.mean() * _MS),
        "p50_ms": float(np.percentile(data, 50) * _MS),
        "p95_ms": float(np.percentile(data, 95) * _MS),
        "p99_ms": float(np.percentile(data, 99) * _MS),
        "max_ms": float(data.max() * _MS),
    }


def _request_slices(
    users: np.ndarray, items: np.ndarray, pairs_per_request: int
) -> List[tuple]:
    """Cut the pair pool into fixed-size candidate-set requests."""
    step = max(int(pairs_per_request), 1)
    return [
        (users[lo : lo + step], items[lo : lo + step])
        for lo in range(0, len(users) - step + 1, step)
    ]


def _closed_loop(
    score,
    users: np.ndarray,
    items: np.ndarray,
    concurrency: int,
    duration_s: float,
    pairs_per_request: int,
) -> Dict[str, Any]:
    """``concurrency`` threads, one request in flight each, for ``duration_s``."""
    barrier = threading.Barrier(concurrency)
    latencies: List[List[float]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency
    spans: List[List[float]] = [[0.0, 0.0] for _ in range(concurrency)]
    per_worker = len(users) // concurrency

    def worker(w: int) -> None:
        lo = w * per_worker
        requests = _request_slices(
            users[lo : lo + per_worker], items[lo : lo + per_worker], pairs_per_request
        )
        lat = latencies[w]
        cursor = 0
        barrier.wait()
        started = time.perf_counter()
        deadline = started + duration_s
        now = started
        while now < deadline:
            u, i = requests[cursor]
            cursor = (cursor + 1) % len(requests)
            t0 = time.perf_counter()
            try:
                score(u, i)
            except Exception:
                errors[w] += 1
            now = time.perf_counter()
            lat.append(now - t0)
        spans[w] = [started, now]

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    flat = [value for per in latencies for value in per]
    elapsed = max(end for _, end in spans) - min(start for start, _ in spans)
    return _summarise(flat, completed=len(flat) - sum(errors), elapsed=elapsed, errors=sum(errors), shed=0)


def _open_loop(
    score,
    users: np.ndarray,
    items: np.ndarray,
    rate_rps: float,
    duration_s: float,
    pairs_per_request: int,
    max_workers: int = 32,
) -> Dict[str, Any]:
    """Schedule sends at ``rate_rps`` and measure from the scheduled instant."""
    total = max(int(rate_rps * duration_s), 1)
    interval = 1.0 / rate_rps
    requests = _request_slices(users, items, pairs_per_request)
    latencies: List[float] = []
    record_lock = threading.Lock()
    errors = 0
    shed = 0

    def run_one(idx: int, scheduled: float) -> None:
        nonlocal errors, shed
        try:
            score(*requests[idx % len(requests)])
        except EngineOverloadedError:
            with record_lock:
                shed += 1
            return
        except Exception:
            with record_lock:
                errors += 1
            return
        done = time.perf_counter()
        with record_lock:
            latencies.append(done - scheduled)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        for idx in range(total):
            scheduled = start + idx * interval
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            pool.submit(run_one, idx, scheduled)
    elapsed = time.perf_counter() - start
    summary = _summarise(latencies, completed=len(latencies), elapsed=elapsed, errors=errors, shed=shed)
    summary["offered_rps"] = float(rate_rps)
    return summary


def _batch_distribution(name: str) -> Dict[str, float]:
    histogram = metrics.get_registry().histograms().get(name)
    if histogram is None:
        return {}
    summary = histogram.summary()
    # TimingHistogram speaks seconds; serve.batch.size records pair counts.
    strip = name.endswith(".size")
    return {
        (key[:-2] if strip and key.endswith("_s") else key): float(value)
        for key, value in summary.items()
    }


def _mapped_pss_kb(pid: int, mapped_dir: Path) -> Optional[float]:
    """Sum the Pss of a process's mappings of the bundle's ``mapped/`` files.

    Pss (proportional set size) charges each resident page 1/N-th to each of
    its N sharers, so summing it across workers counts the physically shared
    mapped arrays once — the honest measure of what mmap sharing saves.
    Returns None when smaps is unavailable (non-Linux).
    """
    needle = str(mapped_dir)
    total = 0.0
    in_mapping = False
    try:
        with open(f"/proc/{pid}/smaps", "r") as handle:
            for line in handle:
                if "-" in line.split(" ", 1)[0] and ":" not in line.split(" ", 1)[0]:
                    # mapping header: "addr-addr perms offset dev inode path"
                    in_mapping = needle in line
                elif in_mapping and line.startswith("Pss:"):
                    total += float(line.split()[1])
    except OSError:
        return None
    return total


def _total_pss_kb(pid: int) -> Optional[float]:
    try:
        with open(f"/proc/{pid}/smaps_rollup", "r") as handle:
            for line in handle:
                if line.startswith("Pss:"):
                    return float(line.split()[1])
    except OSError:
        pass
    try:
        total = 0.0
        with open(f"/proc/{pid}/smaps", "r") as handle:
            for line in handle:
                if line.startswith("Pss:"):
                    total += float(line.split()[1])
        return total
    except OSError:
        return None


def _pool_phase(
    bundle_dir: Path,
    oracle: InferenceEngine,
    users: np.ndarray,
    items: np.ndarray,
    worker_counts: Sequence[int],
    concurrency: int,
    duration_s: float,
    pairs_per_request: int,
    parity_pairs: int,
    max_batch_pairs: int,
    max_queue_depth: int,
) -> Dict[str, Any]:
    """Sweep worker counts: parity on every worker, throughput, shared-memory Pss."""
    from .mapped import MAPPED_DIR_NAME
    from .workers import WorkerPool

    worker_counts = sorted(set(int(w) for w in worker_counts))
    count = min(parity_pairs, len(users))
    reference = oracle.predict_batch(users[:count], items[:count])
    mapped_dir = bundle_dir / MAPPED_DIR_NAME

    cells: Dict[str, Dict[str, Any]] = {}
    onboard_parity = True
    all_parity = True
    for workers in worker_counts:
        pool = WorkerPool(
            bundle_dir,
            workers=workers,
            cache_size=0,
            max_batch_pairs=max_batch_pairs,
            max_queue_depth=max_queue_depth,
        )
        try:
            # Parity gate per worker — and page warmup in the same stroke: the
            # full parity slice touches the mapped arrays, so the Pss numbers
            # below measure resident shared pages, not lazily unfaulted ones.
            parity_ok = all(
                np.array_equal(pool.score_on_worker(w, users[:count], items[:count]), reference)
                for w in range(workers)
            )
            all_parity = all_parity and parity_ok

            pids = [pid for pid in pool.worker_pids() if pid is not None]
            mapped_pss = [_mapped_pss_kb(pid, mapped_dir) for pid in pids]
            total_pss = [_total_pss_kb(pid) for pid in pids]
            have_pss = all(v is not None for v in mapped_pss)

            cell = _closed_loop(
                pool.score, users, items, concurrency, duration_s, pairs_per_request
            )
            cell["workers"] = int(workers)
            cell["parity_ok"] = bool(parity_ok)
            cell["mapped_pss_kb"] = float(sum(mapped_pss)) if have_pss else None
            cell["total_pss_kb"] = (
                float(sum(v for v in total_pss if v is not None))
                if any(v is not None for v in total_pss)
                else None
            )
            cell["respawns"] = int(pool.stats()["respawns"])
            cells[str(workers)] = cell

            if workers == max(worker_counts):
                # Onboarding broadcast parity at the widest pool: every worker
                # must hold the same node set and score it bitwise like the
                # oracle after add_item/add_user.
                item_row = np.array(oracle._attr["item"][0], dtype=np.float64)
                user_row = np.array(oracle._attr["user"][0], dtype=np.float64)
                new_item = pool.add_item(item_row)
                new_user = pool.add_user(user_row)
                onboard_parity = (
                    new_item == oracle.add_item(item_row)
                    and new_user == oracle.add_user(user_row)
                )
                probe_u = np.append(users[:32], new_user)
                probe_i = np.append(items[:32], new_item)
                expect = oracle.predict_batch(probe_u, probe_i)
                onboard_parity = onboard_parity and all(
                    np.array_equal(pool.score_on_worker(w, probe_u, probe_i), expect)
                    for w in range(workers)
                )
                all_parity = all_parity and onboard_parity
        finally:
            pool.shutdown()

    lowest = str(min(worker_counts))
    highest = str(max(worker_counts))
    base = cells[lowest]
    top = cells[highest]
    scaling_x = (
        top["throughput_rps"] / base["throughput_rps"] if base["throughput_rps"] else 0.0
    )
    rss_growth_x = (
        top["mapped_pss_kb"] / base["mapped_pss_kb"]
        if base.get("mapped_pss_kb") and top.get("mapped_pss_kb") is not None
        else None
    )
    errors = sum(cell["errors"] for cell in cells.values())
    respawns = sum(cell["respawns"] for cell in cells.values())
    return {
        "worker_counts": [int(w) for w in worker_counts],
        "concurrency": int(concurrency),
        "cpu_count": int(os.cpu_count() or 1),
        "cells": cells,
        "scaling_x": float(scaling_x),
        "rss_growth_x": None if rss_growth_x is None else float(rss_growth_x),
        "parity": bool(all_parity),
        "onboard_parity": bool(onboard_parity),
        "respawns": int(respawns),
        "errors": int(errors),
        "ok": bool(all_parity and errors == 0 and respawns == 0),
    }


#: candidate-set size for the tracing-overhead phase.  Tracing costs a small
#: per-request *constant* (a context mint + one extra span), so the honest
#: ratio gate measures it against a full reranking candidate pool — where
#: scoring is the dominant term, as in production — rather than the 16-pair
#: micro-slice the coalescing cells use to stress fusion.
TRACE_PAIRS_PER_REQUEST = 1024


def _tracing_phase(
    engine: InferenceEngine,
    users: np.ndarray,
    items: np.ndarray,
    pairs_per_request: int = TRACE_PAIRS_PER_REQUEST,
    requests: int = 200,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Traced vs untraced p50 on the direct scoring path, request-interleaved.

    *Untraced* is the pre-tracing status quo — telemetry on, no trace context,
    no ingress span.  *Traced* mints a :class:`~repro.obs.trace.TraceContext`
    per request and wraps the score in the ingress ``serve.request`` span,
    exactly what the HTTP front door now does.  The two conditions alternate
    request by request within each round, so machine drift (CPU frequency,
    co-tenants, GC) lands on both distributions equally instead of being
    misattributed to tracing; ``overhead_x`` is the smallest traced/untraced
    p50 ratio over ``repeats`` rounds.  This is the number the
    ``benchmarks/test_trace_overhead.py`` tripwire gates at ≤5%; span records
    are reset first so ``span_dropped`` counts loss caused by *this phase*,
    not earlier load cells filling the ring.
    """
    from ..obs.trace import TraceContext, trace_scope

    slices = _request_slices(users, items, pairs_per_request)
    n = max(1, int(requests))

    def _round() -> tuple:
        untraced = np.empty(n, dtype=np.float64)
        traced = np.empty(n, dtype=np.float64)
        for idx in range(n):
            u, i = slices[idx % len(slices)]
            t0 = time.perf_counter()
            engine.score(u, i)
            untraced[idx] = time.perf_counter() - t0
            t0 = time.perf_counter()
            with trace_scope(TraceContext.mint(f"load-{idx}")):
                with tracing.span("serve.request"):
                    engine.score(u, i)
            traced[idx] = time.perf_counter() - t0
        return (
            float(np.percentile(untraced, 50)),
            float(np.percentile(traced, 50)),
        )

    _round()  # warmup: caches, lazy allocations
    tracing.reset_spans()
    best = min(
        (_round() for _ in range(repeats)),
        key=lambda r: (r[1] / r[0]) if r[0] else float("inf"),
    )
    spans_recorded = len(tracing.export_spans())
    span_dropped = tracing.dropped_records()
    return {
        "requests": int(n),
        "repeats": int(repeats),
        "pairs_per_request": int(pairs_per_request),
        "untraced_p50_ms": float(best[0] * _MS),
        "traced_p50_ms": float(best[1] * _MS),
        "overhead_x": float(best[1] / best[0]) if best[0] else 0.0,
        "spans_recorded": int(spans_recorded),
        "span_dropped": int(span_dropped),
    }


def run_load_bench(
    dataset: str = "ML-100K",
    scenario: str = "item_cold",
    scale_name: str = "smoke",
    epochs: Optional[int] = 2,
    bundle_path: Optional[str] = None,
    concurrencies: Sequence[int] = (1, 4, 16),
    duration_s: float = 1.0,
    rate_rps: float = 300.0,
    pairs_per_request: int = 16,
    embedding_dim: Optional[int] = 40,
    parity_pairs: int = 512,
    tick_interval: float = 0.0,
    max_batch_pairs: int = 8192,
    max_queue_depth: int = 4096,
    pool_worker_counts: Sequence[int] = (1, 2, 4),
    pool_concurrency: int = 8,
    seed: int = 0,
    output: Optional[str] = "BENCH_load.json",
    check: bool = False,
) -> Dict[str, Any]:
    """Run the full load matrix; write ``output`` unless ``None``.

    Each request scores a ``pairs_per_request`` candidate set (the reranking
    shape a recommender front-end actually sends), and the bundle is trained
    at ``embedding_dim`` (default 40 — the paper's dimension, instead of the
    smoke scale's test-suite toy dimension) so the serving compute being
    coalesced is representative.  The batching engine runs in its default
    adaptive-drain mode (``tick_interval=0``): batches are whatever queued
    while the previous fused call executed, so no request ever waits on an
    artificial window — the configuration whose throughput this baseline
    actually pins.  ``check`` shrinks everything (one short cell
    per mode, no open loop) into a seconds-scale smoke invocation that still
    exercises training → bundle → both serving paths → parity; the tripwire
    suite runs it through the CLI.
    """
    from .bundle import export_bundle, load_bundle

    if check:
        concurrencies = tuple(concurrencies[:2]) or (1, 4)
        duration_s = min(duration_s, 0.3)
        if pool_worker_counts:
            pool_worker_counts = tuple(sorted(set(pool_worker_counts)))[:2] or (1, 2)

    # The pool phase spawns workers that open the bundle *directory*, so a
    # trained throwaway bundle must outlive this whole function body — the
    # tempdir is cleaned up in the final finally, not at load time.
    scratch: Optional[tempfile.TemporaryDirectory] = None
    try:
        if bundle_path is not None:
            bundle_dir = Path(bundle_path)
            bundle = load_bundle(bundle_dir)
            epochs_trained = None
        else:
            from dataclasses import replace

            from ..core import AGNN
            from ..data import make_split
            from ..experiments.configs import get_scale
            from ..nn import init as nn_init

            scale = get_scale(scale_name)
            train_config = scale.train if epochs is None else replace(scale.train, epochs=epochs)
            data = scale.datasets[dataset]()
            nn_init.seed(scale.seed)
            task = make_split(data, scenario, scale.split_fraction, seed=scale.seed)
            agnn_config = (
                scale.agnn
                if embedding_dim is None
                else replace(scale.agnn, embedding_dim=embedding_dim)
            )
            model = AGNN(agnn_config, rng_seed=scale.seed)
            history = model.fit(task, train_config)
            epochs_trained = history.num_epochs
            scratch = tempfile.TemporaryDirectory(prefix="repro-load-")
            bundle_dir = export_bundle(
                model, task, Path(scratch.name) / "bundle", note="load-bench"
            )
            bundle = load_bundle(bundle_dir)

        return _run_load_bench_phases(
            bundle=bundle,
            bundle_dir=bundle_dir,
            dataset=dataset,
            scenario=scenario,
            scale_name=scale_name,
            epochs_trained=epochs_trained,
            concurrencies=concurrencies,
            duration_s=duration_s,
            rate_rps=rate_rps,
            pairs_per_request=pairs_per_request,
            embedding_dim=embedding_dim,
            parity_pairs=parity_pairs,
            tick_interval=tick_interval,
            max_batch_pairs=max_batch_pairs,
            max_queue_depth=max_queue_depth,
            pool_worker_counts=tuple(pool_worker_counts),
            pool_concurrency=pool_concurrency,
            seed=seed,
            output=output,
            check=check,
        )
    finally:
        if scratch is not None:
            scratch.cleanup()


def _run_load_bench_phases(
    bundle,
    bundle_dir: Path,
    dataset: str,
    scenario: str,
    scale_name: str,
    epochs_trained: Optional[int],
    concurrencies: Sequence[int],
    duration_s: float,
    rate_rps: float,
    pairs_per_request: int,
    embedding_dim: Optional[int],
    parity_pairs: int,
    tick_interval: float,
    max_batch_pairs: int,
    max_queue_depth: int,
    pool_worker_counts: Sequence[int],
    pool_concurrency: int,
    seed: int,
    output: Optional[str],
    check: bool,
) -> Dict[str, Any]:
    metrics.reset()
    tracing.reset_spans()
    with metrics.enabled():
        # cache_size=0: measure the serving path, not the LRU.
        engine = InferenceEngine(bundle, cache_size=0)
        rng = np.random.default_rng(seed)
        pool = 4096
        users = rng.integers(0, engine.num_users, size=pool).astype(np.int64)
        items = rng.integers(0, engine.num_items, size=pool).astype(np.int64)

        batching = BatchingEngine(
            engine,
            max_batch_pairs=max_batch_pairs,
            max_queue_depth=max_queue_depth,
            tick_interval=tick_interval,
        )
        try:
            # Parity gate: the coalesced path must be bitwise the direct path.
            count = min(parity_pairs, pool)
            direct_ref = engine.score(users[:count], items[:count])
            chunk = 7  # deliberately awkward splits so coalescing has to fuse
            futures = [
                batching.submit_score(
                    users[lo : min(lo + chunk, count)], items[lo : min(lo + chunk, count)]
                )
                for lo in range(0, count, chunk)
            ]
            batched_ref = np.concatenate([future.result(60.0) for future in futures])
            max_abs_diff = float(np.max(np.abs(direct_ref - batched_ref))) if count else 0.0
            parity_ok = bool(np.array_equal(direct_ref, batched_ref))

            closed: Dict[str, Dict[str, Dict[str, Any]]] = {"direct": {}, "batched": {}}
            for concurrency in concurrencies:
                closed["direct"][str(concurrency)] = _closed_loop(
                    engine.score, users, items, concurrency, duration_s, pairs_per_request
                )
                closed["batched"][str(concurrency)] = _closed_loop(
                    batching.score, users, items, concurrency, duration_s, pairs_per_request
                )

            open_loop: Dict[str, Any] = {}
            if not check:
                open_loop = {
                    "rate_rps": float(rate_rps),
                    "duration_s": float(duration_s),
                    "direct": _open_loop(
                        engine.score, users, items, rate_rps, duration_s, pairs_per_request
                    ),
                    "batched": _open_loop(
                        batching.score, users, items, rate_rps, duration_s, pairs_per_request
                    ),
                }

            batching_stats = batching.stats()
        finally:
            batching.stop(drain=True)

        tracing_section = _tracing_phase(
            engine,
            users,
            items,
            requests=60 if check else 300,
            repeats=2 if check else 3,
        )

        pool_section: Dict[str, Any] = {}
        if pool_worker_counts:
            pool_section = _pool_phase(
                bundle_dir,
                engine,
                users,
                items,
                pool_worker_counts,
                pool_concurrency,
                duration_s,
                pairs_per_request,
                parity_pairs,
                max_batch_pairs,
                max_queue_depth,
            )

        counters = metrics.get_registry().counters()
        batch_telemetry = {
            "ticks": batching_stats["ticks"],
            "coalesced_requests": batching_stats["coalesced_requests"],
            "fallbacks": batching_stats["fallbacks"],
            "shed": batching_stats["shed"],
            "shed_counter": int(counters.get("serve.shed", 0)),
            "batch_pairs": _batch_distribution("serve.batch.size"),
            "queue_wait": _batch_distribution("serve.batch.wait"),
        }

    top = str(max(concurrencies))
    direct_top = closed["direct"][top]
    batched_top = closed["batched"][top]
    summary = {
        "top_concurrency": int(top),
        "direct_throughput_rps": direct_top["throughput_rps"],
        "batched_throughput_rps": batched_top["throughput_rps"],
        "throughput_gain_x": (
            batched_top["throughput_rps"] / direct_top["throughput_rps"]
            if direct_top["throughput_rps"]
            else 0.0
        ),
        "direct_p99_ms": direct_top["p99_ms"],
        "batched_p99_ms": batched_top["p99_ms"],
        "p99_gain_x": (
            direct_top["p99_ms"] / batched_top["p99_ms"] if batched_top["p99_ms"] else 0.0
        ),
    }
    if pool_section:
        summary["pool_workers"] = int(max(pool_section["worker_counts"]))
        summary["pool_scaling_x"] = pool_section["scaling_x"]
        summary["pool_rss_growth_x"] = pool_section["rss_growth_x"]
    summary["trace_overhead_x"] = tracing_section["overhead_x"]

    total_errors = sum(
        cell["errors"] for mode in closed.values() for cell in mode.values()
    )
    payload: Dict[str, Any] = {
        "schema_version": LOAD_SCHEMA_VERSION,
        "meta": {
            "dataset": dataset,
            "scenario": scenario,
            "scale": scale_name,
            "epochs_trained": epochs_trained,
            "seed": int(seed),
            "check": bool(check),
            "users": int(engine.num_users),
            "items": int(engine.num_items),
            "pairs_per_request": int(pairs_per_request),
            "embedding_dim": None if embedding_dim is None else int(embedding_dim),
            "engine": {
                "cache_size": 0,
                "tick_interval_s": float(tick_interval),
                "max_batch_pairs": int(max_batch_pairs),
                "max_queue_depth": int(max_queue_depth),
            },
            "parity": {
                "ok": parity_ok,
                "max_abs_diff": max_abs_diff,
                "pairs": int(count),
            },
        },
        "closed_loop": {
            "duration_s": float(duration_s),
            "concurrencies": [int(c) for c in concurrencies],
            **closed,
        },
        "open_loop": open_loop,
        "batching": batch_telemetry,
        "tracing": tracing_section,
        "pool": pool_section,
        "summary": summary,
        "ok": bool(
            parity_ok
            and total_errors == 0
            and (not pool_section or pool_section["ok"])
        ),
    }

    if output is not None:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


def render_load_bench(payload: Dict[str, Any]) -> str:
    """Human-readable table for one load-bench payload."""
    lines: List[str] = []
    meta = payload["meta"]
    parity = meta["parity"]
    lines.append(
        f"load-bench {meta['dataset']}/{meta['scenario']} — "
        f"{meta['users']} users × {meta['items']} items"
        + ("  [check]" if meta.get("check") else "")
    )
    lines.append(
        f"parity: {'ok' if parity['ok'] else 'FAILED'} "
        f"(max |Δ| = {parity['max_abs_diff']:.2e} over {parity['pairs']} pairs)"
    )
    lines.append("")
    lines.append(f"{'mode':<8} {'conc':>4} {'req/s':>9} {'p50':>9} {'p95':>9} {'p99':>9} {'errors':>6}")
    closed = payload["closed_loop"]
    for mode in ("direct", "batched"):
        for concurrency in closed["concurrencies"]:
            cell = closed[mode][str(concurrency)]
            lines.append(
                f"{mode:<8} {concurrency:>4} {cell['throughput_rps']:>9.1f} "
                f"{cell['p50_ms']:>7.2f}ms {cell['p95_ms']:>7.2f}ms "
                f"{cell['p99_ms']:>7.2f}ms {cell['errors']:>6d}"
            )
    open_loop = payload.get("open_loop") or {}
    if open_loop:
        lines.append("")
        lines.append(f"open loop @ {open_loop['rate_rps']:.0f} req/s:")
        for mode in ("direct", "batched"):
            cell = open_loop[mode]
            lines.append(
                f"  {mode:<8} p50 {cell['p50_ms']:.2f}ms  p99 {cell['p99_ms']:.2f}ms  "
                f"completed {cell['requests']}  shed {cell['shed']}"
            )
    pool = payload.get("pool") or {}
    if pool:
        lines.append("")
        lines.append(
            f"worker pool (closed loop, c={pool['concurrency']}, "
            f"{pool['cpu_count']} cpu): parity {'ok' if pool['parity'] else 'FAILED'}, "
            f"onboard parity {'ok' if pool['onboard_parity'] else 'FAILED'}, "
            f"respawns {pool['respawns']}"
        )
        for workers in pool["worker_counts"]:
            cell = pool["cells"][str(workers)]
            pss = cell.get("mapped_pss_kb")
            pss_text = f"{pss / 1024.0:.1f}MB mapped-pss" if pss is not None else "pss n/a"
            lines.append(
                f"  {workers} worker(s): {cell['throughput_rps']:>9.1f} req/s  "
                f"p99 {cell['p99_ms']:.2f}ms  {pss_text}  errors {cell['errors']}"
            )
        growth = pool.get("rss_growth_x")
        growth_text = f"{growth:.2f}x" if growth is not None else "n/a"
        lines.append(
            f"  scaling {pool['scaling_x']:.2f}x "
            f"({min(pool['worker_counts'])}→{max(pool['worker_counts'])} workers), "
            f"mapped-pss growth {growth_text}"
        )
    trace_section = payload.get("tracing") or {}
    if trace_section:
        lines.append("")
        lines.append(
            f"tracing: p50 {trace_section['traced_p50_ms']:.2f}ms traced vs "
            f"{trace_section['untraced_p50_ms']:.2f}ms untraced "
            f"({trace_section['overhead_x']:.3f}x), "
            f"{trace_section['spans_recorded']} spans recorded, "
            f"{trace_section['span_dropped']} dropped"
        )
    batching = payload.get("batching") or {}
    if batching.get("batch_pairs"):
        pairs = batching["batch_pairs"]
        lines.append("")
        lines.append(
            f"coalescing: {batching['ticks']} ticks, "
            f"{batching['coalesced_requests']} coalesced requests, "
            f"batch p50 {pairs.get('p50', 0.0):.0f} pairs (max {pairs.get('max', 0.0):.0f}), "
            f"shed {batching['shed']}"
        )
    summary = payload["summary"]
    lines.append("")
    lines.append(
        f"c={summary['top_concurrency']}: batched {summary['batched_throughput_rps']:.1f} req/s vs "
        f"direct {summary['direct_throughput_rps']:.1f} req/s "
        f"({summary['throughput_gain_x']:.2f}x); "
        f"p99 {summary['batched_p99_ms']:.2f}ms vs {summary['direct_p99_ms']:.2f}ms "
        f"({summary['p99_gain_x']:.2f}x)"
    )
    return "\n".join(lines)
