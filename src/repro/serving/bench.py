"""The serving benchmark: producer of ``BENCH_serving.json``.

Trains a SMOKE-scale AGNN, exports a bundle, loads the engine back with no
training data in sight, and meters the full serving surface:

* offline-parity check — engine scores vs. the fitted model's ``predict``;
* per-call ``score`` latency, uncached (cold) vs. LRU-cached, p50/p95;
* live onboarding of one user and one item, plus a top-N for each;
* one HTTP round trip (healthz / score / topn / onboard / metrics) against an
  ephemeral localhost port, so the ``serve.request`` spans are real.

The snapshot extends the ``BENCH_telemetry.json`` schema with a ``serving``
meta section; :data:`EXPECTED_SERVING_SPANS` is the tripwire list asserted by
``benchmarks/test_serving_baseline.py`` — cached p50 must stay strictly below
the cold path.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from ..core import AGNN
from ..data import make_split
from ..nn import init as nn_init
from ..telemetry import metrics, report, tracing
from .bundle import export_bundle, load_bundle
from .engine import InferenceEngine
from .server import make_server

__all__ = ["EXPECTED_SERVING_SPANS", "run_serving_bench"]

#: span paths every serving-bench snapshot must contain with non-zero time.
EXPECTED_SERVING_SPANS = (
    "serve.export_bundle",
    "serve.load_bundle",
    "serve.refresh",
    "serve.score",
    "serve.score/serve.cache",
    "serve.score/serve.score_cold",
    "serve.topn",
    "serve.onboard",
    "serve.request",
)


def _post(url: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def _get(url: str) -> Dict[str, Any]:
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def run_serving_bench(
    dataset: str = "ML-100K",
    scenario: str = "item_cold",
    scale_name: str = "smoke",
    epochs: Optional[int] = None,
    pairs: int = 200,
    output: Optional[str] = "BENCH_serving.json",
) -> Dict[str, Any]:
    """Run the metered serving cycle; write ``output`` unless ``None``."""
    from dataclasses import replace

    from ..experiments.configs import get_scale

    scale = get_scale(scale_name)
    train_config = scale.train if epochs is None else replace(scale.train, epochs=epochs)
    data = scale.datasets[dataset]()

    metrics.reset()
    tracing.reset_spans()
    with metrics.enabled():
        nn_init.seed(scale.seed)
        task = make_split(data, scenario, scale.split_fraction, seed=scale.seed)
        model = AGNN(scale.agnn, rng_seed=scale.seed)
        history = model.fit(task, train_config)

        with tempfile.TemporaryDirectory() as tmp:
            bundle_path = export_bundle(model, task, Path(tmp) / "bundle", note="serving-bench")
            bundle = load_bundle(bundle_path)
        engine = InferenceEngine(bundle)

        # Parity: the engine must reproduce the offline model on test pairs.
        count = min(pairs, len(task.test_idx))
        users = task.test_users[:count]
        items = task.test_items[:count]
        offline = model.predict(users, items)
        online = engine.predict_batch(users, items)
        max_abs_diff = float(np.max(np.abs(offline - online))) if count else 0.0

        # Latency: per-call score, cold (cache misses) then cached (hits).
        cold_times = []
        for u, i in zip(users.tolist(), items.tolist()):
            start = time.perf_counter()
            engine.score([u], [i])
            cold_times.append(time.perf_counter() - start)
        cached_times = []
        for u, i in zip(users.tolist(), items.tolist()):
            start = time.perf_counter()
            engine.score([u], [i])
            cached_times.append(time.perf_counter() - start)

        # Live onboarding: a brand-new user and item, attributes only.
        new_user = engine.add_user(bundle.user_attributes[0])
        new_item = engine.add_item(bundle.item_attributes[0])
        topn_items, topn_scores = engine.top_n(new_user, k=10)
        onboard_score = float(engine.score([new_user], [new_item])[0])

        # HTTP round trip on an ephemeral port.
        server = make_server(engine, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base = f"http://127.0.0.1:{server.port}"
            health = _get(f"{base}/healthz")
            http_scores = _post(f"{base}/score", {"users": users[:8].tolist(), "items": items[:8].tolist()})
            _post(f"{base}/topn", {"user": int(users[0]), "k": 5})
            _post(f"{base}/users", {"attributes": bundle.user_attributes[1].tolist()})
            _get(f"{base}/metrics")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

        serving_meta = {
            "dataset": dataset,
            "scenario": scenario,
            "scale": scale_name,
            "epochs_trained": history.num_epochs,
            "pairs": count,
            "max_abs_diff_vs_offline": max_abs_diff,
            "score_cold_p50_s": float(np.percentile(cold_times, 50)),
            "score_cold_p95_s": float(np.percentile(cold_times, 95)),
            "score_cached_p50_s": float(np.percentile(cached_times, 50)),
            "score_cached_p95_s": float(np.percentile(cached_times, 95)),
            "cached_speedup_p50": float(
                np.percentile(cold_times, 50) / max(np.percentile(cached_times, 50), 1e-12)
            ),
            "onboarded_user": int(new_user),
            "onboarded_item": int(new_item),
            "onboard_cross_score": onboard_score,
            "topn_size": int(len(topn_items)),
            "topn_best_score": float(topn_scores[0]) if len(topn_scores) else None,
            "http_health_users": int(health["users"]),
            "http_score_count": len(http_scores["scores"]),
        }
        snap = report.snapshot(note="serving-bench", extra_meta={"serving": serving_meta})

    if output is not None:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(snap, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return snap
