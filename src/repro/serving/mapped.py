"""Memory-mapped bundle state: one physical copy of the serving arrays.

A multi-process worker pool (:mod:`repro.serving.workers`) wants N identical
:class:`~repro.serving.engine.InferenceEngine` instances without N heap
copies of the model state.  Everything an engine holds per side — attribute
matrices, preference matrices, neighbour indices, raw and refined embedding
caches, bias vectors — plus the candidate-pool graph arrays and the model
weights is *derived deterministically from the bundle*, so it can be
materialised once, written as plain ``.npy`` files, and mapped read-only into
every worker with ``np.load(..., mmap_mode="r")``: the kernel keeps a single
page-cache copy and shares it across processes.

Two entry points:

* :func:`materialise_mapped` — load the bundle, run the exact single-process
  engine precompute (``InferenceEngine._derive_embeddings``, so the mapped
  arrays are **bitwise** what a fresh engine would derive), and write the
  ``mapped/`` directory atomically next to the bundle's archives.  The
  directory records the bundle's content fingerprint; a refreshed bundle
  invalidates it.
* :func:`open_bundle_mapped` — return a :class:`ServingBundle` whose
  ``mapped`` attribute carries the read-only arrays.  An engine built from it
  skips the precompute entirely (startup is an ``np.load`` of headers) and
  shares physical pages with every sibling process.  A bundle without mapped
  state (schema v2 and earlier never wrote one) is transparently upgraded
  when ``materialise=True`` (the default), and rejected with a clear
  re-export message when the caller forbids writing (workers do: only the
  pool parent materialises, so N workers never race on the files).

Onboarding and neighbourhood resampling still work on a mapped engine: grow
operations (``np.vstack``) allocate fresh writable arrays, so a worker that
onboards a node pays copy-on-grow for that side only — the common read path
never touches a writable page.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..telemetry import span
from .bundle import ServingBundle, bundle_fingerprint, load_bundle

__all__ = [
    "MAPPED_FORMAT_VERSION",
    "MAPPED_DIR_NAME",
    "BundleMappingError",
    "materialise_mapped",
    "open_bundle_mapped",
    "mapped_is_fresh",
]

PathLike = Union[str, Path]

MAPPED_FORMAT_VERSION = 1
MAPPED_DIR_NAME = "mapped"

_SIDES = ("user", "item")

#: per-side engine arrays written by :func:`materialise_mapped`
_SIDE_ARRAYS = ("attr", "pref", "neigh", "raw", "refined", "bias")


class BundleMappingError(RuntimeError):
    """The bundle has no usable mapped state and the caller cannot create it."""


def _mapped_dir(bundle_path: Path) -> Path:
    return bundle_path / MAPPED_DIR_NAME


def mapped_is_fresh(bundle_path: PathLike) -> bool:
    """Whether ``bundle/mapped`` exists and matches the bundle's fingerprint."""
    bundle_path = Path(bundle_path)
    meta_path = _mapped_dir(bundle_path) / "mapped.json"
    if not meta_path.is_file():
        return False
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return (
        meta.get("format_version") == MAPPED_FORMAT_VERSION
        and meta.get("source_fingerprint") == bundle_fingerprint(bundle_path)
    )


def materialise_mapped(
    bundle_path: PathLike,
    force: bool = False,
    batch_size: int = 2048,
) -> Path:
    """Write (or refresh) the bundle's ``mapped/`` directory; return its path.

    The precompute goes through a throwaway single-process
    :class:`InferenceEngine`, so every array is bitwise identical to what a
    worker would have derived itself — this is what makes pooled responses
    bitwise-comparable to the single-process oracle.  The directory is
    written to a temp sibling and renamed into place, so readers never see a
    half-written mapping.  A fresh mapping (matching fingerprint) is reused
    unless ``force``.
    """
    # Imported here: engine imports this module's sibling `bundle`, and the
    # serving package initialises `engine` after `bundle`.
    from .engine import InferenceEngine

    bundle_path = Path(bundle_path)
    target = _mapped_dir(bundle_path)
    if not force and mapped_is_fresh(bundle_path):
        return target

    with span("serve.materialise_mapped"):
        bundle = load_bundle(bundle_path)
        donor = InferenceEngine(bundle, cache_size=0, batch_size=batch_size)

        tmp = bundle_path / f"{MAPPED_DIR_NAME}.tmp.{os.getpid()}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        try:
            arrays: Dict[str, str] = {}
            for side in _SIDES:
                side_arrays = {
                    "attr": donor._attr[side],
                    "pref": donor._pref[side],
                    "neigh": donor._neigh[side],
                    "raw": donor._raw[side],
                    "refined": donor._refined[side],
                    "bias": donor._bias[side],
                }
                for name, value in side_arrays.items():
                    key = f"{side}_{name}"
                    np.save(tmp / f"{key}.npy", np.ascontiguousarray(value))
                    arrays[key] = f"{key}.npy"

            # Candidate-pool graph arrays, flat — the same packing the bundle's
            # graphs.npz uses, but one .npy per array so pools mmap as views.
            from .bundle import _serialise_graph

            graph_arrays: Dict[str, np.ndarray] = {}
            graph_kinds = {
                side: _serialise_graph(bundle.graphs[side], side, graph_arrays)
                for side in _SIDES
            }
            for key, value in graph_arrays.items():
                np.save(tmp / f"{key}.npy", np.ascontiguousarray(value))
                arrays[key] = f"{key}.npy"

            # Model weights, one .npy per parameter (dots escaped as in
            # repro.io.save_model).  They are loaded through mmap too; the
            # parameters themselves stay writable heap arrays (load_state_dict
            # copies) because autograd must own them — they are the small part
            # of a bundle, the embedding caches above are the big one.
            weights_dir = tmp / "weights"
            weights_dir.mkdir()
            weights = {}
            for name, value in bundle.model.state_dict().items():
                escaped = name.replace(".", "__")
                np.save(weights_dir / f"{escaped}.npy", value)
                weights[name] = f"weights/{escaped}.npy"

            meta = {
                "format_version": MAPPED_FORMAT_VERSION,
                "source_fingerprint": bundle_fingerprint(bundle_path),
                "batch_size": int(batch_size),
                "graph_kinds": graph_kinds,
                "arrays": arrays,
                "weights": weights,
            }
            (tmp / "mapped.json").write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")

            if target.exists():
                shutil.rmtree(target)
            os.replace(tmp, target)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
    return target


def _load_mapped_array(mapped_dir: Path, relative: str) -> np.ndarray:
    array = np.load(mapped_dir / relative, mmap_mode="r", allow_pickle=False)
    # np.load(mmap_mode="r") already yields a read-only memmap; assert rather
    # than trust, because every engine invariant downstream relies on it.
    assert not array.flags.writeable
    return array


def _graphs_from_mapped(meta: Dict, mapped_dir: Path):
    """Rebuild the per-side candidate graphs as views over mmap arrays."""
    from ..graphs import DynamicNeighborGraph, FixedNeighborGraph

    graphs = {}
    for side in _SIDES:
        kind = meta["graph_kinds"][side]
        if kind == "dynamic":
            offsets = _load_mapped_array(mapped_dir, f"{side}_pool_offsets.npy")
            indices = _load_mapped_array(mapped_dir, f"{side}_pool_indices.npy")
            weights = _load_mapped_array(mapped_dir, f"{side}_pool_weights.npy")
            pools = [indices[offsets[i] : offsets[i + 1]] for i in range(len(offsets) - 1)]
            pool_weights = [weights[offsets[i] : offsets[i + 1]] for i in range(len(offsets) - 1)]
            graphs[side] = DynamicNeighborGraph(pools=pools, weights=pool_weights)
        elif kind == "fixed":
            graphs[side] = FixedNeighborGraph(
                matrix=_load_mapped_array(mapped_dir, f"{side}_fixed_matrix.npy")
            )
        else:
            raise BundleMappingError(f"unknown mapped graph kind {kind!r}")
    return graphs


def open_bundle_mapped(path: PathLike, materialise: bool = True) -> ServingBundle:
    """Load a bundle whose serving arrays are shared, read-only mmaps.

    Returns a :class:`ServingBundle` with ``bundle.mapped`` set to the
    per-side array dict; :class:`InferenceEngine` detects it and adopts the
    arrays without copying or re-deriving anything.  ``materialise=False``
    (worker processes) requires the mapped directory to already exist and
    match the bundle fingerprint; a missing or stale mapping then raises
    :class:`BundleMappingError` with the one-line fix.
    """
    path = Path(path)
    if not mapped_is_fresh(path):
        if not materialise:
            raise BundleMappingError(
                f"{path} has no up-to-date mapped state (pre-mmap bundle, or the "
                "bundle changed since it was materialised); run "
                "materialise_mapped() on it — `repro export-bundle` writes it "
                "at export time — before opening it mapped"
            )
        materialise_mapped(path)

    with span("serve.open_mapped"):
        bundle = load_bundle(path)
        mapped_dir = _mapped_dir(path)
        meta = json.loads((mapped_dir / "mapped.json").read_text())

        mapped: Dict[str, Dict[str, np.ndarray]] = {}
        for side in _SIDES:
            mapped[side] = {
                name: _load_mapped_array(mapped_dir, meta["arrays"][f"{side}_{name}"])
                for name in _SIDE_ARRAYS
            }

        # Weights round-trip through the mapped .npy files (page-cache shared
        # reads); load_state_dict copies them into the model's own arrays.
        state = {
            name: _load_mapped_array(mapped_dir, relative)
            for name, relative in meta["weights"].items()
        }
        bundle.model.load_state_dict(state)

        bundle.user_attributes = mapped["user"]["attr"]
        bundle.item_attributes = mapped["item"]["attr"]
        bundle.neighbours = {side: mapped[side]["neigh"] for side in _SIDES}
        bundle.graphs = _graphs_from_mapped(meta, mapped_dir)
        bundle.mapped = mapped
        bundle.mapped_dir = mapped_dir
    return bundle
