"""Multi-process serving: a worker pool over mmap-shared bundle state.

One Python process cannot scale the serving tier past a single core — the
GIL serialises every request no matter how many threads the HTTP server
spawns, and :class:`~repro.serving.batching.BatchingEngine` can only convert
concurrency into *larger* calls, not more cores.  :class:`WorkerPool` scales
out instead: N ``spawn``-ed worker processes, each running its own
:class:`~repro.serving.engine.InferenceEngine` + ``BatchingEngine`` pair, all
of them built from :func:`~repro.serving.mapped.open_bundle_mapped` so the
heavy state — attribute/preference matrices, neighbour indices, raw and
refined embedding caches, candidate-pool graphs — is *one* set of read-only
pages in the page cache, mapped into every worker.  Memory grows with the
per-worker heap (model parameters, caches), not with N copies of the bundle.

Semantics, in order of importance:

* **Bitwise parity** — mapped arrays are materialised through a donor engine
  (so they equal any engine's own derivation bit for bit) and scoring is
  batch-composition invariant, so a pooled response carries exactly the bit
  pattern the single-process engine would have produced, at any worker count.
* **Onboarding broadcast** — ``add_user``/``add_item`` go to *every* worker
  behind a sequence-numbered barrier: the broadcast is sent to all workers
  under the one dispatch lock, so each request is dispatched either entirely
  before it (and sees the old node set on every worker) or entirely after it
  (and sees the new one); per-worker pipes are FIFO, so no worker can observe
  the operations out of order.  All workers must agree on the assigned id.
* **Fault isolation** — a crashed worker is reaped and respawned without
  touching its siblings: their in-flight requests keep running, the dead
  worker's read-only requests (score/top-N) are transparently re-dispatched,
  and the replacement replays the sequence-numbered state log (onboards since
  the last swap, against the current bundle path) before it takes traffic, so
  it converges to the exact node set its siblings hold.
* **Hot swap** — :meth:`swap_bundle_path` validates the candidate bundle once
  in the parent (deterministic probe — all workers would agree), then
  broadcasts it: each worker opens the new bundle mapped *off-path*, probes
  it, and installs it through its batching queue's FIFO swap barrier, so no
  request is dropped and no response mixes bundles.

Dispatch picks the worker with the fewest outstanding requests (round-robin
on ties).  Telemetry: ``serve.pool.dispatch`` (pick+send latency),
``serve.pool.requests`` / ``serve.pool.retries`` / ``serve.pool.respawns`` /
``serve.pool.broadcasts`` counters, and ``serve.pool.depth.<i>`` per-worker
outstanding-request gauges.

Everything here is stdlib (``multiprocessing`` spawn context + pipes +
threads); no third-party process or RPC machinery.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..obs import events as obs_events
from ..telemetry import increment, record_timing, set_gauge, span, tracing
from .batching import BatchingEngine, EngineOverloadedError

__all__ = ["WorkerPool", "WorkerCrashedError", "PoolStoppedError"]

PathLike = Union[str, Path]

#: read-only request kinds that are safe to re-dispatch after a worker crash
_RETRYABLE = ("score", "topn", "healthz")

#: exception types reconstructed by name on the parent side
_WIRE_EXCEPTIONS = {
    "IndexError": IndexError,
    "KeyError": KeyError,
    "TypeError": TypeError,
    "ValueError": ValueError,
    "RuntimeError": RuntimeError,
    "EngineOverloadedError": EngineOverloadedError,
}


class WorkerCrashedError(RuntimeError):
    """The worker holding this request died before answering it."""


class PoolStoppedError(RuntimeError):
    """The pool is shut down (or shutting down) and accepts no new work."""


def _encode_exc(exc: BaseException) -> Tuple[str, str]:
    return (type(exc).__name__, str(exc))


def _decode_exc(payload: Tuple[str, str]) -> BaseException:
    name, message = payload
    return _WIRE_EXCEPTIONS.get(name, RuntimeError)(message)


# --------------------------------------------------------------------- worker
def _worker_main(worker_id: int, bundle_path: str, conn, options: Dict[str, Any]) -> None:
    """Worker process entry point: serve requests from ``conn`` until told to stop.

    The worker opens the bundle **mapped, without materialising** — only the
    pool parent writes mapped state, so N workers never race on the files —
    and answers requests through its own in-process ``BatchingEngine`` (the
    reader thread submits, done-callbacks reply), which keeps single-worker
    pools exactly as capable of request coalescing as PR 6's engine was.
    """
    from .engine import InferenceEngine
    from .mapped import open_bundle_mapped

    send_lock = threading.Lock()

    def send(message: Tuple[Any, ...]) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):  # parent gone; nothing to report to
                pass

    try:
        bundle = open_bundle_mapped(bundle_path, materialise=False)
        engine = InferenceEngine(
            bundle,
            cache_size=options["cache_size"],
            batch_size=options["batch_size"],
        )
        batching = BatchingEngine(
            engine,
            max_batch_pairs=options["max_batch_pairs"],
            max_queue_depth=options["max_queue_depth"],
            tick_interval=options["tick_interval"],
        )
    except BaseException as exc:  # startup failure: tell the parent why
        send(("fatal", _encode_exc(exc)))
        return
    send(("ready", os.getpid(), bundle.fingerprint, bundle.version))

    last_seq = 0
    drain = True

    def reply_when_done(req_id: int, future: "Future[Any]") -> None:
        def _done(f: "Future[Any]") -> None:
            try:
                send(("res", req_id, True, f.result()))
            except BaseException as exc:
                send(("res", req_id, False, _encode_exc(exc)))

        future.add_done_callback(_done)

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind, req_id = message[0], message[1]
            if kind == "stop":
                drain = bool(message[2])
                break
            # Every request envelope carries the distributed-trace wire triple
            # at slot 2 (``None`` when the parent had no trace active); it is
            # activated around the batching submit so worker-side spans join
            # the originating request's trace.
            trace = message[2]
            trace_token = tracing.activate_trace(trace) if trace is not None else None
            try:
                if kind == "score":
                    users, items = message[3], message[4]
                    reply_when_done(req_id, batching.submit_score(users, items))
                elif kind == "topn":
                    user, k, exclude_seen = message[3], message[4], message[5]
                    reply_when_done(req_id, batching.submit_top_n(user, k, exclude_seen))
                elif kind == "telemetry":
                    from ..obs.fleet import worker_snapshot

                    max_spans = int(message[3])
                    send(("res", req_id, True, worker_snapshot(max_spans=max_spans)))
                elif kind == "onboard":
                    seq, side, attributes = message[3], message[4], message[5]
                    if seq <= last_seq:
                        raise RuntimeError(
                            f"worker {worker_id}: out-of-order state seq {seq} "
                            f"(already at {last_seq})"
                        )
                    last_seq = seq
                    reply_when_done(req_id, batching.submit_onboard(side, attributes))
                elif kind == "swap":
                    seq, path = message[3], message[4]
                    if seq <= last_seq:
                        raise RuntimeError(
                            f"worker {worker_id}: out-of-order state seq {seq} "
                            f"(already at {last_seq})"
                        )
                    last_seq = seq
                    # Remap + probe off-path: in-flight batched requests keep
                    # draining on the old engine while this builds; the actual
                    # switch rides the batching queue's FIFO swap barrier.
                    from ..live.swap import validate_engine

                    new_bundle = open_bundle_mapped(path, materialise=False)
                    new_engine = InferenceEngine(
                        new_bundle,
                        cache_size=options["cache_size"],
                        batch_size=options["batch_size"],
                    )
                    validate_engine(new_engine)
                    swap_future = batching.submit_swap(new_engine)
                    info = {
                        "fingerprint": new_bundle.fingerprint,
                        "version": new_bundle.version,
                        "parent_version": new_bundle.parent_version,
                    }

                    def _swapped(f, req_id=req_id, info=info):
                        try:
                            f.result()
                            send(("res", req_id, True, info))
                        except BaseException as exc:
                            send(("res", req_id, False, _encode_exc(exc)))

                    swap_future.add_done_callback(_swapped)
                elif kind == "healthz":
                    payload = {
                        "pid": os.getpid(),
                        "bundle_fingerprint": batching.engine.bundle.fingerprint,
                        "bundle_version": batching.engine.bundle.version,
                        "users": batching.engine.num_users,
                        "items": batching.engine.num_items,
                        "onboarded_users": batching.engine.onboarded("user"),
                        "onboarded_items": batching.engine.onboarded("item"),
                        "queue_depth": batching.stats()["queue_depth"],
                        "state_seq": last_seq,
                    }
                    send(("res", req_id, True, payload))
                else:
                    raise RuntimeError(f"unknown request kind {kind!r}")
            except BaseException as exc:
                send(("res", req_id, False, _encode_exc(exc)))
            finally:
                if trace_token is not None:
                    tracing.deactivate_trace(trace_token)
    finally:
        batching.shutdown(drain=drain)
        send(("bye", worker_id))
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------- the parent
class _Pending:
    """A dispatched request the parent is waiting on.

    ``trace`` snapshots the dispatching thread's distributed-trace wire
    triple at construction; it rides slot 2 of the pipe envelope so the
    worker's spans join the originating request's trace.
    """

    __slots__ = ("kind", "payload", "future", "worker_index", "retries",
                 "broadcast", "trace")

    def __init__(self, kind: str, payload: Tuple[Any, ...], worker_index: int) -> None:
        self.kind = kind
        self.payload = payload
        self.future: "Future[Any]" = Future()
        self.worker_index = worker_index
        self.retries = 0
        self.broadcast = False
        self.trace = tracing.current_trace()


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = ("index", "generation", "process", "conn", "pid",
                 "fingerprint", "version", "outstanding", "receiver")

    def __init__(self, index: int, generation: int, process, conn, pid: int,
                 fingerprint: str, version: int) -> None:
        self.index = index
        self.generation = generation
        self.process = process
        self.conn = conn
        self.pid = pid
        self.fingerprint = fingerprint
        self.version = version
        self.outstanding = 0
        self.receiver: Optional[threading.Thread] = None


class WorkerPool:
    """N serving processes over one mmap-shared bundle, one dispatch front."""

    def __init__(
        self,
        bundle_path: PathLike,
        workers: int = 2,
        cache_size: int = 100_000,
        batch_size: int = 2048,
        max_batch_pairs: int = 8192,
        max_queue_depth: int = 1024,
        tick_interval: float = 0.0,
        request_timeout: float = 60.0,
        spawn_timeout: float = 120.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        from .mapped import materialise_mapped

        self.bundle_path = Path(bundle_path)
        self.num_workers = workers
        self.request_timeout = request_timeout
        self.spawn_timeout = spawn_timeout
        self._options = {
            "cache_size": cache_size,
            "batch_size": batch_size,
            "max_batch_pairs": max_batch_pairs,
            "max_queue_depth": max_queue_depth,
            "tick_interval": tick_interval,
        }
        self._ctx = multiprocessing.get_context("spawn")
        self._cond = threading.Condition()
        self._workers: List[Optional[_Worker]] = [None] * workers
        self._pending: Dict[int, _Pending] = {}
        self._req_counter = 0
        self._rr_counter = 0
        self._seq = 0
        # Onboards since the last swap, in seq order; a respawned worker
        # replays these against the current bundle path to converge.
        self._state_log: List[Dict[str, Any]] = []
        self._swap_epoch = 0
        self._last_swap_seq = 0
        self._generation = 0
        self._closed = False
        self._shutdown_called = False
        self._respawns = 0
        self._dispatched = 0
        self._retried = 0
        self._broadcasts = 0

        # Only the parent writes mapped state; workers open it read-only.
        with span("serve.pool.materialise"):
            materialise_mapped(self.bundle_path)
        try:
            for index in range(workers):
                worker = self._spawn(index, str(self.bundle_path))
                with self._cond:
                    self._register_locked(worker)
        except BaseException:
            self.shutdown(drain=False, timeout=5.0)
            raise
        obs_events.emit("serve.pool_start", workers=workers, bundle=str(self.bundle_path))

    # ------------------------------------------------------------- spawn/reap
    def _spawn(self, index: int, bundle_path: str) -> _Worker:
        """Start one worker and wait for its ready handshake (no lock held)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(index, bundle_path, child_conn, self._options),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        with self._cond:
            self._generation += 1
            generation = self._generation
        process.start()
        child_conn.close()
        if not parent_conn.poll(self.spawn_timeout):
            process.terminate()
            raise RuntimeError(f"worker {index} did not come up within {self.spawn_timeout}s")
        message = parent_conn.recv()
        if message[0] == "fatal":
            process.join(5.0)
            raise _decode_exc(message[1])
        assert message[0] == "ready"
        _, pid, fingerprint, version = message
        return _Worker(index, generation, process, parent_conn, pid, fingerprint, version)

    def _register_locked(self, worker: _Worker) -> None:
        """Install a handshaken worker into its slot and start its receiver."""
        self._workers[worker.index] = worker
        set_gauge(f"serve.pool.depth.{worker.index}", 0.0)
        worker.receiver = threading.Thread(
            target=self._receive_loop, args=(worker,),
            name=f"repro-pool-recv-{worker.index}", daemon=True,
        )
        worker.receiver.start()
        self._cond.notify_all()

    def _replay(self, worker: _Worker, entries: List[Dict[str, Any]],
                swap_to: Optional[Tuple[int, str]]) -> None:
        """Synchronously drive state operations on a not-yet-registered worker."""
        plan: List[Tuple[Any, ...]] = []
        if swap_to is not None:
            swap_seq, swap_path = swap_to
            plan.append(("swap", -1, None, swap_seq, swap_path))
        for entry in entries:
            if entry["status"] == "failed":
                continue
            plan.append(("onboard", -1, None, entry["seq"], entry["side"], entry["attributes"]))
        for message in plan:
            worker.conn.send(message)
            if not worker.conn.poll(self.request_timeout):
                raise RuntimeError(f"worker {worker.index} stalled during state replay")
            reply = worker.conn.recv()
            if reply[0] != "res" or not reply[2]:
                raise RuntimeError(
                    f"worker {worker.index} failed state replay: "
                    f"{reply[3] if reply[0] == 'res' else reply!r}"
                )

    def _respawn(self, index: int) -> None:
        """Bring a replacement up, replay state, and register it atomically.

        The replacement is handshaken and bulk-replayed *outside* the dispatch
        lock (slow), then a catch-up loop replays whatever broadcasts landed
        meanwhile; the final iteration finds nothing new **while holding the
        lock** and registers the worker in that same critical section, so no
        broadcast can ever land in the gap.
        """
        with self._cond:
            if self._closed:
                return
            snap_path = str(self.bundle_path)
            snap_epoch = self._swap_epoch
            snap_entries = list(self._state_log)
        try:
            worker = self._spawn(index, snap_path)
            self._replay(worker, snap_entries, swap_to=None)
            replayed_seq = snap_entries[-1]["seq"] if snap_entries else 0
            while True:
                with self._cond:
                    if self._closed:
                        try:
                            worker.conn.send(("stop", None, True))
                        except (BrokenPipeError, OSError):
                            pass
                        worker.process.join(5.0)
                        return
                    if self._swap_epoch != snap_epoch:
                        snap_epoch = self._swap_epoch
                        plan_swap = (self._last_swap_seq, str(self.bundle_path))
                        plan_entries = list(self._state_log)
                    else:
                        plan_swap = None
                        plan_entries = [e for e in self._state_log if e["seq"] > replayed_seq]
                    if plan_swap is None and not plan_entries:
                        self._register_locked(worker)
                        return
                self._replay(worker, plan_entries, swap_to=plan_swap)
                if plan_entries:
                    replayed_seq = plan_entries[-1]["seq"]
                elif plan_swap is not None:
                    replayed_seq = plan_swap[0]
        except BaseException as exc:
            obs_events.emit("serve.pool_respawn_failed", worker=index, error=str(exc))
            raise

    def _receive_loop(self, worker: _Worker) -> None:
        """Per-worker reply pump; on EOF, reap + respawn."""
        while True:
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "bye":
                break
            if message[0] != "res":
                continue
            _, req_id, ok, value = message
            with self._cond:
                pending = self._pending.pop(req_id, None)
                worker.outstanding -= 1
                set_gauge(f"serve.pool.depth.{worker.index}", float(worker.outstanding))
                self._cond.notify_all()
            if pending is None:
                continue
            if ok:
                pending.future.set_result(value)
            else:
                pending.future.set_exception(_decode_exc(value))
        self._on_worker_exit(worker)

    def _on_worker_exit(self, worker: _Worker) -> None:
        with self._cond:
            current = self._workers[worker.index]
            planned = self._closed or current is None or current.generation != worker.generation
            if not planned:
                self._workers[worker.index] = None
            orphans = [
                (req_id, pending)
                for req_id, pending in self._pending.items()
                if pending.worker_index == worker.index and not planned
            ]
            for req_id, _ in orphans:
                del self._pending[req_id]
            set_gauge(f"serve.pool.depth.{worker.index}", 0.0)
            self._cond.notify_all()
        worker.process.join(5.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(5.0)
        try:
            worker.conn.close()
        except OSError:
            pass
        if planned:
            return
        obs_events.emit(
            "serve.pool_worker_exit",
            worker=worker.index,
            pid=worker.pid,
            exitcode=worker.process.exitcode,
            orphaned=len(orphans),
        )
        # Fault isolation: only this worker's requests are affected, and the
        # read-only ones are not even that — they re-dispatch to a sibling.
        for req_id, pending in orphans:
            if pending.kind in _RETRYABLE and pending.retries < 2 and not pending.broadcast:
                pending.retries += 1
                self._retried += 1
                increment("serve.pool.retries")
                try:
                    # wait=False: never park the reaper thread waiting for a
                    # sibling — if none is live right now, fail the request
                    # and get on with the respawn.
                    self._dispatch_pending(pending, exclude=worker.index, wait=False)
                    continue
                except BaseException:
                    pass
            pending.future.set_exception(
                WorkerCrashedError(
                    f"worker {worker.index} (pid {worker.pid}) died with "
                    f"exitcode {worker.process.exitcode} while handling this request"
                )
            )
        self._respawns += 1
        increment("serve.pool.respawns")
        try:
            self._respawn(worker.index)
        except BaseException:
            # Already reported via serve.pool_respawn_failed; the slot stays
            # empty and healthz shows it down.  Siblings keep serving.
            pass

    # --------------------------------------------------------------- dispatch
    def _pick_locked(self, exclude: Optional[int] = None, wait: bool = True) -> _Worker:
        """Least-outstanding live worker, round-robin on ties (lock held)."""
        deadline = time.monotonic() + self.request_timeout
        while True:
            if self._closed:
                raise PoolStoppedError("worker pool is shut down")
            candidates = [
                w for w in self._workers
                if w is not None and (exclude is None or w.index != exclude)
            ]
            if candidates:
                best = min(w.outstanding for w in candidates)
                tied = [w for w in candidates if w.outstanding == best]
                worker = tied[self._rr_counter % len(tied)]
                self._rr_counter += 1
                return worker
            remaining = deadline - time.monotonic()
            if not wait or remaining <= 0:
                raise PoolStoppedError("no live workers available")
            self._cond.wait(remaining)

    def _send_locked(self, worker: _Worker, req_id: int, pending: _Pending) -> None:
        self._pending[req_id] = pending
        pending.worker_index = worker.index
        worker.outstanding += 1
        set_gauge(f"serve.pool.depth.{worker.index}", float(worker.outstanding))
        worker.conn.send((pending.kind, req_id, pending.trace) + pending.payload)

    def _dispatch_pending(self, pending: _Pending, exclude: Optional[int] = None,
                          wait: bool = True) -> None:
        started = time.perf_counter()
        with self._cond:
            worker = self._pick_locked(exclude, wait=wait)
            self._req_counter += 1
            self._dispatched += 1
            self._send_locked(worker, self._req_counter, pending)
        record_timing("serve.pool.dispatch", time.perf_counter() - started)
        increment("serve.pool.requests")

    def _dispatch(self, kind: str, payload: Tuple[Any, ...]) -> "Future[Any]":
        pending = _Pending(kind, payload, worker_index=-1)
        self._dispatch_pending(pending)
        return pending.future

    def _dispatch_to(self, index: int, kind: str, payload: Tuple[Any, ...]) -> "Future[Any]":
        pending = _Pending(kind, payload, worker_index=index)
        started = time.perf_counter()
        with self._cond:
            worker = self._workers[index]
            if worker is None:
                raise WorkerCrashedError(f"worker {index} is down (respawn in progress)")
            self._req_counter += 1
            self._dispatched += 1
            self._send_locked(worker, self._req_counter, pending)
        record_timing("serve.pool.dispatch", time.perf_counter() - started)
        increment("serve.pool.requests")
        return pending.future

    # -------------------------------------------------------------- broadcast
    def _broadcast(self, kind: str, payload_for: Any) -> List[Any]:
        """Send one state operation to every live worker behind a seq barrier.

        Returns the per-worker results (crashed workers excluded — their
        replacements converge via replay).  Raises if no worker applied the
        operation, or if the survivors disagree.
        """
        with self._cond:
            if self._closed:
                raise PoolStoppedError("worker pool is shut down")
            self._seq += 1
            seq = self._seq
            entry: Optional[Dict[str, Any]] = None
            if kind == "onboard":
                side, attributes = payload_for
                entry = {"seq": seq, "side": side, "attributes": attributes, "status": "pending"}
                self._state_log.append(entry)
                payload: Tuple[Any, ...] = (seq, side, attributes)
            elif kind == "swap":
                # The path becomes current *now*, under the lock: any respawn
                # snapshotting after this point opens the new bundle directly,
                # and the onboard log it would have replayed is superseded.
                self.bundle_path = Path(payload_for)
                self._swap_epoch += 1
                self._last_swap_seq = seq
                self._state_log.clear()
                payload = (seq, str(payload_for))
            else:  # pragma: no cover - internal misuse
                raise RuntimeError(f"not a broadcast kind: {kind!r}")
            targets = [w for w in self._workers if w is not None]
            if not targets:
                if entry is not None:
                    self._state_log.remove(entry)
                raise PoolStoppedError("no live workers to broadcast to")
            pendings: List[_Pending] = []
            for worker in targets:
                pending = _Pending(kind, payload, worker_index=worker.index)
                pending.broadcast = True
                self._req_counter += 1
                self._send_locked(worker, self._req_counter, pending)
                pendings.append(pending)
            self._broadcasts += 1
        increment("serve.pool.broadcasts")

        results: List[Any] = []
        errors: List[BaseException] = []
        crashes = 0
        for pending in pendings:
            try:
                results.append(pending.future.result(self.request_timeout))
            except WorkerCrashedError:
                crashes += 1
            except BaseException as exc:
                errors.append(exc)
        status = "applied" if results else "failed"
        if entry is not None:
            with self._cond:
                entry["status"] = status
        if errors and results:
            raise RuntimeError(
                f"workers diverged on {kind}: {len(results)} applied, "
                f"{len(errors)} failed ({errors[0]})"
            )
        if not results:
            if errors:
                raise errors[0]
            raise WorkerCrashedError(f"every worker died during {kind} broadcast")
        first = results[0]
        if any(r != first for r in results[1:]):
            raise RuntimeError(f"workers diverged on {kind}: {results!r}")
        return results

    # ------------------------------------------------------------- public API
    def score(self, users, items, timeout: Optional[float] = None) -> np.ndarray:
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        items = np.atleast_1d(np.asarray(items, dtype=np.int64))
        if users.shape != items.shape:
            raise ValueError("users and items must align")
        future = self._dispatch("score", (users, items))
        return future.result(timeout or self.request_timeout)

    def top_n(self, user: int, k: int = 10, exclude_seen: bool = True,
              timeout: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
        future = self._dispatch("topn", (int(user), int(k), bool(exclude_seen)))
        return future.result(timeout or self.request_timeout)

    def score_on_worker(self, index: int, users, items,
                        timeout: Optional[float] = None) -> np.ndarray:
        """Score pinned to one worker — the parity harness compares workers."""
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        items = np.atleast_1d(np.asarray(items, dtype=np.int64))
        future = self._dispatch_to(index, "score", (users, items))
        return future.result(timeout or self.request_timeout)

    def add_user(self, attributes) -> int:
        return int(self._broadcast("onboard", ("user", attributes))[0])

    def add_item(self, attributes) -> int:
        return int(self._broadcast("onboard", ("item", attributes))[0])

    def swap_bundle_path(self, path: PathLike, validate_pairs: int = 32) -> Dict[str, Any]:
        """Hot-swap every worker onto the bundle at ``path`` (no dropped requests).

        The parent materialises mapped state and probes the candidate once;
        the probe is deterministic, so a parent-side pass means every worker's
        own off-path probe will pass too — the broadcast cannot half-apply for
        validation reasons.
        """
        from ..live.swap import validate_engine
        from .engine import InferenceEngine
        from .mapped import materialise_mapped, open_bundle_mapped

        path = Path(path)
        with span("serve.pool.swap"):
            materialise_mapped(path)
            candidate = InferenceEngine(
                open_bundle_mapped(path, materialise=False),
                cache_size=0,
                batch_size=self._options["batch_size"],
            )
            validate_engine(candidate, pairs=validate_pairs)
            del candidate
            results = self._broadcast("swap", path)
        return results[0]

    def onboarded(self, side: str) -> int:
        """Onboards applied since the last swap (every worker holds this many)."""
        with self._cond:
            return sum(1 for e in self._state_log
                       if e["status"] == "applied" and e["side"] == side)

    def healthz(self, timeout: float = 5.0) -> Dict[str, Any]:
        """Liveness + identity of every worker slot (probes each worker)."""
        with self._cond:
            snapshot = list(self._workers)
        futures: List[Tuple[int, Optional["Future[Any]"]]] = []
        for index, worker in enumerate(snapshot):
            if worker is None:
                futures.append((index, None))
                continue
            try:
                futures.append((index, self._dispatch_to(index, "healthz", ())))
            except (WorkerCrashedError, PoolStoppedError):
                futures.append((index, None))
        workers = []
        for index, future in futures:
            worker = snapshot[index]
            if future is None or worker is None:
                workers.append({"index": index, "alive": False, "responsive": False})
                continue
            info = {
                "index": index,
                "pid": worker.pid,
                "alive": worker.process.is_alive(),
                "outstanding": worker.outstanding,
            }
            try:
                info.update(future.result(timeout))
                info["responsive"] = True
            except BaseException:
                info["responsive"] = False
            workers.append(info)
        healthy = sum(1 for w in workers if w.get("responsive"))
        return {
            "workers": workers,
            "num_workers": self.num_workers,
            "healthy_workers": healthy,
            "respawns": self._respawns,
            "bundle_path": str(self.bundle_path),
            "state_seq": self._seq,
        }

    def collect_telemetry(self, timeout: float = 10.0, max_spans: int = 5000) -> List[Dict[str, Any]]:
        """Harvest each live worker's telemetry snapshot over the pipe protocol.

        Returns one :func:`repro.obs.fleet.worker_snapshot` dict per worker
        that answered in time — counters, gauges, histogram states, recent
        span records and the span-drop count.  Read-only and per-worker
        fault-tolerant: a down or stalled worker is simply absent from the
        result (its slot shows up in :meth:`healthz` instead), so one sick
        process never blocks the fleet view.
        """
        with self._cond:
            snapshot = list(self._workers)
        futures: List["Future[Any]"] = []
        for index, worker in enumerate(snapshot):
            if worker is None:
                continue
            try:
                futures.append(self._dispatch_to(index, "telemetry", (int(max_spans),)))
            except (WorkerCrashedError, PoolStoppedError):
                continue
        snapshots: List[Dict[str, Any]] = []
        for future in futures:
            try:
                snapshots.append(future.result(timeout))
            except BaseException:
                continue
        return snapshots

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            live = sum(1 for w in self._workers if w is not None)
            outstanding = {
                w.index: w.outstanding for w in self._workers if w is not None
            }
        return {
            "workers": self.num_workers,
            "live_workers": live,
            "outstanding": outstanding,
            "dispatched": self._dispatched,
            "retried": self._retried,
            "respawns": self._respawns,
            "broadcasts": self._broadcasts,
            "state_seq": self._seq,
            "bundle_path": str(self.bundle_path),
        }

    def worker_pids(self) -> List[Optional[int]]:
        with self._cond:
            return [w.pid if w is not None else None for w in self._workers]

    # -------------------------------------------------------------- lifecycle
    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool; with ``drain`` (default) in-flight requests finish first.

        Idempotent — repeat calls (atexit, signal unwind, context exit) return
        immediately.
        """
        if self._shutdown_called:
            return
        self._shutdown_called = True
        deadline = time.monotonic() + timeout
        with self._cond:
            self._closed = True
            if drain:
                while self._pending and time.monotonic() < deadline:
                    self._cond.wait(min(0.25, max(deadline - time.monotonic(), 0.01)))
            leftovers = list(self._pending.values())
            self._pending.clear()
            workers = [w for w in self._workers if w is not None]
            self._cond.notify_all()
        for pending in leftovers:
            if not pending.future.done():
                pending.future.set_exception(PoolStoppedError("worker pool shut down"))
        for worker in workers:
            try:
                worker.conn.send(("stop", None, drain))
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.process.join(max(deadline - time.monotonic(), 1.0))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(5.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(5.0)
        for worker in workers:
            if worker.receiver is not None and worker.receiver is not threading.current_thread():
                worker.receiver.join(5.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        obs_events.emit("serve.pool_stop", drained=drain, respawns=self._respawns)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
