"""Self-contained model bundles: everything a server needs, no training data.

A bundle is a directory::

    bundle/
      manifest.json     # schema version, model name, AGNNConfig, shapes,
                        # rating-scale clamp bounds, dataset metadata
      model.npz         # weights via repro.io.save_model
      graphs.npz        # candidate pools + the fitted neighbour matrices
      attributes.npz    # multi-hot attribute matrices, schemas, train pairs,
                        # cold node ids

The manifest carries all *shapes*, so :func:`load_bundle` rebuilds the AGNN
architecture with :meth:`AGNN.build_architecture` and loads weights with
:func:`repro.io.load_model_into` — the training dataset is never touched.
The fitted neighbour matrices are stored alongside the candidate pools so a
loaded engine reproduces the offline model's predictions exactly, while the
pools keep live re-sampling and onboarding available.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .. import __version__
from ..core import AGNN, AGNNConfig
from ..data.schema import AttributeSchema
from ..data.splits import RecommendationTask
from ..graphs import DynamicNeighborGraph, FixedNeighborGraph, NeighborGraph
from ..io import _schema_from_json, _schema_to_json, load_model_into, save_model
from ..telemetry import span

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "ServingBundle",
    "bundle_fingerprint",
    "export_bundle",
    "load_bundle",
]

PathLike = Union[str, Path]

#: Written by :func:`export_bundle`.  Version 2 added bundle lineage
#: (``version`` / ``parent_version`` / ``lineage`` / ``metrics``) and the
#: training ratings needed for incremental refresh (``repro.live``).
#: Version 3 added the mmap-shared serving state: export materialises a
#: ``mapped/`` directory of ``.npy`` arrays (engine caches, graph pools,
#: weights) that worker processes open read-only via
#: :func:`~repro.serving.mapped.open_bundle_mapped`.
MANIFEST_SCHEMA_VERSION = 3

#: Versions :func:`load_bundle` can read.  Version-1 bundles load with default
#: lineage (generation 1, no parent) and no replay ratings; version-1/-2
#: bundles carry no mapped state — opening them mapped transparently upgrades
#: (materialises) when the directory is writable and fails with a re-export
#: message otherwise.
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3)

_SIDES = ("user", "item")


@dataclass
class ServingBundle:
    """A loaded bundle: the rebuilt model plus the serving-time state."""

    path: Path
    manifest: Dict
    model: AGNN
    user_attributes: np.ndarray
    item_attributes: np.ndarray
    user_schema: Optional[AttributeSchema]
    item_schema: Optional[AttributeSchema]
    neighbours: Dict[str, np.ndarray]
    graphs: Dict[str, NeighborGraph]
    cold_nodes: Dict[str, np.ndarray]
    train_users: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    train_items: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: aligned training ratings (schema v2; empty for v1 bundles) — the replay
    #: set ``fit_incremental`` mixes with the new interaction stream
    train_ratings: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.float64))
    #: short sha256 over manifest.json + model.npz — identifies *which* model a
    #: server is running (surfaced in /healthz and the serving events)
    fingerprint: str = ""
    #: read-only mmap'd per-side engine arrays, set by
    #: :func:`~repro.serving.mapped.open_bundle_mapped` (None on the plain
    #: heap-loading path) — ``{"user": {"attr": ..., "refined": ..., ...}}``
    mapped: Optional[Dict[str, Dict[str, np.ndarray]]] = None
    #: the ``mapped/`` directory backing :attr:`mapped`, when set
    mapped_dir: Optional[Path] = None

    @property
    def rating_scale(self) -> Tuple[float, float]:
        low, high = self.manifest["rating_scale"]
        return float(low), float(high)

    @property
    def version(self) -> int:
        """Bundle generation number (1 for pre-lineage v1 bundles)."""
        return int(self.manifest.get("version", 1))

    @property
    def parent_version(self) -> Optional[int]:
        """Generation this bundle was refreshed from, or None for a root fit."""
        parent = self.manifest.get("parent_version")
        return None if parent is None else int(parent)

    @property
    def lineage(self) -> Dict:
        """Free-form provenance recorded at export (store, timestamps, parent)."""
        return dict(self.manifest.get("lineage", {}))

    def attributes(self, side: str) -> np.ndarray:
        return self.user_attributes if side == "user" else self.item_attributes

    def schema(self, side: str) -> Optional[AttributeSchema]:
        return self.user_schema if side == "user" else self.item_schema


def _serialise_graph(graph: NeighborGraph, side: str, arrays: Dict[str, np.ndarray]) -> str:
    """Pack one side's candidate graph into flat ``.npz``-able arrays."""
    if isinstance(graph, DynamicNeighborGraph):
        offsets = np.zeros(len(graph.pools) + 1, dtype=np.int64)
        for i, pool in enumerate(graph.pools):
            offsets[i + 1] = offsets[i] + len(pool)
        arrays[f"{side}_pool_indices"] = (
            np.concatenate(graph.pools) if graph.pools else np.empty(0, dtype=np.int64)
        )
        arrays[f"{side}_pool_weights"] = (
            np.concatenate(graph.weights) if graph.weights else np.empty(0)
        )
        arrays[f"{side}_pool_offsets"] = offsets
        return "dynamic"
    if isinstance(graph, FixedNeighborGraph):
        arrays[f"{side}_fixed_matrix"] = graph.matrix
        return "fixed"
    raise TypeError(f"cannot serialise graph type {type(graph).__name__}")


def _deserialise_graph(kind: str, side: str, archive) -> NeighborGraph:
    if kind == "dynamic":
        offsets = archive[f"{side}_pool_offsets"]
        indices = archive[f"{side}_pool_indices"]
        weights = archive[f"{side}_pool_weights"]
        pools = [indices[offsets[i] : offsets[i + 1]] for i in range(len(offsets) - 1)]
        pool_weights = [weights[offsets[i] : offsets[i + 1]] for i in range(len(offsets) - 1)]
        return DynamicNeighborGraph(pools=pools, weights=pool_weights)
    if kind == "fixed":
        return FixedNeighborGraph(matrix=archive[f"{side}_fixed_matrix"])
    raise ValueError(f"unknown graph kind {kind!r} in bundle manifest")


def export_bundle(
    model: AGNN,
    task: RecommendationTask,
    path: PathLike,
    note: str = "",
    version: int = 1,
    parent_version: Optional[int] = None,
    lineage: Optional[Dict] = None,
    metrics: Optional[Dict] = None,
    mapped: bool = False,
) -> Path:
    """Write a fitted AGNN plus its serving state to directory ``path``.

    ``version``/``parent_version``/``lineage`` record where this bundle sits
    in a refresh chain (the :class:`~repro.live.BundleStore` sets them);
    ``metrics`` carries eval numbers (e.g. ``eval_rmse``) so promotion gates
    can compare generations without re-running evaluation.  ``mapped``
    additionally materialises the mmap-shared serving arrays (the worker-pool
    fast path) at export time; the pool materialises on demand otherwise.
    """
    if not isinstance(model, AGNN):
        raise TypeError(f"bundles serve AGNN models, got {type(model).__name__}")
    if not model._built:
        raise RuntimeError("model must be fitted before exporting a bundle")

    path = Path(path)
    with span("serve.export_bundle"):
        path.mkdir(parents=True, exist_ok=True)
        save_model(model, path / "model.npz")

        graph_arrays: Dict[str, np.ndarray] = {}
        graph_kinds = {
            side: _serialise_graph(model.candidate_graph(side), side, graph_arrays)
            for side in _SIDES
        }
        for side in _SIDES:
            graph_arrays[f"{side}_neighbours"] = model.neighbour_matrix(side)
        np.savez_compressed(path / "graphs.npz", **graph_arrays)

        dataset = task.dataset
        np.savez_compressed(
            path / "attributes.npz",
            user_attributes=dataset.user_attributes,
            item_attributes=dataset.item_attributes,
            user_schema=np.array(_schema_to_json(dataset.user_schema)),
            item_schema=np.array(_schema_to_json(dataset.item_schema)),
            train_users=task.train_users,
            train_items=task.train_items,
            train_ratings=task.train_ratings,
            cold_users=model.cold_node_ids("user"),
            cold_items=model.cold_node_ids("item"),
        )

        manifest = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "repro_version": __version__,
            "note": note,
            "version": int(version),
            "parent_version": None if parent_version is None else int(parent_version),
            "lineage": dict(lineage or {}),
            "metrics": dict(metrics or {}),
            "model_name": model.name,
            "config": asdict(model.config),
            "rating_scale": [float(dataset.rating_scale[0]), float(dataset.rating_scale[1])],
            "global_mean": float(model.head.global_mean),
            "num_users": int(dataset.num_users),
            "num_items": int(dataset.num_items),
            "user_attr_dim": int(dataset.user_attributes.shape[1]),
            "item_attr_dim": int(dataset.item_attributes.shape[1]),
            "graph_kinds": graph_kinds,
            "dataset": {
                "name": dataset.name,
                "scenario": task.scenario,
                "train_interactions": int(len(task.train_idx)),
                "cold_users": int(len(model.cold_node_ids("user"))),
                "cold_items": int(len(model.cold_node_ids("item"))),
            },
        }
        (path / "manifest.json").write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        if mapped:
            # Imported here to avoid a module cycle (mapped imports bundle).
            from .mapped import materialise_mapped

            materialise_mapped(path, force=True)
    return path


def bundle_fingerprint(path: PathLike) -> str:
    """Short content hash of a bundle (manifest + weights), e.g. ``"a1b2c3d4e5f6"``."""
    path = Path(path)
    digest = hashlib.sha256()
    for name in ("manifest.json", "model.npz"):
        file = path / name
        if file.is_file():
            digest.update(file.read_bytes())
    return digest.hexdigest()[:12]


def load_bundle(path: PathLike) -> ServingBundle:
    """Read a bundle directory and rebuild the model — no training data needed."""
    path = Path(path)
    manifest_path = path / "manifest.json"
    if not manifest_path.is_file():
        raise FileNotFoundError(f"{path} is not a bundle: no manifest.json")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("schema_version")
    if version is None:
        # Fail here, with a message naming the fix — not deep inside weight
        # loading with a shape-mismatch traceback.
        raise ValueError(
            f"{path} has no manifest schema_version: this is not a repro bundle "
            "(or it was exported by a pre-versioning build); re-export it with "
            "`repro export-bundle`"
        )
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(
            f"bundle schema version {version!r} is not supported (this build "
            f"reads versions {', '.join(map(str, SUPPORTED_SCHEMA_VERSIONS))}); "
            "re-export the bundle with this build's `repro export-bundle`"
        )

    with span("serve.load_bundle"):
        config = AGNNConfig(**manifest["config"])
        model = AGNN(config)
        model.build_architecture(
            manifest["num_users"],
            manifest["num_items"],
            manifest["user_attr_dim"],
            manifest["item_attr_dim"],
            manifest["global_mean"],
        )
        load_model_into(model, path / "model.npz")
        model.eval()

        with np.load(path / "graphs.npz", allow_pickle=False) as archive:
            neighbours = {side: archive[f"{side}_neighbours"] for side in _SIDES}
            graphs = {
                side: _deserialise_graph(manifest["graph_kinds"][side], side, archive)
                for side in _SIDES
            }

        with np.load(path / "attributes.npz", allow_pickle=False) as archive:
            return ServingBundle(
                path=path,
                manifest=manifest,
                model=model,
                user_attributes=archive["user_attributes"],
                item_attributes=archive["item_attributes"],
                user_schema=_schema_from_json(str(archive["user_schema"])),
                item_schema=_schema_from_json(str(archive["item_schema"])),
                neighbours=neighbours,
                graphs=graphs,
                cold_nodes={
                    "user": archive["cold_users"].astype(np.int64),
                    "item": archive["cold_items"].astype(np.int64),
                },
                train_users=archive["train_users"].astype(np.int64),
                train_items=archive["train_items"].astype(np.int64),
                # v1 archives carry no ratings; refresh refuses them clearly.
                train_ratings=(
                    archive["train_ratings"].astype(np.float64)
                    if "train_ratings" in archive.files
                    else np.empty(0, dtype=np.float64)
                ),
                fingerprint=bundle_fingerprint(path),
            )
