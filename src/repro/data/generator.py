"""Shared machinery for the synthetic dataset generators.

The paper's premise is that user/item attributes carry preference signal
("animation is the mainstream entertainment among teenage children").  The
generator makes that link explicit: every attribute *value* owns a latent
vector; a node's preference factors are a blend of its attribute latents and
idiosyncratic noise, controlled by ``attribute_signal``.  Ratings are produced
by the classic biased matrix-factorisation model

    r_ui = mu + b_u + b_i + u·v + eps,

then clipped to the rating scale and quantised to half-star precision.  With
``attribute_signal`` near 1 a model that reads attributes can in principle
recover most of the preference structure — the regime the paper evaluates;
with 0 attributes are pure noise and no cold-start method can win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .schema import AttributeSchema

__all__ = ["LatentModel", "sample_interactions", "quantise_ratings"]


@dataclass
class LatentModel:
    """Latent factors for one side (users or items) derived from attributes."""

    factors: np.ndarray  # (n, d) preference/property factors
    biases: np.ndarray  # (n,)
    attribute_latents: np.ndarray  # (K, d) one latent per multi-hot column

    @classmethod
    def from_attributes(
        cls,
        attributes: np.ndarray,
        latent_dim: int,
        attribute_signal: float,
        rng: np.random.Generator,
        bias_std: float = 0.35,
    ) -> "LatentModel":
        """Blend attribute-value latents with node-specific noise.

        ``attribute_signal`` in [0, 1]: weight of the attribute-driven part of
        the factors; the remainder is i.i.d. noise, so strict-cold-start
        predictability degrades smoothly as the signal drops.
        """
        if not 0.0 <= attribute_signal <= 1.0:
            raise ValueError(f"attribute_signal must be in [0, 1], got {attribute_signal}")
        attributes = np.asarray(attributes, dtype=np.float64)
        n, k = attributes.shape
        attribute_latents = rng.normal(0.0, 1.0, size=(k, latent_dim))
        counts = np.maximum(attributes.sum(axis=1, keepdims=True), 1.0)
        from_attributes = (attributes @ attribute_latents) / np.sqrt(counts)
        noise = rng.normal(0.0, 1.0, size=(n, latent_dim))
        factors = attribute_signal * from_attributes + (1.0 - attribute_signal) * noise
        # Normalise scale so the rating model's dot products stay comparable
        # across signal settings.
        factors /= max(np.std(factors), 1e-8)
        biases = rng.normal(0.0, bias_std, size=n)
        return cls(factors=factors, biases=biases, attribute_latents=attribute_latents)


def quantise_ratings(raw: np.ndarray, scale: Tuple[float, float], step: float = 1.0) -> np.ndarray:
    """Clip to the rating scale and round to the nearest ``step`` (stars)."""
    low, high = scale
    clipped = np.clip(raw, low, high)
    return np.round(clipped / step) * step


def sample_interactions(
    users: LatentModel,
    items: LatentModel,
    num_ratings: int,
    rng: np.random.Generator,
    global_mean: float = 3.6,
    affinity_weight: float = 0.9,
    noise_std: float = 0.55,
    popularity_exponent: float = 1.0,
    activity_sigma: float = 0.9,
    selection_bias: float = 0.5,
    scale: Tuple[float, float] = (1.0, 5.0),
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw ``(user_ids, item_ids, ratings)`` without duplicate pairs.

    Users are assigned activity levels from a lognormal distribution and items
    a Zipf-like popularity; each user then rates a propensity-weighted sample
    of items, where propensity mixes popularity with latent affinity (people
    watch what they expect to like, scaled by ``selection_bias``).  This
    reproduces the long-tailed degree distributions of MovieLens/Yelp.

    Affinity is normalised by √d so its standard deviation is ≈1 regardless
    of the latent dimension; observed ratings then have std ≈1.1–1.2 on the
    1–5 scale, matching the real MovieLens/Yelp distributions.
    """
    num_users = len(users.factors)
    num_items = len(items.factors)
    if num_ratings > num_users * num_items:
        raise ValueError("cannot draw more unique interactions than matrix cells")
    latent_dim = users.factors.shape[1]
    affinity_norm = np.sqrt(latent_dim)

    activity = rng.lognormal(mean=0.0, sigma=activity_sigma, size=num_users)
    activity /= activity.sum()
    per_user = np.maximum(rng.multinomial(num_ratings, activity), 1)
    # multinomial + the floor of 1 can overshoot; trim the heaviest users.
    while per_user.sum() > num_ratings:
        per_user[np.argmax(per_user)] -= 1
    per_user = np.minimum(per_user, num_items)

    ranks = rng.permutation(num_items) + 1
    popularity_logit = -popularity_exponent * np.log(ranks.astype(np.float64))

    user_ids: list[np.ndarray] = []
    item_ids: list[np.ndarray] = []
    for u in range(num_users):
        count = int(per_user[u])
        if count == 0:
            continue
        affinity = items.factors @ users.factors[u] / affinity_norm
        logits = popularity_logit + selection_bias * affinity
        logits -= logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        chosen = rng.choice(num_items, size=count, replace=False, p=probs)
        user_ids.append(np.full(count, u, dtype=np.int64))
        item_ids.append(chosen.astype(np.int64))

    uid = np.concatenate(user_ids)
    iid = np.concatenate(item_ids)

    affinity = np.einsum("ij,ij->i", users.factors[uid], items.factors[iid]) / affinity_norm
    raw = (
        global_mean
        + users.biases[uid]
        + items.biases[iid]
        + affinity_weight * affinity
        + rng.normal(0.0, noise_std, size=len(uid))
    )
    ratings = quantise_ratings(raw, scale)
    return uid, iid, ratings


def schema_dim_check(schema: AttributeSchema, attributes: np.ndarray) -> None:
    """Assert the attribute matrix matches the schema width."""
    if attributes.shape[1] != schema.dim:
        raise ValueError(f"attribute matrix width {attributes.shape[1]} != schema dim {schema.dim}")
