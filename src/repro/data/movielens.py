"""Synthetic MovieLens-like dataset generator.

Mirrors the attribute structure the paper uses (Sec. 4.1.1): users carry
gender, age bucket and occupation (the ML-100K profile fields); items carry
categories (multi-label), star, director, writer and country — the fields the
authors crawled from IMDb.  Scale presets match Table 1:

    ML-100K : 943 users, 1,682 items, 100,000 ratings (93.70% sparse)
    ML-1M   : 6,040 users, 3,883 items, 1,000,209 ratings (95.74% sparse)

Ratings come from a latent-factor model whose factors are *caused by* these
attributes (see ``repro.data.generator``), which is the substitution for the
real, non-redistributable CSVs + IMDb crawl.  Use ``scale`` to shrink
everything proportionally for tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .dataset import RatingDataset
from .generator import LatentModel, sample_interactions
from .schema import AttributeSchema, CategoricalField, MultiLabelField

__all__ = ["MovieLensConfig", "ML_100K", "ML_1M", "generate_movielens"]


@dataclass(frozen=True)
class MovieLensConfig:
    """Knobs of the MovieLens-like generator."""

    name: str = "ML-100K"
    num_users: int = 943
    num_items: int = 1682
    num_ratings: int = 100_000
    num_genders: int = 2
    num_age_buckets: int = 7
    num_occupations: int = 21
    num_categories: int = 18
    max_categories_per_item: int = 3
    num_stars: int = 60
    num_directors: int = 40
    num_writers: int = 50
    num_countries: int = 8
    latent_dim: int = 12
    attribute_signal: float = 0.65
    seed: int = 7

    def scaled(self, scale: float, name: str | None = None) -> "MovieLensConfig":
        """Shrink users/items/ratings by ``scale``, keeping attribute vocab sizes."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return replace(
            self,
            name=name or f"{self.name}@{scale:g}",
            num_users=max(int(self.num_users * scale), 8),
            num_items=max(int(self.num_items * scale), 8),
            num_ratings=max(int(self.num_ratings * scale), 64),
        )


ML_100K = MovieLensConfig()
ML_1M = MovieLensConfig(
    name="ML-1M",
    num_users=6040,
    num_items=3883,
    num_ratings=1_000_209,
    num_stars=120,
    num_directors=90,
    num_writers=110,
)


def _user_schema(config: MovieLensConfig) -> AttributeSchema:
    return AttributeSchema(
        [
            CategoricalField("gender", config.num_genders),
            CategoricalField("age", config.num_age_buckets),
            CategoricalField("occupation", config.num_occupations),
        ]
    )


def _item_schema(config: MovieLensConfig) -> AttributeSchema:
    return AttributeSchema(
        [
            MultiLabelField("category", config.num_categories),
            CategoricalField("star", config.num_stars),
            CategoricalField("director", config.num_directors),
            CategoricalField("writer", config.num_writers),
            CategoricalField("country", config.num_countries),
        ]
    )


def _zipf_probs(n: int, exponent: float = 1.0) -> np.ndarray:
    weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** exponent
    return weights / weights.sum()


def generate_movielens(config: MovieLensConfig = ML_100K) -> RatingDataset:
    """Generate a MovieLens-like :class:`RatingDataset` from ``config``."""
    rng = np.random.default_rng(config.seed)
    user_schema = _user_schema(config)
    item_schema = _item_schema(config)

    # Users: gender roughly ML's 70/30 split, ages and occupations long-tailed.
    user_rows = [
        {
            "gender": rng.choice(config.num_genders, p=[0.71, 0.29] if config.num_genders == 2 else None),
            "age": rng.choice(config.num_age_buckets, p=_zipf_probs(config.num_age_buckets, 0.6)),
            "occupation": rng.choice(config.num_occupations, p=_zipf_probs(config.num_occupations, 0.7)),
        }
        for _ in range(config.num_users)
    ]
    user_attributes = user_schema.encode_many(user_rows)

    # Items: 1-3 categories, crew members drawn with popularity bias
    # (a handful of stars/directors appear in many movies, like on IMDb).
    item_rows = []
    for _ in range(config.num_items):
        num_cats = rng.integers(1, config.max_categories_per_item + 1)
        cats = rng.choice(config.num_categories, size=num_cats, replace=False,
                          p=_zipf_probs(config.num_categories, 0.8))
        item_rows.append(
            {
                "category": cats,
                "star": rng.choice(config.num_stars, p=_zipf_probs(config.num_stars, 0.9)),
                "director": rng.choice(config.num_directors, p=_zipf_probs(config.num_directors, 0.9)),
                "writer": rng.choice(config.num_writers, p=_zipf_probs(config.num_writers, 0.9)),
                "country": rng.choice(config.num_countries, p=_zipf_probs(config.num_countries, 1.2)),
            }
        )
    item_attributes = item_schema.encode_many(item_rows)

    users = LatentModel.from_attributes(user_attributes, config.latent_dim, config.attribute_signal, rng)
    items = LatentModel.from_attributes(item_attributes, config.latent_dim, config.attribute_signal, rng)
    user_ids, item_ids, ratings = sample_interactions(users, items, config.num_ratings, rng)

    return RatingDataset(
        name=config.name,
        user_attributes=user_attributes,
        item_attributes=item_attributes,
        user_ids=user_ids,
        item_ids=item_ids,
        ratings=ratings,
        user_schema=user_schema,
        item_schema=item_schema,
        metadata={
            "config": config,
            "true_user_factors": users.factors,
            "true_item_factors": items.factors,
        },
    )
