"""Loaders for the *real* public datasets the paper evaluates on.

The experiments in this repository run on synthetic generators (no network
access, and the IMDb-extended attribute files are not redistributable), but a
downstream user with the actual files can load them here:

* :func:`load_ml100k` — the classic ``u.data`` / ``u.user`` / ``u.item``
  tab/pipe-separated MovieLens-100K layout;
* :func:`load_ml1m` — the ``ratings.dat`` / ``users.dat`` / ``movies.dat``
  ``::``-separated MovieLens-1M layout;
* :func:`load_yelp_social` — a generic triplet CSV + social-edge CSV in the
  paper's Yelp arrangement (social rows become user attributes).

All loaders produce the same :class:`~repro.data.dataset.RatingDataset` the
synthetic generators do, so every model, splitter and experiment runs on real
data unchanged.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from .dataset import RatingDataset
from .schema import AttributeSchema, CategoricalField, MultiLabelField

__all__ = ["load_ml100k", "load_ml1m", "load_yelp_social", "ML100K_GENRES", "ML1M_GENRES"]

PathLike = Union[str, Path]

#: genre columns of ML-100K's u.item, in file order
ML100K_GENRES = (
    "unknown", "Action", "Adventure", "Animation", "Children's", "Comedy",
    "Crime", "Documentary", "Drama", "Fantasy", "Film-Noir", "Horror",
    "Musical", "Mystery", "Romance", "Sci-Fi", "Thriller", "War", "Western",
)

#: genre vocabulary of ML-1M's movies.dat
ML1M_GENRES = (
    "Action", "Adventure", "Animation", "Children's", "Comedy", "Crime",
    "Documentary", "Drama", "Fantasy", "Film-Noir", "Horror", "Musical",
    "Mystery", "Romance", "Sci-Fi", "Thriller", "War", "Western",
)

#: ML-100K occupation vocabulary (u.occupation ships with the dataset, but
#: hard-coding removes one file dependency)
_ML100K_OCCUPATIONS = (
    "administrator", "artist", "doctor", "educator", "engineer",
    "entertainment", "executive", "healthcare", "homemaker", "lawyer",
    "librarian", "marketing", "none", "other", "programmer", "retired",
    "salesman", "scientist", "student", "technician", "writer",
)

_AGE_BUCKETS = (18, 25, 35, 45, 50, 56)  # ML-1M's published bucket boundaries


def _age_bucket(age: int) -> int:
    for i, bound in enumerate(_AGE_BUCKETS):
        if age < bound:
            return i
    return len(_AGE_BUCKETS)


def _reindex(raw_ids: Sequence[int]) -> Dict[int, int]:
    """Map raw (1-based, possibly gappy) ids to dense 0-based indices."""
    return {raw: dense for dense, raw in enumerate(sorted(set(raw_ids)))}


def load_ml100k(directory: PathLike) -> RatingDataset:
    """Load MovieLens-100K from its standard directory layout.

    Expects ``u.data`` (user, item, rating, timestamp — tab separated),
    ``u.user`` (id|age|gender|occupation|zip) and ``u.item``
    (id|title|date||url|19 genre flags).
    """
    directory = Path(directory)
    for name in ("u.data", "u.user", "u.item"):
        if not (directory / name).exists():
            raise FileNotFoundError(f"missing {name} in {directory}")

    user_schema = AttributeSchema(
        [
            CategoricalField("gender", 2),
            CategoricalField("age", len(_AGE_BUCKETS) + 1),
            CategoricalField("occupation", len(_ML100K_OCCUPATIONS) + 1),
        ]
    )
    item_schema = AttributeSchema([MultiLabelField("genre", len(ML100K_GENRES))])

    occupation_index = {name: i for i, name in enumerate(_ML100K_OCCUPATIONS)}
    user_rows: Dict[int, Dict] = {}
    with open(directory / "u.user", encoding="latin-1") as handle:
        for line in handle:
            raw_id, age, gender, occupation, _zip = line.strip().split("|")
            user_rows[int(raw_id)] = {
                "gender": 0 if gender == "M" else 1,
                "age": _age_bucket(int(age)),
                "occupation": occupation_index.get(occupation, len(_ML100K_OCCUPATIONS)),
            }

    item_rows: Dict[int, Dict] = {}
    with open(directory / "u.item", encoding="latin-1") as handle:
        for line in handle:
            fields = line.rstrip("\n").split("|")
            raw_id = int(fields[0])
            flags = [int(v) for v in fields[5 : 5 + len(ML100K_GENRES)]]
            genres = [i for i, flag in enumerate(flags) if flag]
            item_rows[raw_id] = {"genre": genres or [0]}

    triples: List[Tuple[int, int, float]] = []
    with open(directory / "u.data", encoding="latin-1") as handle:
        for line in handle:
            user, item, rating, _ts = line.split("\t")
            triples.append((int(user), int(item), float(rating)))

    return _assemble(
        "ML-100K(real)", user_rows, item_rows, triples, user_schema, item_schema
    )


def load_ml1m(directory: PathLike) -> RatingDataset:
    """Load MovieLens-1M from ``ratings.dat`` / ``users.dat`` / ``movies.dat``."""
    directory = Path(directory)
    for name in ("ratings.dat", "users.dat", "movies.dat"):
        if not (directory / name).exists():
            raise FileNotFoundError(f"missing {name} in {directory}")

    user_schema = AttributeSchema(
        [
            CategoricalField("gender", 2),
            CategoricalField("age", 7),  # ML-1M publishes exactly 7 age codes
            CategoricalField("occupation", 21),
        ]
    )
    item_schema = AttributeSchema([MultiLabelField("genre", len(ML1M_GENRES))])
    genre_index = {name: i for i, name in enumerate(ML1M_GENRES)}
    age_codes = {1: 0, 18: 1, 25: 2, 35: 3, 45: 4, 50: 5, 56: 6}

    user_rows: Dict[int, Dict] = {}
    with open(directory / "users.dat", encoding="latin-1") as handle:
        for line in handle:
            raw_id, gender, age, occupation, _zip = line.strip().split("::")
            user_rows[int(raw_id)] = {
                "gender": 0 if gender == "M" else 1,
                "age": age_codes.get(int(age), 0),
                "occupation": int(occupation) % 21,
            }

    item_rows: Dict[int, Dict] = {}
    with open(directory / "movies.dat", encoding="latin-1") as handle:
        for line in handle:
            raw_id, _title, genres = line.strip().split("::")
            indices = [genre_index[g] for g in genres.split("|") if g in genre_index]
            item_rows[int(raw_id)] = {"genre": indices or [0]}

    triples: List[Tuple[int, int, float]] = []
    with open(directory / "ratings.dat", encoding="latin-1") as handle:
        for line in handle:
            user, item, rating, _ts = line.strip().split("::")
            triples.append((int(user), int(item), float(rating)))

    return _assemble("ML-1M(real)", user_rows, item_rows, triples, user_schema, item_schema)


def load_yelp_social(
    ratings_csv: PathLike,
    social_csv: PathLike,
    item_attributes_csv: PathLike,
    min_interactions: int = 20,
) -> RatingDataset:
    """Load a Yelp-style dataset from three CSVs, as arranged in the paper.

    * ``ratings_csv``: ``user_id,item_id,rating`` (string ids allowed);
    * ``social_csv``: ``user_id,friend_id`` undirected edges;
    * ``item_attributes_csv``: ``item_id,categories,state,city`` where
      ``categories`` is ``;``-separated.

    Users/items with fewer than ``min_interactions`` ratings are dropped
    (the paper's Yelp preprocessing), the social matrix is symmetrised, and
    each user's social row becomes their attribute encoding.
    """
    triples_raw: List[Tuple[str, str, float]] = []
    with open(ratings_csv, newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            triples_raw.append((row["user_id"], row["item_id"], float(row["rating"])))
    if not triples_raw:
        raise ValueError(f"no ratings found in {ratings_csv}")

    # Iteratively drop light users/items until the threshold holds everywhere.
    while True:
        user_counts: Dict[str, int] = {}
        item_counts: Dict[str, int] = {}
        for user, item, _ in triples_raw:
            user_counts[user] = user_counts.get(user, 0) + 1
            item_counts[item] = item_counts.get(item, 0) + 1
        kept = [
            (u, i, r)
            for u, i, r in triples_raw
            if user_counts[u] >= min_interactions and item_counts[i] >= min_interactions
        ]
        if len(kept) == len(triples_raw):
            break
        triples_raw = kept
        if not triples_raw:
            raise ValueError(f"min_interactions={min_interactions} removed every rating")

    users = sorted({u for u, _, _ in triples_raw})
    items = sorted({i for _, i, _ in triples_raw})
    user_index = {u: k for k, u in enumerate(users)}
    item_index = {i: k for k, i in enumerate(items)}

    # Item attributes.
    categories: Dict[str, List[str]] = {}
    states: Dict[str, str] = {}
    cities: Dict[str, str] = {}
    with open(item_attributes_csv, newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            if row["item_id"] in item_index:
                categories[row["item_id"]] = [c for c in row["categories"].split(";") if c]
                states[row["item_id"]] = row["state"]
                cities[row["item_id"]] = row["city"]
    category_vocab = sorted({c for values in categories.values() for c in values}) or ["unknown"]
    state_vocab = sorted(set(states.values())) or ["unknown"]
    city_vocab = sorted(set(cities.values())) or ["unknown"]
    item_schema = AttributeSchema(
        [
            MultiLabelField("category", len(category_vocab)),
            CategoricalField("state", len(state_vocab)),
            CategoricalField("city", len(city_vocab)),
        ]
    )
    cat_idx = {c: k for k, c in enumerate(category_vocab)}
    state_idx = {s: k for k, s in enumerate(state_vocab)}
    city_idx = {c: k for k, c in enumerate(city_vocab)}
    item_attribute_rows = []
    for raw in items:
        item_attribute_rows.append(
            {
                "category": [cat_idx[c] for c in categories.get(raw, [])] or [0],
                "state": state_idx.get(states.get(raw, ""), 0),
                "city": city_idx.get(cities.get(raw, ""), 0),
            }
        )
    item_attributes = item_schema.encode_many(item_attribute_rows)

    # Social rows → user attributes (paper's Yelp arrangement).
    social = np.zeros((len(users), len(users)))
    with open(social_csv, newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            a = user_index.get(row["user_id"])
            b = user_index.get(row["friend_id"])
            if a is not None and b is not None and a != b:
                social[a, b] = social[b, a] = 1.0

    user_ids = np.array([user_index[u] for u, _, _ in triples_raw], dtype=np.int64)
    item_ids = np.array([item_index[i] for _, i, _ in triples_raw], dtype=np.int64)
    ratings = np.array([r for _, _, r in triples_raw])

    return RatingDataset(
        name="Yelp(real)",
        user_attributes=social,
        item_attributes=item_attributes,
        user_ids=user_ids,
        item_ids=item_ids,
        ratings=ratings,
        user_schema=None,
        item_schema=item_schema,
        metadata={"social_adjacency": social},
    )


def _assemble(
    name: str,
    user_rows: Dict[int, Dict],
    item_rows: Dict[int, Dict],
    triples: List[Tuple[int, int, float]],
    user_schema: AttributeSchema,
    item_schema: AttributeSchema,
) -> RatingDataset:
    """Common tail: reindex ids densely, encode attributes, validate."""
    triples = [
        (u, i, r) for u, i, r in triples if u in user_rows and i in item_rows
    ]
    if not triples:
        raise ValueError("no rating references a known user and item")
    user_map = _reindex([u for u, _, _ in triples])
    item_map = _reindex([i for _, i, _ in triples])

    ordered_users = sorted(user_map, key=user_map.get)
    ordered_items = sorted(item_map, key=item_map.get)
    user_attributes = user_schema.encode_many([user_rows[u] for u in ordered_users])
    item_attributes = item_schema.encode_many([item_rows[i] for i in ordered_items])

    return RatingDataset(
        name=name,
        user_attributes=user_attributes,
        item_attributes=item_attributes,
        user_ids=np.array([user_map[u] for u, _, _ in triples], dtype=np.int64),
        item_ids=np.array([item_map[i] for _, i, _ in triples], dtype=np.int64),
        ratings=np.array([r for _, _, r in triples]),
        user_schema=user_schema,
        item_schema=item_schema,
    )
