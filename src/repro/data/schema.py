"""Attribute schemas and multi-hot encodings (paper Sec. 3.1).

Each user/item carries a set of attributes from different fields; every field
value gets a separated one-hot block and the blocks are concatenated into one
multi-hot encoding ``a ∈ R^K``:

    a_u = [0,1 | 1,0,...,0 | 0,1,0,...,0]
           gender   age       occupation

``CategoricalField`` holds exactly one active value; ``MultiLabelField`` holds
any subset (movie categories, Yelp social links).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

__all__ = ["CategoricalField", "MultiLabelField", "AttributeSchema"]

FieldValue = Union[int, Sequence[int]]


@dataclass(frozen=True)
class CategoricalField:
    """A field with exactly one active value per node, e.g. gender or state."""

    name: str
    num_values: int

    def __post_init__(self) -> None:
        if self.num_values < 1:
            raise ValueError(f"field {self.name!r} needs at least one value")

    def encode(self, value: FieldValue, out: np.ndarray) -> None:
        value = int(value)
        if not 0 <= value < self.num_values:
            raise ValueError(f"value {value} out of range for field {self.name!r} ({self.num_values} values)")
        out[value] = 1.0


@dataclass(frozen=True)
class MultiLabelField:
    """A field where a node may hold several values, e.g. movie categories."""

    name: str
    num_values: int

    def __post_init__(self) -> None:
        if self.num_values < 1:
            raise ValueError(f"field {self.name!r} needs at least one value")

    def encode(self, value: FieldValue, out: np.ndarray) -> None:
        values = np.atleast_1d(np.asarray(value, dtype=np.int64))
        if values.size and (values.min() < 0 or values.max() >= self.num_values):
            raise ValueError(f"values {values} out of range for field {self.name!r} ({self.num_values} values)")
        out[values] = 1.0


Field = Union[CategoricalField, MultiLabelField]


@dataclass
class AttributeSchema:
    """An ordered list of fields, plus the bookkeeping to encode/decode them."""

    fields: List[Field]
    _offsets: List[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in schema: {names}")
        offsets = [0]
        for f in self.fields:
            offsets.append(offsets[-1] + f.num_values)
        self._offsets = offsets

    @property
    def dim(self) -> int:
        """Total multi-hot dimensionality K."""
        return self._offsets[-1]

    @property
    def num_fields(self) -> int:
        return len(self.fields)

    @property
    def field_names(self) -> List[str]:
        return [f.name for f in self.fields]

    def field_slice(self, name: str) -> slice:
        """The columns of the encoding occupied by field ``name``."""
        for f, start, stop in zip(self.fields, self._offsets[:-1], self._offsets[1:]):
            if f.name == name:
                return slice(start, stop)
        raise KeyError(f"no field named {name!r}")

    def field_slices(self) -> Dict[str, slice]:
        return {f.name: self.field_slice(f.name) for f in self.fields}

    def encode(self, values: Dict[str, FieldValue]) -> np.ndarray:
        """Encode one node's attribute values into a multi-hot row."""
        row = np.zeros(self.dim)
        for f, start in zip(self.fields, self._offsets[:-1]):
            if f.name not in values:
                raise KeyError(f"missing value for field {f.name!r}")
            f.encode(values[f.name], row[start : start + f.num_values])
        return row

    def encode_many(self, rows: Sequence[Dict[str, FieldValue]]) -> np.ndarray:
        """Encode a batch of nodes into an ``(n, K)`` multi-hot matrix."""
        out = np.zeros((len(rows), self.dim))
        for i, values in enumerate(rows):
            out[i] = self.encode(values)
        return out

    def decode(self, row: np.ndarray) -> Dict[str, Tuple[int, ...]]:
        """Return, per field, the tuple of active value indices in ``row``."""
        row = np.asarray(row)
        if row.shape != (self.dim,):
            raise ValueError(f"row has shape {row.shape}, expected ({self.dim},)")
        result: Dict[str, Tuple[int, ...]] = {}
        for f, start in zip(self.fields, self._offsets[:-1]):
            block = row[start : start + f.num_values]
            result[f.name] = tuple(int(i) for i in np.flatnonzero(block))
        return result
