"""The RatingDataset container shared by every model and experiment.

Holds the user/item attribute matrices (multi-hot, per the paper's Sec. 3.1),
the explicit interactions ``(user, item, rating)``, the rating scale, and the
ground-truth latent factors of the synthetic generator (kept only for
diagnostics — models never see them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .schema import AttributeSchema

__all__ = ["RatingDataset", "DatasetStats"]


@dataclass(frozen=True)
class DatasetStats:
    """The row of the paper's Table 1 for one dataset."""

    name: str
    num_users: int
    num_items: int
    num_ratings: int
    sparsity: float

    def as_row(self) -> str:
        return (
            f"{self.name:<10} {self.num_users:>8,} {self.num_items:>8,} "
            f"{self.num_ratings:>10,} {self.sparsity:>8.2%}"
        )


@dataclass
class RatingDataset:
    """Explicit-feedback rating data with user and item attributes."""

    name: str
    user_attributes: np.ndarray  # (M, K_u) multi-hot
    item_attributes: np.ndarray  # (N, K_i) multi-hot
    user_ids: np.ndarray  # (R,) int
    item_ids: np.ndarray  # (R,) int
    ratings: np.ndarray  # (R,) float, within rating_scale
    rating_scale: tuple = (1.0, 5.0)
    user_schema: Optional[AttributeSchema] = None
    item_schema: Optional[AttributeSchema] = None
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.user_attributes = np.asarray(self.user_attributes, dtype=np.float64)
        self.item_attributes = np.asarray(self.item_attributes, dtype=np.float64)
        self.user_ids = np.asarray(self.user_ids, dtype=np.int64)
        self.item_ids = np.asarray(self.item_ids, dtype=np.int64)
        self.ratings = np.asarray(self.ratings, dtype=np.float64)
        if not (len(self.user_ids) == len(self.item_ids) == len(self.ratings)):
            raise ValueError("user_ids, item_ids and ratings must have equal length")
        if len(self.user_ids) and self.user_ids.max() >= self.num_users:
            raise ValueError("interaction references a user beyond the attribute matrix")
        if len(self.item_ids) and self.item_ids.max() >= self.num_items:
            raise ValueError("interaction references an item beyond the attribute matrix")
        low, high = self.rating_scale
        if len(self.ratings) and (self.ratings.min() < low or self.ratings.max() > high):
            raise ValueError(f"ratings outside scale {self.rating_scale}")

    # ------------------------------------------------------------------ shape
    @property
    def num_users(self) -> int:
        return self.user_attributes.shape[0]

    @property
    def num_items(self) -> int:
        return self.item_attributes.shape[0]

    @property
    def num_ratings(self) -> int:
        return len(self.ratings)

    @property
    def sparsity(self) -> float:
        """Fraction of the user–item matrix with no interaction."""
        cells = self.num_users * self.num_items
        return 1.0 - self.num_ratings / cells if cells else 1.0

    @property
    def global_mean(self) -> float:
        return float(self.ratings.mean()) if self.num_ratings else 0.0

    def stats(self) -> DatasetStats:
        return DatasetStats(
            name=self.name,
            num_users=self.num_users,
            num_items=self.num_items,
            num_ratings=self.num_ratings,
            sparsity=self.sparsity,
        )

    # ------------------------------------------------------------------ views
    def interactions_of_users(self, users: np.ndarray) -> np.ndarray:
        """Indices of interactions whose user is in ``users``."""
        mask = np.isin(self.user_ids, users)
        return np.flatnonzero(mask)

    def interactions_of_items(self, items: np.ndarray) -> np.ndarray:
        mask = np.isin(self.item_ids, items)
        return np.flatnonzero(mask)

    def rating_matrix(self) -> np.ndarray:
        """Dense user–item rating matrix R (0 = unobserved). Small datasets only."""
        matrix = np.zeros((self.num_users, self.num_items))
        matrix[self.user_ids, self.item_ids] = self.ratings
        return matrix

    def user_histories(self) -> Dict[int, np.ndarray]:
        """Map user id -> array of interaction indices, for samplers."""
        order = np.argsort(self.user_ids, kind="stable")
        histories: Dict[int, np.ndarray] = {}
        boundaries = np.flatnonzero(np.diff(self.user_ids[order])) + 1
        for chunk in np.split(order, boundaries):
            if len(chunk):
                histories[int(self.user_ids[chunk[0]])] = chunk
        return histories
