"""Synthetic Yelp-like dataset generator.

Mirrors the paper's treatment of the Yelp 2017 challenge data (Sec. 4.1.1):

* items (businesses) carry categories (multi-label), state and city;
* users have *no* profile fields — their row of the social adjacency matrix is
  used as their attribute encoding ("we take each row of the social matrix as
  the user's attribute encoding");
* the dataset is much sparser than MovieLens (Table 1: 99.77%).

The social graph is homophilous: edges prefer users with similar latent
tastes, so a user's neighbour list genuinely carries preference signal — the
property that lets attribute-graph methods work on Yelp in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .dataset import RatingDataset
from .generator import LatentModel, sample_interactions
from .schema import AttributeSchema, CategoricalField, MultiLabelField

__all__ = ["YelpConfig", "YELP", "generate_yelp"]


@dataclass(frozen=True)
class YelpConfig:
    """Knobs of the Yelp-like generator."""

    name: str = "Yelp"
    num_users: int = 23_549
    num_items: int = 17_139
    num_ratings: int = 941_742
    num_categories: int = 40
    max_categories_per_item: int = 4
    num_states: int = 12
    num_cities: int = 60
    mean_friends: float = 12.0
    latent_dim: int = 12
    attribute_signal: float = 0.65
    social_homophily: float = 3.0
    seed: int = 11

    def scaled(self, scale: float, name: str | None = None) -> "YelpConfig":
        if scale <= 0:
            raise ValueError("scale must be positive")
        return replace(
            self,
            name=name or f"{self.name}@{scale:g}",
            num_users=max(int(self.num_users * scale), 8),
            num_items=max(int(self.num_items * scale), 8),
            num_ratings=max(int(self.num_ratings * scale), 64),
        )


YELP = YelpConfig()


def _zipf_probs(n: int, exponent: float = 1.0) -> np.ndarray:
    weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** exponent
    return weights / weights.sum()


def _social_graph(
    taste: np.ndarray,
    mean_friends: float,
    homophily: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Symmetric 0/1 adjacency with degree heterogeneity and taste homophily.

    Each user draws a target degree from a lognormal; neighbours are sampled
    with probability proportional to ``exp(homophily * cosine(taste_u, taste_v))``,
    which realises "birds of a feather" without making the graph a clique.
    """
    n = len(taste)
    normed = taste / np.maximum(np.linalg.norm(taste, axis=1, keepdims=True), 1e-12)
    degrees = np.maximum(rng.lognormal(np.log(max(mean_friends, 1.0)), 0.8, size=n).astype(int), 1)
    degrees = np.minimum(degrees, n - 1)
    adjacency = np.zeros((n, n))
    for u in range(n):
        similarity = normed @ normed[u]
        similarity[u] = -np.inf
        logits = homophily * similarity
        logits -= logits.max()
        probs = np.exp(logits)
        probs[u] = 0.0
        probs /= probs.sum()
        friends = rng.choice(n, size=int(degrees[u]), replace=False, p=probs)
        adjacency[u, friends] = 1.0
        adjacency[friends, u] = 1.0
    return adjacency


def generate_yelp(config: YelpConfig = YELP) -> RatingDataset:
    """Generate a Yelp-like :class:`RatingDataset` from ``config``.

    Note the full-size preset builds a 23,549² social matrix; use
    ``config.scaled(...)`` for anything interactive.
    """
    rng = np.random.default_rng(config.seed)
    item_schema = AttributeSchema(
        [
            MultiLabelField("category", config.num_categories),
            CategoricalField("state", config.num_states),
            CategoricalField("city", config.num_cities),
        ]
    )

    # Cities nest inside states so that location attributes correlate.
    city_state = rng.integers(0, config.num_states, size=config.num_cities)
    item_rows = []
    for _ in range(config.num_items):
        num_cats = rng.integers(1, config.max_categories_per_item + 1)
        cats = rng.choice(config.num_categories, size=num_cats, replace=False,
                          p=_zipf_probs(config.num_categories, 0.9))
        city = rng.choice(config.num_cities, p=_zipf_probs(config.num_cities, 1.1))
        item_rows.append({"category": cats, "state": city_state[city], "city": city})
    item_attributes = item_schema.encode_many(item_rows)

    # Users first get hidden tastes, then a homophilous social graph whose
    # adjacency rows become their attribute encoding (paper's Yelp setup).
    taste = rng.normal(size=(config.num_users, config.latent_dim))
    adjacency = _social_graph(taste, config.mean_friends, config.social_homophily, rng)
    user_attributes = adjacency

    users = LatentModel.from_attributes(user_attributes, config.latent_dim, config.attribute_signal, rng)
    # Blend the original taste into the factors so homophily (built from taste)
    # and the rating behaviour (built from factors) agree.
    users.factors[...] = 0.5 * users.factors + 0.5 * taste / max(np.std(taste), 1e-8)
    items = LatentModel.from_attributes(item_attributes, config.latent_dim, config.attribute_signal, rng)
    user_ids, item_ids, ratings = sample_interactions(
        users, items, config.num_ratings, rng, global_mean=3.7, activity_sigma=1.1
    )

    return RatingDataset(
        name=config.name,
        user_attributes=user_attributes,
        item_attributes=item_attributes,
        user_ids=user_ids,
        item_ids=item_ids,
        ratings=ratings,
        user_schema=None,  # social rows: one column per user, no schema object
        item_schema=item_schema,
        metadata={
            "config": config,
            "social_adjacency": adjacency,
            "true_user_factors": users.factors,
            "true_item_factors": items.factors,
        },
    )
