"""Normal (non-strict) cold start splits — the paper's Fig. 2a counterpart.

A *normal* cold start node is unseen during training but **does** have a few
interactions available at test time (a support set): the setting MeLU,
MetaHIN, IGMC and STAR-GCN's ask-to-rate technique are designed for.  The
paper contrasts it with *strict* cold start, where the support set is empty.

This module extends the splitters so the contrast can be studied directly:
``normal_item_cold_split`` holds out items like the strict splitter but moves
``support_size`` of each cold node's interactions *back into the training
set*.  The cold node therefore has a handful of training links — exactly
what "unseen during training but having interactions at test" amounts to for
transductive models (the support is usable wherever training interactions
are).  Sweeping ``support_size`` from 0 upward interpolates from strict to
normal cold start and shows interaction-graph methods recovering — the
mechanism behind the paper's Fig. 8 analysis.
"""

from __future__ import annotations

import numpy as np

from .dataset import RatingDataset
from .splits import RecommendationTask

__all__ = ["normal_item_cold_split", "normal_user_cold_split"]


def _normal_cold_split(
    dataset: RatingDataset,
    side: str,
    cold_fraction: float,
    support_size: int,
    seed: int,
) -> RecommendationTask:
    if not 0.0 < cold_fraction < 1.0:
        raise ValueError(f"cold_fraction must be in (0, 1), got {cold_fraction}")
    if support_size < 0:
        raise ValueError(f"support_size must be non-negative, got {support_size}")
    rng = np.random.default_rng(seed)
    ids = dataset.item_ids if side == "item" else dataset.user_ids
    num_nodes = dataset.num_items if side == "item" else dataset.num_users

    order = rng.permutation(num_nodes)
    cold_nodes = np.sort(order[: int(round(num_nodes * cold_fraction))])
    in_cold = np.isin(ids, cold_nodes)
    test = np.flatnonzero(in_cold)
    train = np.flatnonzero(~in_cold)

    # Move up to ``support_size`` interactions per cold node back to training.
    support_rows: list[int] = []
    if support_size > 0:
        rows_by_node: dict[int, list[int]] = {}
        for row in test:
            rows_by_node.setdefault(int(ids[row]), []).append(int(row))
        for node, rows in rows_by_node.items():
            chosen = rng.permutation(len(rows))[:support_size]
            support_rows.extend(rows[i] for i in chosen)
    support = np.asarray(sorted(support_rows), dtype=np.int64)
    train = np.sort(np.concatenate([train, support]))
    test = np.setdiff1d(test, support)

    # Keep only test rows whose counterpart node is warm.
    counterpart = dataset.user_ids if side == "item" else dataset.item_ids
    warm_counterparts = np.unique(counterpart[train])
    test = test[np.isin(counterpart[test], warm_counterparts)]

    task = RecommendationTask(
        dataset=dataset,
        scenario="item_cold" if side == "item" else "user_cold",
        train_idx=train,
        test_idx=test,
        cold_items=cold_nodes if side == "item" else np.empty(0, dtype=np.int64),
        cold_users=cold_nodes if side == "user" else np.empty(0, dtype=np.int64),
    )
    if support_size == 0:
        task.assert_strict_cold()  # degenerates to the strict splitter
    return task


def normal_item_cold_split(
    dataset: RatingDataset,
    cold_fraction: float = 0.2,
    support_size: int = 3,
    seed: int = 0,
) -> RecommendationTask:
    """Hold out items, but leave each ``support_size`` training interactions."""
    return _normal_cold_split(dataset, "item", cold_fraction, support_size, seed)


def normal_user_cold_split(
    dataset: RatingDataset,
    cold_fraction: float = 0.2,
    support_size: int = 3,
    seed: int = 0,
) -> RecommendationTask:
    """Hold out users, but leave each ``support_size`` training interactions."""
    return _normal_cold_split(dataset, "user", cold_fraction, support_size, seed)
