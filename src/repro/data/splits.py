"""Train/test splitters for the paper's three evaluation scenarios (Sec. 4.1.4).

* **warm start (WS)** — 20% of interactions held out at random; every test
  user/item keeps at least one training interaction.
* **strict item cold start (ICS)** — 20% of *items* held out with *all* their
  interactions; at test time these items have attributes but zero links.
* **strict user cold start (UCS)** — symmetric on users.

A :class:`RecommendationTask` bundles the dataset with one split and is the
only object models see: its train views are all a model may fit on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from .dataset import RatingDataset

__all__ = ["RecommendationTask", "warm_split", "item_cold_split", "user_cold_split", "make_split"]

Scenario = Literal["warm", "item_cold", "user_cold"]


@dataclass
class RecommendationTask:
    """A dataset plus one train/test split of its interactions."""

    dataset: RatingDataset
    scenario: Scenario
    train_idx: np.ndarray
    test_idx: np.ndarray
    cold_users: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    cold_items: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def __post_init__(self) -> None:
        self.train_idx = np.asarray(self.train_idx, dtype=np.int64)
        self.test_idx = np.asarray(self.test_idx, dtype=np.int64)
        overlap = np.intersect1d(self.train_idx, self.test_idx)
        if len(overlap):
            raise ValueError(f"{len(overlap)} interactions appear in both train and test")

    # ------------------------------------------------------------- train views
    @property
    def train_users(self) -> np.ndarray:
        return self.dataset.user_ids[self.train_idx]

    @property
    def train_items(self) -> np.ndarray:
        return self.dataset.item_ids[self.train_idx]

    @property
    def train_ratings(self) -> np.ndarray:
        return self.dataset.ratings[self.train_idx]

    @property
    def test_users(self) -> np.ndarray:
        return self.dataset.user_ids[self.test_idx]

    @property
    def test_items(self) -> np.ndarray:
        return self.dataset.item_ids[self.test_idx]

    @property
    def test_ratings(self) -> np.ndarray:
        return self.dataset.ratings[self.test_idx]

    @property
    def train_global_mean(self) -> float:
        return float(self.train_ratings.mean()) if len(self.train_idx) else 0.0

    def train_rating_matrix(self) -> np.ndarray:
        """Dense rating matrix built from training interactions only."""
        matrix = np.zeros((self.dataset.num_users, self.dataset.num_items))
        matrix[self.train_users, self.train_items] = self.train_ratings
        return matrix

    def assert_strict_cold(self) -> None:
        """Verify the defining invariant of strict cold start: no train links."""
        if len(self.cold_items) and np.isin(self.train_items, self.cold_items).any():
            raise AssertionError("a strict cold start item has training interactions")
        if len(self.cold_users) and np.isin(self.train_users, self.cold_users).any():
            raise AssertionError("a strict cold start user has training interactions")

    def describe(self) -> str:
        return (
            f"{self.dataset.name} [{self.scenario}] "
            f"train={len(self.train_idx):,} test={len(self.test_idx):,} "
            f"cold_users={len(self.cold_users)} cold_items={len(self.cold_items)}"
        )


def warm_split(dataset: RatingDataset, test_fraction: float = 0.2, seed: int = 0) -> RecommendationTask:
    """Random interaction split; test rows with an unseen user/item fall back to train."""
    _check_fraction(test_fraction)
    rng = np.random.default_rng(seed)
    order = rng.permutation(dataset.num_ratings)
    cut = int(round(dataset.num_ratings * test_fraction))
    test = order[:cut]
    train = order[cut:]

    # A warm-start test row must reference a user and item seen in training.
    train_users = set(dataset.user_ids[train].tolist())
    train_items = set(dataset.item_ids[train].tolist())
    keep = np.array(
        [dataset.user_ids[i] in train_users and dataset.item_ids[i] in train_items for i in test],
        dtype=bool,
    )
    train = np.concatenate([train, test[~keep]])
    test = test[keep]
    return RecommendationTask(dataset=dataset, scenario="warm", train_idx=np.sort(train), test_idx=np.sort(test))


def item_cold_split(dataset: RatingDataset, cold_fraction: float = 0.2, seed: int = 0) -> RecommendationTask:
    """Hold out ``cold_fraction`` of items with *all* their interactions."""
    _check_fraction(cold_fraction)
    rng = np.random.default_rng(seed)
    items = rng.permutation(dataset.num_items)
    cold_items = np.sort(items[: int(round(dataset.num_items * cold_fraction))])
    in_test = np.isin(dataset.item_ids, cold_items)
    test = np.flatnonzero(in_test)
    train = np.flatnonzero(~in_test)

    # Keep test rows only for users that remain warm, matching the paper's
    # "predict (warm) users' ratings on new items".
    train_users = np.unique(dataset.user_ids[train])
    test = test[np.isin(dataset.user_ids[test], train_users)]
    task = RecommendationTask(
        dataset=dataset, scenario="item_cold", train_idx=train, test_idx=test, cold_items=cold_items
    )
    task.assert_strict_cold()
    return task


def user_cold_split(dataset: RatingDataset, cold_fraction: float = 0.2, seed: int = 0) -> RecommendationTask:
    """Hold out ``cold_fraction`` of users with *all* their interactions."""
    _check_fraction(cold_fraction)
    rng = np.random.default_rng(seed)
    users = rng.permutation(dataset.num_users)
    cold_users = np.sort(users[: int(round(dataset.num_users * cold_fraction))])
    in_test = np.isin(dataset.user_ids, cold_users)
    test = np.flatnonzero(in_test)
    train = np.flatnonzero(~in_test)

    train_items = np.unique(dataset.item_ids[train])
    test = test[np.isin(dataset.item_ids[test], train_items)]
    task = RecommendationTask(
        dataset=dataset, scenario="user_cold", train_idx=train, test_idx=test, cold_users=cold_users
    )
    task.assert_strict_cold()
    return task


def make_split(
    dataset: RatingDataset,
    scenario: Scenario,
    fraction: float = 0.2,
    seed: int = 0,
) -> RecommendationTask:
    """Dispatch on scenario name — used by the experiment runners."""
    splitters = {"warm": warm_split, "item_cold": item_cold_split, "user_cold": user_cold_split}
    if scenario not in splitters:
        raise ValueError(f"unknown scenario {scenario!r}; choose from {sorted(splitters)}")
    return splitters[scenario](dataset, fraction, seed)


def _check_fraction(fraction: float) -> None:
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
