"""Dataset substrate: schemas, synthetic generators, and scenario splits."""

from .dataset import DatasetStats, RatingDataset
from .generator import LatentModel, quantise_ratings, sample_interactions
from .movielens import ML_100K, ML_1M, MovieLensConfig, generate_movielens
from .normal_cold import normal_item_cold_split, normal_user_cold_split
from .schema import AttributeSchema, CategoricalField, MultiLabelField
from .splits import (
    RecommendationTask,
    item_cold_split,
    make_split,
    user_cold_split,
    warm_split,
)
from .yelp import YELP, YelpConfig, generate_yelp

__all__ = [
    "AttributeSchema",
    "CategoricalField",
    "MultiLabelField",
    "RatingDataset",
    "DatasetStats",
    "LatentModel",
    "sample_interactions",
    "quantise_ratings",
    "MovieLensConfig",
    "ML_100K",
    "ML_1M",
    "generate_movielens",
    "YelpConfig",
    "YELP",
    "generate_yelp",
    "RecommendationTask",
    "warm_split",
    "item_cold_split",
    "user_cold_split",
    "make_split",
    "normal_item_cold_split",
    "normal_user_cold_split",
]
