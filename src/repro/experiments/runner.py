"""Shared experiment plumbing: fit a model on a scenario, collect results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..core import AGNN, AGNNConfig
from ..data import RatingDataset, make_split
from ..data.splits import RecommendationTask, Scenario
from ..nn import init as nn_init
from ..telemetry import set_gauge, span
from ..train import EvalResult, Recommender, TrainConfig, TrainHistory
from .configs import ExperimentScale

__all__ = ["FitResult", "run_model", "run_agnn", "scenario_columns", "SCENARIO_LABELS"]

#: paper's column abbreviations
SCENARIO_LABELS: Dict[Scenario, str] = {"item_cold": "ICS", "user_cold": "UCS", "warm": "WS"}


@dataclass
class FitResult:
    """One (model, dataset, scenario) cell: the evaluation + training history."""

    model_name: str
    dataset_name: str
    scenario: Scenario
    result: EvalResult
    history: TrainHistory


def run_model(
    model_factory: Callable[[], Recommender],
    dataset: RatingDataset,
    scenario: Scenario,
    scale: ExperimentScale,
    split_seed: Optional[int] = None,
    train_config: Optional[TrainConfig] = None,
) -> FitResult:
    """Split, fit and evaluate one model on one scenario, reproducibly.

    The init RNG is re-seeded per run so model comparisons differ only in the
    model, never in initialisation luck from call ordering.
    """
    nn_init.seed(scale.seed)
    task = make_split(dataset, scenario, scale.split_fraction, seed=split_seed if split_seed is not None else scale.seed)
    model = model_factory()
    with span("experiment"):
        history = model.fit(task, train_config or scale.train)
        result = model.evaluate()
    set_gauge("experiment.rmse", result.rmse)
    return FitResult(
        model_name=model.name,
        dataset_name=dataset.name,
        scenario=scenario,
        result=result,
        history=history,
    )


def run_agnn(
    dataset: RatingDataset,
    scenario: Scenario,
    scale: ExperimentScale,
    config: Optional[AGNNConfig] = None,
    split_seed: Optional[int] = None,
    train_config: Optional[TrainConfig] = None,
) -> FitResult:
    """Convenience wrapper: fit the full AGNN at this scale."""
    agnn_config = config or scale.agnn
    return run_model(
        lambda: AGNN(agnn_config, rng_seed=scale.seed),
        dataset,
        scenario,
        scale,
        split_seed=split_seed,
        train_config=train_config,
    )


def scenario_columns(dataset_names, scenarios) -> list:
    """Column labels like 'ML-100K/ICS', matching the paper's table layout."""
    return [f"{d}/{SCENARIO_LABELS[s]}" for d in dataset_names for s in scenarios]
