"""Fig. 8 — performance vs. the ratio of strict cold start nodes.

The paper holds out {10%, 30%, 50%} of nodes (with all their interactions)
and compares AGNN with the three strongest baselines — DiffNet, STAR-GCN and
MetaEmb.  Shape targets:

* AGNN wins at every ratio;
* the interaction-graph models (DiffNet, STAR-GCN) degrade *faster* as the
  ratio grows — more cold nodes means fewer edges in the graphs they depend
  on;
* MetaEmb degrades more gracefully than those two but stays behind AGNN,
  because its generator ignores the neighbourhood.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines import make_baseline
from ..core import AGNN
from ..data.splits import Scenario
from .configs import BENCH, ExperimentScale
from .reporting import FigureSeries
from .runner import SCENARIO_LABELS, run_model

__all__ = ["run_fig8", "main", "COLD_RATIOS", "FIG8_BASELINES"]

COLD_RATIOS = (0.1, 0.3, 0.5)
FIG8_BASELINES = ("DiffNet", "STAR-GCN", "MetaEmb")
FIG8_SCENARIOS: Tuple[Scenario, ...] = ("item_cold", "user_cold")


def run_fig8(
    scale: ExperimentScale = BENCH,
    ratios: Sequence[float] = COLD_RATIOS,
    datasets: Optional[List[str]] = None,
    baselines: Sequence[str] = FIG8_BASELINES,
    scenarios: Tuple[Scenario, ...] = FIG8_SCENARIOS,
    verbose: bool = False,
) -> Dict[str, FigureSeries]:
    """Return one FigureSeries per (dataset, scenario), keyed 'ML-100K/ICS'."""
    dataset_names = datasets or list(scale.datasets)
    figures: Dict[str, FigureSeries] = {}
    for dataset_name in dataset_names:
        dataset = scale.datasets[dataset_name]()
        for scenario in scenarios:
            key = f"{dataset_name}/{SCENARIO_LABELS[scenario]}"
            figure = FigureSeries(x_label="cold ratio", x_values=[float(r) for r in ratios])
            model_factories = {
                "AGNN": lambda: AGNN(scale.agnn, rng_seed=scale.seed),
                **{
                    name: (lambda n=name: make_baseline(n, embedding_dim=scale.baseline_dim))
                    for name in baselines
                },
            }
            for model_name, factory in model_factories.items():
                values = []
                for ratio in ratios:
                    sweep_scale = scale.with_overrides(split_fraction=float(ratio))
                    fit = run_model(factory, dataset, scenario, sweep_scale)
                    values.append(fit.result.rmse)
                    if verbose:
                        print(f"  {key:<16} {model_name:<10} ratio={ratio:.0%} RMSE={fit.result.rmse:.4f}")
                figure.add(model_name, values)
            figures[key] = figure
    return figures


def main(scale: ExperimentScale = BENCH, **kwargs) -> Dict[str, FigureSeries]:
    figures = run_fig8(scale, verbose=True, **kwargs)
    for key, figure in figures.items():
        print(figure.render(title=f"Fig. 8: RMSE vs strict cold start ratio — {key}"))
        print()
    return figures


if __name__ == "__main__":
    main()
