"""Table 1 — statistics of the datasets.

Paper values (full scale):

    ML-100K :    943 users,  1,682 items,   100,000 ratings, 93.70% sparse
    ML-1M   :  6,040 users,  3,883 items, 1,000,209 ratings, 95.74% sparse
    Yelp    : 23,549 users, 17,139 items,   941,742 ratings, 99.77% sparse

At PAPER scale the generators match these numbers exactly; at BENCH/SMOKE
scale the *orderings* (Yelp sparsest and largest-by-users, ML-1M most
ratings) are preserved.
"""

from __future__ import annotations

from typing import Dict, List

from ..data import DatasetStats
from .configs import BENCH, ExperimentScale
from .reporting import format_table

__all__ = ["run_table1", "main"]


def run_table1(scale: ExperimentScale = BENCH) -> Dict[str, DatasetStats]:
    """Generate each dataset at ``scale`` and collect its Table 1 row."""
    return {name: factory().stats() for name, factory in scale.datasets.items()}


def render(stats: Dict[str, DatasetStats]) -> str:
    headers = ["Datasets", "#Users", "#Items", "#Ratings", "Sparsity"]
    rows: List[List[str]] = [
        [s.name, f"{s.num_users:,}", f"{s.num_items:,}", f"{s.num_ratings:,}", f"{s.sparsity:.2%}"]
        for s in stats.values()
    ]
    return format_table(headers, rows, title="Table 1: Statistics of the Datasets")


def main(scale: ExperimentScale = BENCH) -> Dict[str, DatasetStats]:
    stats = run_table1(scale)
    print(render(stats))
    return stats


if __name__ == "__main__":
    main()
