"""Table 4 — replacement study.

Swaps one AGNN component for the corresponding baseline technique
(Sec. 5.1.2), keeping everything else identical:

    AGNN_knn    fixed attribute kNN graph (sRMGCNN / HERS construction)
    AGNN_cop    co-purchase graph (DANSER construction)
    AGNN_GCN    equal-weight neighbour aggregation (GC-MC)
    AGNN_GAT    node-level attention (DANSER)
    AGNN_mask   STAR-GCN's mask + reconstruction instead of the eVAE
    AGNN_drop   DropoutNet's preference dropout
    AGNN_LLAE   LLAE's denoising auto-encoder, gated-GNN removed
    AGNN_LLAE+  the same auto-encoder but with the gated-GNN kept

Shape targets: AGNN_cop collapses on MovieLens ICS (cold items have no
co-purchases), dynamic graphs beat fixed kNN, per-dimension gates beat
GAT beat GCN, and the eVAE beats mask/drop/LLAE.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core import REPLACEMENT_VARIANTS, agnn_variant
from ..data.splits import Scenario
from .configs import BENCH, ExperimentScale
from .reporting import ResultTable
from .runner import SCENARIO_LABELS, run_model

__all__ = ["run_table4", "main", "REPLACEMENT_SCENARIOS"]

REPLACEMENT_SCENARIOS: Tuple[Scenario, ...] = ("item_cold", "user_cold")


def run_table4(
    scale: ExperimentScale = BENCH,
    datasets: Optional[List[str]] = None,
    variants: Optional[List[str]] = None,
    verbose: bool = False,
) -> Dict[str, ResultTable]:
    """Return {"rmse": table, "mae": table} over all replacement variants."""
    dataset_names = datasets or list(scale.datasets)
    variant_names = variants or list(REPLACEMENT_VARIANTS)
    columns = [f"{d}/{SCENARIO_LABELS[s]}" for d in dataset_names for s in REPLACEMENT_SCENARIOS]
    rmse_table = ResultTable(columns=columns)
    mae_table = ResultTable(columns=columns)

    for dataset_name in dataset_names:
        dataset = scale.datasets[dataset_name]()
        for scenario in REPLACEMENT_SCENARIOS:
            column = f"{dataset_name}/{SCENARIO_LABELS[scenario]}"
            for name in variant_names:
                fit = run_model(
                    lambda n=name: agnn_variant(n, scale.agnn, seed=scale.seed),
                    dataset,
                    scenario,
                    scale,
                )
                rmse_table.set(name, column, fit.result.rmse)
                mae_table.set(name, column, fit.result.mae)
                if verbose:
                    print(f"  {column:<16} {name:<12} {fit.result}")
    return {"rmse": rmse_table, "mae": mae_table}


def main(scale: ExperimentScale = BENCH, **kwargs) -> Dict[str, ResultTable]:
    tables = run_table4(scale, verbose=True, **kwargs)
    print(tables["rmse"].render(title="Table 4 (RMSE): Replacement Study"))
    print()
    print(tables["mae"].render(title="Table 4 (MAE): Replacement Study"))
    return tables


if __name__ == "__main__":
    main()
