"""Fig. 5 — impact of the latent vector dimension D.

The paper sweeps D ∈ {10, 20, 30, 40, 50}: performance improves with D on
the MovieLens datasets (more latent factors) and overfits past ~40 on Yelp.
At reduced scale we sweep proportionally smaller dimensions; the shape target
is "RMSE improves with D, then flattens or reverses".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .configs import BENCH, PAPER, ExperimentScale
from .reporting import FigureSeries
from .sweep import sweep_agnn_parameter

__all__ = ["run_fig5", "main", "PAPER_DIMENSIONS", "BENCH_DIMENSIONS"]

PAPER_DIMENSIONS = (10, 20, 30, 40, 50)
BENCH_DIMENSIONS = (4, 8, 16, 24, 32)


def run_fig5(
    scale: ExperimentScale = BENCH,
    dimensions: Optional[Sequence[int]] = None,
    datasets: Optional[List[str]] = None,
    verbose: bool = False,
) -> Dict[str, FigureSeries]:
    if dimensions is None:
        dimensions = PAPER_DIMENSIONS if scale is PAPER else BENCH_DIMENSIONS
    return sweep_agnn_parameter(
        scale,
        x_label="D",
        x_values=list(dimensions),
        configure=lambda cfg, d: cfg.with_overrides(embedding_dim=int(d)),
        datasets=datasets,
        verbose=verbose,
    )


def main(scale: ExperimentScale = BENCH, **kwargs) -> Dict[str, FigureSeries]:
    figures = run_fig5(scale, verbose=True, **kwargs)
    for dataset_name, figure in figures.items():
        print(figure.render(title=f"Fig. 5: impact of dimension D on {dataset_name} (RMSE)"))
        print()
    return figures


if __name__ == "__main__":
    main()
