"""Fig. 6 — impact of the reconstruction weighting factor λ.

λ balances the rating prediction loss against the eVAE reconstruction loss
(Eq. 15).  The paper sweeps λ ∈ {0, 0.01, 0.1, 1, 10} and finds the optimum
around 1: with λ → 0 the attribute→preference mapping is never learned (cold
start breaks); with λ = 10 the reconstruction dominates and degrades the
rating task.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .configs import BENCH, ExperimentScale
from .reporting import FigureSeries
from .sweep import sweep_agnn_parameter

__all__ = ["run_fig6", "main", "LAMBDA_VALUES"]

LAMBDA_VALUES = (0.0, 0.01, 0.1, 1.0, 10.0)


def run_fig6(
    scale: ExperimentScale = BENCH,
    lambdas: Sequence[float] = LAMBDA_VALUES,
    datasets: Optional[List[str]] = None,
    verbose: bool = False,
) -> Dict[str, FigureSeries]:
    return sweep_agnn_parameter(
        scale,
        x_label="lambda",
        x_values=list(lambdas),
        configure=lambda cfg, lam: cfg.with_overrides(recon_weight=float(lam)),
        datasets=datasets,
        verbose=verbose,
    )


def main(scale: ExperimentScale = BENCH, **kwargs) -> Dict[str, FigureSeries]:
    figures = run_fig6(scale, verbose=True, **kwargs)
    for dataset_name, figure in figures.items():
        print(figure.render(title=f"Fig. 6: impact of weighting factor lambda on {dataset_name} (RMSE)"))
        print()
    return figures


if __name__ == "__main__":
    main()
