"""Experiment runners — one module per table/figure of the paper.

| ID      | Module   | What it regenerates                               |
|---------|----------|---------------------------------------------------|
| Table 1 | table1   | dataset statistics                                |
| Table 2 | table2   | AGNN vs. 12 baselines, ICS/UCS/WS × 3 datasets    |
| Table 3 | table3   | ablation study                                    |
| Table 4 | table4   | replacement study                                 |
| Fig. 5  | fig5     | RMSE vs. embedding dimension D                    |
| Fig. 6  | fig6     | RMSE vs. reconstruction weight λ                  |
| Fig. 7  | fig7     | RMSE vs. candidate-pool threshold p               |
| Fig. 8  | fig8     | RMSE vs. strict-cold-start ratio, vs. 3 baselines |
| Fig. 9  | fig9     | training loss curves                              |

Each module exposes ``run_*(scale)`` returning structured results and a
``main(scale)`` that prints the paper-style table.  Scales live in
``repro.experiments.configs`` (PAPER / BENCH / SMOKE).
"""

from . import ext_ranking, ext_support, fig5, fig6, fig7, fig8, fig9, table1, table2, table3, table4
from .configs import BENCH, PAPER, SMOKE, ExperimentScale, get_scale
from .replicates import ReplicateResult, compare_replicates, run_replicates
from .reporting import FigureSeries, ResultTable, format_table
from .runner import FitResult, run_agnn, run_model

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "ExperimentScale",
    "PAPER",
    "BENCH",
    "SMOKE",
    "get_scale",
    "ResultTable",
    "FigureSeries",
    "format_table",
    "FitResult",
    "run_model",
    "run_agnn",
]

EXPERIMENTS = {
    "table1": table1.main,
    "table2": table2.main,
    "table3": table3.main,
    "table4": table4.main,
    "fig5": fig5.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
    # Extensions beyond the paper's evaluation (DESIGN.md §7):
    "ext_ranking": ext_ranking.main,
    "ext_support": ext_support.main,
}

__all__ += [
    "ext_ranking",
    "ext_support",
    "ReplicateResult",
    "run_replicates",
    "compare_replicates",
    "EXPERIMENTS",
]
