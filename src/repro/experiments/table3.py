"""Table 3 — ablation study.

Removes one AGNN component at a time (Sec. 5.1.1) and measures ICS/UCS RMSE
and MAE per dataset:

    AGNN_PP     graph from preference proximity only
    AGNN_AP     graph from attribute proximity only
    AGNN_-gGNN  no gated-GNN at all (no neighbourhood aggregation)
    AGNN_-agate plain mean instead of the aggregate gate
    AGNN_-fgate target kept un-filtered
    AGNN_-eVAE  no eVAE (cold nodes get zero preference)
    AGNN_VAE    standard VAE (no approximation term)

Shape target: every ablation is worse than the full model; −gGNN and −eVAE
hurt most; −agate hurts more than −fgate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core import ABLATION_VARIANTS, agnn_variant
from ..data.splits import Scenario
from .configs import BENCH, ExperimentScale
from .reporting import ResultTable
from .runner import SCENARIO_LABELS, run_model

__all__ = ["run_table3", "main", "ABLATION_SCENARIOS"]

ABLATION_SCENARIOS: Tuple[Scenario, ...] = ("item_cold", "user_cold")


def run_table3(
    scale: ExperimentScale = BENCH,
    datasets: Optional[List[str]] = None,
    variants: Optional[List[str]] = None,
    verbose: bool = False,
) -> Dict[str, ResultTable]:
    """Return {"rmse": table, "mae": table} over all ablation variants."""
    dataset_names = datasets or list(scale.datasets)
    variant_names = variants or list(ABLATION_VARIANTS)
    columns = [f"{d}/{SCENARIO_LABELS[s]}" for d in dataset_names for s in ABLATION_SCENARIOS]
    rmse_table = ResultTable(columns=columns)
    mae_table = ResultTable(columns=columns)

    for dataset_name in dataset_names:
        dataset = scale.datasets[dataset_name]()
        for scenario in ABLATION_SCENARIOS:
            column = f"{dataset_name}/{SCENARIO_LABELS[scenario]}"
            for name in variant_names:
                fit = run_model(
                    lambda n=name: agnn_variant(n, scale.agnn, seed=scale.seed),
                    dataset,
                    scenario,
                    scale,
                )
                rmse_table.set(name, column, fit.result.rmse)
                mae_table.set(name, column, fit.result.mae)
                if verbose:
                    print(f"  {column:<16} {name:<12} {fit.result}")
    return {"rmse": rmse_table, "mae": mae_table}


def main(scale: ExperimentScale = BENCH, **kwargs) -> Dict[str, ResultTable]:
    tables = run_table3(scale, verbose=True, **kwargs)
    print(tables["rmse"].render(title="Table 3 (RMSE): Ablation Study"))
    print()
    print(tables["mae"].render(title="Table 3 (MAE): Ablation Study"))
    return tables


if __name__ == "__main__":
    main()
