"""Table 2 — main comparison: AGNN vs. twelve baselines.

Reproduces the paper's headline result: RMSE and MAE for every model in the
strict item cold start (ICS), strict user cold start (UCS) and warm start
(WS) scenarios, per dataset, with significance markers against the best
baseline and the percentage-improvement row.

Shape targets (the substrate differs, absolute values will not match):
* AGNN wins ICS and UCS everywhere;
* LLAE is catastrophically bad (fits full rating vectors);
* STAR-GCN is the strongest interaction-graph model at WS;
* sRMGCNN is skipped on Yelp (the original cannot scale to it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..baselines import BASELINES, make_baseline
from ..core import AGNN
from ..data.splits import Scenario
from ..train import EvalResult, significance_marker
from .configs import BENCH, ExperimentScale
from .reporting import ResultTable
from .runner import SCENARIO_LABELS, FitResult, run_model

__all__ = ["Table2Result", "run_table2", "main", "DEFAULT_SCENARIOS"]

DEFAULT_SCENARIOS: Tuple[Scenario, ...] = ("item_cold", "user_cold", "warm")

#: the paper cannot run sRMGCNN on Yelp (Chebyshev convolution does not scale)
_SKIP: Dict[str, Tuple[str, ...]] = {"sRMGCNN": ("Yelp",)}


@dataclass
class Table2Result:
    rmse: ResultTable
    mae: ResultTable
    raw: Dict[Tuple[str, str, str], EvalResult] = field(default_factory=dict)

    def render(self) -> str:
        return (
            self.rmse.render(title="Table 2 (RMSE)", ours="AGNN")
            + "\n\n"
            + self.mae.render(title="Table 2 (MAE)", ours="AGNN")
        )


def run_table2(
    scale: ExperimentScale = BENCH,
    datasets: Optional[List[str]] = None,
    scenarios: Tuple[Scenario, ...] = DEFAULT_SCENARIOS,
    models: Optional[List[str]] = None,
    verbose: bool = False,
) -> Table2Result:
    """Run the full comparison and assemble both metric tables."""
    dataset_names = datasets or list(scale.datasets)
    model_names = models or list(BASELINES)
    columns = [f"{d}/{SCENARIO_LABELS[s]}" for d in dataset_names for s in scenarios]
    out = Table2Result(rmse=ResultTable(columns=columns), mae=ResultTable(columns=columns))

    for dataset_name in dataset_names:
        dataset = scale.datasets[dataset_name]()
        for scenario in scenarios:
            column = f"{dataset_name}/{SCENARIO_LABELS[scenario]}"
            per_model: Dict[str, FitResult] = {}

            for name in model_names:
                if dataset_name in _SKIP.get(name, ()):
                    continue
                fit = run_model(
                    lambda n=name: make_baseline(n, embedding_dim=scale.baseline_dim),
                    dataset,
                    scenario,
                    scale,
                )
                per_model[name] = fit
                if verbose:
                    print(f"  {column:<16} {name:<12} {fit.result}")

            agnn_fit = run_model(lambda: AGNN(scale.agnn, rng_seed=scale.seed), dataset, scenario, scale)
            if verbose:
                print(f"  {column:<16} {'AGNN':<12} {agnn_fit.result}")

            # Significance of AGNN vs. the best baseline on this column.
            best_name = min(per_model, key=lambda n: per_model[n].result.rmse)
            marker = significance_marker(agnn_fit.result, per_model[best_name].result)

            for name, fit in per_model.items():
                out.rmse.set(name, column, fit.result.rmse)
                out.mae.set(name, column, fit.result.mae)
                out.raw[(name, dataset_name, scenario)] = fit.result
            out.rmse.set("AGNN", column, agnn_fit.result.rmse, marker=marker)
            out.mae.set("AGNN", column, agnn_fit.result.mae, marker=marker)
            out.raw[("AGNN", dataset_name, scenario)] = agnn_fit.result
    return out


def main(scale: ExperimentScale = BENCH, **kwargs) -> Table2Result:
    result = run_table2(scale, verbose=True, **kwargs)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
