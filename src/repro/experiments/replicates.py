"""Multi-seed replication: mean ± std and cross-seed significance.

Single-seed comparisons can flip on close columns; this module reruns any
(model, dataset, scenario) cell across several split/init seeds and
aggregates — the honest way to report the reproduction's close calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np
from scipy import stats

from ..data import RatingDataset
from ..data.splits import Scenario
from ..nn import init as nn_init
from ..train import Recommender, TrainConfig
from .configs import ExperimentScale
from .runner import run_model

__all__ = ["ReplicateResult", "run_replicates", "compare_replicates"]


@dataclass(frozen=True)
class ReplicateResult:
    """RMSE/MAE across seeds for one (model, dataset, scenario) cell."""

    model_name: str
    rmse_values: np.ndarray
    mae_values: np.ndarray

    @property
    def rmse_mean(self) -> float:
        return float(self.rmse_values.mean())

    @property
    def rmse_std(self) -> float:
        return float(self.rmse_values.std(ddof=1)) if len(self.rmse_values) > 1 else 0.0

    @property
    def mae_mean(self) -> float:
        return float(self.mae_values.mean())

    @property
    def num_seeds(self) -> int:
        return len(self.rmse_values)

    def __str__(self) -> str:
        return (
            f"{self.model_name}: RMSE {self.rmse_mean:.4f}±{self.rmse_std:.4f} "
            f"MAE {self.mae_mean:.4f} ({self.num_seeds} seeds)"
        )


def run_replicates(
    model_factory: Callable[[], Recommender],
    dataset: RatingDataset,
    scenario: Scenario,
    scale: ExperimentScale,
    seeds: Sequence[int] = (0, 1, 2),
    train_config: TrainConfig | None = None,
) -> ReplicateResult:
    """Fit/evaluate the model once per seed (seed drives split AND init)."""
    if not seeds:
        raise ValueError("need at least one seed")
    rmses: List[float] = []
    maes: List[float] = []
    name = "model"
    for seed in seeds:
        seeded_scale = scale.with_overrides(seed=seed)
        fit = run_model(
            model_factory, dataset, scenario, seeded_scale, split_seed=seed, train_config=train_config
        )
        name = fit.model_name
        rmses.append(fit.result.rmse)
        maes.append(fit.result.mae)
    return ReplicateResult(
        model_name=name,
        rmse_values=np.asarray(rmses),
        mae_values=np.asarray(maes),
    )


def compare_replicates(ours: ReplicateResult, baseline: ReplicateResult) -> Dict[str, float]:
    """Paired-across-seeds comparison: mean difference and one-sided p-value."""
    if ours.num_seeds != baseline.num_seeds:
        raise ValueError("both results need the same seed count for a paired test")
    diff = ours.rmse_values - baseline.rmse_values
    if np.allclose(diff, 0) or ours.num_seeds < 2:
        return {"mean_difference": float(diff.mean()), "p_value": 1.0}
    t_stat, p_two = stats.ttest_rel(ours.rmse_values, baseline.rmse_values)
    p_one = p_two / 2.0 if t_stat < 0 else 1.0 - p_two / 2.0
    return {"mean_difference": float(diff.mean()), "p_value": float(p_one)}
