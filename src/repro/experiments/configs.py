"""Experiment scales: paper-sized, bench-sized and smoke-sized configurations.

The paper trains on a GPU with PyTorch; our substrate is a numpy autograd
engine on CPU, so each experiment accepts a *scale*:

* ``PAPER`` — Table 1 sizes (943/1,682/100k …), D = 40, the paper's
  hyper-parameters.  Provided for completeness; running the whole Table 2 at
  this scale is an overnight job on CPU.
* ``BENCH`` — the default for ``repro.experiments`` mains and the pytest
  benchmarks: a few hundred nodes per side, ~10k interactions, D = 16.
  Relative dataset character is preserved (Yelp stays the sparsest and has
  social-link attributes; ML-1M is the biggest).
* ``SMOKE`` — minimal sizes for the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable, Dict, Tuple

from ..core import AGNNConfig
from ..data import (
    ML_100K,
    ML_1M,
    YELP,
    MovieLensConfig,
    RatingDataset,
    YelpConfig,
    generate_movielens,
    generate_yelp,
)
from ..train import TrainConfig

__all__ = ["ExperimentScale", "PAPER", "BENCH", "SMOKE", "get_scale", "dataset_factory"]


# Bench-sized dataset presets.  Sparsity is the property the paper's analysis
# keys on (interaction-graph methods starve as it rises), so each preset
# matches its original's sparsity: ML-100K 93.7%, ML-1M 95.7%, Yelp ~97.7%
# (Table 1's 99.77% would leave too few ratings at this node count).
_BENCH_ML100K = MovieLensConfig(name="ML-100K", num_users=350, num_items=620, num_ratings=13_600)
_BENCH_ML1M = MovieLensConfig(
    name="ML-1M",
    num_users=800,
    num_items=530,
    num_ratings=18_000,
    num_stars=120,
    num_directors=90,
    num_writers=110,
)
_BENCH_YELP = YelpConfig(name="Yelp", num_users=550, num_items=470, num_ratings=6_000)

_SMOKE_ML100K = MovieLensConfig(name="ML-100K", num_users=180, num_items=320, num_ratings=3_600)
_SMOKE_ML1M = MovieLensConfig(
    name="ML-1M",
    num_users=320,
    num_items=220,
    num_ratings=3_500,
    num_stars=60,
    num_directors=45,
    num_writers=55,
)
_SMOKE_YELP = YelpConfig(name="Yelp", num_users=340, num_items=240, num_ratings=3_200)


@lru_cache(maxsize=32)
def _cached_movielens(config: MovieLensConfig) -> RatingDataset:
    return generate_movielens(config)


@lru_cache(maxsize=32)
def _cached_yelp(config: YelpConfig) -> RatingDataset:
    return generate_yelp(config)


def dataset_factory(config) -> Callable[[], RatingDataset]:
    """A zero-arg factory with caching, so repeated experiments share data."""
    if isinstance(config, MovieLensConfig):
        return lambda: _cached_movielens(config)
    if isinstance(config, YelpConfig):
        return lambda: _cached_yelp(config)
    raise TypeError(f"unsupported dataset config type {type(config)!r}")


@dataclass(frozen=True)
class ExperimentScale:
    """Everything an experiment runner needs to know about sizing."""

    name: str
    dataset_configs: Tuple = ()
    train: TrainConfig = TrainConfig()
    agnn: AGNNConfig = AGNNConfig()
    baseline_dim: int = 16
    split_fraction: float = 0.2
    seed: int = 0

    @property
    def datasets(self) -> Dict[str, Callable[[], RatingDataset]]:
        return {cfg.name: dataset_factory(cfg) for cfg in self.dataset_configs}

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        return replace(self, **kwargs)


PAPER = ExperimentScale(
    name="paper",
    dataset_configs=(ML_100K, ML_1M, YELP),
    train=TrainConfig(epochs=40, batch_size=128, learning_rate=0.0005, patience=3),
    agnn=AGNNConfig(embedding_dim=40, num_neighbors=10, pool_percent=5.0, recon_weight=1.0),
    baseline_dim=40,
)

BENCH = ExperimentScale(
    name="bench",
    dataset_configs=(_BENCH_ML100K, _BENCH_ML1M, _BENCH_YELP),
    train=TrainConfig(epochs=30, batch_size=128, learning_rate=0.003, patience=3),
    agnn=AGNNConfig(embedding_dim=16, num_neighbors=8, pool_percent=5.0, recon_weight=1.0),
    baseline_dim=16,
)

SMOKE = ExperimentScale(
    name="smoke",
    dataset_configs=(_SMOKE_ML100K, _SMOKE_ML1M, _SMOKE_YELP),
    train=TrainConfig(epochs=12, batch_size=128, learning_rate=0.005, patience=2),
    agnn=AGNNConfig(embedding_dim=8, num_neighbors=5, pool_percent=10.0, recon_weight=1.0),
    baseline_dim=8,
)

_SCALES = {scale.name: scale for scale in (PAPER, BENCH, SMOKE)}


def get_scale(name: str) -> ExperimentScale:
    if name not in _SCALES:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(_SCALES)}")
    return _SCALES[name]
