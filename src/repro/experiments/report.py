"""Markdown rendering of experiment results — the EXPERIMENTS.md generator.

Every experiment runner returns structured objects (ResultTable,
FigureSeries, TrainHistory); this module renders them as GitHub-flavoured
markdown so a full paper-vs-measured report can be regenerated from code:

    python -m repro.experiments.report --scale smoke > EXPERIMENTS.md
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..train.history import TrainHistory
from .reporting import FigureSeries, ResultTable

__all__ = ["markdown_table", "result_table_markdown", "figure_markdown", "history_markdown"]


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A plain GitHub markdown table."""
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    rule = "|" + "|".join("---" for _ in headers) + "|"
    body = ["| " + " | ".join(str(c) for c in row) + " |" for row in rows]
    return "\n".join([head, rule, *body])


def result_table_markdown(
    table: ResultTable,
    ours: Optional[str] = None,
    bold_best: bool = True,
) -> str:
    """Render a ResultTable, bolding each column's best value like the paper."""
    best: Dict[str, float] = {}
    if bold_best:
        for column in table.columns:
            try:
                best[column] = table.best_in_column(column, exclude=["LLAE"])[1]
            except ValueError:
                continue

    rows = []
    for model in table.models:
        row = [model]
        for column in table.columns:
            if column not in table.values.get(model, {}):
                row.append("—")
                continue
            value = table.values[model][column]
            marker = table.markers.get((model, column), "")
            cell = f"{value:.4f}{marker}"
            if bold_best and column in best and value == best[column]:
                cell = f"**{cell}**"
            row.append(cell)
        rows.append(row)
    if ours is not None and ours in table.values:
        improvements = table.improvement_row(ours)
        rows.append(
            ["*Improvement*"]
            + [f"{improvements[c]:+.2f}%" if c in improvements else "—" for c in table.columns]
        )
    return markdown_table(["model", *table.columns], rows)


def figure_markdown(figure: FigureSeries) -> str:
    """Render a FigureSeries as a markdown table (x values as columns)."""
    headers = [figure.x_label, *[f"{x:g}" for x in figure.x_values]]
    rows = [[name, *[f"{v:.4f}" for v in values]] for name, values in figure.series.items()]
    return markdown_table(headers, rows)


def history_markdown(history: TrainHistory, losses: Sequence[str] = ("prediction", "reconstruction")) -> str:
    """Render selected loss curves epoch by epoch."""
    epochs = list(range(1, history.num_epochs + 1))
    headers = ["loss", *[str(e) for e in epochs]]
    rows = []
    for name in losses:
        if name in history.losses:
            rows.append([name, *[f"{v:.3f}" for v in history.curve(name)]])
    return markdown_table(headers, rows)
