"""Fig. 7 — impact of the neighbour candidate set threshold p.

p is the percentage of most-proximal nodes admitted to a node's candidate
pool (Sec. 3.3.1).  The paper sweeps p ∈ {1, 5, 10, 15, 20} and finds the
curves "rather steady": because sampling is proximity-weighted, top-ranked
candidates dominate regardless of how large the pool grows.  The shape
target is therefore *flatness* — the max−min RMSE gap across p stays small.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .configs import BENCH, ExperimentScale
from .reporting import FigureSeries
from .sweep import sweep_agnn_parameter

__all__ = ["run_fig7", "main", "THRESHOLD_VALUES"]

THRESHOLD_VALUES = (1.0, 5.0, 10.0, 15.0, 20.0)


def run_fig7(
    scale: ExperimentScale = BENCH,
    thresholds: Sequence[float] = THRESHOLD_VALUES,
    datasets: Optional[List[str]] = None,
    verbose: bool = False,
) -> Dict[str, FigureSeries]:
    return sweep_agnn_parameter(
        scale,
        x_label="p",
        x_values=list(thresholds),
        configure=lambda cfg, p: cfg.with_overrides(pool_percent=float(p)),
        datasets=datasets,
        verbose=verbose,
    )


def main(scale: ExperimentScale = BENCH, **kwargs) -> Dict[str, FigureSeries]:
    figures = run_fig7(scale, verbose=True, **kwargs)
    for dataset_name, figure in figures.items():
        print(figure.render(title=f"Fig. 7: impact of candidate threshold p on {dataset_name} (RMSE)"))
        print()
    return figures


if __name__ == "__main__":
    main()
