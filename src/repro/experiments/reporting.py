"""Formatting helpers: paper-style result tables and figure series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ResultTable", "FigureSeries", "format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Plain-text aligned table, the output medium of every experiment main."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ResultTable:
    """(model × column) table of metric values, like the paper's Tables 2–4."""

    columns: List[str]
    values: Dict[str, Dict[str, float]] = field(default_factory=dict)
    markers: Dict[Tuple[str, str], str] = field(default_factory=dict)

    def set(self, model: str, column: str, value: float, marker: str = "") -> None:
        if column not in self.columns:
            raise KeyError(f"unknown column {column!r}; columns: {self.columns}")
        self.values.setdefault(model, {})[column] = float(value)
        if marker:
            self.markers[(model, column)] = marker

    def get(self, model: str, column: str) -> float:
        return self.values[model][column]

    @property
    def models(self) -> List[str]:
        return list(self.values)

    def best_in_column(self, column: str, exclude: Sequence[str] = ()) -> Tuple[str, float]:
        """(model, value) with the smallest value (RMSE/MAE: lower is better)."""
        candidates = [(m, vals[column]) for m, vals in self.values.items()
                      if column in vals and m not in exclude]
        if not candidates:
            raise ValueError(f"no values recorded in column {column!r}")
        return min(candidates, key=lambda pair: pair[1])

    def improvement_row(self, ours: str, exclude: Sequence[str] = ()) -> Dict[str, float]:
        """Percent improvement of ``ours`` over the best other model per column."""
        improvements = {}
        for column in self.columns:
            if ours not in self.values or column not in self.values[ours]:
                continue
            _, best = self.best_in_column(column, exclude=(ours, *exclude))
            our_value = self.values[ours][column]
            improvements[column] = (best - our_value) / best * 100.0
        return improvements

    def render(self, title: Optional[str] = None, ours: Optional[str] = None) -> str:
        headers = ["model", *self.columns]
        rows = []
        for model in self.values:
            row = [model]
            for column in self.columns:
                if column in self.values[model]:
                    marker = self.markers.get((model, column), "")
                    row.append(f"{self.values[model][column]:.4f}{marker}")
                else:
                    row.append("-")
            rows.append(row)
        if ours is not None and ours in self.values:
            imp = self.improvement_row(ours)
            rows.append(["Improvement", *[f"{imp[c]:+.2f}%" if c in imp else "-" for c in self.columns]])
        return format_table(headers, rows, title=title)


@dataclass
class FigureSeries:
    """One figure's data: shared x values, one named series per line."""

    x_label: str
    x_values: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, name: str, values: Sequence[float]) -> None:
        values = [float(v) for v in values]
        if len(values) != len(self.x_values):
            raise ValueError(f"series {name!r} has {len(values)} points, expected {len(self.x_values)}")
        self.series[name] = values

    def best_x(self, name: str) -> float:
        """x value minimising the series (for 'optimum at λ≈1'-style checks)."""
        values = self.series[name]
        return self.x_values[min(range(len(values)), key=values.__getitem__)]

    def render(self, title: Optional[str] = None) -> str:
        headers = [self.x_label, *[f"{x:g}" for x in self.x_values]]
        rows = [[name, *[f"{v:.4f}" for v in values]] for name, values in self.series.items()]
        return format_table(headers, rows, title=title)
