"""Fig. 9 — training curves of the prediction and reconstruction losses.

The paper plots both loss components per epoch for strict item / user cold
start on each dataset: both drop rapidly early, the prediction loss then
declines smoothly and the reconstruction loss converges within a few epochs —
evidence the model is "stable and easy to train".  Shape targets: both curves
are (noisily) decreasing and the final value is well below the initial one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..data.splits import Scenario
from ..train import TrainHistory
from .configs import BENCH, ExperimentScale
from .reporting import format_table
from .runner import SCENARIO_LABELS, run_agnn

__all__ = ["run_fig9", "main", "FIG9_SCENARIOS"]

FIG9_SCENARIOS: Tuple[Scenario, ...] = ("item_cold", "user_cold")


def run_fig9(
    scale: ExperimentScale = BENCH,
    datasets: Optional[List[str]] = None,
    scenarios: Tuple[Scenario, ...] = FIG9_SCENARIOS,
    verbose: bool = False,
) -> Dict[str, TrainHistory]:
    """Train AGNN per (dataset, scenario) and return the loss histories."""
    dataset_names = datasets or list(scale.datasets)
    histories: Dict[str, TrainHistory] = {}
    for dataset_name in dataset_names:
        dataset = scale.datasets[dataset_name]()
        for scenario in scenarios:
            key = f"{dataset_name}/{SCENARIO_LABELS[scenario]}"
            fit = run_agnn(dataset, scenario, scale)
            histories[key] = fit.history
            if verbose:
                print(f"  {key:<16} {fit.history.summary()}")
    return histories


def render(histories: Dict[str, TrainHistory]) -> str:
    blocks = []
    for key, history in histories.items():
        epochs = list(range(1, history.num_epochs + 1))
        headers = ["loss", *[str(e) for e in epochs]]
        rows = []
        for name in ("prediction", "reconstruction"):
            if name in history.losses:
                rows.append([name, *[f"{v:.4f}" for v in history.curve(name)]])
        blocks.append(format_table(headers, rows, title=f"Fig. 9: training curves — {key}"))
    return "\n\n".join(blocks)


def main(scale: ExperimentScale = BENCH, **kwargs) -> Dict[str, TrainHistory]:
    histories = run_fig9(scale, verbose=True, **kwargs)
    print(render(histories))
    return histories


if __name__ == "__main__":
    main()
