"""Extension experiment — top-N ranking under strict item cold start.

Not in the paper's evaluation (which reports RMSE/MAE only), but directly
licensed by its problem definition: **R** may hold implicit feedback, and a
deployed cold-start system ultimately ranks.  We compare:

* AGNN used as a ranker (scores → order);
* BPR-MF — the classic interaction-only pairwise ranker;
* PopularityRanker — the no-personalisation floor.

Shape target: on strict cold items BPR and popularity collapse to chance
(cold items have zero training interactions, so both score them arbitrarily
or at the floor), while AGNN ranks them from attributes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import AGNN
from ..nn import init as nn_init
from ..ranking import BPRMF, BPRConfig, PopularityRanker, RankingResult, evaluate_ranking
from ..data.splits import make_split
from .configs import BENCH, ExperimentScale
from .reporting import format_table

__all__ = ["run_ext_ranking", "main"]


def run_ext_ranking(
    scale: ExperimentScale = BENCH,
    datasets: Optional[List[str]] = None,
    k: int = 10,
    num_negatives: int = 49,
    max_users: int = 150,
    verbose: bool = False,
) -> Dict[str, Dict[str, RankingResult]]:
    """Return {dataset: {model: RankingResult}} on strict item cold start."""
    dataset_names = datasets or list(scale.datasets)
    out: Dict[str, Dict[str, RankingResult]] = {}
    for dataset_name in dataset_names:
        dataset = scale.datasets[dataset_name]()
        task = make_split(dataset, "item_cold", scale.split_fraction, seed=scale.seed)
        results: Dict[str, RankingResult] = {}

        nn_init.seed(scale.seed)
        agnn = AGNN(scale.agnn, rng_seed=scale.seed)
        agnn.fit(task, scale.train)
        results["AGNN"] = evaluate_ranking(agnn, task, k=k, num_negatives=num_negatives,
                                           max_users=max_users, seed=scale.seed)

        bpr = BPRMF(BPRConfig(factors=scale.baseline_dim, seed=scale.seed)).fit(task)
        results["BPR-MF"] = evaluate_ranking(bpr, task, k=k, num_negatives=num_negatives,
                                             max_users=max_users, seed=scale.seed)

        pop = PopularityRanker().fit(task)
        results["Popularity"] = evaluate_ranking(pop, task, k=k, num_negatives=num_negatives,
                                                 max_users=max_users, seed=scale.seed)
        out[dataset_name] = results
        if verbose:
            for name, result in results.items():
                print(f"  {dataset_name:<10} {name:<12} {result}")
    return out


def render(results: Dict[str, Dict[str, RankingResult]]) -> str:
    rows = []
    for dataset_name, models in results.items():
        for name, result in models.items():
            rows.append([
                dataset_name, name,
                f"{result.hit_rate:.4f}", f"{result.ndcg:.4f}", f"{result.recall:.4f}",
            ])
    k = next(iter(next(iter(results.values())).values())).k
    return format_table(
        ["dataset", "model", f"HR@{k}", f"NDCG@{k}", f"Recall@{k}"],
        rows,
        title="Extension: top-N ranking of strict cold start items",
    )


def main(scale: ExperimentScale = BENCH, **kwargs) -> Dict[str, Dict[str, RankingResult]]:
    results = run_ext_ranking(scale, verbose=True, **kwargs)
    print(render(results))
    return results


if __name__ == "__main__":
    main()
