"""CLI: ``python -m repro.experiments <experiment...> [--scale bench]``.

Examples:
    python -m repro.experiments table2
    python -m repro.experiments fig5 fig6 --scale smoke
    python -m repro.experiments all --scale bench
"""

from __future__ import annotations

import argparse
import sys
import time

from . import EXPERIMENTS
from .configs import get_scale


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments", description=__doc__)
    parser.add_argument("experiments", nargs="+", choices=[*EXPERIMENTS, "all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", default="bench", choices=["paper", "bench", "smoke"],
                        help="experiment scale (default: bench)")
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    scale = get_scale(args.scale)
    for name in names:
        print(f"=== {name} (scale={scale.name}) ===")
        start = time.time()
        EXPERIMENTS[name](scale)
        print(f"=== {name} done in {time.time() - start:.1f}s ===\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
