"""Extension experiment — interpolating strict → normal cold start.

The paper distinguishes *strict* cold start (no interactions at all) from
*normal* cold start (unseen in training but some interactions available) and
argues interaction-graph methods only cope with the latter.  This experiment
makes that argument quantitative: sweep the per-cold-item support size from
0 (strict) upward and watch the interaction-graph baseline close the gap
while AGNN — which never needed interactions — stays flat.

Shape targets: at support 0 AGNN clearly wins; the baseline's RMSE falls as
support grows; AGNN's own curve moves far less.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines import make_baseline
from ..core import AGNN
from ..data.normal_cold import normal_item_cold_split
from ..nn import init as nn_init
from .configs import BENCH, ExperimentScale
from .reporting import FigureSeries

__all__ = ["run_ext_support", "main", "SUPPORT_SIZES"]

SUPPORT_SIZES = (0, 1, 3, 5)


def run_ext_support(
    scale: ExperimentScale = BENCH,
    datasets: Optional[List[str]] = None,
    support_sizes: Sequence[int] = SUPPORT_SIZES,
    baseline: str = "GC-MC",
    verbose: bool = False,
) -> Dict[str, FigureSeries]:
    """One FigureSeries per dataset: RMSE vs support size, AGNN vs baseline."""
    dataset_names = datasets or list(scale.datasets)
    figures: Dict[str, FigureSeries] = {}
    for dataset_name in dataset_names:
        dataset = scale.datasets[dataset_name]()
        figure = FigureSeries(x_label="support size", x_values=[float(s) for s in support_sizes])
        for model_name in ("AGNN", baseline):
            values = []
            for support in support_sizes:
                task = normal_item_cold_split(
                    dataset, scale.split_fraction, support_size=int(support), seed=scale.seed
                )
                nn_init.seed(scale.seed)
                if model_name == "AGNN":
                    model = AGNN(scale.agnn, rng_seed=scale.seed)
                else:
                    model = make_baseline(model_name, embedding_dim=scale.baseline_dim)
                model.fit(task, scale.train)
                rmse = model.evaluate().rmse
                values.append(rmse)
                if verbose:
                    print(f"  {dataset_name:<10} {model_name:<8} support={support} RMSE={rmse:.4f}")
            figure.add(model_name, values)
        figures[dataset_name] = figure
    return figures


def main(scale: ExperimentScale = BENCH, **kwargs) -> Dict[str, FigureSeries]:
    figures = run_ext_support(scale, verbose=True, **kwargs)
    for dataset_name, figure in figures.items():
        print(figure.render(title=f"Extension: strict→normal cold start on {dataset_name} (RMSE)"))
        print()
    return figures


if __name__ == "__main__":
    main()
