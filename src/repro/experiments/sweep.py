"""Shared hyper-parameter sweep machinery for Figs. 5–7."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import AGNNConfig
from ..data.splits import Scenario
from .configs import ExperimentScale
from .reporting import FigureSeries
from .runner import SCENARIO_LABELS, run_agnn

__all__ = ["sweep_agnn_parameter"]

SWEEP_SCENARIOS: Tuple[Scenario, ...] = ("item_cold", "user_cold")


def sweep_agnn_parameter(
    scale: ExperimentScale,
    x_label: str,
    x_values: Sequence[float],
    configure: Callable[[AGNNConfig, float], AGNNConfig],
    datasets: Optional[List[str]] = None,
    scenarios: Tuple[Scenario, ...] = SWEEP_SCENARIOS,
    verbose: bool = False,
) -> Dict[str, FigureSeries]:
    """Run AGNN across ``x_values``, returning one FigureSeries per dataset.

    ``configure(base_config, x)`` produces the AGNN config for each sweep
    point; each dataset's series has one line per scenario (ICS/UCS RMSE),
    mirroring the paper's per-dataset sub-figures.
    """
    dataset_names = datasets or list(scale.datasets)
    figures: Dict[str, FigureSeries] = {}
    for dataset_name in dataset_names:
        dataset = scale.datasets[dataset_name]()
        figure = FigureSeries(x_label=x_label, x_values=[float(x) for x in x_values])
        for scenario in scenarios:
            values = []
            for x in x_values:
                config = configure(scale.agnn, x)
                fit = run_agnn(dataset, scenario, scale, config=config)
                values.append(fit.result.rmse)
                if verbose:
                    print(f"  {dataset_name:<10} {SCENARIO_LABELS[scenario]} {x_label}={x:g} RMSE={fit.result.rmse:.4f}")
            figure.add(SCENARIO_LABELS[scenario], values)
        figures[dataset_name] = figure
    return figures
