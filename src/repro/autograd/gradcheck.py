"""Finite-difference verification of autograd gradients.

``gradcheck`` drives every primitive's backward pass against a central
difference approximation.  The test suite uses it on each op and on whole
model slices (e.g. the gated-GNN layer), which is what lets the rest of the
repository trust the engine.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["gradcheck", "numerical_gradient"]


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``sum(func(*inputs))`` w.r.t. one input."""
    target = inputs[wrt]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(func(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(func(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Check analytic gradients of ``func`` against finite differences.

    Raises ``AssertionError`` with a diagnostic on mismatch; returns True on
    success so it can be asserted directly in tests.
    """
    inputs = list(inputs)
    for tensor in inputs:
        tensor.zero_grad()
    output = func(*inputs)
    output.sum().backward()
    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
