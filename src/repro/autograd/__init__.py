"""Reverse-mode autodiff engine: the numerical substrate for every model here."""

from . import ops
from .grad_mode import is_grad_enabled, no_grad, set_grad_enabled
from .gradcheck import gradcheck, numerical_gradient
from .sparse import SparseRowGrad
from .tensor import Tensor, as_tensor

__all__ = [
    "Tensor",
    "as_tensor",
    "ops",
    "no_grad",
    "set_grad_enabled",
    "is_grad_enabled",
    "gradcheck",
    "numerical_gradient",
    "SparseRowGrad",
]
