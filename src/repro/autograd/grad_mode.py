"""Global gradient-recording mode.

The engine records a backward graph only while gradients are enabled.  Inference
code (evaluation loops, graph construction from learned embeddings) wraps itself
in :func:`no_grad` to avoid building graphs it will never backpropagate through.
"""

from __future__ import annotations

import contextlib
import threading

__all__ = ["is_grad_enabled", "no_grad", "set_grad_enabled"]


class _GradMode(threading.local):
    """Thread-local flag so concurrent evaluators do not race on the mode."""

    def __init__(self) -> None:
        self.enabled = True


_mode = _GradMode()


def is_grad_enabled() -> bool:
    """Return True when operations should record the backward graph."""
    return _mode.enabled


@contextlib.contextmanager
def set_grad_enabled(enabled: bool):
    """Context manager forcing gradient recording on or off."""
    previous = _mode.enabled
    _mode.enabled = enabled
    try:
        yield
    finally:
        _mode.enabled = previous


def no_grad():
    """Context manager disabling gradient recording, like ``torch.no_grad``."""
    return set_grad_enabled(False)
