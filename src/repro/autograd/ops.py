"""Differentiable primitives for the autograd engine.

Every function takes Tensors (or array-likes, which are promoted) and returns a
Tensor whose backward closure scatters gradients to its parents.  Gradients of
broadcast operands are reduced with ``_unbroadcast`` so ``(B, D) + (D,)`` and
friends behave exactly as in numpy.
"""

from __future__ import annotations

import builtins
from typing import Optional, Sequence, Union

import numpy as np

from .sparse import SparseRowGrad, segment_sum_rows
from .tensor import Tensor, _unbroadcast, as_tensor

__all__ = [
    "add", "sub", "mul", "div", "neg", "power", "matmul",
    "exp", "log", "sqrt", "square", "absolute",
    "sigmoid", "tanh", "relu", "leaky_relu", "softplus", "clip",
    "sum", "mean", "linear", "reshape", "transpose", "getitem",
    "concatenate", "stack", "embedding", "softmax", "log_softmax",
    "maximum", "where", "norm", "broadcast_to",
]


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad, b.shape))

    return Tensor._result(out_data, (a, b), backward, "add")


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(-grad, b.shape))

    return Tensor._result(out_data, (a, b), backward, "sub")


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad * b.data, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad * a.data, b.shape))

    return Tensor._result(out_data, (a, b), backward, "mul")


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad / b.data, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(-grad * a.data / (b.data ** 2), b.shape))

    return Tensor._result(out_data, (a, b), backward, "div")


def neg(a) -> Tensor:
    a = as_tensor(a)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(-grad)

    return Tensor._result(-a.data, (a,), backward, "neg")


def power(a, exponent: float) -> Tensor:
    """Elementwise power with a *constant* exponent."""
    a = as_tensor(a)
    exponent = float(exponent)
    out_data = a.data ** exponent

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * exponent * a.data ** (exponent - 1.0))

    return Tensor._result(out_data, (a,), backward, "power")


def matmul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        a_data, b_data = a.data, b.data
        if a.requires_grad:
            if b_data.ndim == 1:
                grad_a = np.outer(grad, b_data) if a_data.ndim == 2 else grad * b_data
            elif a_data.ndim == 1:
                grad_a = grad @ b_data.T
            else:
                grad_a = grad @ np.swapaxes(b_data, -1, -2)
                grad_a = _unbroadcast(grad_a, a_data.shape)
            a.accumulate_grad(grad_a.reshape(a_data.shape))
        if b.requires_grad:
            if a_data.ndim == 1:
                grad_b = np.outer(a_data, grad) if b_data.ndim == 2 else grad * a_data
            elif b_data.ndim == 1:
                grad_b = a_data.T @ grad if a_data.ndim == 2 else (grad[..., None] * a_data).sum(
                    axis=tuple(range(a_data.ndim - 1))
                )
            else:
                grad_b = np.swapaxes(a_data, -1, -2) @ grad
                grad_b = _unbroadcast(grad_b, b_data.shape)
            b.accumulate_grad(grad_b.reshape(b_data.shape))

    return Tensor._result(out_data, (a, b), backward, "matmul")


def exp(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * out_data)

    return Tensor._result(out_data, (a,), backward, "exp")


def log(a) -> Tensor:
    a = as_tensor(a)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad / a.data)

    return Tensor._result(np.log(a.data), (a,), backward, "log")


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.sqrt(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * 0.5 / out_data)

    return Tensor._result(out_data, (a,), backward, "sqrt")


def square(a) -> Tensor:
    a = as_tensor(a)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * 2.0 * a.data)

    return Tensor._result(a.data ** 2, (a,), backward, "square")


def absolute(a) -> Tensor:
    a = as_tensor(a)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * np.sign(a.data))

    return Tensor._result(np.abs(a.data), (a,), backward, "abs")


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    # Numerically stable logistic: exp only ever sees non-positive arguments.
    x = a.data
    out_data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.clip(x, 0, None))),
                        np.exp(np.clip(x, None, 0)) / (1.0 + np.exp(np.clip(x, None, 0))))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * out_data * (1.0 - out_data))

    return Tensor._result(out_data, (a,), backward, "sigmoid")


def tanh(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * (1.0 - out_data ** 2))

    return Tensor._result(out_data, (a,), backward, "tanh")


def relu(a) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * mask)

    return Tensor._result(a.data * mask, (a,), backward, "relu")


def leaky_relu(a, slope: float = 0.01) -> Tensor:
    a = as_tensor(a)
    factor = np.where(a.data > 0, 1.0, slope)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * factor)

    return Tensor._result(a.data * factor, (a,), backward, "leaky_relu")


def softplus(a) -> Tensor:
    a = as_tensor(a)
    x = a.data
    out_data = np.maximum(x, 0) + np.log1p(np.exp(-np.abs(x)))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            sig = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
            a.accumulate_grad(grad * sig)

    return Tensor._result(out_data, (a,), backward, "softplus")


def clip(a, low: float, high: float) -> Tensor:
    a = as_tensor(a)
    mask = (a.data >= low) & (a.data <= high)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * mask)

    return Tensor._result(np.clip(a.data, low, high), (a,), backward, "clip")


def sum(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        g = grad
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.data.ndim for ax in axes):
                g = np.expand_dims(g, ax)
        # No .copy(): accumulate_grad copies (or adds) the broadcast view itself.
        a.accumulate_grad(np.broadcast_to(g, a.shape))

    return Tensor._result(out_data, (a,), backward, "sum")


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    if axis is None:
        count = a.data.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([a.data.shape[ax] for ax in axes]))
    scale = 1.0 / count
    # One graph node doing sum-then-scale directly.  Bitwise-identical to the
    # mul(sum(...), 1/count) composition it replaces, forward and backward.
    out_data = a.data.sum(axis=axis, keepdims=keepdims) * scale

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        g = grad * scale
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.data.ndim for ax in axes):
                g = np.expand_dims(g, ax)
        a.accumulate_grad(np.broadcast_to(g, a.shape))

    return Tensor._result(out_data, (a,), backward, "mean")


def linear(x, weight, bias=None) -> Tensor:
    """Fused affine map ``x @ weight (+ bias)``: one node instead of two.

    Forward and backward run exactly the expressions the matmul+add
    composition runs (``weight`` 2-D, ``bias`` 1-D broadcast over rows), so
    results and gradients are bitwise-identical — the fusion only removes a
    graph node, a closure call, and a gradient hand-off per layer call.
    """
    if bias is None:
        return matmul(x, weight)
    x, weight, bias = as_tensor(x), as_tensor(weight), as_tensor(bias)
    out_data = x.data @ weight.data + bias.data

    def backward(grad: np.ndarray) -> None:
        x_data, w_data = x.data, weight.data
        if x.requires_grad:
            if x_data.ndim == 1:
                grad_x = grad @ w_data.T
            else:
                grad_x = _unbroadcast(grad @ np.swapaxes(w_data, -1, -2), x_data.shape)
            x.accumulate_grad(grad_x.reshape(x_data.shape))
        if weight.requires_grad:
            if x_data.ndim == 1:
                grad_w = np.outer(x_data, grad)
            else:
                grad_w = _unbroadcast(np.swapaxes(x_data, -1, -2) @ grad, w_data.shape)
            weight.accumulate_grad(grad_w.reshape(w_data.shape))
        if bias.requires_grad:
            bias.accumulate_grad(_unbroadcast(grad, bias.shape))

    return Tensor._result(out_data, (x, weight, bias), backward, "linear")


def reshape(a, shape: tuple) -> Tensor:
    a = as_tensor(a)
    original = a.shape

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad.reshape(original))

    return Tensor._result(a.data.reshape(shape), (a,), backward, "reshape")


def transpose(a, axes: Optional[tuple] = None) -> Tensor:
    a = as_tensor(a)
    if axes is None:
        inverse = None
    else:
        inverse = tuple(np.argsort(axes))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad.transpose(inverse) if inverse is not None else grad.T)

    return Tensor._result(a.data.transpose(axes), (a,), backward, "transpose")


def getitem(a, index) -> Tensor:
    a = as_tensor(a)
    out_data = a.data[index]

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            full = np.zeros_like(a.data)
            np.add.at(full, index, grad)
            a.accumulate_grad(full)

    return Tensor._result(out_data, (a,), backward, "getitem")


def concatenate(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor.accumulate_grad(grad[tuple(slicer)])

    return Tensor._result(out_data, tuple(tensors), backward, "concatenate")


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor.accumulate_grad(piece)

    return Tensor._result(out_data, tuple(tensors), backward, "stack")


def embedding(weight, indices, sparse_grad: bool = False) -> Tensor:
    """Row gather ``weight[indices]`` with segment-sum backward.

    ``indices`` may be any integer array shape; the result has shape
    ``indices.shape + (embedding_dim,)``.  The backward sums duplicate rows
    with a per-column ``np.bincount`` (sequential per bin, so bitwise-equal to
    the ``np.add.at`` scatter it replaces).  With ``sparse_grad=True`` the
    summed rows are accumulated as a :class:`~repro.autograd.SparseRowGrad`
    instead of a dense ``zeros_like(weight)`` — only valid when ``weight`` is
    a leaf, since backward closures expect dense upstream gradients.
    """
    weight = as_tensor(weight)
    idx = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[idx]

    def backward(grad: np.ndarray) -> None:
        if not weight.requires_grad:
            return
        flat = grad.reshape(-1, weight.data.shape[-1])
        if flat.shape[0] == 0:
            weight.accumulate_grad(np.zeros_like(weight.data))
            return
        rows, sums = segment_sum_rows(idx.reshape(-1), flat)
        if sparse_grad:
            weight.accumulate_grad(SparseRowGrad(rows, sums, weight.data.shape))
        else:
            full = np.zeros_like(weight.data)
            full[rows] = sums
            weight.accumulate_grad(full)

    return Tensor._result(out_data, (weight,), backward, "embedding")


def softmax(a, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            a.accumulate_grad(out_data * (grad - dot))

    return Tensor._result(out_data, (a,), backward, "softmax")


def log_softmax(a, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            soft = np.exp(out_data)
            a.accumulate_grad(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._result(out_data, (a,), backward, "log_softmax")


def maximum(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    a_wins = a.data >= b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad * a_wins, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad * ~a_wins, b.shape))

    return Tensor._result(np.maximum(a.data, b.data), (a, b), backward, "maximum")


def where(condition, a, b) -> Tensor:
    cond = np.asarray(condition, dtype=bool)
    a, b = as_tensor(a), as_tensor(b)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad * ~cond, b.shape))

    return Tensor._result(np.where(cond, a.data, b.data), (a, b), backward, "where")


def broadcast_to(a, shape: tuple) -> Tensor:
    """Explicit broadcast; the adjoint sums over the broadcast axes."""
    a = as_tensor(a)
    original = a.shape

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad, original))

    return Tensor._result(np.broadcast_to(a.data, shape).copy(), (a,), backward, "broadcast_to")


def norm(a, axis=None, keepdims: bool = False, eps: float = 1e-12) -> Tensor:
    """Euclidean norm, smoothed with ``eps`` so the gradient exists at zero."""
    a = as_tensor(a)
    return sqrt(add(sum(square(a), axis=axis, keepdims=keepdims), eps))
