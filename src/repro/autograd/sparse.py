"""Sparse row gradients for embedding-style parameters.

An embedding gather touches only a handful of rows of its ``(V, D)`` weight
table, yet the dense backward materialises a full ``zeros_like(weight)`` and
the optimiser then walks every row.  :class:`SparseRowGrad` carries just the
touched rows — sorted unique indices plus their summed gradient rows — so the
whole chain (``accumulate_grad`` → ``clip_grad_norm`` → ``Adam``) can stay
proportional to the batch instead of the vocabulary.

The representation is *opt-in* (``Embedding(..., sparse_grad=True)``) and only
ever attached to leaf parameters: op backward closures always receive dense
arrays, so a sparse gradient must never propagate through ``_run_backward``.

Numerical contract: every operation here is elementwise per touched row, so a
sparse training run is bitwise-identical to its dense counterpart (rows that
receive no gradient have first/second moments of exactly zero, making their
dense Adam update exactly ``-lr * 0 / (sqrt(0) + eps) == 0``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SparseRowGrad", "segment_sum_rows"]


def segment_sum_rows(indices: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sum ``values`` rows that share an index: ``(unique_rows, sums)``.

    ``np.bincount`` accumulates each bin sequentially in occurrence order —
    the same order ``np.add.at`` uses — so the sums are bitwise-identical to a
    dense scatter-add (``np.add.reduceat`` is *not*: its pairwise reduction
    regroups the additions).
    """
    unique, inverse = np.unique(indices, return_inverse=True)
    sums = np.empty((unique.size, values.shape[1]), dtype=values.dtype)
    for column in range(values.shape[1]):
        sums[:, column] = np.bincount(inverse, weights=values[:, column], minlength=unique.size)
    return unique, sums


class SparseRowGrad:
    """Gradient of a 2-D parameter restricted to its touched rows.

    ``rows`` are sorted unique int64 row indices, ``values`` the matching
    ``(len(rows), D)`` gradient rows, and ``shape`` the full parameter shape.
    """

    __slots__ = ("rows", "values", "shape")

    def __init__(self, rows: np.ndarray, values: np.ndarray, shape: tuple) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if len(shape) != 2:
            raise ValueError(f"SparseRowGrad needs a 2-D parameter shape, got {shape}")
        if values.shape != (rows.size, shape[1]):
            raise ValueError(f"values shape {values.shape} does not match {rows.size} rows of width {shape[1]}")
        self.rows = rows
        self.values = values
        self.shape = tuple(shape)

    @classmethod
    def from_indices(cls, indices: np.ndarray, values: np.ndarray, shape: tuple) -> "SparseRowGrad":
        """Build from possibly-duplicated row indices, summing duplicates."""
        unique, sums = segment_sum_rows(np.asarray(indices, dtype=np.int64).reshape(-1), values)
        return cls(unique, sums, shape)

    @property
    def nnz_rows(self) -> int:
        return int(self.rows.size)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        dense[self.rows] = self.values
        return dense

    def add_into(self, dense: np.ndarray) -> None:
        """Accumulate into an existing dense gradient (rows are unique)."""
        dense[self.rows] += self.values

    def merge(self, other: "SparseRowGrad") -> "SparseRowGrad":
        """Sum of two sparse gradients (existing-then-incoming add order)."""
        if other.shape != self.shape:
            raise ValueError(f"cannot merge gradients of shapes {self.shape} and {other.shape}")
        rows = np.concatenate([self.rows, other.rows])
        values = np.concatenate([self.values, other.values], axis=0)
        return SparseRowGrad.from_indices(rows, values, self.shape)

    def scale_(self, factor: float) -> None:
        self.values *= factor

    def sq_sum(self) -> float:
        """Sum of squared entries — untouched rows contribute exactly zero."""
        return float((self.values ** 2).sum())

    def __repr__(self) -> str:
        return f"SparseRowGrad(rows={self.rows.size}/{self.shape[0]}, dim={self.shape[1]})"
