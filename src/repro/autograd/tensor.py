"""Reverse-mode automatic differentiation on top of numpy.

A :class:`Tensor` wraps an ``np.ndarray`` and, while gradients are enabled,
remembers the operation that produced it.  Calling :meth:`Tensor.backward` on a
scalar output walks the recorded graph in reverse topological order and
accumulates ``.grad`` on every leaf that requires gradients.

The engine is intentionally small — dense float64 arrays, a closure per op —
but it is a complete substrate: every model in this repository (AGNN, the
twelve baselines, the eVAE) trains through it, and ``repro.autograd.gradcheck``
verifies each primitive against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from .grad_mode import is_grad_enabled
from .sparse import SparseRowGrad

__all__ = ["Tensor", "as_tensor"]

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting may prepend axes and stretch size-1 axes; the adjoint of a
    broadcast is a sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus the bookkeeping needed for reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op_name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: tuple = (),
        op_name: str = "leaf",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents = _parents
        self.op_name = op_name

    # ------------------------------------------------------------------ info
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_note})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new Tensor sharing data but cut from the backward graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------- construction
    @staticmethod
    def _result(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
        op_name: str,
    ) -> "Tensor":
        """Build an op result, recording the graph only when useful.

        Bypasses ``__init__``: op outputs are already float64 ndarrays on the
        hot path, and grad mode was just checked — this constructor runs once
        per recorded op, so the redundant coercion checks add up.
        """
        parents = tuple(parents)
        needs_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor.__new__(Tensor)
        if type(data) is not np.ndarray or data.dtype != np.float64:
            data = np.asarray(data, dtype=np.float64)
        out.data = data
        out.grad = None
        out.requires_grad = needs_grad
        out._backward = backward if needs_grad else None
        out._parents = parents if needs_grad else ()
        out.op_name = op_name
        return out

    # ------------------------------------------------------------------ backward
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient needs a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")

        # Imported at call time: telemetry is a sibling package and importing
        # it while this module is still initialising would be circular.
        from ..telemetry.tracing import span

        with span("autograd.backward"):
            self._run_backward(grad)

    def _run_backward(self, grad: np.ndarray) -> None:
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        self.grad = grad if self.grad is None else self.grad + grad
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def accumulate_grad(self, grad) -> None:
        """Add ``grad`` into ``self.grad``, allocating on first use.

        ``grad`` may be a dense array or a :class:`SparseRowGrad` (emitted by
        opt-in sparse embedding gathers, leaf parameters only).  Mixed
        accumulation densifies: sparsity survives only while every contribution
        is sparse, which is exactly the embedding-table case it exists for.
        """
        if isinstance(grad, SparseRowGrad):
            if self.grad is None:
                self.grad = grad
            elif isinstance(self.grad, SparseRowGrad):
                self.grad = self.grad.merge(grad)
            else:
                grad.add_into(self.grad)
            return
        if isinstance(self.grad, SparseRowGrad):
            self.grad = self.grad.to_dense()
        if self.grad is None:
            grad = np.asarray(grad)
            if grad.shape == self.data.shape and grad.dtype == self.data.dtype:
                # Copy instead of zeros+add: closures may hand us views or
                # arrays they still reference, so we must own the buffer.
                self.grad = grad.copy()
            else:  # scalar or broadcastable grad: let += broadcast it up
                self.grad = np.zeros_like(self.data)
                self.grad += grad
            return
        self.grad += grad

    # ------------------------------------------------------------------ operators
    # Implemented in repro.autograd.ops and bound at import time (see ops.py);
    # the arithmetic dunders below delegate there.
    def __add__(self, other):
        from . import ops

        return ops.add(self, other)

    def __radd__(self, other):
        from . import ops

        return ops.add(other, self)

    def __sub__(self, other):
        from . import ops

        return ops.sub(self, other)

    def __rsub__(self, other):
        from . import ops

        return ops.sub(other, self)

    def __mul__(self, other):
        from . import ops

        return ops.mul(self, other)

    def __rmul__(self, other):
        from . import ops

        return ops.mul(other, self)

    def __truediv__(self, other):
        from . import ops

        return ops.div(self, other)

    def __rtruediv__(self, other):
        from . import ops

        return ops.div(other, self)

    def __neg__(self):
        from . import ops

        return ops.neg(self)

    def __pow__(self, exponent):
        from . import ops

        return ops.power(self, exponent)

    def __matmul__(self, other):
        from . import ops

        return ops.matmul(self, other)

    def __getitem__(self, index):
        from . import ops

        return ops.getitem(self, index)

    # Named methods mirroring the functional API for fluent code.
    def sum(self, axis=None, keepdims=False):
        from . import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes=None):
        from . import ops

        return ops.transpose(self, axes)

    @property
    def T(self):
        return self.transpose()

    def exp(self):
        from . import ops

        return ops.exp(self)

    def log(self):
        from . import ops

        return ops.log(self)

    def sqrt(self):
        from . import ops

        return ops.sqrt(self)

    def square(self):
        from . import ops

        return ops.square(self)

    def abs(self):
        from . import ops

        return ops.absolute(self)

    def sigmoid(self):
        from . import ops

        return ops.sigmoid(self)

    def tanh(self):
        from . import ops

        return ops.tanh(self)

    def relu(self):
        from . import ops

        return ops.relu(self)

    def leaky_relu(self, slope: float = 0.01):
        from . import ops

        return ops.leaky_relu(self, slope)

    def clip(self, low: float, high: float):
        from . import ops

        return ops.clip(self, low, high)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a Tensor without copying when it already is one."""
    return value if isinstance(value, Tensor) else Tensor(value)
