"""The training benchmark: a seeded SMOKE-scale fit, metered end to end.

This is the producer of ``BENCH_training.json``, the training-throughput
baseline next to ``BENCH_telemetry.json`` (span shapes) and
``BENCH_serving.json`` (inference latencies).  It runs:

* a fully-metered AGNN fit + evaluate on the smoke ML-100K split, reporting
  wall-clock, batches/sec, and the span breakdown of the hot paths (encode,
  backward, graph build, resampling, predict) plus the encode dedup ratio;
* the same run a second time to assert seeded determinism — the two test-set
  prediction vectors must be bitwise equal;
* graph-construction micro-benchmarks at ``n = 2000``: the pre-vectorisation
  per-row pool extraction vs :func:`_pool_from_proximity`, and the
  materialise-then-pool build vs the fused blockwise build.

The reference implementations (:func:`pool_reference`,
:func:`build_reference`) replicate the pre-optimisation code paths and double
as parity oracles for ``tests/graphs/test_pool_parity.py``.

Run it via the CLI::

    python -m repro.cli train-bench --output BENCH_training.json
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..graphs.construction import DynamicNeighborGraph, _extend_pools_from_rows, _pool_from_proximity
from ..graphs.proximity import BlockwiseProximity, combined_proximity
from ..telemetry import metrics, report, span, tracing

__all__ = [
    "pool_reference",
    "build_reference",
    "synthetic_graph_inputs",
    "graph_microbench",
    "run_train_bench",
]


# --------------------------------------------------------------------------
# Reference (pre-optimisation) graph construction — micro-benchmark baselines
# and the parity-test oracles.
# --------------------------------------------------------------------------

def pool_reference(proximity: np.ndarray, pool_size: int) -> DynamicNeighborGraph:
    """Per-row top-``pool_size`` extraction, exactly as before vectorisation."""
    n = proximity.shape[0]
    pool_size = int(np.clip(pool_size, 1, n - 1))
    pools: List[np.ndarray] = []
    weights: List[np.ndarray] = []
    for i in range(n):
        row = proximity[i]
        top = np.argpartition(-row, pool_size - 1)[:pool_size]
        top = top[np.argsort(-row[top])]
        w = row[top]
        finite = np.isfinite(w)
        top, w = top[finite], w[finite]
        if len(top) == 0:  # pathological: keep the single best finite entry
            finite_all = np.flatnonzero(np.isfinite(row))
            top = finite_all[np.argsort(-row[finite_all])][:1]
            w = row[top]
        w = w - w.min() + 1e-6  # strictly positive sampling weights
        pools.append(top.astype(np.int64))
        weights.append(w)
    return DynamicNeighborGraph(pools=pools, weights=weights)


def build_reference(
    attributes: np.ndarray, rating_vectors: np.ndarray, pool_size: int
) -> DynamicNeighborGraph:
    """Materialise the full proximity matrix, then pool — the pre-fusion build."""
    proximity = combined_proximity(attributes, rating_vectors)
    return pool_reference(proximity, pool_size)


def build_fused(
    attributes: np.ndarray, rating_vectors: np.ndarray, pool_size: int
) -> DynamicNeighborGraph:
    """The fused blockwise build (what :func:`build_attribute_graph` runs)."""
    builder = BlockwiseProximity(attributes, rating_vectors)
    pools: List[np.ndarray] = []
    weights: List[np.ndarray] = []
    for start in range(0, builder.num_nodes, builder.block_rows):
        block = builder.block(start, start + builder.block_rows)
        _extend_pools_from_rows(block, pool_size, pools, weights)
    return DynamicNeighborGraph(pools=pools, weights=weights)


def synthetic_graph_inputs(
    n: int = 2000, attr_dim: int = 60, num_ratings: int = 300, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Seeded multi-hot attributes (~8% density) + sparse ratings (~2%)."""
    rng = np.random.default_rng(seed)
    attributes = (rng.random((n, attr_dim)) < 0.08).astype(np.float64)
    ratings = np.where(
        rng.random((n, num_ratings)) < 0.02, rng.integers(1, 6, (n, num_ratings)), 0
    ).astype(np.float64)
    return attributes, ratings


def _best_ms(fn: Callable[[], Any], repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def graph_microbench(
    n: int = 2000,
    pool_size: int = 100,
    attr_dim: int = 60,
    num_ratings: int = 300,
    repeats: int = 5,
    seed: int = 0,
) -> Dict[str, Any]:
    """Reference-vs-optimised timings for pool extraction and the full build."""
    attributes, ratings = synthetic_graph_inputs(n, attr_dim, num_ratings, seed)
    proximity = combined_proximity(attributes, ratings)
    pool_ref = _best_ms(lambda: pool_reference(proximity, pool_size), repeats)
    pool_vec = _best_ms(lambda: _pool_from_proximity(proximity, pool_size), repeats)
    build_ref = _best_ms(lambda: build_reference(attributes, ratings, pool_size), repeats)
    build_new = _best_ms(lambda: build_fused(attributes, ratings, pool_size), repeats)
    return {
        "n": n,
        "pool_size": pool_size,
        "repeats": repeats,
        "pool_reference_ms": pool_ref,
        "pool_vectorised_ms": pool_vec,
        "pool_speedup": pool_ref / pool_vec,
        "build_reference_ms": build_ref,
        "build_fused_ms": build_new,
        "build_speedup": build_ref / build_new,
    }


# --------------------------------------------------------------------------
# Metered training run
# --------------------------------------------------------------------------

def _span_total(snap: Dict[str, Any], path: str) -> float:
    return float(snap["spans"].get(path, {}).get("total_s", 0.0))


def _metered_fit(dataset, scenario: str, scale, train_config) -> Tuple[Dict[str, Any], Any, Any, np.ndarray]:
    """One seeded metered fit+evaluate; returns (snapshot, history, result, predictions)."""
    # Imported here: perf pulls in the full model stack, while repro.perf
    # stays importable without cycles (cli imports model_factory lazily too).
    from ..cli import model_factory
    from ..data import make_split
    from ..nn import init as nn_init

    metrics.reset()
    tracing.reset_spans()
    with metrics.enabled():
        nn_init.seed(scale.seed)
        task = make_split(dataset, scenario, scale.split_fraction, seed=scale.seed)
        model = model_factory("AGNN", scale)()
        with span("experiment"):
            history = model.fit(task, train_config)
            result = model.evaluate(task)
        predictions = model.predict(task.test_users, task.test_items)
        snap = report.snapshot(note="train-bench")
    return snap, history, result, predictions


def run_train_bench(
    dataset: str = "ML-100K",
    scenario: str = "item_cold",
    scale_name: str = "smoke",
    epochs: Optional[int] = None,
    output: Optional[str] = "BENCH_training.json",
    graph_n: int = 2000,
    graph_pool: int = 100,
    graph_repeats: int = 5,
    check_determinism: bool = True,
) -> Dict[str, Any]:
    """Run the training benchmark; write ``output`` unless ``None``."""
    from ..experiments.configs import get_scale

    scale = get_scale(scale_name)
    train_config = scale.train if epochs is None else replace(scale.train, epochs=epochs)
    data = scale.datasets[dataset]()

    snap, history, result, predictions = _metered_fit(data, scenario, scale, train_config)

    counters = snap["counters"]
    gauges = snap["gauges"]
    batches = int(counters.get("train.batches", 0))
    batch_total = _span_total(snap, "experiment/fit/epoch/batch")
    epoch_span = snap["spans"].get("experiment/fit/epoch", {})
    training = {
        "fit_s": _span_total(snap, "experiment/fit"),
        "epochs_trained": history.num_epochs,
        "epoch_mean_s": float(epoch_span.get("mean_s", 0.0)),
        "batches": batches,
        "batch_total_s": batch_total,
        "batches_per_sec": batches / batch_total if batch_total > 0 else 0.0,
        "graph_build_s": _span_total(snap, "experiment/fit/prepare/agnn.prepare/graph.build"),
        "encode_total_s": _span_total(snap, "experiment/fit/epoch/batch/agnn.encode"),
        "backward_total_s": _span_total(snap, "experiment/fit/epoch/batch/autograd.backward"),
        "resample_total_s": _span_total(snap, "experiment/fit/epoch/agnn.resample"),
        "predict_total_s": _span_total(snap, "experiment/predict"),
        "dedup_ratio": float(gauges.get("agnn.encode.dedup_ratio", 1.0)),
        "unique_nodes": int(counters.get("agnn.encode.unique_nodes", 0)),
        "total_nodes": int(counters.get("agnn.encode.total_nodes", 0)),
    }

    determinism: Dict[str, Any] = {"checked": check_determinism}
    if check_determinism:
        _, _, result2, predictions2 = _metered_fit(data, scenario, scale, train_config)
        determinism["repeat_runs_bitwise_equal"] = bool(np.array_equal(predictions, predictions2))
        determinism["test_pairs"] = int(predictions.size)
        determinism["rmse_repeat"] = result2.rmse

    payload: Dict[str, Any] = {
        "schema_version": 1,
        "meta": {
            "note": "train-bench",
            "dataset": dataset,
            "scenario": scenario,
            "scale": scale_name,
            "seed": scale.seed,
            "rmse": result.rmse,
            "mae": result.mae,
        },
        "training": training,
        "determinism": determinism,
        "graph_microbench": graph_microbench(
            n=graph_n, pool_size=graph_pool, repeats=graph_repeats
        ),
    }
    if output is not None:
        import json

        with open(output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


def render(payload: Dict[str, Any]) -> str:
    """Human-readable summary of a train-bench payload."""
    meta, training = payload["meta"], payload["training"]
    micro = payload["graph_microbench"]
    lines = [
        f"train-bench {meta['dataset']}/{meta['scenario']} @ {meta['scale']} "
        f"(seed {meta['seed']}): rmse {meta['rmse']:.4f} mae {meta['mae']:.4f}",
        f"  fit {training['fit_s']:.3f}s over {training['epochs_trained']} epochs "
        f"({training['epoch_mean_s']:.3f}s/epoch)",
        f"  {training['batches']} batches in {training['batch_total_s']:.3f}s "
        f"= {training['batches_per_sec']:.1f} batches/sec",
        f"  spans: encode {training['encode_total_s']:.3f}s, "
        f"backward {training['backward_total_s']:.3f}s, "
        f"graph build {training['graph_build_s']:.3f}s, "
        f"resample {training['resample_total_s']:.3f}s, "
        f"predict {training['predict_total_s']:.3f}s",
        f"  encode dedup: {training['unique_nodes']}/{training['total_nodes']} "
        f"nodes encoded (ratio {training['dedup_ratio']:.3f})",
    ]
    determinism = payload["determinism"]
    if determinism.get("checked"):
        verdict = "bitwise-equal" if determinism["repeat_runs_bitwise_equal"] else "MISMATCH"
        lines.append(f"  determinism: repeat run {verdict} on {determinism['test_pairs']} test pairs")
    lines.append(
        f"  graph n={micro['n']} pool={micro['pool_size']}: "
        f"pool {micro['pool_reference_ms']:.1f}ms -> {micro['pool_vectorised_ms']:.1f}ms "
        f"({micro['pool_speedup']:.2f}x), "
        f"build {micro['build_reference_ms']:.1f}ms -> {micro['build_fused_ms']:.1f}ms "
        f"({micro['build_speedup']:.2f}x)"
    )
    return "\n".join(lines)
