"""Performance benchmarking: the training-throughput baseline.

``repro train-bench`` produces ``BENCH_training.json`` — wall-clock and span
numbers for a seeded SMOKE-scale AGNN fit plus graph-construction
micro-benchmarks.  ``benchmarks/test_training_baseline.py`` reruns a quick
version and trips when throughput regresses badly against the committed file.
"""

from .bench import (
    build_fused,
    build_reference,
    graph_microbench,
    pool_reference,
    render,
    run_train_bench,
    synthetic_graph_inputs,
)

__all__ = [
    "build_fused",
    "build_reference",
    "graph_microbench",
    "pool_reference",
    "render",
    "run_train_bench",
    "synthetic_graph_inputs",
]
