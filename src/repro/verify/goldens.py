"""Golden regression baselines: frozen seeded train+predict runs.

Each :class:`GoldenSpec` pins a fully deterministic SMOKE-scale run — a tiny
dedicated MovieLens-like dataset, fixed init/model/optimiser seeds, a fixed
epoch budget — and captures the quantities the ISSUE freezes:

* per-epoch loss curves (prediction / reconstruction / validation RMSE);
* test-set RMSE / MAE and a sample of raw predictions;
* eVAE KL / approximation / σ terms per side;
* fingerprints of the generated cold-start preference embeddings.

The payload has two tolerance tiers.  ``exact`` holds integers and shapes and
is compared with ``==`` (these are bitwise-deterministic on any platform);
``close`` holds floats compared with ``rtol=1e-6`` — loose enough to absorb
BLAS reduction-order differences across machines, tight enough that a 1e-3
drift in any metric fails loudly.

``update_goldens`` regenerates ``tests/goldens/*.json`` (the intentional
route: ``repro verify --update-goldens``); ``check_goldens`` replays every
spec and diffs against the frozen files.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..autograd import no_grad, ops
from ..core import AGNN
from ..core.cold_modules import EVAEStrategy
from ..data import MovieLensConfig, make_split
from ..data.splits import RecommendationTask
from ..experiments.configs import SMOKE, dataset_factory
from ..nn import init as nn_init
from ..nn.functional import gaussian_kl, l2_distance
from ..train.history import TrainHistory

__all__ = [
    "GOLDEN_SEED",
    "GOLDEN_SPECS",
    "GoldenSpec",
    "Mismatch",
    "check_goldens",
    "compare_golden",
    "default_goldens_dir",
    "fit_golden_model",
    "run_golden",
    "update_goldens",
]

GOLDEN_SEED = 7

#: Dedicated dataset for the goldens: smaller than SMOKE's ML-100K so the two
#: frozen runs stay cheap enough for every pre-merge gate, but dense enough
#: that both cold-start scenarios keep non-trivial train/test splits.
VERIFY_DATASET = MovieLensConfig(
    name="verify-ml",
    num_users=48,
    num_items=64,
    num_ratings=900,
    num_stars=20,
    num_directors=12,
    num_writers=16,
)


@dataclass(frozen=True)
class GoldenSpec:
    """One frozen run: scenario + epoch budget over the verify dataset."""

    name: str
    scenario: str
    epochs: int = 4
    seed: int = GOLDEN_SEED

    @property
    def filename(self) -> str:
        return f"{self.name}.json"


GOLDEN_SPECS: Tuple[GoldenSpec, ...] = (
    GoldenSpec(name="golden_item_cold", scenario="item_cold"),
    GoldenSpec(name="golden_user_cold", scenario="user_cold"),
)


@dataclass
class Mismatch:
    """One divergence between a frozen golden and the current run."""

    path: str
    expected: Any
    actual: Any
    detail: str

    def __str__(self) -> str:
        return f"{self.path}: {self.detail} (frozen {self.expected!r} vs current {self.actual!r})"


def default_goldens_dir() -> Path:
    """``tests/goldens`` next to the source tree (repo layout)."""
    return Path(__file__).resolve().parents[3] / "tests" / "goldens"


# ------------------------------------------------------------------ generation
def fit_golden_model(spec: GoldenSpec) -> Tuple[AGNN, RecommendationTask, TrainHistory]:
    """Deterministically train the golden run for ``spec`` from scratch."""
    nn_init.seed(spec.seed)
    dataset = dataset_factory(VERIFY_DATASET)()
    task = make_split(dataset, spec.scenario, fraction=0.2, seed=spec.seed)
    model = AGNN(SMOKE.agnn, rng_seed=spec.seed)
    history = model.fit(task, replace(SMOKE.train, epochs=spec.epochs, seed=spec.seed))
    return model, task, history


def _evae_terms(model: AGNN, side: str) -> Optional[Dict[str, float]]:
    """Deterministic eVAE diagnostics (Eq. 6–8) over the first warm nodes."""
    module = model._cold_module(side)
    if not isinstance(module, EVAEStrategy):
        return None
    attributes = model._attributes[side]
    ids = np.arange(min(attributes.shape[0], 24), dtype=np.int64)
    encoder = model._encoder(side)
    with no_grad():
        attr_embed = encoder.attribute_embedding(ids, attributes)
        mu, log_var = module.vae.encode(attr_embed)
        sigma = ops.exp(ops.mul(log_var, 0.5))
        kl = gaussian_kl(mu, log_var)
        generated = module.vae.decode(mu)
        preference = encoder.preference_embedding(ids)
        approx = ops.mean(l2_distance(generated, preference))
    return {
        "kl": float(kl.data),
        "approximation": float(approx.data),
        "sigma_mean": float(np.mean(sigma.data)),
        "sigma_min": float(np.min(sigma.data)),
        "mu_norm": float(np.linalg.norm(mu.data)),
    }


def _preference_fingerprint(model: AGNN, side: str) -> Dict[str, Any]:
    """Mean/std plus a few raw values of the generated preference matrix."""
    matrix = model.generated_preferences(side)
    cold = model.cold_node_ids(side)
    sample_rows = matrix[cold[: min(len(cold), 4)]] if len(cold) else matrix[:2]
    return {
        "mean": float(matrix.mean()),
        "std": float(matrix.std()),
        "cold_rows_sample": [float(v) for v in sample_rows.reshape(-1)[:16]],
    }


def run_golden(spec: GoldenSpec) -> Dict[str, Any]:
    """Train the golden run and collect its frozen payload."""
    model, task, history = fit_golden_model(spec)
    evaluation = model.evaluate(task)
    predictions = model.predict(task.test_users, task.test_items)

    exact: Dict[str, Any] = {
        "num_epochs": history.num_epochs,
        "num_users": task.dataset.num_users,
        "num_items": task.dataset.num_items,
        "num_train": int(len(task.train_users)),
        "num_test": int(len(task.test_users)),
        "num_cold_users": int(len(model.cold_node_ids("user"))),
        "num_cold_items": int(len(model.cold_node_ids("item"))),
        "embedding_dim": model.config.embedding_dim,
        "loss_names": sorted(history.losses),
    }
    close: Dict[str, Any] = {
        "history": {name: [float(v) for v in curve] for name, curve in history.losses.items()},
        "eval": {"rmse": evaluation.rmse, "mae": evaluation.mae},
        "predictions_sample": [float(v) for v in predictions[:16]],
        "preference": {side: _preference_fingerprint(model, side) for side in ("user", "item")},
    }
    evae = {side: _evae_terms(model, side) for side in ("user", "item")}
    close["evae"] = {side: terms for side, terms in evae.items() if terms is not None}
    return {
        "meta": {
            "spec": spec.name,
            "scenario": spec.scenario,
            "epochs": spec.epochs,
            "seed": spec.seed,
            "dataset": VERIFY_DATASET.name,
        },
        "exact": exact,
        "close": close,
    }


# ------------------------------------------------------------------ comparison
def _walk(path: str, frozen: Any, current: Any, close: bool, rtol: float, atol: float,
          out: List[Mismatch]) -> None:
    if isinstance(frozen, dict):
        if not isinstance(current, dict):
            out.append(Mismatch(path, frozen, current, "frozen value is a mapping, current is not"))
            return
        for key in frozen:
            if key not in current:
                out.append(Mismatch(f"{path}.{key}", frozen[key], None, "key missing from current run"))
            else:
                _walk(f"{path}.{key}", frozen[key], current[key], close, rtol, atol, out)
        for key in current:
            if key not in frozen:
                out.append(Mismatch(f"{path}.{key}", None, current[key], "key not present in frozen golden"))
        return
    if isinstance(frozen, list):
        if not isinstance(current, list):
            out.append(Mismatch(path, frozen, current, "frozen value is a list, current is not"))
            return
        if len(frozen) != len(current):
            out.append(Mismatch(path, len(frozen), len(current), "length changed"))
            return
        for i, (f, c) in enumerate(zip(frozen, current)):
            _walk(f"{path}[{i}]", f, c, close, rtol, atol, out)
        return
    if close and isinstance(frozen, float) and isinstance(current, (int, float)):
        if not math.isclose(frozen, float(current), rel_tol=rtol, abs_tol=atol):
            err = abs(frozen - float(current))
            out.append(Mismatch(path, frozen, current, f"drifted by {err:.3e} (rtol {rtol:g})"))
        return
    if frozen != current:
        out.append(Mismatch(path, frozen, current, "exact-tier value changed"))


def compare_golden(frozen: Dict[str, Any], current: Dict[str, Any],
                   rtol: float = 1e-6, atol: float = 1e-9) -> List[Mismatch]:
    """Diff two golden payloads; ``exact`` bitwise, ``close`` within rtol."""
    out: List[Mismatch] = []
    _walk("meta", frozen.get("meta", {}), current.get("meta", {}), False, rtol, atol, out)
    _walk("exact", frozen.get("exact", {}), current.get("exact", {}), False, rtol, atol, out)
    _walk("close", frozen.get("close", {}), current.get("close", {}), True, rtol, atol, out)
    return out


# ------------------------------------------------------------------ file layer
def update_goldens(directory: Optional[Path] = None) -> List[Path]:
    """Regenerate every golden file (the ``--update-goldens`` path)."""
    directory = Path(directory) if directory is not None else default_goldens_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for spec in GOLDEN_SPECS:
        payload = run_golden(spec)
        target = directory / spec.filename
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.append(target)
    return written


def check_goldens(directory: Optional[Path] = None,
                  rtol: float = 1e-6, atol: float = 1e-9) -> Dict[str, List[Mismatch]]:
    """Replay every spec and diff against its frozen file.

    Returns ``{spec name: mismatches}`` — all lists empty when the goldens
    hold.  A missing frozen file is itself a mismatch (run
    ``repro verify --update-goldens`` to create it).
    """
    directory = Path(directory) if directory is not None else default_goldens_dir()
    results: Dict[str, List[Mismatch]] = {}
    for spec in GOLDEN_SPECS:
        target = directory / spec.filename
        if not target.exists():
            results[spec.name] = [
                Mismatch(spec.filename, "frozen golden file", None,
                         "missing — generate it with `repro verify --update-goldens`")
            ]
            continue
        with open(target, "r", encoding="utf-8") as handle:
            frozen = json.load(handle)
        results[spec.name] = compare_golden(frozen, run_golden(spec), rtol=rtol, atol=atol)
    return results
