"""Model and engine invariant checks (ISSUE pillar 3).

Each ``check_*`` helper returns a list of human-readable violation strings —
empty when the invariant holds — so callers can aggregate many checks into one
report.  ``verify_model`` / ``verify_engine`` raise :class:`InvariantViolation`
with the full list when anything fails.

The module keeps its top-level imports to numpy / autograd / telemetry only;
``repro.core`` and ``repro.serving`` are imported inside functions so that
``repro.train.recommender`` and ``repro.serving.engine`` can import *this*
module at call time without creating an import cycle.

Runtime hooks: with ``REPRO_VERIFY=1`` in the environment,
``Recommender.fit`` calls :func:`maybe_verify_fit` after training and
``InferenceEngine.__init__`` calls :func:`maybe_verify_engine` after deriving
its embeddings; both sweep every applicable invariant and raise on violation.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from ..autograd import no_grad, ops
from ..telemetry import increment, span

__all__ = [
    "InvariantViolation",
    "runtime_verification_enabled",
    "check_unit_interval",
    "check_symmetric",
    "check_proximity_matrix",
    "check_index_matrix",
    "check_finite_parameters",
    "check_gate_ranges",
    "check_neighbour_indices",
    "check_evae_sigma",
    "check_generated_preferences",
    "check_engine_consistency",
    "check_offline_parity",
    "check_onboarding_determinism",
    "model_invariant_report",
    "engine_invariant_report",
    "verify_model",
    "verify_engine",
    "maybe_verify_fit",
    "maybe_verify_engine",
]

_SIDES = ("user", "item")


class InvariantViolation(AssertionError):
    """One or more model/engine invariants do not hold."""

    def __init__(self, context: str, violations: List[str]) -> None:
        self.context = context
        self.violations = list(violations)
        lines = [f"{context}: {len(violations)} invariant violation(s)"]
        lines.extend(f"  - {v}" for v in violations)
        super().__init__("\n".join(lines))


def runtime_verification_enabled() -> bool:
    """True when ``REPRO_VERIFY`` is set to a truthy value in the environment."""
    return os.environ.get("REPRO_VERIFY", "").strip().lower() in ("1", "true", "yes", "on")


# ------------------------------------------------------------ array primitives
def check_unit_interval(name: str, values: np.ndarray, open_interval: bool = False) -> List[str]:
    """All values in [0, 1] (or strictly (0, 1) for sigmoid outputs)."""
    values = np.asarray(values)
    out: List[str] = []
    if values.size == 0:
        return out
    if not np.all(np.isfinite(values)):
        out.append(f"{name}: contains non-finite values")
        return out
    low, high = float(values.min()), float(values.max())
    if open_interval:
        if low <= 0.0 or high >= 1.0:
            out.append(f"{name}: values must lie strictly in (0, 1); range is [{low:.3e}, {high:.3e}]")
    elif low < 0.0 or high > 1.0:
        out.append(f"{name}: values must lie in [0, 1]; range is [{low:.3e}, {high:.3e}]")
    return out


def check_symmetric(name: str, matrix: np.ndarray, atol: float = 1e-12) -> List[str]:
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return [f"{name}: expected a square matrix, got shape {matrix.shape}"]
    err = float(np.max(np.abs(matrix - matrix.T))) if matrix.size else 0.0
    if err > atol:
        return [f"{name}: not symmetric (max |A - Aᵀ| = {err:.3e})"]
    return []


def check_proximity_matrix(name: str, matrix: np.ndarray) -> List[str]:
    """A normalised proximity matrix is symmetric with entries in [0, 1]."""
    return check_symmetric(name, matrix) + check_unit_interval(name, matrix)


def check_index_matrix(name: str, indices: np.ndarray, upper: int) -> List[str]:
    """Integer indices in ``[0, upper)`` — neighbour tables, id arrays."""
    indices = np.asarray(indices)
    out: List[str] = []
    if not np.issubdtype(indices.dtype, np.integer):
        out.append(f"{name}: expected integer dtype, got {indices.dtype}")
        return out
    if indices.size == 0:
        return out
    low, high = int(indices.min()), int(indices.max())
    if low < 0 or high >= upper:
        out.append(f"{name}: indices must lie in [0, {upper}); range is [{low}, {high}]")
    return out


def check_finite_parameters(model) -> List[str]:
    """Every named parameter (and its gradient, if any) is finite."""
    from ..autograd import SparseRowGrad

    out: List[str] = []
    for name, param in model.named_parameters():
        if not np.all(np.isfinite(param.data)):
            out.append(f"parameter {name}: contains non-finite values")
        grad = param.grad
        if isinstance(grad, SparseRowGrad):
            grad = grad.values  # untouched rows are exactly zero, hence finite
        if grad is not None and not np.all(np.isfinite(grad)):
            out.append(f"parameter {name}: gradient contains non-finite values")
    return out


# ------------------------------------------------------------- model invariants
def _sample_ids(n: int, limit: int = 32) -> np.ndarray:
    return np.arange(min(n, limit), dtype=np.int64)


def check_neighbour_indices(model) -> List[str]:
    """Eq. 9–13 gather: every sampled neighbour id addresses a real node."""
    out: List[str] = []
    for side in _SIDES:
        try:
            neighbours = model.neighbour_matrix(side)
        except RuntimeError:
            continue
        n = model._attributes[side].shape[0]
        out += check_index_matrix(f"{side} neighbour matrix", neighbours, n)
        if neighbours.ndim != 2:
            out.append(f"{side} neighbour matrix: expected (n, k), got shape {neighbours.shape}")
    return out


def check_gate_ranges(model) -> List[str]:
    """Gated-GNN aggregate/filter gates are sigmoids: strictly inside (0, 1)."""
    from ..core.gated_gnn import GatedGNN

    out: List[str] = []
    for side in _SIDES:
        aggregator = model._aggregator(side)
        if not isinstance(aggregator, GatedGNN):
            continue
        try:
            neighbours = model.neighbour_matrix(side)
        except RuntimeError:
            continue
        ids = _sample_ids(neighbours.shape[0])
        attributes = model._attributes[side]
        preferences = model.generated_preferences(side)
        targets = model.raw_node_embeddings(side, attributes, preferences, ids)
        neighbour_rows = model.raw_node_embeddings(
            side, attributes, preferences, neighbours[ids].reshape(-1)
        ).reshape(len(ids), neighbours.shape[1], -1)
        gates = aggregator.gate_values(targets, neighbour_rows)
        for gate_name, values in gates.items():
            out += check_unit_interval(f"{side} {gate_name}", values, open_interval=True)
    return out


def check_evae_sigma(model) -> List[str]:
    """The eVAE inference network must produce σ = exp(½ log σ²) > 0, finite."""
    from ..core.cold_modules import EVAEStrategy

    out: List[str] = []
    for side in _SIDES:
        module = model._cold_module(side)
        if not isinstance(module, EVAEStrategy):
            continue
        if side not in model._attributes:
            continue
        attributes = model._attributes[side]
        ids = _sample_ids(attributes.shape[0])
        with no_grad():
            attr_embed = model._encoder(side).attribute_embedding(ids, attributes)
            mu, log_var = module.vae.encode(attr_embed)
            sigma = ops.exp(ops.mul(log_var, 0.5)).data
        if not np.all(np.isfinite(mu.data)):
            out.append(f"{side} eVAE μ: contains non-finite values")
        if not np.all(np.isfinite(sigma)):
            out.append(f"{side} eVAE σ: contains non-finite values")
        elif sigma.size and float(sigma.min()) <= 0.0:
            out.append(f"{side} eVAE σ: must be strictly positive, min is {float(sigma.min()):.3e}")
    return out


def check_generated_preferences(model) -> List[str]:
    """Generated cold-start preference rows are finite and deterministic."""
    out: List[str] = []
    for side in _SIDES:
        if side not in model._attributes:
            continue
        matrix = model.generated_preferences(side)
        if not np.all(np.isfinite(matrix)):
            out.append(f"{side} preference matrix: contains non-finite values")
        cold = model.cold_node_ids(side)
        if len(cold) == 0:
            continue
        rows = model._attributes[side][cold[: min(len(cold), 16)]]
        first = model.generate_cold_preference(side, rows)
        second = model.generate_cold_preference(side, rows)
        if not np.array_equal(first, second):
            out.append(f"{side} generate_cold_preference: not deterministic (eVAE must decode μ, not sample)")
    return out


def model_invariant_report(model) -> List[str]:
    """Sweep every invariant that applies to ``model``; return violations.

    Finite parameters are checked for any :class:`~repro.nn.Module`; the
    AGNN-specific checks (gates, neighbours, eVAE, generated preferences)
    run only when the model is a prepared AGNN.
    """
    from ..core.model import AGNN

    out = check_finite_parameters(model)
    if isinstance(model, AGNN) and model._built and model._neighbours:
        index_violations = check_neighbour_indices(model)
        out += index_violations
        if index_violations:
            # Gate/preference checks gather embeddings by neighbour index;
            # running them against a known-bad matrix would just crash.
            return out
        out += check_gate_ranges(model)
        out += check_evae_sigma(model)
        out += check_generated_preferences(model)
    return out


def verify_model(model, context: str = "model") -> None:
    """Raise :class:`InvariantViolation` if any model invariant fails."""
    violations = model_invariant_report(model)
    if violations:
        raise InvariantViolation(context, violations)


# ------------------------------------------------------------ engine invariants
def check_engine_consistency(engine, pairs: int = 16) -> List[str]:
    """``score`` (cached path) and ``predict_batch`` agree bitwise, twice."""
    out: List[str] = []
    rng = np.random.default_rng(0)
    users = rng.integers(0, engine.num_users, size=pairs)
    items = rng.integers(0, engine.num_items, size=pairs)
    batched = engine.predict_batch(users, items)
    again = engine.predict_batch(users, items)
    if not np.array_equal(batched, again):
        out.append("predict_batch: not deterministic across repeated calls")
    scored = engine.score(users, items)
    if not np.array_equal(scored, batched):
        err = float(np.max(np.abs(scored - batched)))
        out.append(f"score vs predict_batch: differ (max |Δ| = {err:.3e})")
    cached = engine.score(users, items)
    if not np.array_equal(cached, scored):
        out.append("score: cache hit returns a different value than the computed score")
    low, high = engine.rating_scale
    if batched.size and (batched.min() < low or batched.max() > high):
        out.append(f"predict_batch: scores escape the rating scale [{low}, {high}]")
    return out


def check_offline_parity(engine, model, users: np.ndarray, items: np.ndarray) -> List[str]:
    """The serving engine reproduces the offline model bitwise (ISSUE pillar 3).

    Both paths gather the same trained weights over the same neighbour tables,
    so the float pipelines are identical — the comparison is exact, matching
    ``tests/serving/test_engine.py`` and the serving bench baseline.
    """
    users = np.asarray(users, dtype=np.int64)
    items = np.asarray(items, dtype=np.int64)
    offline = model.predict(users, items)
    online = engine.predict_batch(users, items)
    if not np.array_equal(offline, online):
        err = float(np.max(np.abs(offline - online))) if users.size else 0.0
        return [f"offline parity: engine.predict_batch deviates from model.predict (max |Δ| = {err:.3e})"]
    return []


def check_onboarding_determinism(engine, side: str = "user") -> List[str]:
    """Onboarding is a pure function of attributes: the generated preference
    row and spliced neighbourhood must be bitwise-stable across repeats.

    Checked without mutating the engine — the generation and splice steps are
    re-run directly instead of calling ``add_user``/``add_item`` twice.
    """
    from ..serving.onboarding import splice_neighbours

    out: List[str] = []
    attr = engine._attr[side]
    if attr.shape[0] == 0:
        return out
    row = attr[0]
    first = engine.model.generate_cold_preference(side, row[None])
    second = engine.model.generate_cold_preference(side, row[None])
    if not np.array_equal(first, second):
        out.append(f"{side} onboarding: generated preference row is not deterministic")
    k = engine._neigh[side].shape[1]
    splice_a, _, _ = splice_neighbours(
        row, attr, pool_percent=engine.model.config.pool_percent, k=k,
        min_pool=engine.model.config.num_neighbors,
    )
    splice_b, _, _ = splice_neighbours(
        row, attr, pool_percent=engine.model.config.pool_percent, k=k,
        min_pool=engine.model.config.num_neighbors,
    )
    if not np.array_equal(splice_a, splice_b):
        out.append(f"{side} onboarding: spliced neighbourhood is not deterministic")
    out += check_index_matrix(f"{side} spliced neighbourhood", np.asarray(splice_a), attr.shape[0])
    return out


def engine_invariant_report(engine) -> List[str]:
    """Sweep the serving-side invariants over a live engine."""
    out: List[str] = []
    for side in _SIDES:
        n = engine.count(side)
        out += check_index_matrix(f"{side} engine neighbour matrix", engine._neigh[side], n)
        for name, matrix in (("raw", engine._raw[side]), ("refined", engine._refined[side]),
                             ("preference", engine._pref[side])):
            if not np.all(np.isfinite(matrix)):
                out.append(f"{side} {name} embeddings: contain non-finite values")
    out += check_engine_consistency(engine)
    for side in _SIDES:
        out += check_onboarding_determinism(engine, side)
    out += check_finite_parameters(engine.model)
    return out


def verify_engine(engine, context: str = "engine") -> None:
    """Raise :class:`InvariantViolation` if any engine invariant fails."""
    violations = engine_invariant_report(engine)
    if violations:
        raise InvariantViolation(context, violations)


# ----------------------------------------------------------------- runtime hooks
def maybe_verify_fit(model) -> None:
    """Post-fit sweep, active only under ``REPRO_VERIFY=1`` (called by
    ``Recommender.fit``); raises on violation so a bad run fails loudly."""
    if not runtime_verification_enabled():
        return
    with span("verify.fit"):
        increment("verify.fit_sweeps")
        verify_model(model, context=f"REPRO_VERIFY fit sweep ({model.name})")


def maybe_verify_engine(engine) -> None:
    """Post-construction sweep for ``InferenceEngine`` under ``REPRO_VERIFY=1``."""
    if not runtime_verification_enabled():
        return
    with span("verify.engine"):
        increment("verify.engine_sweeps")
        verify_engine(engine, context="REPRO_VERIFY engine sweep")
