"""Op specifications for the differential autograd fuzzer.

Every primitive in ``repro.autograd.ops`` gets a spec with two independent
implementations — the Tensor op itself and a pure-NumPy forward reference
written from the maths, not from the op's source — plus a *builder* that
knows how to splice the op into a randomly growing graph (what shapes it
accepts, which static parameters to sample, and how to guard domains such as
``log``'s positivity).

A fuzz *program* is a flat list of :class:`Node` entries; node ``i`` may only
reference nodes ``< i``, the last node is the output.  Leaves carry concrete
arrays; constant leaves (``requires_grad=False``) implement domain guards and
exercise the no-grad broadcast paths.

The Tensor dispatch table looks the op up on the ``ops`` module *at call
time*, so a test can monkeypatch a deliberately broken backward into
``repro.autograd.ops`` and the fuzzer will faithfully execute — and catch —
the mutant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, no_grad
from ..autograd import ops as _ops

__all__ = ["Node", "OP_NAMES", "BUILDERS", "build_program", "run_numpy", "run_tensor", "program_trace"]


@dataclass
class Node:
    """One step of a fuzz program: a leaf array or an op over earlier nodes."""

    op: str  # "leaf" or an ops.* name
    args: Tuple[int, ...] = ()
    params: dict = field(default_factory=dict)
    value: Optional[np.ndarray] = None  # leaves only
    requires_grad: bool = True  # leaves only


# --------------------------------------------------------------------- tensor
# Tensor dispatch: ``_ops.<name>`` is resolved when the node executes, so
# monkeypatched (mutated) ops are picked up — the mutation tests rely on this.
_TENSOR_FNS: Dict[str, Callable[[List[Tensor], dict], Tensor]] = {
    "add": lambda t, p: _ops.add(t[0], t[1]),
    "sub": lambda t, p: _ops.sub(t[0], t[1]),
    "mul": lambda t, p: _ops.mul(t[0], t[1]),
    "div": lambda t, p: _ops.div(t[0], t[1]),
    "neg": lambda t, p: _ops.neg(t[0]),
    "power": lambda t, p: _ops.power(t[0], p["exponent"]),
    "matmul": lambda t, p: _ops.matmul(t[0], t[1]),
    "linear": lambda t, p: _ops.linear(t[0], t[1], t[2]),
    "exp": lambda t, p: _ops.exp(t[0]),
    "log": lambda t, p: _ops.log(t[0]),
    "sqrt": lambda t, p: _ops.sqrt(t[0]),
    "square": lambda t, p: _ops.square(t[0]),
    "absolute": lambda t, p: _ops.absolute(t[0]),
    "sigmoid": lambda t, p: _ops.sigmoid(t[0]),
    "tanh": lambda t, p: _ops.tanh(t[0]),
    "relu": lambda t, p: _ops.relu(t[0]),
    "leaky_relu": lambda t, p: _ops.leaky_relu(t[0], p["slope"]),
    "softplus": lambda t, p: _ops.softplus(t[0]),
    "clip": lambda t, p: _ops.clip(t[0], p["low"], p["high"]),
    "sum": lambda t, p: _ops.sum(t[0], axis=p["axis"], keepdims=p["keepdims"]),
    "mean": lambda t, p: _ops.mean(t[0], axis=p["axis"], keepdims=p["keepdims"]),
    "reshape": lambda t, p: _ops.reshape(t[0], p["shape"]),
    "transpose": lambda t, p: _ops.transpose(t[0], p["axes"]),
    "getitem": lambda t, p: _ops.getitem(t[0], p["index"]),
    "concatenate": lambda t, p: _ops.concatenate(t, axis=p["axis"]),
    "stack": lambda t, p: _ops.stack(t, axis=p["axis"]),
    "embedding": lambda t, p: _ops.embedding(t[0], p["indices"]),
    "softmax": lambda t, p: _ops.softmax(t[0], axis=p["axis"]),
    "log_softmax": lambda t, p: _ops.log_softmax(t[0], axis=p["axis"]),
    "maximum": lambda t, p: _ops.maximum(t[0], t[1]),
    "where": lambda t, p: _ops.where(p["condition"], t[0], t[1]),
    "norm": lambda t, p: _ops.norm(t[0], axis=p["axis"], keepdims=p["keepdims"]),
    "broadcast_to": lambda t, p: _ops.broadcast_to(t[0], p["shape"]),
}


# ---------------------------------------------------------------- numpy ref
def _np_softmax(x: np.ndarray, axis: int) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


_NUMPY_FNS: Dict[str, Callable[[List[np.ndarray], dict], np.ndarray]] = {
    "add": lambda a, p: a[0] + a[1],
    "sub": lambda a, p: a[0] - a[1],
    "mul": lambda a, p: a[0] * a[1],
    "div": lambda a, p: a[0] / a[1],
    "neg": lambda a, p: -a[0],
    "power": lambda a, p: a[0] ** p["exponent"],
    "matmul": lambda a, p: a[0] @ a[1],
    "linear": lambda a, p: a[0] @ a[1] + a[2],
    "exp": lambda a, p: np.exp(a[0]),
    "log": lambda a, p: np.log(a[0]),
    "sqrt": lambda a, p: np.sqrt(a[0]),
    "square": lambda a, p: a[0] * a[0],
    "absolute": lambda a, p: np.abs(a[0]),
    "sigmoid": lambda a, p: 1.0 / (1.0 + np.exp(-a[0])),
    "tanh": lambda a, p: np.tanh(a[0]),
    "relu": lambda a, p: np.maximum(a[0], 0.0),
    "leaky_relu": lambda a, p: np.where(a[0] > 0, a[0], p["slope"] * a[0]),
    "softplus": lambda a, p: np.log1p(np.exp(-np.abs(a[0]))) + np.maximum(a[0], 0.0),
    "clip": lambda a, p: np.clip(a[0], p["low"], p["high"]),
    "sum": lambda a, p: a[0].sum(axis=p["axis"], keepdims=p["keepdims"]),
    "mean": lambda a, p: a[0].mean(axis=p["axis"], keepdims=p["keepdims"]),
    "reshape": lambda a, p: a[0].reshape(p["shape"]),
    "transpose": lambda a, p: a[0].transpose(p["axes"]),
    "getitem": lambda a, p: a[0][p["index"]],
    "concatenate": lambda a, p: np.concatenate(a, axis=p["axis"]),
    "stack": lambda a, p: np.stack(a, axis=p["axis"]),
    "embedding": lambda a, p: a[0][np.asarray(p["indices"], dtype=np.int64)],
    "softmax": lambda a, p: _np_softmax(a[0], p["axis"]),
    "log_softmax": lambda a, p: np.log(_np_softmax(a[0], p["axis"])),
    "maximum": lambda a, p: np.maximum(a[0], a[1]),
    "where": lambda a, p: np.where(p["condition"], a[0], a[1]),
    "norm": lambda a, p: np.sqrt((a[0] * a[0]).sum(axis=p["axis"], keepdims=p["keepdims"]) + 1e-12),
    "broadcast_to": lambda a, p: np.broadcast_to(a[0], p["shape"]).copy(),
}

OP_NAMES: Tuple[str, ...] = tuple(sorted(_TENSOR_FNS))
assert set(_TENSOR_FNS) == set(_NUMPY_FNS)


# ------------------------------------------------------------------ execution
def run_numpy(program: List[Node], leaf_overrides: Optional[Dict[int, np.ndarray]] = None) -> List[np.ndarray]:
    """Evaluate the whole program with the NumPy reference; returns all values."""
    overrides = leaf_overrides or {}
    values: List[np.ndarray] = []
    for i, node in enumerate(program):
        if node.op == "leaf":
            values.append(np.asarray(overrides.get(i, node.value), dtype=np.float64))
        else:
            values.append(np.asarray(_NUMPY_FNS[node.op]([values[j] for j in node.args], node.params)))
    return values


def run_tensor(
    program: List[Node],
    leaf_overrides: Optional[Dict[int, np.ndarray]] = None,
    with_grad: bool = True,
) -> Tuple[Tensor, Dict[int, Tensor]]:
    """Evaluate through the autograd engine; returns (output, grad leaves)."""
    overrides = leaf_overrides or {}

    def _run() -> Tuple[Tensor, Dict[int, Tensor]]:
        tensors: List[Tensor] = []
        leaves: Dict[int, Tensor] = {}
        for i, node in enumerate(program):
            if node.op == "leaf":
                tensor = Tensor(overrides.get(i, node.value), requires_grad=node.requires_grad)
                if node.requires_grad:
                    leaves[i] = tensor
                tensors.append(tensor)
            else:
                tensors.append(_TENSOR_FNS[node.op]([tensors[j] for j in node.args], node.params))
        return tensors[-1], leaves

    if with_grad:
        return _run()
    with no_grad():
        return _run()


def program_trace(program: List[Node]) -> List[str]:
    """Human-readable one-liner per node, for failure reports."""
    trace = []
    for i, node in enumerate(program):
        if node.op == "leaf":
            kind = "leaf" if node.requires_grad else "const"
            trace.append(f"%{i} = {kind}{tuple(node.value.shape)}")
        else:
            args = ", ".join(f"%{j}" for j in node.args)
            extras = {k: v for k, v in node.params.items() if k not in ("condition", "index", "indices")}
            suffix = f" {extras}" if extras else ""
            trace.append(f"%{i} = {node.op}({args}){suffix}")
    return trace


# ------------------------------------------------------------------- builders
# A builder receives (rng, program, cur, shape) where ``cur`` is the index of
# the node being extended, and appends nodes, returning (new_cur, new_shape).
# Returning None means "not applicable here, pick another op".
Builder = Callable[[np.random.Generator, List[Node], int, Tuple[int, ...]], Optional[Tuple[int, Tuple[int, ...]]]]


def _new_leaf(rng: np.random.Generator, program: List[Node], shape: Tuple[int, ...], requires_grad: bool = True) -> int:
    value = rng.uniform(-2.0, 2.0, size=shape)
    program.append(Node("leaf", value=np.asarray(value, dtype=np.float64), requires_grad=requires_grad))
    return len(program) - 1


def _broadcast_partner(rng: np.random.Generator, shape: Tuple[int, ...]) -> Tuple[int, ...]:
    """A random shape that broadcasts against ``shape``: same, size-1 axes,
    or a trailing suffix (possibly scalar)."""
    mode = rng.integers(0, 3)
    if mode == 0 or not shape:
        return shape
    if mode == 1:
        return tuple(1 if rng.random() < 0.5 else dim for dim in shape)
    start = int(rng.integers(0, len(shape) + 1))
    return shape[start:]


def _append(program: List[Node], op: str, args: Tuple[int, ...], params: Optional[dict] = None) -> int:
    program.append(Node(op, args=args, params=params or {}))
    return len(program) - 1


def _unary(op: str, make_params: Optional[Callable[[np.random.Generator, Tuple[int, ...]], dict]] = None) -> Builder:
    def build(rng, program, cur, shape):
        params = make_params(rng, shape) if make_params else {}
        return _append(program, op, (cur,), params), shape

    return build


def _binary_broadcast(op: str) -> Builder:
    def build(rng, program, cur, shape):
        partner = _new_leaf(rng, program, _broadcast_partner(rng, shape))
        args = (cur, partner) if rng.random() < 0.5 else (partner, cur)
        out_shape = np.broadcast_shapes(shape, program[partner].value.shape)
        return _append(program, op, args), tuple(out_shape)

    return build


def _positive_guard(rng: np.random.Generator, program: List[Node], cur: int) -> int:
    """``square(x) + c`` with ``c > 0``: a smooth, strictly positive rewrite."""
    squared = _append(program, "square", (cur,))
    const = _new_leaf(rng, program, (), requires_grad=False)
    program[const].value = np.asarray(float(rng.uniform(0.3, 1.0)))
    return _append(program, "add", (squared, const))


def _build_log(rng, program, cur, shape):
    return _append(program, "log", (_positive_guard(rng, program, cur),)), shape


def _build_sqrt(rng, program, cur, shape):
    return _append(program, "sqrt", (_positive_guard(rng, program, cur),)), shape


def _build_power(rng, program, cur, shape):
    exponent = float(rng.choice([2.0, 3.0, 1.5]))
    if exponent != int(exponent):  # fractional powers need a positive base
        cur = _positive_guard(rng, program, cur)
    return _append(program, "power", (cur,), {"exponent": exponent}), shape


def _build_div(rng, program, cur, shape):
    denom_leaf = _new_leaf(rng, program, _broadcast_partner(rng, shape))
    denom = _positive_guard(rng, program, denom_leaf)
    out_shape = np.broadcast_shapes(shape, program[denom_leaf].value.shape)
    return _append(program, "div", (cur, denom)), tuple(out_shape)


def _build_matmul(rng, program, cur, shape):
    if not 1 <= len(shape) <= 3 or 0 in shape:
        return None
    inner = shape[-1]
    if len(shape) == 1:
        other = _new_leaf(rng, program, (inner, int(rng.integers(1, 4))))
        out_shape: Tuple[int, ...] = (program[other].value.shape[1],)
    else:
        other = _new_leaf(rng, program, (inner, int(rng.integers(1, 4))))
        out_shape = shape[:-1] + (program[other].value.shape[1],)
    return _append(program, "matmul", (cur, other)), out_shape


def _build_linear(rng, program, cur, shape):
    if not 1 <= len(shape) <= 3 or 0 in shape:
        return None
    inner = shape[-1]
    out_features = int(rng.integers(1, 4))
    weight = _new_leaf(rng, program, (inner, out_features))
    bias = _new_leaf(rng, program, (out_features,))
    out_shape = shape[:-1] + (out_features,)
    return _append(program, "linear", (cur, weight, bias)), out_shape


def _build_clip(rng, program, cur, shape):
    low = float(rng.uniform(-1.5, -0.5))
    high = float(rng.uniform(0.5, 1.5))
    return _append(program, "clip", (cur,), {"low": low, "high": high}), shape


def _reduce_params(rng: np.random.Generator, shape: Tuple[int, ...]) -> dict:
    if shape and rng.random() < 0.7:
        axis: Optional[int] = int(rng.integers(0, len(shape)))
    else:
        axis = None
    return {"axis": axis, "keepdims": bool(rng.random() < 0.3)}


def _reduced_shape(shape: Tuple[int, ...], params: dict) -> Tuple[int, ...]:
    return np.zeros(shape).sum(axis=params["axis"], keepdims=params["keepdims"]).shape


def _build_reduce(op: str) -> Builder:
    def build(rng, program, cur, shape):
        params = _reduce_params(rng, shape)
        return _append(program, op, (cur,), params), _reduced_shape(shape, params)

    return build


def _build_norm(rng, program, cur, shape):
    params = _reduce_params(rng, shape)
    return _append(program, "norm", (cur,), params), _reduced_shape(shape, params)


def _build_reshape(rng, program, cur, shape):
    size = int(np.prod(shape, dtype=np.int64)) if shape else 1
    candidates: List[Tuple[int, ...]] = [(size,)]
    if len(shape) >= 2:
        candidates.append((shape[0], size // shape[0]) if shape[0] and size % shape[0] == 0 else (size,))
        candidates.append(tuple(shape[::-1]))
    if size > 0:
        candidates.append((1, size))
    target = candidates[int(rng.integers(0, len(candidates)))]
    if int(np.prod(target, dtype=np.int64)) != size:
        return None
    return _append(program, "reshape", (cur,), {"shape": tuple(int(d) for d in target)}), tuple(target)


def _build_transpose(rng, program, cur, shape):
    if len(shape) < 2:
        return None
    if rng.random() < 0.5:
        axes: Optional[Tuple[int, ...]] = None
        out_shape = tuple(reversed(shape))
    else:
        axes = tuple(int(a) for a in rng.permutation(len(shape)))
        out_shape = tuple(shape[a] for a in axes)
    return _append(program, "transpose", (cur,), {"axes": axes}), out_shape


def _build_getitem(rng, program, cur, shape):
    if not shape or shape[0] < 1:
        return None
    if rng.random() < 0.5 and shape[0] >= 2:
        index: object = slice(0, int(rng.integers(1, shape[0])))
    else:
        # Fancy indexing with duplicates exercises the scatter-add backward.
        index = rng.integers(0, shape[0], size=int(rng.integers(1, 4)))
    out_shape = np.zeros(shape)[index].shape
    return _append(program, "getitem", (cur,), {"index": index}), tuple(out_shape)


def _build_concatenate(rng, program, cur, shape):
    if not shape:
        return None
    axis = int(rng.integers(0, len(shape)))
    extras = []
    total = shape[axis]
    for _ in range(int(rng.integers(1, 3))):
        piece = list(shape)
        piece[axis] = int(rng.integers(1, 4))
        total += piece[axis]
        extras.append(_new_leaf(rng, program, tuple(piece)))
    out_shape = list(shape)
    out_shape[axis] = total
    return _append(program, "concatenate", (cur, *extras), {"axis": axis}), tuple(out_shape)


def _build_stack(rng, program, cur, shape):
    if len(shape) >= 3:
        return None
    axis = int(rng.integers(0, len(shape) + 1))
    other = _new_leaf(rng, program, shape)
    out_shape = np.stack([np.zeros(shape), np.zeros(shape)], axis=axis).shape
    return _append(program, "stack", (cur, other), {"axis": axis}), tuple(out_shape)


def _build_embedding(rng, program, cur, shape):
    if len(shape) != 2 or shape[0] < 1:
        return None
    idx_shape = (int(rng.integers(1, 4)),) if rng.random() < 0.7 else (2, 2)
    indices = rng.integers(0, shape[0], size=idx_shape)
    return (
        _append(program, "embedding", (cur,), {"indices": indices}),
        tuple(indices.shape) + (shape[1],),
    )


def _axis_params(rng: np.random.Generator, shape: Tuple[int, ...]) -> Optional[dict]:
    if not shape:
        return None
    return {"axis": int(rng.integers(0, len(shape)))}


def _build_softmax(op: str) -> Builder:
    def build(rng, program, cur, shape):
        params = _axis_params(rng, shape)
        if params is None:
            return None
        return _append(program, op, (cur,), params), shape

    return build


def _build_where(rng, program, cur, shape):
    other = _new_leaf(rng, program, shape)
    condition = rng.random(size=shape) < 0.5 if shape else bool(rng.random() < 0.5)
    return _append(program, "where", (cur, other), {"condition": np.asarray(condition)}), shape


def _build_broadcast_to(rng, program, cur, shape):
    if len(shape) >= 3:
        return None
    target = (int(rng.integers(2, 4)),) + shape
    return _append(program, "broadcast_to", (cur,), {"shape": target}), target


def _leaky_params(rng: np.random.Generator, shape: Tuple[int, ...]) -> dict:
    return {"slope": float(rng.choice([0.01, 0.2]))}


BUILDERS: Dict[str, Builder] = {
    "add": _binary_broadcast("add"),
    "sub": _binary_broadcast("sub"),
    "mul": _binary_broadcast("mul"),
    "div": _build_div,
    "neg": _unary("neg"),
    "power": _build_power,
    "matmul": _build_matmul,
    "linear": _build_linear,
    "exp": _unary("exp"),
    "log": _build_log,
    "sqrt": _build_sqrt,
    "square": _unary("square"),
    "absolute": _unary("absolute"),
    "sigmoid": _unary("sigmoid"),
    "tanh": _unary("tanh"),
    "relu": _unary("relu"),
    "leaky_relu": _unary("leaky_relu", _leaky_params),
    "softplus": _unary("softplus"),
    "clip": _build_clip,
    "sum": _build_reduce("sum"),
    "mean": _build_reduce("mean"),
    "reshape": _build_reshape,
    "transpose": _build_transpose,
    "getitem": _build_getitem,
    "concatenate": _build_concatenate,
    "stack": _build_stack,
    "embedding": _build_embedding,
    "softmax": _build_softmax("softmax"),
    "log_softmax": _build_softmax("log_softmax"),
    "maximum": _binary_broadcast("maximum"),
    "where": _build_where,
    "norm": _build_norm,
    "broadcast_to": _build_broadcast_to,
}
assert set(BUILDERS) == set(_TENSOR_FNS)

_LEAF_SHAPES: Tuple[Tuple[int, ...], ...] = ((3,), (4,), (2, 3), (3, 2), (4, 2), (2, 3, 2), (1, 4))


def build_program(
    rng: np.random.Generator,
    max_ops: int = 6,
    include: Optional[set] = None,
) -> List[Node]:
    """Sample one random op graph ending in a scalar.

    Programs whose NumPy forward produces non-finite or very large
    intermediates (e.g. stacked ``exp``) are rejected and resampled, so every
    returned program is well-conditioned for finite differences.
    """
    names = sorted(include) if include else list(OP_NAMES)
    for _ in range(25):
        program: List[Node] = []
        shape = _LEAF_SHAPES[int(rng.integers(0, len(_LEAF_SHAPES)))]
        cur = _new_leaf(rng, program, shape)
        n_ops = int(rng.integers(2, max_ops + 1))
        for _ in range(n_ops):
            name = names[int(rng.integers(0, len(names)))]
            result = BUILDERS[name](rng, program, cur, shape)
            if result is None:
                continue
            cur, shape = result
        if shape != ():
            # The scalarising reducer is always permitted, even under a
            # restricted ``include`` set — backward needs a scalar output.
            reducer = "mean" if rng.random() < 0.5 else "sum"
            cur = _append(program, reducer, (cur,), {"axis": None, "keepdims": False})
            shape = ()
        values = run_numpy(program)
        if all(np.all(np.isfinite(v)) and np.max(np.abs(v), initial=0.0) < 1e4 for v in values):
            return program
    # Pathologically unlucky seed: fall back to a trivially stable program.
    program = []
    cur = _new_leaf(rng, program, (3,))
    _append(program, "sum", (cur,), {"axis": None, "keepdims": False})
    return program
