"""One-shot verification gate: fuzz + goldens + invariant sweep.

``run_verify`` is the engine behind ``repro verify`` — it chains the three
pillars of :mod:`repro.verify` into a single pass/fail report suitable as a
pre-merge gate:

1. bounded differential autograd fuzzing (default 200 graphs);
2. golden baseline comparison (or regeneration with ``update_goldens=True``);
3. an invariant sweep over a freshly fitted golden model, a bundle round
   trip, the serving engine it loads into, and offline↔online parity.

Each stage contributes a section to the returned report dict; ``ok`` is the
conjunction.  Stages can be skipped individually (``skip={"fuzz"}``) so the
CLI can, e.g., regenerate goldens without paying for a fuzz campaign.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

import numpy as np

from .fuzz import run_fuzz
from .goldens import GOLDEN_SPECS, check_goldens, fit_golden_model, update_goldens
from .invariants import engine_invariant_report, check_offline_parity, model_invariant_report

__all__ = ["STAGES", "run_verify"]

STAGES = ("fuzz", "goldens", "invariants")


def _fuzz_stage(iterations: int, seed: int, rtol: float) -> Dict[str, Any]:
    report = run_fuzz(iterations=iterations, seed=seed, rtol=rtol)
    return {"ok": report.ok, "summary": report.summary(), **report.to_dict()}


def _goldens_stage(directory: Optional[Path], update: bool) -> Dict[str, Any]:
    if update:
        written = update_goldens(directory)
        return {
            "ok": True,
            "updated": [str(p) for p in written],
            "summary": f"goldens: regenerated {len(written)} file(s)",
        }
    results = check_goldens(directory)
    mismatches = {name: [str(m) for m in found] for name, found in results.items() if found}
    total = sum(len(found) for found in mismatches.values())
    status = "OK" if not total else f"{total} MISMATCH(ES)"
    lines = [f"goldens: {len(results)} spec(s) replayed — {status}"]
    for name, found in mismatches.items():
        lines.append(f"  {name}:")
        lines.extend(f"    {m}" for m in found)
    return {"ok": not total, "mismatches": mismatches, "summary": "\n".join(lines)}


def _invariants_stage(parity_pairs: int = 64) -> Dict[str, Any]:
    from ..serving.bundle import export_bundle, load_bundle
    from ..serving.engine import InferenceEngine

    spec = GOLDEN_SPECS[0]
    model, task, _ = fit_golden_model(spec)
    violations = [f"model: {v}" for v in model_invariant_report(model)]

    with tempfile.TemporaryDirectory() as tmp:
        bundle = load_bundle(export_bundle(model, task, Path(tmp) / "bundle", note="verify-sweep"))
        engine = InferenceEngine(bundle)
        violations += [f"engine: {v}" for v in engine_invariant_report(engine)]
        count = min(parity_pairs, len(task.test_users))
        users = np.asarray(task.test_users[:count])
        items = np.asarray(task.test_items[:count])
        violations += [f"parity: {v}" for v in check_offline_parity(engine, model, users, items)]

    status = "OK" if not violations else f"{len(violations)} VIOLATION(S)"
    lines = [f"invariants: model + bundle round trip + engine + parity ({count} pairs) — {status}"]
    lines.extend(f"  {v}" for v in violations)
    return {"ok": not violations, "violations": violations, "summary": "\n".join(lines)}


def run_verify(
    fuzz_iterations: int = 200,
    seed: int = 0,
    rtol: float = 1e-4,
    goldens_dir: Optional[Path] = None,
    update_goldens_flag: bool = False,
    skip: Optional[Iterable[str]] = None,
) -> Dict[str, Any]:
    """Run the verification gate; returns a report dict with an ``ok`` flag."""
    skipped = set(skip or ())
    unknown = skipped - set(STAGES)
    if unknown:
        raise ValueError(f"unknown verify stage(s) {sorted(unknown)}; choose from {STAGES}")

    report: Dict[str, Any] = {"stages": {}, "skipped": sorted(skipped)}
    if "fuzz" not in skipped:
        report["stages"]["fuzz"] = _fuzz_stage(fuzz_iterations, seed, rtol)
    if "goldens" not in skipped:
        report["stages"]["goldens"] = _goldens_stage(goldens_dir, update_goldens_flag)
    if "invariants" not in skipped:
        report["stages"]["invariants"] = _invariants_stage()
    report["ok"] = all(stage["ok"] for stage in report["stages"].values())
    return report
