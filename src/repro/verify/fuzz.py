"""Differential autograd fuzzing: random op graphs vs. references.

For each sampled program (see :mod:`repro.verify.opspecs`) three properties
are checked:

1. **forward differential** — the Tensor forward must match a pure-NumPy
   reference implementation of the same graph to near machine precision;
2. **backward vs. finite differences** — every gradient leaf's analytic
   gradient must match a central finite difference of the (Tensor) forward;
3. **no crashes** — any exception raised while executing or differentiating
   the graph is itself a failure.

Finite differences are unreliable within ``eps`` of a kink (``relu(0)``,
``maximum`` ties, ``clip`` edges), so a backward mismatch is *confirmed* by
re-running the same program twice with jittered leaf values: a genuine
backward bug persists, a kink coincidence evaporates.  Confirmed failures are
shrunk by greedily deleting graph nodes while the check still fails, and the
report carries ``(seed, iteration)`` so ``run_single(seed, iteration)``
reproduces any failure exactly.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .opspecs import Node, build_program, program_trace, run_numpy, run_tensor

__all__ = ["FuzzFailure", "FuzzReport", "check_program", "run_fuzz", "run_single", "shrink_program"]

_FORWARD_RTOL = 1e-9
_FORWARD_ATOL = 1e-10


@dataclass
class FuzzFailure:
    """One confirmed property violation, with everything needed to replay it."""

    kind: str  # "forward" | "backward" | "exception"
    seed: int
    iteration: int
    message: str
    max_abs_err: float = 0.0
    trace: List[str] = field(default_factory=list)
    shrunk_trace: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        lines = [
            f"[{self.kind}] iteration {self.iteration} (reproduce: run_single(seed={self.seed}, "
            f"iteration={self.iteration}))",
            f"  {self.message}",
        ]
        if self.shrunk_trace:
            lines.append("  shrunk program:")
            lines.extend(f"    {step}" for step in self.shrunk_trace)
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of a fuzzing campaign."""

    iterations: int
    seed: int
    rtol: float
    atol: float
    op_counts: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def ops_covered(self) -> int:
        return len(self.op_counts)

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        lines = [
            f"fuzz: {self.iterations} graphs, {sum(self.op_counts.values())} op applications, "
            f"{self.ops_covered} distinct ops, rtol={self.rtol:g} — {status}"
        ]
        lines.extend(str(failure) for failure in self.failures)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "seed": self.seed,
            "rtol": self.rtol,
            "atol": self.atol,
            "ops_covered": self.ops_covered,
            "op_applications": int(sum(self.op_counts.values())),
            "ok": self.ok,
            "failures": [
                {
                    "kind": f.kind,
                    "iteration": f.iteration,
                    "message": f.message,
                    "max_abs_err": f.max_abs_err,
                    "shrunk_trace": f.shrunk_trace,
                }
                for f in self.failures
            ],
        }


# ------------------------------------------------------------------- checking
def _fd_gradient(program: List[Node], leaf_idx: int, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of the scalar output w.r.t. one leaf."""
    base = program[leaf_idx].value
    grad = np.zeros_like(base)
    flat_base = base.reshape(-1)
    flat_grad = grad.reshape(-1)
    for i in range(flat_base.size):
        bumped = flat_base.copy()
        bumped[i] = flat_base[i] + eps
        plus, _ = run_tensor(program, {leaf_idx: bumped.reshape(base.shape)}, with_grad=False)
        bumped[i] = flat_base[i] - eps
        minus, _ = run_tensor(program, {leaf_idx: bumped.reshape(base.shape)}, with_grad=False)
        flat_grad[i] = (float(plus.data) - float(minus.data)) / (2.0 * eps)
    return grad


def check_program(program: List[Node], rtol: float = 1e-4, atol: float = 1e-5) -> Optional[Tuple[str, str, float]]:
    """Run the differential + finite-difference check on one program.

    Returns ``None`` on success or ``(kind, message, max_abs_err)``.
    """
    reference = run_numpy(program)[-1]
    out, leaves = run_tensor(program)
    if not np.allclose(out.data, reference, rtol=_FORWARD_RTOL, atol=_FORWARD_ATOL):
        err = float(np.max(np.abs(out.data - reference)))
        return ("forward", f"tensor forward deviates from numpy reference by {err:.3e}", err)
    if not out.requires_grad:
        return None
    out.backward()
    for leaf_idx, tensor in leaves.items():
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = _fd_gradient(program, leaf_idx)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            err = float(np.max(np.abs(analytic - numeric)))
            ops_used = sorted({n.op for n in program if n.op != "leaf"})
            return (
                "backward",
                f"gradient of leaf %{leaf_idx} deviates from finite differences by "
                f"{err:.3e} (ops: {', '.join(ops_used)})",
                err,
            )
    return None


def _jittered(program: List[Node], rng: np.random.Generator) -> List[Node]:
    """Copy of the program with gradient-leaf values nudged off any kink."""
    clone = copy.deepcopy(program)
    for node in clone:
        if node.op == "leaf" and node.requires_grad:
            node.value = node.value + rng.uniform(0.005, 0.02, size=node.value.shape)
    return clone


def _confirm_failure(program: List[Node], rng: np.random.Generator, rtol: float, atol: float) -> bool:
    """A backward mismatch is real only if it survives input jitter.

    Finite differences lie within ``eps`` of relu/abs/clip/maximum kinks; a
    genuine backward bug fails for (almost) all inputs.  Two jittered replays
    must reproduce the failure at least once for it to count.
    """
    hits = 0
    for _ in range(2):
        try:
            if check_program(_jittered(program, rng), rtol=rtol, atol=atol) is not None:
                hits += 1
        except Exception:
            hits += 1
    return hits >= 1


# ------------------------------------------------------------------ shrinking
def _program_valid(program: List[Node]) -> bool:
    try:
        values = run_numpy(program)
    except Exception:
        return False
    if values[-1].shape != ():
        return False
    has_grad_leaf = any(n.op == "leaf" and n.requires_grad for n in program)
    return has_grad_leaf and all(np.all(np.isfinite(v)) for v in values)


def _drop_node(program: List[Node], index: int) -> Optional[List[Node]]:
    """Remove op node ``index``, rewiring its consumers to its first input."""
    node = program[index]
    if node.op == "leaf" or not node.args:
        return None
    replacement = node.args[0]
    clone: List[Node] = []
    remap: Dict[int, int] = {}
    for i, other in enumerate(program):
        if i == index:
            remap[i] = remap[replacement]
            continue
        copied = copy.deepcopy(other)
        copied.args = tuple(remap[a] for a in copied.args)
        remap[i] = len(clone)
        clone.append(copied)
    # Garbage-collect leaves/ops nothing references any more.
    used = {len(clone) - 1}
    for i in range(len(clone) - 1, -1, -1):
        if i in used:
            used.update(clone[i].args)
    keep = sorted(used)
    final_map = {old: new for new, old in enumerate(keep)}
    pruned = []
    for old in keep:
        copied = clone[old]
        copied.args = tuple(final_map[a] for a in copied.args)
        pruned.append(copied)
    return pruned


def shrink_program(program: List[Node], rtol: float, atol: float) -> List[Node]:
    """Greedy delta-debugging: drop nodes while the check still fails."""

    def still_fails(candidate: List[Node]) -> bool:
        if not _program_valid(candidate):
            return False
        try:
            return check_program(candidate, rtol=rtol, atol=atol) is not None
        except Exception:
            return True

    current = program
    progress = True
    while progress:
        progress = False
        for index in range(len(current) - 1, -1, -1):
            candidate = _drop_node(current, index)
            if candidate is not None and len(candidate) < len(current) and still_fails(candidate):
                current = candidate
                progress = True
                break
    return current


# -------------------------------------------------------------------- driving
def _iteration_rng(seed: int, iteration: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(iteration,)))


def run_single(
    seed: int,
    iteration: int,
    max_ops: int = 6,
    rtol: float = 1e-4,
    atol: float = 1e-5,
    include: Optional[set] = None,
) -> Tuple[List[Node], Optional[Tuple[str, str, float]]]:
    """Re-run exactly one fuzz iteration; returns (program, check result)."""
    rng = _iteration_rng(seed, iteration)
    program = build_program(rng, max_ops=max_ops, include=include)
    try:
        return program, check_program(program, rtol=rtol, atol=atol)
    except Exception as exc:  # noqa: BLE001 — crashes are findings, not errors
        return program, ("exception", f"{type(exc).__name__}: {exc}", float("nan"))


def run_fuzz(
    iterations: int = 200,
    seed: int = 0,
    max_ops: int = 6,
    rtol: float = 1e-4,
    atol: float = 1e-5,
    include: Optional[set] = None,
    max_failures: int = 10,
) -> FuzzReport:
    """Fuzz ``iterations`` random graphs; stop early after ``max_failures``.

    Every iteration derives its own RNG from ``(seed, iteration)``, so any
    failure can be replayed in isolation with :func:`run_single`.
    """
    report = FuzzReport(iterations=iterations, seed=seed, rtol=rtol, atol=atol)
    for iteration in range(iterations):
        rng = _iteration_rng(seed, iteration)
        program = build_program(rng, max_ops=max_ops, include=include)
        for node in program:
            if node.op != "leaf":
                report.op_counts[node.op] = report.op_counts.get(node.op, 0) + 1
        try:
            result = check_program(program, rtol=rtol, atol=atol)
        except Exception as exc:  # noqa: BLE001
            report.failures.append(
                FuzzFailure(
                    kind="exception",
                    seed=seed,
                    iteration=iteration,
                    message=f"{type(exc).__name__}: {exc}",
                    trace=program_trace(program),
                    shrunk_trace=program_trace(shrink_program(program, rtol, atol)),
                )
            )
        else:
            if result is not None:
                kind, message, err = result
                confirm_rng = _iteration_rng(seed ^ 0x5EED, iteration)
                if kind == "backward" and not _confirm_failure(program, confirm_rng, rtol, atol):
                    continue  # finite-difference kink coincidence, not a bug
                shrunk = shrink_program(program, rtol, atol)
                report.failures.append(
                    FuzzFailure(
                        kind=kind,
                        seed=seed,
                        iteration=iteration,
                        message=message,
                        max_abs_err=err,
                        trace=program_trace(program),
                        shrunk_trace=program_trace(shrunk),
                    )
                )
        if len(report.failures) >= max_failures:
            break
    return report
