"""Correctness harness: differential fuzzing, golden baselines, invariants.

Three pillars guard the numerical core of this repository:

* :mod:`repro.verify.fuzz` — a property-based fuzzer that samples random op
  graphs over ``repro.autograd.ops``, checks every forward against a pure-
  NumPy reference and every backward against central finite differences,
  shrinks failures and reports the seed that reproduces them;
* :mod:`repro.verify.goldens` — seeded train+predict runs whose loss curves,
  metrics, eVAE terms and generated cold-start embeddings are frozen into
  ``tests/goldens/*.json`` with tolerance-tiered comparison;
* :mod:`repro.verify.invariants` — reusable model/engine invariant checks,
  callable from tests and (behind ``REPRO_VERIFY=1``) from ``Recommender.fit``
  and ``InferenceEngine``.

``repro.verify.runner.run_verify`` chains all three as a pre-merge gate;
``python -m repro.cli verify`` is the command-line front end.
"""

from .fuzz import FuzzFailure, FuzzReport, run_fuzz, run_single
from .goldens import (
    GOLDEN_SPECS,
    GoldenSpec,
    Mismatch,
    check_goldens,
    compare_golden,
    default_goldens_dir,
    fit_golden_model,
    run_golden,
    update_goldens,
)
from .invariants import (
    InvariantViolation,
    check_engine_consistency,
    check_evae_sigma,
    check_finite_parameters,
    check_gate_ranges,
    check_generated_preferences,
    check_index_matrix,
    check_neighbour_indices,
    check_offline_parity,
    check_onboarding_determinism,
    check_proximity_matrix,
    check_symmetric,
    check_unit_interval,
    engine_invariant_report,
    model_invariant_report,
    runtime_verification_enabled,
    verify_engine,
    verify_model,
)
from .opspecs import OP_NAMES
from .runner import run_verify

__all__ = [
    # fuzz
    "run_fuzz",
    "run_single",
    "FuzzReport",
    "FuzzFailure",
    "OP_NAMES",
    # goldens
    "GoldenSpec",
    "GOLDEN_SPECS",
    "Mismatch",
    "run_golden",
    "fit_golden_model",
    "compare_golden",
    "update_goldens",
    "check_goldens",
    "default_goldens_dir",
    # invariants
    "InvariantViolation",
    "runtime_verification_enabled",
    "check_unit_interval",
    "check_symmetric",
    "check_proximity_matrix",
    "check_index_matrix",
    "check_finite_parameters",
    "check_gate_ranges",
    "check_neighbour_indices",
    "check_evae_sigma",
    "check_generated_preferences",
    "check_engine_consistency",
    "check_offline_parity",
    "check_onboarding_determinism",
    "model_invariant_report",
    "engine_invariant_report",
    "verify_model",
    "verify_engine",
    # runner
    "run_verify",
]
