"""Command-line interface: train and evaluate any model on any scenario.

Examples:

    python -m repro.cli run --model AGNN --dataset ML-100K --scenario item_cold
    python -m repro.cli run --model DropoutNet --scenario user_cold --scale smoke --json
    python -m repro.cli run --model AGNN --seeds 0 1 2 --scenario item_cold
    python -m repro.cli list-models
    python -m repro.cli datasets --scale bench
    python -m repro.cli telemetry-bench --output BENCH_telemetry.json

The heavy lifting lives in ``repro.experiments``; this is a thin, scriptable
front end that prints either human-readable text or machine-readable JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from .baselines import BASELINES, make_baseline
from .core import ALL_VARIANTS, AGNN, agnn_variant
from .experiments.configs import get_scale
from .experiments.replicates import run_replicates
from .experiments.runner import run_model
from .train import Recommender, TrainConfig

__all__ = ["main", "build_parser", "available_models", "model_factory"]


def available_models() -> list[str]:
    """All runnable model names: AGNN variants + the twelve baselines."""
    return sorted(set(ALL_VARIANTS) | set(BASELINES))


def model_factory(name: str, scale) -> Callable[[], Recommender]:
    """Factory for any model name, configured at the given scale."""
    if name in ALL_VARIANTS:
        return lambda: agnn_variant(name, scale.agnn, seed=scale.seed)
    if name in BASELINES:
        return lambda: make_baseline(name, embedding_dim=scale.baseline_dim)
    raise KeyError(f"unknown model {name!r}; see `repro.cli list-models`")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="train + evaluate one model")
    run.add_argument("--model", required=True, help="model name (see list-models)")
    run.add_argument("--dataset", default="ML-100K", choices=["ML-100K", "ML-1M", "Yelp"])
    run.add_argument("--scenario", default="item_cold", choices=["warm", "item_cold", "user_cold"])
    run.add_argument("--scale", default="smoke", choices=["paper", "bench", "smoke"])
    run.add_argument("--seeds", type=int, nargs="+", default=None,
                     help="run several seeds and report mean±std")
    run.add_argument("--epochs", type=int, default=None, help="override the scale's epoch count")
    run.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    commands.add_parser("list-models", help="list every runnable model name")

    datasets = commands.add_parser("datasets", help="show Table-1 statistics at a scale")
    datasets.add_argument("--scale", default="smoke", choices=["paper", "bench", "smoke"])

    bench = commands.add_parser(
        "telemetry-bench",
        help="run a fully-metered train+predict cycle and write the perf baseline",
    )
    bench.add_argument("--dataset", default="ML-100K", choices=["ML-100K", "ML-1M", "Yelp"])
    bench.add_argument("--scenario", default="item_cold", choices=["warm", "item_cold", "user_cold"])
    bench.add_argument("--scale", default="smoke", choices=["paper", "bench", "smoke"])
    bench.add_argument("--epochs", type=int, default=None, help="override the scale's epoch count")
    bench.add_argument("--output", default="BENCH_telemetry.json",
                       help="snapshot path ('-' to skip writing)")
    bench.add_argument("--json", action="store_true", help="print the snapshot JSON instead of the table")
    return parser


def _command_run(args) -> int:
    scale = get_scale(args.scale)
    train_config = scale.train
    if args.epochs is not None:
        train_config = TrainConfig(
            epochs=args.epochs,
            batch_size=train_config.batch_size,
            learning_rate=train_config.learning_rate,
            patience=train_config.patience,
        )
    dataset = scale.datasets[args.dataset]()
    factory = model_factory(args.model, scale)

    if args.seeds:
        result = run_replicates(factory, dataset, args.scenario, scale,
                                seeds=args.seeds, train_config=train_config)
        payload = {
            "model": result.model_name,
            "dataset": args.dataset,
            "scenario": args.scenario,
            "seeds": list(args.seeds),
            "rmse_mean": result.rmse_mean,
            "rmse_std": result.rmse_std,
            "mae_mean": result.mae_mean,
        }
        text = f"{args.dataset}/{args.scenario}: {result}"
    else:
        fit = run_model(factory, dataset, args.scenario, scale, train_config=train_config)
        payload = {
            "model": fit.model_name,
            "dataset": args.dataset,
            "scenario": args.scenario,
            "rmse": fit.result.rmse,
            "mae": fit.result.mae,
            "epochs_trained": fit.history.num_epochs,
        }
        text = f"{args.dataset}/{args.scenario} {fit.model_name}: {fit.result}"

    print(json.dumps(payload, indent=2) if args.json else text)
    return 0


def _command_list_models(_args) -> int:
    for name in available_models():
        kind = "AGNN variant" if name in ALL_VARIANTS else "baseline"
        print(f"{name:<14} {kind}")
    return 0


def _command_datasets(args) -> int:
    from .experiments import table1

    print(table1.render(table1.run_table1(get_scale(args.scale))))
    return 0


def _command_telemetry_bench(args) -> int:
    from .telemetry import render, run_telemetry_bench

    snap = run_telemetry_bench(
        dataset=args.dataset,
        scenario=args.scenario,
        scale_name=args.scale,
        epochs=args.epochs,
        output=None if args.output == "-" else args.output,
    )
    print(json.dumps(snap, indent=2, sort_keys=True) if args.json else render(snap))
    if args.output != "-":
        print(f"\nwrote {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "list-models": _command_list_models,
        "datasets": _command_datasets,
        "telemetry-bench": _command_telemetry_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
