"""Command-line interface: train and evaluate any model on any scenario.

Examples:

    python -m repro.cli run --model AGNN --dataset ML-100K --scenario item_cold
    python -m repro.cli run --model DropoutNet --scenario user_cold --scale smoke --json
    python -m repro.cli run --model AGNN --seeds 0 1 2 --scenario item_cold
    python -m repro.cli list-models
    python -m repro.cli datasets --scale bench
    python -m repro.cli telemetry-bench --output BENCH_telemetry.json
    python -m repro.cli train-bench --output BENCH_training.json
    python -m repro.cli export-bundle --scale smoke --output bundles/agnn
    python -m repro.cli serve --bundle bundles/agnn --port 8080
    python -m repro.cli serving-bench --output BENCH_serving.json
    python -m repro.cli load-bench --output BENCH_load.json
    python -m repro.cli load-bench --check --output -
    python -m repro.cli trace --bundle bundles/agnn --workers 2 --output trace.json
    python -m repro.cli refresh --store bundles/store
    python -m repro.cli refresh-bench --output BENCH_refresh.json
    python -m repro.cli verify --fuzz-iterations 200
    python -m repro.cli verify --update-goldens --skip fuzz invariants
    python -m repro.cli report                      # smoke fit + health report
    python -m repro.cli report --events run.jsonl   # report on a recorded run
    python -m repro.cli report --json

The heavy lifting lives in ``repro.experiments``; this is a thin, scriptable
front end that prints either human-readable text or machine-readable JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from .baselines import BASELINES, make_baseline
from .core import ALL_VARIANTS, AGNN, agnn_variant
from .experiments.configs import get_scale
from .experiments.replicates import run_replicates
from .experiments.runner import run_model
from .train import Recommender, TrainConfig

__all__ = ["main", "build_parser", "available_models", "model_factory"]


def available_models() -> list[str]:
    """All runnable model names: AGNN variants + the twelve baselines."""
    return sorted(set(ALL_VARIANTS) | set(BASELINES))


def model_factory(name: str, scale) -> Callable[[], Recommender]:
    """Factory for any model name, configured at the given scale."""
    if name in ALL_VARIANTS:
        return lambda: agnn_variant(name, scale.agnn, seed=scale.seed)
    if name in BASELINES:
        return lambda: make_baseline(name, embedding_dim=scale.baseline_dim)
    raise KeyError(f"unknown model {name!r}; see `repro.cli list-models`")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="train + evaluate one model")
    run.add_argument("--model", required=True, help="model name (see list-models)")
    run.add_argument("--dataset", default="ML-100K", choices=["ML-100K", "ML-1M", "Yelp"])
    run.add_argument("--scenario", default="item_cold", choices=["warm", "item_cold", "user_cold"])
    run.add_argument("--scale", default="smoke", choices=["paper", "bench", "smoke"])
    run.add_argument("--seeds", type=int, nargs="+", default=None,
                     help="run several seeds and report mean±std")
    run.add_argument("--epochs", type=int, default=None, help="override the scale's epoch count")
    run.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    commands.add_parser("list-models", help="list every runnable model name")

    datasets = commands.add_parser("datasets", help="show Table-1 statistics at a scale")
    datasets.add_argument("--scale", default="smoke", choices=["paper", "bench", "smoke"])

    bench = commands.add_parser(
        "telemetry-bench",
        help="run a fully-metered train+predict cycle and write the perf baseline",
    )
    bench.add_argument("--dataset", default="ML-100K", choices=["ML-100K", "ML-1M", "Yelp"])
    bench.add_argument("--scenario", default="item_cold", choices=["warm", "item_cold", "user_cold"])
    bench.add_argument("--scale", default="smoke", choices=["paper", "bench", "smoke"])
    bench.add_argument("--epochs", type=int, default=None, help="override the scale's epoch count")
    bench.add_argument("--output", default="BENCH_telemetry.json",
                       help="snapshot path ('-' to skip writing)")
    bench.add_argument("--json", action="store_true", help="print the snapshot JSON instead of the table")

    tbench = commands.add_parser(
        "train-bench",
        help="run the seeded training benchmark (throughput + graph micro-bench) "
        "and write the baseline",
    )
    tbench.add_argument("--dataset", default="ML-100K", choices=["ML-100K", "ML-1M", "Yelp"])
    tbench.add_argument("--scenario", default="item_cold", choices=["warm", "item_cold", "user_cold"])
    tbench.add_argument("--scale", default="smoke", choices=["paper", "bench", "smoke"])
    tbench.add_argument("--epochs", type=int, default=None, help="override the scale's epoch count")
    tbench.add_argument("--graph-n", type=int, default=2000,
                        help="node count for the graph-construction micro-benchmark")
    tbench.add_argument("--graph-pool", type=int, default=100,
                        help="pool size for the graph-construction micro-benchmark")
    tbench.add_argument("--repeats", type=int, default=5, help="micro-benchmark repetitions (best-of)")
    tbench.add_argument("--no-determinism", action="store_true",
                        help="skip the bitwise repeat-run determinism check")
    tbench.add_argument("--output", default="BENCH_training.json",
                        help="baseline path ('-' to skip writing)")
    tbench.add_argument("--json", action="store_true",
                        help="print the payload JSON instead of the summary")

    gbench = commands.add_parser(
        "graph-bench",
        help="benchmark sublinear vs exact graph construction across node "
        "counts and record the scaling + pool-overlap baseline",
    )
    gbench.add_argument("--n-grid", default="2000,8000,32000,100000",
                        help="comma-separated node counts for the inverted build")
    gbench.add_argument("--exact-grid", default="2000,4000,8000",
                        help="comma-separated node counts for the exact build")
    gbench.add_argument("--pool-size", type=int, default=100,
                        help="fixed candidate-pool size across the grid")
    gbench.add_argument("--repeats", type=int, default=2, help="repetitions (best-of)")
    gbench.add_argument("--seed", type=int, default=0, help="synthetic-input seed")
    gbench.add_argument("--output", default="BENCH_training.json",
                        help="baseline to merge the graph_scaling entry into ('-' to skip)")
    gbench.add_argument("--json", action="store_true",
                        help="print the payload JSON instead of the summary")

    export = commands.add_parser(
        "export-bundle",
        help="train an AGNN variant and export a self-contained serving bundle",
    )
    export.add_argument("--model", default="AGNN", choices=sorted(ALL_VARIANTS),
                        help="AGNN variant to bundle (bundles are AGNN-specific)")
    export.add_argument("--dataset", default="ML-100K", choices=["ML-100K", "ML-1M", "Yelp"])
    export.add_argument("--scenario", default="item_cold", choices=["warm", "item_cold", "user_cold"])
    export.add_argument("--scale", default="smoke", choices=["paper", "bench", "smoke"])
    export.add_argument("--epochs", type=int, default=None, help="override the scale's epoch count")
    export.add_argument("--output", required=True, help="bundle directory to create")
    export.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    serve = commands.add_parser("serve", help="serve a bundle over HTTP (JSON endpoints)")
    serve.add_argument("--bundle", required=True, help="bundle directory from export-bundle")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 picks an ephemeral port")
    serve.add_argument("--cache-size", type=int, default=100_000, help="LRU score-cache capacity")
    serve.add_argument("--verbose", action="store_true", help="log each HTTP request")
    serve.add_argument("--no-batching", action="store_true",
                       help="serve each request directly instead of through the "
                       "request-coalescing BatchingEngine")
    serve.add_argument("--tick-interval", type=float, default=0.0,
                       help="coalescing window in seconds; 0 drains adaptively "
                       "with no added wait (batching mode)")
    serve.add_argument("--max-batch-pairs", type=int, default=8192,
                       help="pair budget per coalesced tick (batching mode)")
    serve.add_argument("--max-queue-depth", type=int, default=1024,
                       help="queued requests before shedding with 429 (batching mode)")
    serve.add_argument("--workers", type=int, default=1,
                       help="serving processes; >1 starts a WorkerPool over "
                       "mmap-shared bundle state (each worker runs its own "
                       "in-process coalescing engine)")

    sbench = commands.add_parser(
        "serving-bench",
        help="run the metered serving cycle (export → engine → HTTP) and write the baseline",
    )
    sbench.add_argument("--dataset", default="ML-100K", choices=["ML-100K", "ML-1M", "Yelp"])
    sbench.add_argument("--scenario", default="item_cold", choices=["warm", "item_cold", "user_cold"])
    sbench.add_argument("--scale", default="smoke", choices=["paper", "bench", "smoke"])
    sbench.add_argument("--epochs", type=int, default=None, help="override the scale's epoch count")
    sbench.add_argument("--pairs", type=int, default=200, help="test pairs to meter")
    sbench.add_argument("--output", default="BENCH_serving.json",
                        help="snapshot path ('-' to skip writing)")
    sbench.add_argument("--json", action="store_true", help="print the snapshot JSON instead of a summary")

    lbench = commands.add_parser(
        "load-bench",
        help="drive the serving engine with concurrent load (direct vs coalesced) "
        "and write the latency-under-concurrency baseline",
    )
    lbench.add_argument("--dataset", default="ML-100K", choices=["ML-100K", "ML-1M", "Yelp"])
    lbench.add_argument("--scenario", default="item_cold", choices=["warm", "item_cold", "user_cold"])
    lbench.add_argument("--scale", default="smoke", choices=["paper", "bench", "smoke"])
    lbench.add_argument("--epochs", type=int, default=2,
                        help="training epochs for the throwaway model (quality is irrelevant here)")
    lbench.add_argument("--bundle", default=None,
                        help="serve an existing bundle directory instead of training")
    lbench.add_argument("--concurrency", type=int, nargs="+", default=[1, 4, 16],
                        help="closed-loop concurrency ramp")
    lbench.add_argument("--duration", type=float, default=1.0, help="seconds per load cell")
    lbench.add_argument("--rate", type=float, default=300.0, help="open-loop arrival rate (req/s)")
    lbench.add_argument("--pairs-per-request", type=int, default=16,
                        help="candidate pairs scored per request (the reranking shape)")
    lbench.add_argument("--dim", type=int, default=40,
                        help="embedding dimension for the trained bundle "
                        "(default: the paper's 40, not the smoke-scale toy size)")
    lbench.add_argument("--tick-interval", type=float, default=0.0,
                        help="coalescing window in seconds; 0 drains adaptively "
                        "with no added wait")
    lbench.add_argument("--max-batch-pairs", type=int, default=8192,
                        help="pair budget per coalesced tick")
    lbench.add_argument("--max-queue-depth", type=int, default=4096,
                        help="queued requests before shedding")
    lbench.add_argument("--pool-workers", type=int, nargs="+", default=[1, 2, 4],
                        help="worker-count sweep for the multi-process pool phase")
    lbench.add_argument("--pool-concurrency", type=int, default=8,
                        help="closed-loop callers driving each pool cell")
    lbench.add_argument("--no-pool", action="store_true",
                        help="skip the worker-pool sweep (single-process phases only)")
    lbench.add_argument("--seed", type=int, default=0, help="workload seed")
    lbench.add_argument("--check", action="store_true",
                        help="seconds-scale smoke invocation (shrinks the matrix; "
                        "exit code reflects parity + error-free runs)")
    lbench.add_argument("--output", default="BENCH_load.json",
                        help="baseline path ('-' to skip writing)")
    lbench.add_argument("--json", action="store_true",
                        help="print the payload JSON instead of the table")

    trace_cmd = commands.add_parser(
        "trace",
        help="drive a bundle through the pool-backed HTTP server and export a "
        "Chrome trace-event JSON (open in Perfetto or chrome://tracing)",
    )
    trace_cmd.add_argument("--bundle", required=True,
                           help="bundle directory from export-bundle")
    trace_cmd.add_argument("--workers", type=int, default=2,
                           help="serving processes in the WorkerPool")
    trace_cmd.add_argument("--requests", type=int, default=8,
                           help="scoring requests to drive through the fleet")
    trace_cmd.add_argument("--pairs", type=int, default=16,
                           help="candidate pairs scored per request")
    trace_cmd.add_argument("--seed", type=int, default=0, help="workload seed")
    trace_cmd.add_argument("--output", default="trace.json",
                           help="Chrome trace path ('-' prints to stdout)")

    refresh = commands.add_parser(
        "refresh",
        help="one turn of the continuous-learning loop: warm-start the store's "
        "latest bundle on a simulated stream, gate, publish, report",
    )
    refresh.add_argument("--store", required=True, help="BundleStore directory (created if empty)")
    refresh.add_argument("--dataset", default="ML-100K", choices=["ML-100K", "ML-1M", "Yelp"])
    refresh.add_argument("--scale", default="smoke", choices=["paper", "bench", "smoke"])
    refresh.add_argument("--epochs", type=int, default=None,
                         help="refresh epochs (default: the live DEFAULT_REFRESH_CONFIG)")
    refresh.add_argument("--interaction-fraction", type=float, default=0.1,
                         help="fraction of warm interactions simulated as new feedback")
    refresh.add_argument("--new-user-fraction", type=float, default=0.05,
                         help="fraction of users simulated as post-launch arrivals")
    refresh.add_argument("--new-item-fraction", type=float, default=0.05,
                         help="fraction of items simulated as post-launch arrivals")
    refresh.add_argument("--seed", type=int, default=0, help="stream simulation seed")
    refresh.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    rbench = commands.add_parser(
        "refresh-bench",
        help="measure warm-start refresh vs from-scratch fit, hot-swap under "
        "load, and the rejection paths; write the baseline",
    )
    rbench.add_argument("--dataset", default="ML-100K", choices=["ML-100K", "ML-1M", "Yelp"])
    rbench.add_argument("--scale", default="smoke", choices=["paper", "bench", "smoke"])
    rbench.add_argument("--refresh-epochs", type=int, default=None,
                        help="override the refresh epoch count")
    rbench.add_argument("--swap-threads", type=int, default=4,
                        help="worker threads hammering the engine during swaps")
    rbench.add_argument("--swap-requests", type=int, default=50,
                        help="score requests per worker thread")
    rbench.add_argument("--swaps", type=int, default=6, help="hot-swaps during the load phase")
    rbench.add_argument("--seed", type=int, default=0, help="stream + workload seed")
    rbench.add_argument("--check", action="store_true",
                        help="seconds-scale smoke invocation (correctness only; "
                        "skips the 1.5x speedup bar)")
    rbench.add_argument("--output", default="BENCH_refresh.json",
                        help="baseline path ('-' to skip writing)")
    rbench.add_argument("--json", action="store_true",
                        help="print the payload JSON instead of the summary")

    verify = commands.add_parser(
        "verify",
        help="pre-merge correctness gate: autograd fuzzing + golden baselines + invariant sweep",
    )
    verify.add_argument("--fuzz-iterations", type=int, default=200,
                        help="random op graphs to check against finite differences")
    verify.add_argument("--seed", type=int, default=0, help="fuzzing campaign seed")
    verify.add_argument("--rtol", type=float, default=1e-4,
                        help="finite-difference relative tolerance")
    verify.add_argument("--goldens-dir", default=None,
                        help="golden baseline directory (default: tests/goldens)")
    verify.add_argument("--update-goldens", action="store_true",
                        help="regenerate the golden files instead of comparing against them")
    verify.add_argument("--skip", nargs="+", default=None, choices=["fuzz", "goldens", "invariants"],
                        help="stages to skip")
    verify.add_argument("--json", action="store_true", help="emit the full report as JSON")

    report = commands.add_parser(
        "report",
        help="unified health report: run events + monitors + serving latency + BENCH deltas",
    )
    report.add_argument("--events", default=None,
                        help="JSONL event log to report on (default: run a fresh "
                        "monitored smoke fit + serving exercise)")
    report.add_argument("--bench-dir", default=".",
                        help="directory holding the committed BENCH_*.json baselines")
    report.add_argument("--dataset", default="ML-100K", choices=["ML-100K", "ML-1M", "Yelp"])
    report.add_argument("--scenario", default="item_cold", choices=["warm", "item_cold", "user_cold"])
    report.add_argument("--scale", default="smoke", choices=["paper", "bench", "smoke"])
    report.add_argument("--json", action="store_true", help="emit the report as JSON (CI)")
    return parser


def _command_run(args) -> int:
    scale = get_scale(args.scale)
    train_config = scale.train
    if args.epochs is not None:
        train_config = TrainConfig(
            epochs=args.epochs,
            batch_size=train_config.batch_size,
            learning_rate=train_config.learning_rate,
            patience=train_config.patience,
        )
    dataset = scale.datasets[args.dataset]()
    factory = model_factory(args.model, scale)

    if args.seeds:
        result = run_replicates(factory, dataset, args.scenario, scale,
                                seeds=args.seeds, train_config=train_config)
        payload = {
            "model": result.model_name,
            "dataset": args.dataset,
            "scenario": args.scenario,
            "seeds": list(args.seeds),
            "rmse_mean": result.rmse_mean,
            "rmse_std": result.rmse_std,
            "mae_mean": result.mae_mean,
        }
        text = f"{args.dataset}/{args.scenario}: {result}"
    else:
        fit = run_model(factory, dataset, args.scenario, scale, train_config=train_config)
        payload = {
            "model": fit.model_name,
            "dataset": args.dataset,
            "scenario": args.scenario,
            "rmse": fit.result.rmse,
            "mae": fit.result.mae,
            "epochs_trained": fit.history.num_epochs,
        }
        text = f"{args.dataset}/{args.scenario} {fit.model_name}: {fit.result}"

    print(json.dumps(payload, indent=2) if args.json else text)
    return 0


def _command_list_models(_args) -> int:
    for name in available_models():
        kind = "AGNN variant" if name in ALL_VARIANTS else "baseline"
        print(f"{name:<14} {kind}")
    return 0


def _command_datasets(args) -> int:
    from .experiments import table1

    print(table1.render(table1.run_table1(get_scale(args.scale))))
    return 0


def _command_telemetry_bench(args) -> int:
    from .telemetry import render, run_telemetry_bench

    snap = run_telemetry_bench(
        dataset=args.dataset,
        scenario=args.scenario,
        scale_name=args.scale,
        epochs=args.epochs,
        output=None if args.output == "-" else args.output,
    )
    print(json.dumps(snap, indent=2, sort_keys=True) if args.json else render(snap))
    if args.output != "-":
        print(f"\nwrote {args.output}")
    return 0


def _command_train_bench(args) -> int:
    from .perf import render, run_train_bench

    payload = run_train_bench(
        dataset=args.dataset,
        scenario=args.scenario,
        scale_name=args.scale,
        epochs=args.epochs,
        output=None if args.output == "-" else args.output,
        graph_n=args.graph_n,
        graph_pool=args.graph_pool,
        graph_repeats=args.repeats,
        check_determinism=not args.no_determinism,
    )
    print(json.dumps(payload, indent=2, sort_keys=True) if args.json else render(payload))
    if args.output != "-":
        print(f"\nwrote {args.output}")
    return 0


def _command_graph_bench(args) -> int:
    from .graphs.bench import render_graph_bench, run_graph_bench

    grids = {}
    for name in ("n_grid", "exact_grid"):
        raw = getattr(args, name)
        try:
            grids[name] = tuple(int(part) for part in str(raw).split(",") if part.strip())
        except ValueError:
            print(f"invalid --{name.replace('_', '-')}: {raw!r} (want comma-separated ints)")
            return 2
        if not grids[name]:
            print(f"--{name.replace('_', '-')} must name at least one node count")
            return 2
    payload = run_graph_bench(
        n_grid=grids["n_grid"],
        exact_grid=grids["exact_grid"],
        pool_size=args.pool_size,
        repeats=args.repeats,
        seed=args.seed,
        output=None if args.output == "-" else args.output,
    )
    print(json.dumps(payload, indent=2, sort_keys=True) if args.json else render_graph_bench(payload))
    if args.output != "-":
        print(f"\nmerged graph_scaling into {args.output}")
    return 0 if payload["ok"] else 1


def _command_export_bundle(args) -> int:
    from .data import make_split
    from .nn import init as nn_init
    from .serving import export_bundle

    scale = get_scale(args.scale)
    train_config = scale.train
    if args.epochs is not None:
        from dataclasses import replace

        train_config = replace(train_config, epochs=args.epochs)
    dataset = scale.datasets[args.dataset]()

    nn_init.seed(scale.seed)
    task = make_split(dataset, args.scenario, scale.split_fraction, seed=scale.seed)
    model = model_factory(args.model, scale)()
    history = model.fit(task, train_config)
    result = model.evaluate()
    path = export_bundle(
        model,
        task,
        args.output,
        note=f"{args.model} {args.dataset}/{args.scenario}",
        mapped=True,
    )

    payload = {
        "bundle": str(path),
        "model": args.model,
        "dataset": args.dataset,
        "scenario": args.scenario,
        "epochs_trained": history.num_epochs,
        "rmse": result.rmse,
        "mae": result.mae,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"trained {args.model} on {args.dataset}/{args.scenario}: {result}")
        print(f"wrote bundle to {path}")
    return 0


def _command_serve(args) -> int:
    from .serving import (
        BatchingEngine,
        InferenceEngine,
        WorkerPool,
        load_bundle,
        make_server,
        serve_forever,
    )

    if args.workers < 1:
        print("--workers must be positive", file=sys.stderr)
        return 2
    if args.workers > 1:
        pool = WorkerPool(
            args.bundle,
            workers=args.workers,
            cache_size=args.cache_size,
            max_batch_pairs=args.max_batch_pairs,
            max_queue_depth=args.max_queue_depth,
            tick_interval=args.tick_interval,
        )
        server = make_server(
            host=args.host, port=args.port, verbose=args.verbose, pool=pool
        )
        health = pool.healthz()
        first = next((w for w in health["workers"] if w.get("responsive")), {})
        print(
            f"serving bundle {args.bundle} from {args.workers} workers "
            f"(pids {pool.worker_pids()}) — {first.get('users', '?')} users, "
            f"{first.get('items', '?')} items, mmap-shared state"
        )
        mode = f"worker pool ({args.workers} processes, per-worker coalescing)"
        print(f"listening on http://{args.host}:{server.port}  [{mode}]  (Ctrl-C to stop)")
        serve_forever(server)
        return 0

    bundle = load_bundle(args.bundle)
    engine = InferenceEngine(bundle, cache_size=args.cache_size)
    batching = None
    if not args.no_batching:
        batching = BatchingEngine(
            engine,
            max_batch_pairs=args.max_batch_pairs,
            max_queue_depth=args.max_queue_depth,
            tick_interval=args.tick_interval,
        )
    server = make_server(
        engine, host=args.host, port=args.port, verbose=args.verbose, batching=batching
    )
    manifest = bundle.manifest
    print(
        f"serving {manifest['model_name']} ({manifest['dataset']['name']}/"
        f"{manifest['dataset']['scenario']}) — {engine.num_users} users, "
        f"{engine.num_items} items"
    )
    if batching is None:
        mode = "direct (no batching)"
    else:
        window = (
            "adaptive drain"
            if args.tick_interval == 0
            else f"tick {args.tick_interval * 1e3:g}ms"
        )
        mode = f"coalescing ({window}, queue {args.max_queue_depth})"
    print(f"listening on http://{args.host}:{server.port}  [{mode}]  (Ctrl-C to stop)")
    serve_forever(server)
    return 0


def _command_serving_bench(args) -> int:
    from .serving import run_serving_bench
    from .telemetry import render

    snap = run_serving_bench(
        dataset=args.dataset,
        scenario=args.scenario,
        scale_name=args.scale,
        epochs=args.epochs,
        pairs=args.pairs,
        output=None if args.output == "-" else args.output,
    )
    if args.json:
        print(json.dumps(snap, indent=2, sort_keys=True))
    else:
        serving = snap["meta"]["serving"]
        print(render(snap))
        print(
            f"\nscore p50: cold {serving['score_cold_p50_s'] * 1e3:.3f}ms vs "
            f"cached {serving['score_cached_p50_s'] * 1e3:.3f}ms "
            f"({serving['cached_speedup_p50']:.1f}x)"
        )
        print(f"offline parity: max |Δ| = {serving['max_abs_diff_vs_offline']:.2e}")
    if args.output != "-":
        print(f"\nwrote {args.output}")
    return 0


def _command_load_bench(args) -> int:
    from .serving import render_load_bench, run_load_bench

    payload = run_load_bench(
        dataset=args.dataset,
        scenario=args.scenario,
        scale_name=args.scale,
        epochs=args.epochs,
        bundle_path=args.bundle,
        concurrencies=tuple(args.concurrency),
        duration_s=args.duration,
        rate_rps=args.rate,
        pairs_per_request=args.pairs_per_request,
        embedding_dim=args.dim,
        tick_interval=args.tick_interval,
        max_batch_pairs=args.max_batch_pairs,
        max_queue_depth=args.max_queue_depth,
        pool_worker_counts=() if args.no_pool else tuple(args.pool_workers),
        pool_concurrency=args.pool_concurrency,
        seed=args.seed,
        output=None if args.output == "-" else args.output,
        check=args.check,
    )
    print(json.dumps(payload, indent=2, sort_keys=True) if args.json else render_load_bench(payload))
    if args.output != "-":
        print(f"\nwrote {args.output}")
    return 0 if payload["ok"] else 1


def _command_trace(args) -> int:
    import threading
    import urllib.request

    import numpy as np

    from .serving import WorkerPool, make_server
    from .telemetry import metrics as telemetry_metrics
    from .telemetry import tracing

    telemetry_metrics.reset()
    tracing.reset_spans()
    with telemetry_metrics.enabled():
        with WorkerPool(args.bundle, workers=args.workers, cache_size=0) as pool:
            health = pool.healthz()
            shape = next((w for w in health["workers"] if w.get("responsive")), {})
            num_users = int(shape.get("users", 1))
            num_items = int(shape.get("items", 1))
            server = make_server(pool=pool, port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            base = f"http://127.0.0.1:{server.port}"
            trace_ids = []
            try:
                rng = np.random.default_rng(args.seed)
                for _ in range(args.requests):
                    payload = json.dumps({
                        "users": rng.integers(0, num_users, size=args.pairs).tolist(),
                        "items": rng.integers(0, num_items, size=args.pairs).tolist(),
                    }).encode("utf-8")
                    request = urllib.request.Request(
                        f"{base}/score", data=payload,
                        headers={"Content-Type": "application/json"}, method="POST",
                    )
                    with urllib.request.urlopen(request, timeout=60) as response:
                        response.read()
                        trace_ids.append(response.headers.get("X-Trace-ID", ""))
                with urllib.request.urlopen(f"{base}/trace.json", timeout=60) as response:
                    raw = response.read().decode("utf-8")
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)

    trace = json.loads(raw)
    slices = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    pids = sorted({e["pid"] for e in slices})
    if args.output == "-":
        print(raw)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(raw)
        print(
            f"drove {args.requests} request(s) ({len(set(filter(None, trace_ids)))} "
            f"traces) through {args.workers} worker(s)"
        )
        print(
            f"wrote {args.output}: {len(slices)} span slices across "
            f"{len(pids)} processes, {trace['metadata']['span_dropped']} dropped "
            "— open in https://ui.perfetto.dev or chrome://tracing"
        )
    return 0


def _command_refresh(args) -> int:
    from dataclasses import replace

    from .data import warm_split
    from .live import DEFAULT_REFRESH_CONFIG, BundleStore, run_refresh, simulate_stream
    from .nn import init as nn_init

    scale = get_scale(args.scale)
    data = scale.datasets[args.dataset]()
    base, stream = simulate_stream(
        data,
        interaction_fraction=args.interaction_fraction,
        new_user_fraction=args.new_user_fraction,
        new_item_fraction=args.new_item_fraction,
        seed=args.seed,
    )
    store = BundleStore(args.store)
    if store.latest_version is None:
        # Bootstrap generation 1: a base fit on the pre-stream slice.
        nn_init.seed(scale.seed)
        base_task = warm_split(base, scale.split_fraction, seed=scale.seed)
        base_model = AGNN(scale.agnn, rng_seed=scale.seed)
        base_model.fit(base_task, scale.train)
        version = store.publish(base_model, base_task, note=f"base fit {args.dataset}")
        print(f"bootstrapped store with base generation v{version}")

    config = DEFAULT_REFRESH_CONFIG
    if args.epochs is not None:
        config = replace(config, epochs=args.epochs)
    result = run_refresh(
        store,
        stream.interactions,
        new_users=stream.new_user_attributes,
        new_items=stream.new_item_attributes,
        config=config,
        note=f"refresh from simulated stream ({stream.describe()})",
    )
    payload = {
        "accepted": result.accepted,
        "version": result.version,
        "parent_version": result.parent_version,
        "epochs": result.epochs,
        "reasons": result.reasons,
        "rmse": result.decision.rmse,
        "parent_warm_rmse": result.decision.baseline_rmse,
        "warm_rmse": result.decision.warm_rmse,
        "stream": stream.describe(),
        "store": str(store.root),
        "lineage": [
            {"version": link["version"], "parent": link["parent"], "note": link["note"]}
            for link in store.lineage()
        ],
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    elif result.accepted:
        print(f"refresh accepted: v{result.parent_version} -> v{result.version} "
              f"({result.epochs} epochs on {stream.describe()})")
        if result.decision.rmse is not None:
            print(f"holdout rmse {result.decision.rmse:.4f}"
                  + (f" (parent warm {result.decision.baseline_rmse:.4f})"
                     if result.decision.baseline_rmse is not None else ""))
        print("lineage: " + " -> ".join(f"v{link['version']}" for link in reversed(store.lineage())))
    else:
        print(f"refresh REJECTED; store stays at v{result.parent_version}")
        for reason in result.reasons:
            print(f"  - {reason}")
    return 0 if result.accepted else 1


def _command_refresh_bench(args) -> int:
    from .live import render_refresh_bench, run_refresh_bench

    payload = run_refresh_bench(
        dataset=args.dataset,
        scale_name=args.scale,
        refresh_epochs=args.refresh_epochs,
        swap_threads=args.swap_threads,
        swap_requests_per_thread=args.swap_requests,
        swaps=args.swaps,
        seed=args.seed,
        output=None if args.output == "-" else args.output,
        check=args.check,
    )
    print(json.dumps(payload, indent=2, sort_keys=True) if args.json else render_refresh_bench(payload))
    if args.output != "-":
        print(f"\nwrote {args.output}")
    return 0 if payload["ok"] else 1


def _command_verify(args) -> int:
    from .verify import run_verify

    report = run_verify(
        fuzz_iterations=args.fuzz_iterations,
        seed=args.seed,
        rtol=args.rtol,
        goldens_dir=args.goldens_dir,
        update_goldens_flag=args.update_goldens,
        skip=args.skip,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        for stage in report["stages"].values():
            print(stage["summary"])
        for name in report["skipped"]:
            print(f"{name}: skipped")
        print("verify:", "OK" if report["ok"] else "FAILED")
    return 0 if report["ok"] else 1


def _command_report(args) -> int:
    from .obs import build_report, read_events, render_report, run_smoke_report

    if args.events is not None:
        report = build_report(read_events(args.events), bench_dir=args.bench_dir)
    else:
        report = run_smoke_report(
            bench_dir=args.bench_dir,
            scale_name=args.scale,
            dataset=args.dataset,
            scenario=args.scenario,
        )
    print(json.dumps(report, indent=2, sort_keys=True) if args.json else render_report(report))
    return 0 if report["healthy"] else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "list-models": _command_list_models,
        "datasets": _command_datasets,
        "telemetry-bench": _command_telemetry_bench,
        "train-bench": _command_train_bench,
        "graph-bench": _command_graph_bench,
        "export-bundle": _command_export_bundle,
        "serve": _command_serve,
        "serving-bench": _command_serving_bench,
        "load-bench": _command_load_bench,
        "trace": _command_trace,
        "refresh": _command_refresh,
        "refresh-bench": _command_refresh_bench,
        "verify": _command_verify,
        "report": _command_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
