"""Implicit-feedback / top-N ranking extension.

The paper evaluates rating prediction; its problem definition also covers
binary implicit feedback.  This subpackage adds the machinery to evaluate
any fitted recommender as a top-N ranker under strict cold start, plus the
classic interaction-only ranking baselines for contrast.
"""

from .bpr import BPRMF, BPRConfig, PopularityRanker
from .evaluation import evaluate_ranking, rank_items_for_user, relevant_items
from .metrics import (
    RankingResult,
    hit_rate_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)

__all__ = [
    "hit_rate_at_k",
    "ndcg_at_k",
    "recall_at_k",
    "precision_at_k",
    "RankingResult",
    "evaluate_ranking",
    "rank_items_for_user",
    "relevant_items",
    "BPRMF",
    "BPRConfig",
    "PopularityRanker",
]
