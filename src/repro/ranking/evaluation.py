"""Top-N evaluation protocol for rating models on cold-start tasks.

Turns any trained :class:`~repro.train.Recommender` into a ranker: for each
test user, score every candidate item (the union of that user's held-out
items and sampled negatives), rank, and aggregate top-N metrics.  Sampled
negative evaluation (99 negatives + the positives) is the standard protocol
for implicit-feedback comparisons at this scale.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

import numpy as np

from ..data.splits import RecommendationTask
from ..train.recommender import Recommender
from .metrics import RankingResult

__all__ = ["rank_items_for_user", "evaluate_ranking", "relevant_items"]


def relevant_items(task: RecommendationTask, threshold: float = 4.0) -> Dict[int, Set[int]]:
    """Held-out items each test user *liked* (rating ≥ threshold)."""
    relevant: Dict[int, Set[int]] = {}
    liked = task.test_ratings >= threshold
    for user, item in zip(task.test_users[liked], task.test_items[liked]):
        relevant.setdefault(int(user), set()).add(int(item))
    return relevant


def rank_items_for_user(
    model: Recommender,
    user: int,
    candidates: Sequence[int],
) -> list[int]:
    """Candidates sorted by the model's predicted score, best first."""
    candidates = np.asarray(candidates, dtype=np.int64)
    scores = model.predict(np.full(len(candidates), user, dtype=np.int64), candidates)
    order = np.argsort(-scores, kind="stable")
    return candidates[order].tolist()


def evaluate_ranking(
    model: Recommender,
    task: RecommendationTask,
    k: int = 10,
    num_negatives: int = 99,
    threshold: float = 4.0,
    max_users: Optional[int] = None,
    seed: int = 0,
) -> RankingResult:
    """Sampled-negative top-N evaluation of a fitted model on ``task``.

    For each test user with at least one liked held-out item, the candidate
    set is their liked items plus ``num_negatives`` items they never
    interacted with; metrics are averaged over users.
    """
    rng = np.random.default_rng(seed)
    relevant = relevant_items(task, threshold)
    users = sorted(relevant)
    if max_users is not None:
        users = users[:max_users]
    if not users:
        raise ValueError("no test user has a liked held-out item at this threshold")

    seen: Dict[int, Set[int]] = {}
    for user, item in zip(task.dataset.user_ids, task.dataset.item_ids):
        seen.setdefault(int(user), set()).add(int(item))

    num_items = task.dataset.num_items
    rankings: Dict[int, list[int]] = {}
    for user in users:
        positives = relevant[user]
        forbidden = seen.get(user, set())
        pool = np.setdiff1d(np.arange(num_items), np.fromiter(forbidden, dtype=np.int64, count=len(forbidden)))
        take = min(num_negatives, len(pool))
        negatives = rng.choice(pool, size=take, replace=False)
        candidates = np.concatenate([np.fromiter(positives, dtype=np.int64, count=len(positives)), negatives])
        if len(candidates) < k:
            continue  # user interacted with almost the whole catalogue
        rankings[user] = rank_items_for_user(model, user, candidates)

    if not rankings:
        raise ValueError(f"no test user had at least k={k} candidates to rank")
    return RankingResult.from_rankings(rankings, relevant, k=k)
