"""Top-N ranking metrics for the implicit-feedback extension.

The paper's problem definition (Sec. 3.1) notes that **R** may hold "binary
entries for implicit feedbacks such as click or not"; its evaluation sticks
to explicit ratings.  This extension completes the implicit side: models
rank the catalogue per user and are scored with the standard top-N metrics.

All metrics operate on *ranked item id lists* against a set of held-out
relevant items, averaged over users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Set

import numpy as np

__all__ = ["hit_rate_at_k", "ndcg_at_k", "recall_at_k", "precision_at_k", "RankingResult"]


def _validate(ranked: Sequence[int], relevant: Set[int], k: int) -> None:
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if not relevant:
        raise ValueError("relevant set must not be empty")
    if len(ranked) < k:
        raise ValueError(f"ranking has {len(ranked)} items, need at least k={k}")


def hit_rate_at_k(ranked: Sequence[int], relevant: Set[int], k: int) -> float:
    """1 if any relevant item appears in the top k, else 0."""
    _validate(ranked, relevant, k)
    return 1.0 if any(item in relevant for item in ranked[:k]) else 0.0


def recall_at_k(ranked: Sequence[int], relevant: Set[int], k: int) -> float:
    """Fraction of relevant items retrieved in the top k."""
    _validate(ranked, relevant, k)
    hits = sum(1 for item in ranked[:k] if item in relevant)
    return hits / len(relevant)


def precision_at_k(ranked: Sequence[int], relevant: Set[int], k: int) -> float:
    """Fraction of the top k that is relevant."""
    _validate(ranked, relevant, k)
    hits = sum(1 for item in ranked[:k] if item in relevant)
    return hits / k


def ndcg_at_k(ranked: Sequence[int], relevant: Set[int], k: int) -> float:
    """Normalised discounted cumulative gain with binary relevance."""
    _validate(ranked, relevant, k)
    dcg = sum(1.0 / np.log2(i + 2) for i, item in enumerate(ranked[:k]) if item in relevant)
    ideal_hits = min(len(relevant), k)
    idcg = sum(1.0 / np.log2(i + 2) for i in range(ideal_hits))
    return dcg / idcg


@dataclass(frozen=True)
class RankingResult:
    """Mean top-N metrics over a user population."""

    hit_rate: float
    ndcg: float
    recall: float
    precision: float
    k: int
    num_users: int

    @classmethod
    def from_rankings(
        cls,
        rankings: Dict[int, Sequence[int]],
        relevant: Dict[int, Set[int]],
        k: int = 10,
    ) -> "RankingResult":
        """Aggregate per-user metrics; users without relevant items are skipped."""
        hrs, ndcgs, recalls, precisions = [], [], [], []
        for user, ranked in rankings.items():
            rel = relevant.get(user)
            if not rel:
                continue
            hrs.append(hit_rate_at_k(ranked, rel, k))
            ndcgs.append(ndcg_at_k(ranked, rel, k))
            recalls.append(recall_at_k(ranked, rel, k))
            precisions.append(precision_at_k(ranked, rel, k))
        if not hrs:
            raise ValueError("no user had relevant items to score")
        return cls(
            hit_rate=float(np.mean(hrs)),
            ndcg=float(np.mean(ndcgs)),
            recall=float(np.mean(recalls)),
            precision=float(np.mean(precisions)),
            k=k,
            num_users=len(hrs),
        )

    def __str__(self) -> str:
        return (
            f"HR@{self.k}={self.hit_rate:.4f} NDCG@{self.k}={self.ndcg:.4f} "
            f"Recall@{self.k}={self.recall:.4f} ({self.num_users} users)"
        )
