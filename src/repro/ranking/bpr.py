"""BPR — Bayesian Personalised Ranking matrix factorisation (Rendle et al., 2009).

The classic implicit-feedback ranking baseline for the extension study: no
attributes, pure interaction signal — so it collapses on strict cold start,
which is exactly the contrast the top-N cold-start experiment needs.
Implemented with hand-vectorised SGD (like ``repro.baselines.mf``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.splits import RecommendationTask

__all__ = ["BPRConfig", "BPRMF", "PopularityRanker"]


@dataclass(frozen=True)
class BPRConfig:
    factors: int = 16
    epochs: int = 20
    learning_rate: float = 0.05
    regularisation: float = 0.002
    seed: int = 0


class BPRMF:
    """Pairwise ranking MF: maximise σ(x_ui − x_uj) over (user, pos, neg)."""

    def __init__(self, config: BPRConfig = BPRConfig()) -> None:
        self.config = config
        self.user_factors: np.ndarray | None = None
        self.item_factors: np.ndarray | None = None
        self.item_bias: np.ndarray | None = None

    def fit(self, task: RecommendationTask) -> "BPRMF":
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        num_users, num_items = task.dataset.num_users, task.dataset.num_items
        self.user_factors = rng.normal(0, 0.05, size=(num_users, cfg.factors))
        self.item_factors = rng.normal(0, 0.05, size=(num_items, cfg.factors))
        self.item_bias = np.zeros(num_items)

        users, items = task.train_users, task.train_items
        n = len(users)
        batch = 2048
        for _ in range(cfg.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                u, i = users[idx], items[idx]
                j = rng.integers(0, num_items, size=len(idx))  # sampled negatives
                pu = self.user_factors[u]
                qi, qj = self.item_factors[i], self.item_factors[j]
                x = (
                    np.einsum("bf,bf->b", pu, qi) - np.einsum("bf,bf->b", pu, qj)
                    + self.item_bias[i] - self.item_bias[j]
                )
                sig = 1.0 / (1.0 + np.exp(np.clip(x, -30, 30)))  # σ(−x)
                lr, reg = cfg.learning_rate, cfg.regularisation
                np.add.at(self.user_factors, u, lr * (sig[:, None] * (qi - qj) - reg * pu))
                np.add.at(self.item_factors, i, lr * (sig[:, None] * pu - reg * qi))
                np.add.at(self.item_factors, j, lr * (-sig[:, None] * pu - reg * qj))
                np.add.at(self.item_bias, i, lr * (sig - reg * self.item_bias[i]))
                np.add.at(self.item_bias, j, lr * (-sig - reg * self.item_bias[j]))
        return self

    def predict(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        if self.user_factors is None:
            raise RuntimeError("fit the model first")
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        return (
            np.einsum("bf,bf->b", self.user_factors[users], self.item_factors[items])
            + self.item_bias[items]
        )


class PopularityRanker:
    """Rank items by training interaction count — the zero-personalisation floor."""

    def __init__(self) -> None:
        self.popularity: np.ndarray | None = None

    def fit(self, task: RecommendationTask) -> "PopularityRanker":
        counts = np.zeros(task.dataset.num_items)
        np.add.at(counts, task.train_items, 1.0)
        self.popularity = counts
        return self

    def predict(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        if self.popularity is None:
            raise RuntimeError("fit the model first")
        return self.popularity[np.asarray(items, dtype=np.int64)]
