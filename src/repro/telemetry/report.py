"""Structured telemetry snapshots: JSON export and a human-readable table.

The snapshot schema (``schema_version`` 1) is the contract future perf PRs
regress against — ``BENCH_telemetry.json`` is a serialised snapshot::

    {
      "schema_version": 1,
      "meta":     {"enabled": bool, "note": str, ...},
      "counters": {name: int},
      "gauges":   {name: float},
      "spans":    {path: {count, total_s, mean_s, p50_s, p95_s, max_s}},
      "timings":  {name: {...same summary...}},   # non-span histograms
      "ops":      {op: {count, forward_s, backward_count, backward_s,
                        alloc_bytes}},             # when a profiler was active
    }

Span keys are ``/``-joined paths (``fit/epoch/batch``), so the nesting tree is
recoverable from the flat mapping.  Everything is plain JSON scalars; the file
round-trips through ``json.loads`` unchanged.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from . import metrics, profiler, tracing

__all__ = ["SCHEMA_VERSION", "snapshot", "write_snapshot", "render"]

SCHEMA_VERSION = 1


def snapshot(note: str = "", extra_meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Collect the registry, span aggregates and any active profiler's stats."""
    registry = metrics.get_registry()
    timings = registry.timings()
    spans = {
        name[len(tracing.SPAN_PREFIX):]: summary
        for name, summary in timings.items()
        if name.startswith(tracing.SPAN_PREFIX)
    }
    plain_timings = {
        name: summary for name, summary in timings.items()
        if not name.startswith(tracing.SPAN_PREFIX)
    }
    meta: Dict[str, Any] = {
        "enabled": metrics.is_enabled(),
        "note": note,
        "span_dropped": tracing.dropped_records(),
    }
    if extra_meta:
        meta.update(extra_meta)
    active = profiler.active_profiler()
    return {
        "schema_version": SCHEMA_VERSION,
        "meta": meta,
        "counters": registry.counters(),
        "gauges": registry.gauges(),
        "spans": spans,
        "timings": plain_timings,
        "ops": active.snapshot() if active is not None else {},
    }


def write_snapshot(path: str, note: str = "", extra_meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Dump a snapshot to ``path`` as indented JSON; returns the snapshot."""
    snap = snapshot(note=note, extra_meta=extra_meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snap, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return snap


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f}ms"
    return f"{seconds * 1e6:8.1f}µs"


def render(snap: Dict[str, Any]) -> str:
    """A fixed-width table of a snapshot, for terminals and logs."""
    lines = [f"telemetry snapshot (schema v{snap['schema_version']})"]
    if snap["meta"].get("note"):
        lines.append(f"  note: {snap['meta']['note']}")

    if snap["spans"]:
        lines.append("")
        lines.append(f"  {'span path':<44} {'count':>7} {'total':>10} {'p50':>10} {'p95':>10} {'max':>10}")
        for path, s in sorted(snap["spans"].items()):
            lines.append(
                f"  {path:<44} {s['count']:>7} {_format_seconds(s['total_s']):>10}"
                f" {_format_seconds(s['p50_s']):>10} {_format_seconds(s['p95_s']):>10}"
                f" {_format_seconds(s['max_s']):>10}"
            )

    if snap["ops"]:
        lines.append("")
        lines.append(f"  {'autograd op':<16} {'count':>9} {'forward':>10} {'backward':>10} {'alloc':>12}")
        for name, s in snap["ops"].items():
            alloc_mb = s["alloc_bytes"] / (1024.0 * 1024.0)
            lines.append(
                f"  {name:<16} {s['count']:>9} {_format_seconds(s['forward_s']):>10}"
                f" {_format_seconds(s['backward_s']):>10} {alloc_mb:>10.2f}MB"
            )

    if snap["counters"]:
        lines.append("")
        for name, value in sorted(snap["counters"].items()):
            lines.append(f"  {name:<44} {value:>10}")

    if snap["gauges"]:
        lines.append("")
        for name, value in sorted(snap["gauges"].items()):
            lines.append(f"  {name:<44} {value:>14.4f}")
    return "\n".join(lines)
