"""Thread-safe counters, gauges and timing histograms behind a global registry.

This module is deliberately dependency-free (stdlib only): telemetry must be
importable everywhere — including the autograd layer — without creating import
cycles or pulling numerical dependencies into the observability path.

The whole subsystem sits behind an on/off switch:

* the ``REPRO_TELEMETRY`` environment variable (``0``/``off``/``false``
  disables it; anything else, including unset, leaves it enabled);
* :func:`set_enabled` overrides the environment for the current process
  (``None`` restores environment control);
* :func:`disabled` / :func:`enabled` are scoped context-manager overrides.

When disabled, every recording helper returns after a single flag check, so
the instrumentation scattered through the hot paths costs near nothing.
"""

from __future__ import annotations

import math
import os
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "ENV_VAR",
    "Counter",
    "Gauge",
    "TimingHistogram",
    "MetricsRegistry",
    "get_registry",
    "reset",
    "is_enabled",
    "set_enabled",
    "enabled",
    "disabled",
    "increment",
    "set_gauge",
    "record_timing",
    "quantile",
]

ENV_VAR = "REPRO_TELEMETRY"

_FALSY = frozenset({"0", "off", "false", "no", "disabled"})

#: process-level override; ``None`` means "consult the environment variable"
_enabled_override: Optional[bool] = None


def is_enabled() -> bool:
    """Whether telemetry recording is currently on."""
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get(ENV_VAR, "1").strip().lower() not in _FALSY


def set_enabled(value: Optional[bool]) -> None:
    """Force telemetry on/off for this process; ``None`` restores env control."""
    global _enabled_override
    _enabled_override = value


@contextmanager
def enabled() -> Iterator[None]:
    """Force telemetry on within the block, then restore the previous state."""
    global _enabled_override
    previous = _enabled_override
    _enabled_override = True
    try:
        yield
    finally:
        _enabled_override = previous


@contextmanager
def disabled() -> Iterator[None]:
    """Force telemetry off within the block, then restore the previous state."""
    global _enabled_override
    previous = _enabled_override
    _enabled_override = False
    try:
        yield
    finally:
        _enabled_override = previous


def quantile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted data (numpy's default).

    Kept as a small pure function so the tests can check it directly against
    ``np.quantile(..., method="linear")`` without this module importing numpy.
    """
    if not sorted_values:
        raise ValueError("quantile of empty data")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    position = q * (len(sorted_values) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(sorted_values[low])
    fraction = position - low
    return float(sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction)


class Counter:
    """A monotonically increasing count (events, samples, examples)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self._value += int(amount)

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A point-in-time value (pool size, learning rate, bytes held)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class TimingHistogram:
    """Ring-buffer timing distribution with exact count/total and windowed quantiles.

    ``count``/``total`` cover every recorded sample; the quantiles (p50/p95)
    and ``max`` are computed over the most recent ``capacity`` samples so a
    long run's summary reflects its steady state without unbounded memory.
    """

    __slots__ = ("name", "capacity", "_buffer", "_next", "_count", "_total", "_max", "_lock")

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._buffer: List[float] = []
        self._next = 0
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    def record(self, seconds: float) -> None:
        seconds = float(seconds)
        with self._lock:
            self._count += 1
            self._total += seconds
            if seconds > self._max:
                self._max = seconds
            if len(self._buffer) < self.capacity:
                self._buffer.append(seconds)
            else:
                self._buffer[self._next] = seconds
                self._next = (self._next + 1) % self.capacity

    def samples(self) -> List[float]:
        """The retained (windowed) samples, unordered."""
        with self._lock:
            return list(self._buffer)

    def percentile(self, q: float) -> float:
        """Windowed quantile in [0, 1]; 0.0 when nothing was recorded."""
        data = sorted(self.samples())
        if not data:
            return 0.0
        return quantile(data, q)

    def summary(self) -> Dict[str, float]:
        with self._lock:
            data = sorted(self._buffer)
            count, total, peak = self._count, self._total, self._max
        if not data:
            return {"count": 0, "total_s": 0.0, "mean_s": 0.0, "p50_s": 0.0, "p95_s": 0.0, "max_s": 0.0}
        return {
            "count": count,
            "total_s": total,
            "mean_s": total / count,
            "p50_s": quantile(data, 0.50),
            "p95_s": quantile(data, 0.95),
            "max_s": peak,
        }

    def reset(self) -> None:
        with self._lock:
            self._buffer = []
            self._next = 0
            self._count = 0
            self._total = 0.0
            self._max = 0.0

    def state(self) -> Dict[str, object]:
        """Picklable snapshot — exact count/total/max plus windowed samples.

        The inverse, :meth:`merge_state`, folds a snapshot (possibly from
        another process) into this histogram: counts and totals add, the max
        takes the max, and the sample windows concatenate up to ``capacity``
        (the window is an unordered quantile reservoir, so concatenation is
        the right merge).
        """
        with self._lock:
            return {
                "count": self._count,
                "total_s": self._total,
                "max_s": self._max,
                "samples": list(self._buffer),
            }

    def merge_state(self, state: Dict[str, object]) -> None:
        samples = [float(s) for s in state.get("samples", ())]
        with self._lock:
            self._count += int(state.get("count", 0))
            self._total += float(state.get("total_s", 0.0))
            self._max = max(self._max, float(state.get("max_s", 0.0)))
            for sample in samples:
                if len(self._buffer) < self.capacity:
                    self._buffer.append(sample)
                else:
                    self._buffer[self._next] = sample
                    self._next = (self._next + 1) % self.capacity


class MetricsRegistry:
    """Named metric store; get-or-create accessors are thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, TimingHistogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str, capacity: int = 4096) -> TimingHistogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = TimingHistogram(name, capacity)
            return metric

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return {name: g.value for name, g in sorted(self._gauges.items())}

    def timings(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            histograms = list(self._histograms.items())
        return {name: h.summary() for name, h in sorted(histograms)}

    def histograms(self) -> Dict[str, TimingHistogram]:
        """The live histogram objects (Prometheus exposition reads samples)."""
        with self._lock:
            return dict(self._histograms)

    def reset(self) -> None:
        """Drop every metric (used between tests and bench runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _registry


def reset() -> None:
    """Clear the global registry (companion span store resets separately)."""
    _registry.reset()


# --------------------------------------------------------------- cheap helpers
# The hot paths call these; each is a flag check away from a no-op.

def increment(name: str, amount: int = 1) -> None:
    if is_enabled():
        _registry.counter(name).increment(amount)


def set_gauge(name: str, value: float) -> None:
    if is_enabled():
        _registry.gauge(name).set(value)


def record_timing(name: str, seconds: float) -> None:
    if is_enabled():
        _registry.histogram(name).record(seconds)
