"""Dependency-free telemetry: metrics, spans, an autograd profiler, reports.

The observability layer for the whole system.  Four pieces:

* :mod:`~repro.telemetry.metrics` — thread-safe counters, gauges and
  ring-buffer timing histograms behind a global registry, with a
  ``REPRO_TELEMETRY`` off-switch and near-zero disabled overhead;
* :mod:`~repro.telemetry.tracing` — ``span(name)`` context manager /
  decorator producing nestable wall-clock spans with a flat export;
* :mod:`~repro.telemetry.profiler` — :class:`AutogradProfiler`, which meters
  every autograd primitive (counts, forward/backward time, allocation);
* :mod:`~repro.telemetry.report` — JSON snapshots (the
  ``BENCH_telemetry.json`` schema) and a human-readable table.

Instrumentation must never change numerics: spans and counters read the clock,
never the RNG, and the determinism suite verifies predictions are bit-identical
with telemetry on and off.
"""

from . import metrics, profiler, report, tracing
from .bench import run_telemetry_bench
from .metrics import (
    ENV_VAR,
    Counter,
    Gauge,
    MetricsRegistry,
    TimingHistogram,
    disabled,
    enabled,
    get_registry,
    increment,
    is_enabled,
    record_timing,
    reset,
    set_enabled,
    set_gauge,
)
from .profiler import AutogradProfiler, active_profiler
from .report import render, snapshot, write_snapshot
from .tracing import (
    activate_trace,
    current_path,
    current_trace,
    deactivate_trace,
    dropped_records,
    export_spans,
    reset_spans,
    span,
    span_summaries,
)

__all__ = [
    "ENV_VAR",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "TimingHistogram",
    "AutogradProfiler",
    "active_profiler",
    "span",
    "current_path",
    "current_trace",
    "activate_trace",
    "deactivate_trace",
    "export_spans",
    "dropped_records",
    "span_summaries",
    "reset_spans",
    "get_registry",
    "reset",
    "is_enabled",
    "set_enabled",
    "enabled",
    "disabled",
    "increment",
    "set_gauge",
    "record_timing",
    "snapshot",
    "write_snapshot",
    "render",
    "run_telemetry_bench",
    "metrics",
    "tracing",
    "profiler",
    "report",
]
