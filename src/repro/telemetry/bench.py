"""The telemetry benchmark: a SMOKE-scale train+predict cycle, fully metered.

This is the producer of ``BENCH_telemetry.json`` — the repo's performance
baseline.  It resets the registry, forces telemetry on, installs the autograd
profiler, runs one AGNN fit + test-set predict at the requested scale, and
writes/returns the snapshot.  Future perf PRs rerun it and diff the span and
op timings against the committed baseline.

Run it via the CLI::

    python -m repro.cli telemetry-bench --output BENCH_telemetry.json
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from . import metrics, report, tracing
from .profiler import AutogradProfiler

__all__ = ["EXPECTED_SPAN_PATHS", "run_telemetry_bench"]

#: span paths every telemetry-bench snapshot must contain with non-zero time —
#: the regression tripwire checked by benchmarks/test_perf_baseline.py.
EXPECTED_SPAN_PATHS = (
    "experiment",
    "experiment/fit",
    "experiment/fit/prepare/agnn.prepare/graph.build/graph.proximity",
    "experiment/fit/prepare/agnn.prepare/graph.build/graph.pool",
    "experiment/fit/epoch",
    "experiment/fit/epoch/agnn.resample/graph.neighbours",
    "experiment/fit/epoch/batch",
    "experiment/fit/epoch/batch/agnn.encode",
    "experiment/fit/epoch/batch/autograd.backward",
    "experiment/fit/epoch/batch/evae.loss",
    "experiment/predict/agnn.predict_scores",
    "experiment/predict/agnn.predict_scores/agnn.refine_cache",
    "experiment/predict/agnn.predict_scores/agnn.generate_cold/evae.generate",
)


def run_telemetry_bench(
    dataset: str = "ML-100K",
    scenario: str = "item_cold",
    scale_name: str = "smoke",
    epochs: Optional[int] = None,
    output: Optional[str] = "BENCH_telemetry.json",
) -> Dict[str, Any]:
    """Run the metered train+predict cycle; write ``output`` unless ``None``."""
    # Imported here: bench pulls in the full model stack, while the rest of
    # repro.telemetry stays importable from anywhere without cycles.
    from ..experiments.configs import get_scale
    from ..experiments.runner import run_model
    from ..cli import model_factory

    scale = get_scale(scale_name)
    train_config = scale.train if epochs is None else replace(scale.train, epochs=epochs)
    data = scale.datasets[dataset]()

    metrics.reset()
    tracing.reset_spans()
    with metrics.enabled():
        with AutogradProfiler():
            fit = run_model(model_factory("AGNN", scale), data, scenario, scale, train_config=train_config)
            snap = report.snapshot(
                note="telemetry-bench",
                extra_meta={
                    "dataset": dataset,
                    "scenario": scenario,
                    "scale": scale_name,
                    "epochs_trained": fit.history.num_epochs,
                    "rmse": fit.result.rmse,
                    "mae": fit.result.mae,
                },
            )
    if output is not None:
        import json

        with open(output, "w", encoding="utf-8") as handle:
            json.dump(snap, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return snap
