"""Nestable wall-clock spans: a context manager / decorator plus a flat export.

A span measures one region of code.  Spans nest on a per-thread stack, and a
completed span is recorded under its *path* — stack names joined with ``/`` —
so the hierarchy survives flattening::

    with span("fit"):
        with span("epoch"):
            with span("batch"):
                ...

records ``fit``, ``fit/epoch`` and ``fit/epoch/batch``.  Per-path duration
distributions live in the global metrics registry (prefix ``span.``), giving
every path a p50/p95/max for free; the raw recent records are kept in a
bounded list for export and debugging.

Spans are exception-safe — the stack is popped and the duration recorded even
when the body raises (the record is flagged ``ok=False``) — and they respect
the global ``REPRO_TELEMETRY`` switch: disabled spans skip all bookkeeping.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from . import metrics

__all__ = [
    "span",
    "current_path",
    "export_spans",
    "span_summaries",
    "reset_spans",
    "SPAN_PREFIX",
    "MAX_RECORDS",
]

#: registry histogram prefix for span paths
SPAN_PREFIX = "span."

#: cap on retained raw records; aggregates in the registry are unaffected
MAX_RECORDS = 20_000

_local = threading.local()
_records_lock = threading.Lock()
_records: List[Dict[str, Any]] = []
_dropped = 0


def _stack() -> List[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_path() -> str:
    """The active span path for this thread ('' outside any span)."""
    return "/".join(_stack())


class span:
    """Context manager *and* decorator measuring one named region.

    As a decorator it opens a fresh span per call, so a decorated function is
    safely re-entrant and records under whatever path is active at call time.
    """

    __slots__ = ("name", "_active", "_path", "_start")

    def __init__(self, name: str) -> None:
        if "/" in name:
            raise ValueError("span names must not contain '/' (reserved for paths)")
        self.name = name
        self._active = False
        self._path = ""
        self._start = 0.0

    def __enter__(self) -> "span":
        if not metrics.is_enabled():
            self._active = False
            return self
        stack = _stack()
        stack.append(self.name)
        self._path = "/".join(stack)
        self._active = True
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        if not self._active:
            return False
        duration = time.perf_counter() - self._start
        self._active = False
        stack = _stack()
        # Pop our own frame even if an inner span leaked (defensive).
        while stack and stack[-1] != self.name:
            stack.pop()
        if stack:
            stack.pop()
        metrics.get_registry().histogram(SPAN_PREFIX + self._path).record(duration)
        record = {
            "name": self.name,
            "path": self._path,
            "depth": self._path.count("/"),
            "duration_s": duration,
            "ok": exc_type is None,
        }
        global _dropped
        with _records_lock:
            if len(_records) < MAX_RECORDS:
                _records.append(record)
            else:
                _dropped += 1
        return False

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            with span(self.name):
                return fn(*args, **kwargs)

        return wrapped


def export_spans() -> List[Dict[str, Any]]:
    """Flat copy of the retained raw span records, in completion order."""
    with _records_lock:
        return [dict(record) for record in _records]


def dropped_records() -> int:
    """How many raw records were discarded after MAX_RECORDS (aggregates kept)."""
    with _records_lock:
        return _dropped


def span_summaries() -> Dict[str, Dict[str, float]]:
    """Per-path duration summaries (count/total/p50/p95/max), path-keyed."""
    timings = metrics.get_registry().timings()
    return {
        name[len(SPAN_PREFIX):]: summary
        for name, summary in timings.items()
        if name.startswith(SPAN_PREFIX)
    }


def reset_spans() -> None:
    """Drop raw records and this thread's stack (registry reset is separate)."""
    global _dropped
    with _records_lock:
        _records.clear()
        _dropped = 0
    _local.stack = []
