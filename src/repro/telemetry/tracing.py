"""Nestable wall-clock spans: a context manager / decorator plus a flat export.

A span measures one region of code.  Spans nest on a per-thread stack, and a
completed span is recorded under its *path* — stack names joined with ``/`` —
so the hierarchy survives flattening::

    with span("fit"):
        with span("epoch"):
            with span("batch"):
                ...

records ``fit``, ``fit/epoch`` and ``fit/epoch/batch``.  Per-path duration
distributions live in the global metrics registry (prefix ``span.``), giving
every path a p50/p95/max for free; the raw recent records are kept in a
bounded list for export and debugging.

Every record additionally carries *trace context*: a process-unique
``span_id``, the ``parent_span_id`` of the enclosing span (or of the remote
parent that minted the active trace), the ``trace_id``/``request_id`` of the
active distributed trace (if any), plus ``pid``/``tid`` and the wall-clock
completion ``ts`` — enough to stitch records from N processes into one timeline
(see :mod:`repro.obs.trace` and :mod:`repro.obs.fleet`).  The ambient trace
lives in a :class:`contextvars.ContextVar` so it propagates naturally within
a thread and can be re-activated explicitly after a queue or pipe hop:

* :func:`activate_trace` / :func:`deactivate_trace` install a wire triple
  ``(trace_id, parent_span_id, request_id)`` for the current context;
* :func:`current_trace` returns that triple with ``parent_span_id`` replaced
  by the innermost *live* span of this thread — the value a child hop should
  carry so its spans parent correctly.

Id generation never touches any numerical RNG (a few bytes of
``os.urandom`` at import plus a per-process counter), keeping instrumented
runs bitwise-identical to uninstrumented ones.

Spans are exception-safe — the stack is popped and the duration recorded even
when the body raises (the record is flagged ``ok=False``) — and they respect
the global ``REPRO_TELEMETRY`` switch: disabled spans skip all bookkeeping.
When the bounded record list saturates, further records are counted in
:func:`dropped_records` *and* in the ``span.dropped`` registry counter, so
silent trace truncation is visible in every metrics surface.
"""

from __future__ import annotations

import contextvars
import functools
import itertools
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import metrics

__all__ = [
    "span",
    "current_path",
    "current_span_id",
    "current_trace",
    "activate_trace",
    "deactivate_trace",
    "new_span_id",
    "new_trace_id",
    "export_spans",
    "dropped_records",
    "span_summaries",
    "reset_spans",
    "SPAN_PREFIX",
    "DROPPED_COUNTER",
    "MAX_RECORDS",
]

#: registry histogram prefix for span paths
SPAN_PREFIX = "span."

#: registry counter bumped for every raw record discarded past MAX_RECORDS
DROPPED_COUNTER = "span.dropped"

#: cap on retained raw records; aggregates in the registry are unaffected
MAX_RECORDS = 20_000

_local = threading.local()
_records_lock = threading.Lock()
_records: List[Dict[str, Any]] = []
_dropped = 0

#: the active distributed trace as a wire triple
#: ``(trace_id, parent_span_id, request_id)`` — ``None`` outside any trace
_trace_var: "contextvars.ContextVar[Optional[Tuple[str, str, str]]]" = (
    contextvars.ContextVar("repro_trace", default=None)
)

#: per-process id material: a random prefix (urandom, *not* any model RNG)
#: plus a monotone counter; ``spawn`` workers re-import and get fresh bytes
_ID_PREFIX = os.urandom(4).hex()
_id_counter = itertools.count(1)

#: one wall-clock read at import maps the perf_counter timeline onto epoch
#: time, so span records share a consistent clock without a syscall per span;
#: ``spawn`` workers re-import and calibrate their own offset
_EPOCH_OFFSET = time.time() - time.perf_counter()
_PID = os.getpid()


def new_span_id() -> str:
    """A process-unique 16-hex-char span id (no numerical RNG involved)."""
    return f"{_ID_PREFIX}{next(_id_counter):08x}"


def new_trace_id() -> str:
    """A fresh 24-hex-char trace id, unique across processes.

    Same scheme as span ids (import-time urandom prefix + counter): no
    syscall on the per-request mint path, and uniqueness across processes
    rides on the per-process prefix exactly as span ids already do.
    """
    return f"{_ID_PREFIX}{next(_id_counter):016x}"


def _stack() -> List[Tuple[str, str]]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_path() -> str:
    """The active span path for this thread ('' outside any span)."""
    return "/".join(name for name, _ in _stack())


def current_span_id() -> str:
    """The innermost live span id of this thread ('' outside any span)."""
    stack = _stack()
    return stack[-1][1] if stack else ""


def activate_trace(wire: Optional[Tuple[str, str, str]]) -> "contextvars.Token":
    """Install a wire triple ``(trace_id, parent_span_id, request_id)``.

    Returns the token to hand back to :func:`deactivate_trace`.  Passing
    ``None`` explicitly deactivates tracing for the scope (useful around
    work that must not inherit a request's trace).
    """
    return _trace_var.set(wire)


def deactivate_trace(token: "contextvars.Token") -> None:
    """Restore the trace context captured by :func:`activate_trace`."""
    _trace_var.reset(token)


def current_trace() -> Optional[Tuple[str, str, str]]:
    """The wire triple a child hop should carry, or ``None`` outside a trace.

    The ``parent_span_id`` slot is the innermost live span of *this* thread
    when one is open — so a queue submit or pipe send captures the span that
    actually caused it — and the remote parent's span otherwise.
    """
    wire = _trace_var.get()
    if wire is None:
        return None
    stack = _stack()
    if stack:
        return (wire[0], stack[-1][1], wire[2])
    return wire


class span:
    """Context manager *and* decorator measuring one named region.

    As a decorator it opens a fresh span per call, so a decorated function is
    safely re-entrant and records under whatever path is active at call time.
    ``attrs`` (a shallow-copied dict) rides on the exported record —
    :meth:`annotate` adds to it mid-span (e.g. ids only known after entry).
    """

    __slots__ = ("name", "_active", "_path", "_start", "_span_id",
                 "_parent_id", "_trace", "_attrs")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        if "/" in name:
            raise ValueError("span names must not contain '/' (reserved for paths)")
        self.name = name
        self._active = False
        self._path = ""
        self._start = 0.0
        self._span_id = ""
        self._parent_id = ""
        self._trace: Optional[Tuple[str, str, str]] = None
        self._attrs = dict(attrs) if attrs else None

    def annotate(self, **attrs: Any) -> "span":
        """Attach extra fields to this span's exported record (active spans only)."""
        if self._active:
            if self._attrs is None:
                self._attrs = {}
            self._attrs.update(attrs)
        return self

    def __enter__(self) -> "span":
        if not metrics.is_enabled():
            self._active = False
            return self
        stack = _stack()
        trace = _trace_var.get()
        if stack:
            self._parent_id = stack[-1][1]
        elif trace is not None:
            self._parent_id = trace[1]
        else:
            self._parent_id = ""
        self._trace = trace
        self._span_id = new_span_id()
        stack.append((self.name, self._span_id))
        self._path = "/".join(name for name, _ in stack)
        self._active = True
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        if not self._active:
            return False
        end = time.perf_counter()
        duration = end - self._start
        self._active = False
        stack = _stack()
        # Pop our own frame even if an inner span leaked (defensive).
        while stack and stack[-1][0] != self.name:
            stack.pop()
        if stack:
            stack.pop()
        metrics.get_registry().histogram(SPAN_PREFIX + self._path).record(duration)
        record = {
            "name": self.name,
            "path": self._path,
            "depth": self._path.count("/"),
            "duration_s": duration,
            "ok": exc_type is None,
            # Completion wall-clock: the Chrome exporter subtracts duration to
            # place the slice, so ts and duration must share one timeline.
            "ts": _EPOCH_OFFSET + end,
            "pid": _PID,
            "tid": threading.get_ident(),
            "span_id": self._span_id,
            "parent_span_id": self._parent_id,
            "trace_id": self._trace[0] if self._trace is not None else "",
            "request_id": self._trace[2] if self._trace is not None else "",
        }
        if self._attrs:
            record["attrs"] = self._attrs
        global _dropped
        dropped_now = False
        with _records_lock:
            if len(_records) < MAX_RECORDS:
                _records.append(record)
            else:
                _dropped += 1
                dropped_now = True
        if dropped_now:
            # Outside the records lock (the counter has its own).  Saturation
            # must be *visible*, not a silent truncation of the trace.
            metrics.get_registry().counter(DROPPED_COUNTER).increment()
        return False

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            with span(self.name):
                return fn(*args, **kwargs)

        return wrapped


def export_spans(include_dropped: bool = False):
    """Flat copy of the retained raw span records, in completion order.

    With ``include_dropped`` the return value is instead a dict
    ``{"records": [...], "dropped": n}`` so consumers see how many records
    were discarded after :data:`MAX_RECORDS` alongside what survived.
    """
    with _records_lock:
        records = [dict(record) for record in _records]
        if include_dropped:
            return {"records": records, "dropped": _dropped}
        return records


def dropped_records() -> int:
    """How many raw records were discarded after MAX_RECORDS (aggregates kept)."""
    with _records_lock:
        return _dropped


def span_summaries(include_dropped: bool = False) -> Dict[str, Dict[str, float]]:
    """Per-path duration summaries (count/total/p50/p95/max), path-keyed.

    With ``include_dropped`` the mapping gains a synthetic ``"(dropped)"``
    entry carrying the saturation count, so consumers of the summary view see
    ring-buffer truncation without a second call.
    """
    timings = metrics.get_registry().timings()
    out = {
        name[len(SPAN_PREFIX):]: summary
        for name, summary in timings.items()
        if name.startswith(SPAN_PREFIX)
    }
    if include_dropped:
        out["(dropped)"] = {"count": float(dropped_records())}
    return out


def reset_spans() -> None:
    """Drop raw records and this thread's stack (registry reset is separate)."""
    global _dropped
    with _records_lock:
        _records.clear()
        _dropped = 0
    _local.stack = []
