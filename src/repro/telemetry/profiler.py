"""Autograd op profiler: invocation counts, forward/backward time, allocation.

The autograd engine funnels every differentiable primitive through the public
functions of :mod:`repro.autograd.ops` (the Tensor dunders delegate there via
``ops.<name>`` attribute lookups), so profiling the engine needs no changes to
the ops themselves: :class:`AutogradProfiler` rebinds each op module attribute
to a timing wrapper on :meth:`install` and restores the originals on
:meth:`uninstall`.

Per op the profiler records:

* ``count`` / ``forward_s`` — invocations and wall-clock forward time.  Ops
  that build on other ops (``mean`` → ``sum``/``mul``, ``norm`` → four
  primitives) time *inclusively*, so composite ops also count their pieces.
* ``backward_count`` / ``backward_s`` — the op's backward closure is wrapped
  on the returned Tensor, timing each gradient scatter.
* ``alloc_bytes`` — estimated output allocation, ``result.data.nbytes``
  (dense float64 substrate, so shape → bytes is exact for outputs; gradient
  buffers are not included).

The profiler is reference-counted via context-manager use and safe to enter
while telemetry is disabled (it simply records nothing until installed).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = ["OpStat", "AutogradProfiler", "active_profiler"]


@dataclass
class OpStat:
    """Accumulated statistics for one autograd primitive."""

    count: int = 0
    forward_s: float = 0.0
    backward_count: int = 0
    backward_s: float = 0.0
    alloc_bytes: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "forward_s": self.forward_s,
            "backward_count": self.backward_count,
            "backward_s": self.backward_s,
            "alloc_bytes": self.alloc_bytes,
        }


_active: Optional["AutogradProfiler"] = None
_active_lock = threading.Lock()


def active_profiler() -> Optional["AutogradProfiler"]:
    """The installed profiler, if any (used by report snapshots)."""
    return _active


class AutogradProfiler:
    """Wraps ``repro.autograd.ops`` to meter the engine; one active at a time."""

    def __init__(self) -> None:
        self.stats: Dict[str, OpStat] = {}
        self._lock = threading.Lock()
        self._originals: Optional[Dict[str, Callable]] = None

    # ------------------------------------------------------------ wrapping
    def _stat(self, name: str) -> OpStat:
        with self._lock:
            stat = self.stats.get(name)
            if stat is None:
                stat = self.stats[name] = OpStat()
            return stat

    def _wrap(self, name: str, fn: Callable) -> Callable:
        from ..autograd.tensor import Tensor

        stat = self._stat(name)

        def profiled(*args, **kwargs):
            start = time.perf_counter()
            out = fn(*args, **kwargs)
            elapsed = time.perf_counter() - start
            with self._lock:
                stat.count += 1
                stat.forward_s += elapsed
                if isinstance(out, Tensor):
                    stat.alloc_bytes += out.data.nbytes
            if isinstance(out, Tensor) and out._backward is not None:
                inner = out._backward

                def timed_backward(grad):
                    t0 = time.perf_counter()
                    inner(grad)
                    dt = time.perf_counter() - t0
                    with self._lock:
                        stat.backward_count += 1
                        stat.backward_s += dt

                out._backward = timed_backward
            return out

        profiled.__name__ = f"profiled_{name}"
        profiled.__wrapped__ = fn
        return profiled

    # ------------------------------------------------------------ lifecycle
    def install(self) -> "AutogradProfiler":
        """Patch every public op; raises if another profiler is active."""
        global _active
        from ..autograd import ops

        with _active_lock:
            if _active is self:
                return self
            if _active is not None:
                raise RuntimeError("another AutogradProfiler is already installed")
            originals = {}
            for name in ops.__all__:
                fn = getattr(ops, name)
                originals[name] = fn
                setattr(ops, name, self._wrap(name, fn))
            self._originals = originals
            _active = self
        return self

    def uninstall(self) -> None:
        """Restore the original ops; idempotent."""
        global _active
        from ..autograd import ops

        with _active_lock:
            if self._originals is None:
                return
            for name, fn in self._originals.items():
                setattr(ops, name, fn)
            self._originals = None
            if _active is self:
                _active = None

    def __enter__(self) -> "AutogradProfiler":
        return self.install()

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.uninstall()
        return False

    # ------------------------------------------------------------ inspection
    def op_count(self, name: str) -> int:
        with self._lock:
            stat = self.stats.get(name)
            return stat.count if stat else 0

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-op stats, sorted by descending total (forward+backward) time."""
        with self._lock:
            items = [(name, stat.as_dict()) for name, stat in self.stats.items()]
        items.sort(key=lambda kv: -(kv[1]["forward_s"] + kv[1]["backward_s"]))
        return dict(items)

    def reset(self) -> None:
        # Zero in place: installed wrappers hold references to their OpStat,
        # so replacing the dict would silently disconnect them.
        with self._lock:
            for stat in self.stats.values():
                stat.count = 0
                stat.forward_s = 0.0
                stat.backward_count = 0
                stat.backward_s = 0.0
                stat.alloc_bytes = 0
