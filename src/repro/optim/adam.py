"""Adam and AdamW — the paper trains AGNN with Adam (Sec. 4.1.4)."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from ..autograd import SparseRowGrad
from ..nn.module import Parameter
from .base import Optimizer

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction.

    Parameters whose gradient arrives as a :class:`SparseRowGrad` are updated
    through a row-restricted path that is *bitwise-identical* to the dense
    update: every row that has ever received gradient is revisited each step
    (its moments must keep decaying), while never-touched rows have moments of
    exactly zero and a dense update of exactly zero, so skipping them changes
    nothing.  Once most rows are live the contiguous dense update is cheaper
    than gathering, so the sparse path hands over automatically.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.0005,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: Dict[int, int] = {}
        self._active_rows: Dict[int, np.ndarray] = {}

    def _grad_with_decay(self, param: Parameter):
        grad = param.grad
        if self.weight_decay:
            # L2 decay gradients every row, so a sparse gradient densifies.
            if isinstance(grad, SparseRowGrad):
                grad = grad.to_dense()
            grad = grad + self.weight_decay * param.data
        return grad

    def _update(self, param: Parameter) -> None:
        grad = self._grad_with_decay(param)
        if isinstance(grad, SparseRowGrad):
            self._update_sparse(param, grad)
        else:
            self._update_dense(param, grad)

    def _update_dense(self, param: Parameter, grad: np.ndarray) -> None:
        key = id(param)
        m = self._m.setdefault(key, np.zeros_like(param.data))
        v = self._v.setdefault(key, np.zeros_like(param.data))
        t = self._t.get(key, 0) + 1
        self._t[key] = t
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad ** 2
        # In-place bias-corrected step: the same expressions as
        # lr * m_hat / (sqrt(v_hat) + eps), evaluated without the temporaries.
        update = m / (1.0 - self.beta1 ** t)
        update *= self.lr
        denom = v / (1.0 - self.beta2 ** t)
        np.sqrt(denom, out=denom)
        denom += self.eps
        update /= denom
        param.data -= update

    def _update_sparse(self, param: Parameter, grad: SparseRowGrad) -> None:
        key = id(param)
        active = self._active_rows.setdefault(key, np.zeros(param.data.shape[0], dtype=bool))
        active[grad.rows] = True
        if 2 * int(np.count_nonzero(active)) >= active.size:
            self._update_dense(param, grad.to_dense())
            return
        rows = np.flatnonzero(active)
        g = np.zeros((rows.size, param.data.shape[1]))
        g[np.searchsorted(rows, grad.rows)] = grad.values
        m = self._m.setdefault(key, np.zeros_like(param.data))
        v = self._v.setdefault(key, np.zeros_like(param.data))
        t = self._t.get(key, 0) + 1
        self._t[key] = t
        m_rows = m[rows]
        m_rows *= self.beta1
        m_rows += (1.0 - self.beta1) * g
        m[rows] = m_rows
        v_rows = v[rows]
        v_rows *= self.beta2
        v_rows += (1.0 - self.beta2) * g ** 2
        v[rows] = v_rows
        update = m_rows / (1.0 - self.beta1 ** t)
        update *= self.lr
        denom = v_rows / (1.0 - self.beta2 ** t)
        np.sqrt(denom, out=denom)
        denom += self.eps
        update /= denom
        param.data[rows] -= update


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def _grad_with_decay(self, param: Parameter):
        # Decoupled decay is applied directly to the weights in _update, so
        # the gradient passes through untouched (and may stay sparse).
        return param.grad

    def _update(self, param: Parameter) -> None:
        if self.weight_decay:
            param.data -= self.lr * self.weight_decay * param.data
        super()._update(param)
