"""Adam and AdamW — the paper trains AGNN with Adam (Sec. 4.1.4)."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from ..nn.module import Parameter
from .base import Optimizer

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.0005,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: Dict[int, int] = {}

    def _grad_with_decay(self, param: Parameter) -> np.ndarray:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        return grad

    def _update(self, param: Parameter) -> None:
        grad = self._grad_with_decay(param)
        key = id(param)
        m = self._m.setdefault(key, np.zeros_like(param.data))
        v = self._v.setdefault(key, np.zeros_like(param.data))
        t = self._t.get(key, 0) + 1
        self._t[key] = t
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad ** 2
        m_hat = m / (1.0 - self.beta1 ** t)
        v_hat = v / (1.0 - self.beta2 ** t)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def _grad_with_decay(self, param: Parameter) -> np.ndarray:
        return param.grad

    def _update(self, param: Parameter) -> None:
        if self.weight_decay:
            param.data -= self.lr * self.weight_decay * param.data
        super()._update(param)
