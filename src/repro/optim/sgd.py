"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from ..nn.module import Parameter
from .base import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            vel = self._velocity.setdefault(id(param), np.zeros_like(param.data))
            vel *= self.momentum
            vel += grad
            grad = vel
        param.data -= self.lr * grad
