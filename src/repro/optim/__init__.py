"""Optimizers and training-time gradient utilities."""

from .adam import Adam, AdamW
from .base import Optimizer
from .sgd import SGD
from .utils import ExponentialDecay, StepDecay, clip_grad_norm

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm", "ExponentialDecay", "StepDecay"]
