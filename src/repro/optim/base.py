"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

from ..nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Holds a parameter list and applies per-step updates from gradients."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self._step_count = 0

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        self._step_count += 1
        for param in self.params:
            if param.grad is not None:
                self._update(param)

    def _update(self, param: Parameter) -> None:
        raise NotImplementedError

    @property
    def step_count(self) -> int:
        return self._step_count
