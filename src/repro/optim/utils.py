"""Gradient clipping and learning-rate schedules."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..autograd import SparseRowGrad
from ..nn.module import Parameter
from .base import Optimizer

__all__ = ["clip_grad_norm", "ExponentialDecay", "StepDecay"]


def _grad_sq_sum(grad) -> float:
    if isinstance(grad, SparseRowGrad):
        return grad.sq_sum()
    return float((grad ** 2).sum())


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm so callers can log it.  Sparse row gradients
    contribute only their touched rows (the rest are exact zeros) and are
    scaled in place, so clipping stays O(batch) for embedding tables.
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(_grad_sq_sum(p.grad) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            if isinstance(p.grad, SparseRowGrad):
                p.grad.scale_(scale)
            else:
                p.grad *= scale
    return total


class ExponentialDecay:
    """Multiply the optimizer's lr by ``gamma`` each time ``step`` is called."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.optimizer = optimizer
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> float:
        self._epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** self._epoch
        return self.optimizer.lr


class StepDecay:
    """Drop the lr by ``factor`` every ``every`` epochs."""

    def __init__(self, optimizer: Optimizer, every: int = 10, factor: float = 0.5) -> None:
        if every <= 0:
            raise ValueError("every must be positive")
        self.optimizer = optimizer
        self.every = every
        self.factor = factor
        self.base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> float:
        self._epoch += 1
        self.optimizer.lr = self.base_lr * self.factor ** (self._epoch // self.every)
        return self.optimizer.lr
