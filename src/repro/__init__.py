"""repro — a from-scratch reproduction of AGNN (Attribute Graph Neural Networks
for Strict Cold Start Recommendation, Qian et al., TKDE 2020 / ICDE 2023).

Subpackages
-----------
autograd    reverse-mode autodiff engine (numpy substrate)
nn          neural-network layers and losses
optim       SGD / Adam optimizers, clipping, schedules
data        synthetic MovieLens-like and Yelp-like dataset generators, splits
graphs      attribute-graph construction (proximities, candidate pools, kNN)
core        the AGNN model: interaction layer, eVAE, gated-GNN, prediction head
baselines   twelve comparison models from the paper's Table 2
train       trainer, metrics, evaluation protocol, significance tests
experiments runners that regenerate every table and figure of the paper
telemetry   counters/spans/autograd profiler + the BENCH_telemetry.json baseline
serving     online inference: model bundles, engine, live SCS onboarding, HTTP
"""

__version__ = "1.0.0"
