"""Embedding-space diagnostics for a fitted AGNN.

Quantifies the quality of the eVAE's generated preference embeddings — the
property everything else rests on: for warm nodes (where the trained
embedding exists) we can compare ``generate(attr_embed)`` against the
learned ``m`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import no_grad
from ..core.model import AGNN

__all__ = ["GenerationReport", "evaluate_generated_embeddings"]


@dataclass(frozen=True)
class GenerationReport:
    """How well the eVAE's output matches trained preference embeddings."""

    mean_cosine: float
    generated_norm: float
    trained_norm: float
    better_than_permuted: float  # fraction of nodes where gen beats a shuffled gen

    def __str__(self) -> str:
        return (
            f"cos(gen, m)={self.mean_cosine:.3f} |gen|={self.generated_norm:.3f} "
            f"|m|={self.trained_norm:.3f} beats-permuted={self.better_than_permuted:.1%}"
        )


def evaluate_generated_embeddings(
    model: AGNN,
    side: str = "item",
    rng: np.random.Generator | None = None,
) -> GenerationReport:
    """Score the eVAE against the trained embeddings of *warm* nodes.

    ``better_than_permuted`` is the key number: the fraction of warm nodes
    whose generated embedding is closer (L2) to their own trained embedding
    than a random other node's generated embedding would be.  0.5 means the
    generator carries no node-specific information; the further above 0.5,
    the more the attribute→preference mapping has been learned.
    """
    if model.task is None:
        raise RuntimeError("fit the model before analysing it")
    if side not in ("user", "item"):
        raise ValueError("side must be 'user' or 'item'")
    rng = rng or np.random.default_rng(0)

    encoder = model._encoder(side)
    cold = set(model._cold_nodes[side].tolist())
    warm = np.array([i for i in range(encoder.num_nodes) if i not in cold], dtype=np.int64)
    if len(warm) < 2:
        raise ValueError("need at least two warm nodes to analyse")

    trained = encoder.preference.weight.data[warm]
    with no_grad():
        attr_embed = encoder.attribute_embedding(warm, model._attributes[side])
        generated = model._cold_module(side).generate(attr_embed)
    if generated is None:  # null / corruption strategies generate nothing
        generated = np.zeros_like(trained)

    def _norms(x):
        return np.maximum(np.linalg.norm(x, axis=1), 1e-12)

    cosine = float(np.mean(np.sum(generated * trained, axis=1) / (_norms(generated) * _norms(trained))))

    own_distance = np.linalg.norm(generated - trained, axis=1)
    permuted = generated[rng.permutation(len(warm))]
    permuted_distance = np.linalg.norm(permuted - trained, axis=1)
    better = float(np.mean(own_distance < permuted_distance))

    return GenerationReport(
        mean_cosine=cosine,
        generated_norm=float(_norms(generated).mean()),
        trained_norm=float(_norms(trained).mean()),
        better_than_permuted=better,
    )
