"""Error breakdowns: where does a cold-start model actually lose accuracy?

Slices a fitted model's test errors by properties the paper's analysis talks
about informally — node popularity ("it might recommend the popular item to
the new user"), attribute-pool quality, and rating extremity.  Used by the
analysis example and the regression tests on model behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..data.splits import RecommendationTask
from ..train.recommender import Recommender

__all__ = ["ErrorSlice", "errors_by_popularity", "errors_by_rating_value", "cold_vs_warm_errors"]


@dataclass(frozen=True)
class ErrorSlice:
    """RMSE over one named subset of the test pairs."""

    name: str
    rmse: float
    count: int

    def __str__(self) -> str:
        return f"{self.name:<16} RMSE={self.rmse:.4f} (n={self.count})"


def _slice(name: str, errors: np.ndarray, mask: np.ndarray) -> ErrorSlice:
    selected = errors[mask]
    rmse = float(np.sqrt(np.mean(selected**2))) if len(selected) else float("nan")
    return ErrorSlice(name=name, rmse=rmse, count=int(mask.sum()))


def _test_errors(model: Recommender, task: RecommendationTask) -> np.ndarray:
    predictions = model.predict(task.test_users, task.test_items)
    return predictions - task.test_ratings


def errors_by_popularity(
    model: Recommender,
    task: RecommendationTask,
    side: str = "item",
    quantiles: Sequence[float] = (0.5,),
) -> List[ErrorSlice]:
    """Split test errors by the *attribute frequency* of the cold-side node.

    Popularity for a strict cold node cannot come from interactions (it has
    none), so we use how common its attribute values are: nodes with frequent
    attributes have many close graph neighbours; rare-attribute nodes are the
    hard tail.
    """
    if side not in ("user", "item"):
        raise ValueError("side must be 'user' or 'item'")
    errors = _test_errors(model, task)
    attrs = task.dataset.item_attributes if side == "item" else task.dataset.user_attributes
    ids = task.test_items if side == "item" else task.test_users
    column_frequency = attrs.sum(axis=0)
    node_scores = (attrs * column_frequency).sum(axis=1) / np.maximum(attrs.sum(axis=1), 1.0)
    scores = node_scores[ids]

    edges = [np.quantile(scores, q) for q in quantiles]
    bounds = [-np.inf, *edges, np.inf]
    labels = []
    for i in range(len(bounds) - 1):
        labels.append(f"attr-freq q{i}")
    return [
        _slice(label, errors, (scores > low) & (scores <= high))
        for label, low, high in zip(labels, bounds[:-1], bounds[1:])
    ]


def errors_by_rating_value(model: Recommender, task: RecommendationTask) -> List[ErrorSlice]:
    """RMSE per ground-truth star value — extreme ratings are the hard ones."""
    errors = _test_errors(model, task)
    return [
        _slice(f"rating={value:g}", errors, task.test_ratings == value)
        for value in np.unique(task.test_ratings)
    ]


def cold_vs_warm_errors(model: Recommender, task: RecommendationTask) -> Dict[str, ErrorSlice]:
    """Split test errors into pairs touching a cold node vs. fully warm pairs.

    On a strict cold split every test pair touches a cold node, so the warm
    slice is empty there; on a warm split the cold slice is empty.  The
    breakdown is most useful on *normal* cold splits, where both exist.
    """
    errors = _test_errors(model, task)
    cold_mask = np.isin(task.test_items, task.cold_items) | np.isin(task.test_users, task.cold_users)
    return {
        "cold": _slice("cold pairs", errors, cold_mask),
        "warm": _slice("warm pairs", errors, ~cold_mask),
    }
