"""Homophily diagnostics for attribute graphs.

The gated-GNN's filter gate is motivated by homophily ("birds of a feather
flock together", paper Sec. 3.3.4).  These utilities *measure* how
homophilous a constructed neighbourhood actually is — how much closer graph
neighbours are, in rating behaviour or latent taste, than random node pairs.
They power both the analysis example and the sanity assertions in the test
suite (a graph that fails them would starve the GNN of signal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.splits import RecommendationTask
from ..graphs.construction import NeighborGraph
from ..nn.functional import cosine_similarity_matrix

__all__ = ["HomophilyReport", "neighbourhood_homophily", "rating_agreement"]


@dataclass(frozen=True)
class HomophilyReport:
    """Neighbour vs. random-pair similarity for one graph."""

    neighbour_similarity: float
    random_similarity: float
    num_nodes: int

    @property
    def lift(self) -> float:
        """How many times more similar neighbours are than random pairs.

        Similarities may be negative, so the lift is reported on shifted
        values (both measures minus the global minimum of −1 for cosine).
        """
        return (self.neighbour_similarity + 1.0) / max(self.random_similarity + 1.0, 1e-12)

    def __str__(self) -> str:
        return (
            f"neighbours {self.neighbour_similarity:.4f} vs random "
            f"{self.random_similarity:.4f} (lift {self.lift:.2f}x, n={self.num_nodes})"
        )


def neighbourhood_homophily(
    graph: NeighborGraph,
    vectors: np.ndarray,
    k: int = 10,
    rng: np.random.Generator | None = None,
    num_random_pairs: int = 2000,
) -> HomophilyReport:
    """Mean cosine similarity of sampled graph neighbours vs. random pairs.

    ``vectors`` is any per-node representation — true latent factors from a
    synthetic generator, rating rows, or learned embeddings.
    """
    rng = rng or np.random.default_rng(0)
    vectors = np.asarray(vectors, dtype=np.float64)
    n = len(vectors)
    if graph.num_nodes != n:
        raise ValueError(f"graph has {graph.num_nodes} nodes but vectors has {n} rows")

    normed = vectors / np.maximum(np.linalg.norm(vectors, axis=1, keepdims=True), 1e-12)
    neighbours = graph.neighbours(k, rng)
    sims = np.einsum("nd,nkd->nk", normed, normed[neighbours])
    neighbour_similarity = float(sims.mean())

    a = rng.integers(0, n, size=num_random_pairs)
    b = rng.integers(0, n, size=num_random_pairs)
    keep = a != b
    random_similarity = float(np.einsum("nd,nd->n", normed[a[keep]], normed[b[keep]]).mean())
    return HomophilyReport(
        neighbour_similarity=neighbour_similarity,
        random_similarity=random_similarity,
        num_nodes=n,
    )


def rating_agreement(
    task: RecommendationTask,
    graph: NeighborGraph,
    side: str = "item",
    k: int = 10,
    rng: np.random.Generator | None = None,
) -> HomophilyReport:
    """Homophily measured on *training rating vectors* — do graph neighbours
    actually get rated similarly?  The operational question behind the
    paper's preference-propagation argument."""
    if side not in ("user", "item"):
        raise ValueError("side must be 'user' or 'item'")
    matrix = task.train_rating_matrix()
    vectors = matrix if side == "user" else matrix.T
    return neighbourhood_homophily(graph, vectors, k=k, rng=rng)
