"""Post-hoc analysis tools: homophily, error slicing, embedding diagnostics."""

from .embeddings import GenerationReport, evaluate_generated_embeddings
from .errors import (
    ErrorSlice,
    cold_vs_warm_errors,
    errors_by_popularity,
    errors_by_rating_value,
)
from .homophily import HomophilyReport, neighbourhood_homophily, rating_agreement

__all__ = [
    "HomophilyReport",
    "neighbourhood_homophily",
    "rating_agreement",
    "ErrorSlice",
    "errors_by_popularity",
    "errors_by_rating_value",
    "cold_vs_warm_errors",
    "GenerationReport",
    "evaluate_generated_embeddings",
]
