"""GC-MC — graph convolutional matrix completion (van den Berg et al., 2018).

One graph-convolution pass over the user–item bipartite graph (users
aggregate the free embeddings of items they rated, and vice versa), after
which side features are mixed in via a dense layer — features enter *after*
the convolution, the design the paper criticises.  A strict cold start node
has no bipartite edges, so its convolved term is zero and only the feature
projection survives.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..autograd import Tensor, ops
from ..data.splits import RecommendationTask
from ..graphs import normalised_bipartite
from ..nn import Embedding, Linear
from ..nn.functional import mse_loss
from .base import BiasedScorer, FeatureProjector, GraphBaseline

__all__ = ["GCMC"]


class GCMC(GraphBaseline):
    name = "GC-MC"

    def prepare(self, task: RecommendationTask) -> None:
        if not self._built:
            self._common_setup(task)
            d = self.embedding_dim
            self.user_emb = Embedding(self.num_users, d)
            self.item_emb = Embedding(self.num_items, d)
            self.user_proj = FeatureProjector(self.user_attrs.shape[1], d)
            self.item_proj = FeatureProjector(self.item_attrs.shape[1], d)
            self.user_dense = Linear(2 * d, d)
            self.item_dense = Linear(2 * d, d)
            self.scorer = BiasedScorer(self.num_users, self.num_items, task.train_global_mean)
            self._built = True
        self._user_to_item, self._item_to_user = normalised_bipartite(task)

    def _repr(self, side: str, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if side == "user":
            conv = ops.matmul(Tensor(self._user_to_item[ids]), self.item_emb.weight)
            feat = self.user_proj(self.user_attrs, ids)
            dense = self.user_dense
        else:
            conv = ops.matmul(Tensor(self._item_to_user[ids]), self.user_emb.weight)
            feat = self.item_proj(self.item_attrs, ids)
            dense = self.item_dense
        conv = ops.leaky_relu(conv, 0.01)
        return dense(ops.concatenate([conv, feat], axis=1))

    def _forward(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        return self.scorer(self._repr("user", users), self._repr("item", items), users, items)

    def batch_loss(
        self, users: np.ndarray, items: np.ndarray, ratings: np.ndarray
    ) -> Tuple[Tensor, Dict[str, float]]:
        loss = mse_loss(self._forward(users, items), ratings)
        return loss, {"prediction": loss.item(), "total": loss.item()}

    def predict_scores(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        return self._forward(users, items).data
