"""DANSER — dual graph attention on social and co-click graphs (Wu et al., WWW 2019).

Users attend over a social (or attribute-kNN fallback) neighbourhood, items
over a co-click/co-purchase neighbourhood.  Node embeddings are initialised
from attributes, as the paper does when running DANSER on MovieLens.  Because
the item graph is built purely from shared raters, a strict cold start item
ends up with a self-loop only — DANSER's documented ICS failure mode.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..autograd import Tensor, ops
from ..core.gated_gnn import GATAggregator
from ..data.splits import RecommendationTask
from ..graphs import build_copurchase_graph, build_knn_graph
from ..nn import Embedding
from ..nn.functional import mse_loss
from .base import BiasedScorer, FeatureProjector, GraphBaseline

__all__ = ["DANSER"]


class DANSER(GraphBaseline):
    name = "DANSER"

    def __init__(self, embedding_dim: int = 16, num_neighbors: int = 10) -> None:
        super().__init__(embedding_dim)
        self.num_neighbors = num_neighbors

    def prepare(self, task: RecommendationTask) -> None:
        if not self._built:
            self._common_setup(task)
            d = self.embedding_dim
            self.user_emb = Embedding(self.num_users, d)
            self.item_emb = Embedding(self.num_items, d)
            self.user_proj = FeatureProjector(self.user_attrs.shape[1], d)
            self.item_proj = FeatureProjector(self.item_attrs.shape[1], d)
            self.user_gat = GATAggregator(d)
            self.item_gat = GATAggregator(d)
            self.scorer = BiasedScorer(self.num_users, self.num_items, task.train_global_mean)
            self._built = True
        # User side: social relations when the dataset has them, else attribute kNN.
        if task.dataset.metadata.get("social_adjacency") is not None:
            social = task.dataset.metadata["social_adjacency"]
            lists = [np.flatnonzero(social[u]) for u in range(self.num_users)]
            k = self.num_neighbors
            matrix = np.empty((self.num_users, k), dtype=np.int64)
            for u, neigh in enumerate(lists):
                matrix[u] = np.resize(neigh if len(neigh) else np.array([u]), k)
            self._user_neigh = matrix
        else:
            self._user_neigh = build_knn_graph(task, "user", self.num_neighbors).neighbours(self.num_neighbors)
        # Item side: strictly co-interaction based (the DANSER design).
        self._item_neigh = build_copurchase_graph(task, "item", self.num_neighbors).neighbours(self.num_neighbors)

    def _node(self, side: str, ids: np.ndarray) -> Tensor:
        if side == "user":
            return self._free_plus_feature(ids, self.user_emb, self.user_proj, self.user_attrs)
        return self._free_plus_feature(ids, self.item_emb, self.item_proj, self.item_attrs)

    def _attend(self, side: str, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        neigh_matrix = self._user_neigh if side == "user" else self._item_neigh
        gat = self.user_gat if side == "user" else self.item_gat
        target = self._node(side, ids)
        neigh_ids = neigh_matrix[ids]
        batch, k = neigh_ids.shape
        neighbours = self._node(side, neigh_ids.reshape(-1)).reshape(batch, k, self.embedding_dim)
        return gat(target, neighbours)

    def _forward(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        p = self._attend("user", users)
        q = self._attend("item", items)
        return self.scorer(p, q, users, items)

    def batch_loss(
        self, users: np.ndarray, items: np.ndarray, ratings: np.ndarray
    ) -> Tuple[Tensor, Dict[str, float]]:
        loss = mse_loss(self._forward(users, items), ratings)
        return loss, {"prediction": loss.item(), "total": loss.item()}

    def predict_scores(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        return self._forward(users, items).data
