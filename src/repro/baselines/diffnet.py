"""DiffNet — neural influence diffusion over the social graph (Wu et al., SIGIR 2019).

User representations start from free embedding + projected attributes and are
diffused through a row-normalised user–user social graph for ``layers``
rounds; items are free embedding + attributes.  Diffusion reaches strict cold
start *users* through their social/attribute links (hence decent UCS), but an
SCS *item* has nothing but its own features (weak ICS) — the asymmetry the
paper observes.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..autograd import Tensor, ops
from ..data.splits import RecommendationTask
from ..graphs import social_adjacency
from ..nn import Embedding
from ..nn.functional import mse_loss
from .base import BiasedScorer, FeatureProjector, GraphBaseline

__all__ = ["DiffNet"]


class DiffNet(GraphBaseline):
    name = "DiffNet"

    def __init__(self, embedding_dim: int = 16, layers: int = 2) -> None:
        super().__init__(embedding_dim)
        self.layers = layers

    def prepare(self, task: RecommendationTask) -> None:
        if not self._built:
            self._common_setup(task)
            d = self.embedding_dim
            self.user_emb = Embedding(self.num_users, d)
            self.item_emb = Embedding(self.num_items, d)
            self.user_proj = FeatureProjector(self.user_attrs.shape[1], d)
            self.item_proj = FeatureProjector(self.item_attrs.shape[1], d)
            self.scorer = BiasedScorer(self.num_users, self.num_items, task.train_global_mean)
            self._built = True
        self._social = social_adjacency(task)

    def _diffused_users(self, users: np.ndarray) -> Tensor:
        """Layer-wise diffusion h^{l+1} = S h^l + h^l, evaluated for a batch."""
        base = ops.add(self.user_emb(np.arange(self.num_users)), self.user_proj(self.user_attrs))
        hidden = base
        for _ in range(self.layers - 1):
            hidden = ops.add(ops.matmul(Tensor(self._social), hidden), hidden)
        batch_rows = Tensor(self._social[np.asarray(users, dtype=np.int64)])
        diffused = ops.matmul(batch_rows, hidden)
        return ops.add(diffused, ops.getitem(hidden, np.asarray(users, dtype=np.int64)))

    def _forward(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        p = self._diffused_users(users)
        q = self._free_plus_feature(items, self.item_emb, self.item_proj, self.item_attrs)
        return self.scorer(p, q, users, items)

    def batch_loss(
        self, users: np.ndarray, items: np.ndarray, ratings: np.ndarray
    ) -> Tuple[Tensor, Dict[str, float]]:
        loss = mse_loss(self._forward(users, items), ratings)
        return loss, {"prediction": loss.item(), "total": loss.item()}

    def predict_scores(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        return self._forward(users, items).data
