"""Baseline registry: the paper's Table 2 line-up, grouped as in Sec. 4.1.2."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..train.recommender import Recommender
from .danser import DANSER
from .diffnet import DiffNet
from .dropoutnet import DropoutNet
from .gcmc import GCMC
from .hers import HERS
from .igmc import IGMC
from .llae import LLAE
from .metaemb import MetaEmb
from .metahin import MetaHIN
from .nfm import NFM
from .srmgcnn import SRMGCNN
from .stargcn import STARGCN

__all__ = [
    "WARM_START_BASELINES",
    "NORMAL_COLD_BASELINES",
    "STRICT_COLD_BASELINES",
    "BASELINES",
    "make_baseline",
]

#: designed for warm start (paper's first group)
WARM_START_BASELINES: List[str] = ["NFM", "DiffNet", "DANSER", "sRMGCNN", "GC-MC"]
#: developed for normal cold start (second group)
NORMAL_COLD_BASELINES: List[str] = ["STAR-GCN", "MetaHIN", "IGMC"]
#: can deal with strict cold start (third group)
STRICT_COLD_BASELINES: List[str] = ["DropoutNet", "LLAE", "HERS", "MetaEmb"]

BASELINES: Dict[str, Callable[..., Recommender]] = {
    "NFM": NFM,
    "DiffNet": DiffNet,
    "DANSER": DANSER,
    "sRMGCNN": SRMGCNN,
    "GC-MC": GCMC,
    "STAR-GCN": STARGCN,
    "MetaHIN": MetaHIN,
    "IGMC": IGMC,
    "DropoutNet": DropoutNet,
    "LLAE": LLAE,
    "HERS": HERS,
    "MetaEmb": MetaEmb,
}


def make_baseline(name: str, embedding_dim: int = 16, **kwargs) -> Recommender:
    """Instantiate a baseline by its paper name."""
    if name not in BASELINES:
        raise KeyError(f"unknown baseline {name!r}; available: {sorted(BASELINES)}")
    cls = BASELINES[name]
    if name == "LLAE":  # LLAE is linear & closed-form: no embedding dimension
        return cls(**kwargs)
    return cls(embedding_dim=embedding_dim, **kwargs)
