"""IGMC — inductive graph-based matrix completion (Zhang & Chen, ICLR 2020).

IGMC deliberately uses *no side information*: it scores a (user, item) pair
from the local pattern of its enclosing interaction subgraph.  Our
reimplementation keeps that essence: the pair representation is built from
the embeddings of the user's rated items and the item's raters (the 1-hop
enclosing subgraph) plus degree statistics.  A strict cold start node has an
empty subgraph — no raters, no rated items — leaving IGMC nothing but biases,
which reproduces its weak SCS showing in Table 2.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..autograd import Tensor, ops
from ..data.splits import RecommendationTask
from ..graphs import user_item_lists
from ..nn import MLP, Embedding
from ..nn.functional import mse_loss
from .base import BiasedScorer, GraphBaseline, pad_neighbour_lists

__all__ = ["IGMC"]


class IGMC(GraphBaseline):
    name = "IGMC"

    def __init__(self, embedding_dim: int = 16, subgraph_size: int = 10) -> None:
        super().__init__(embedding_dim)
        self.subgraph_size = subgraph_size

    def prepare(self, task: RecommendationTask) -> None:
        if not self._built:
            self._common_setup(task)
            d = self.embedding_dim
            self.user_emb = Embedding(self.num_users, d)
            self.item_emb = Embedding(self.num_items, d)
            # pair repr: [user ctx, item ctx, degree features] -> rating offset
            self.pair_mlp = MLP([2 * d + 2, d, 1], activation="leaky_relu")
            self.scorer = BiasedScorer(self.num_users, self.num_items, task.train_global_mean)
            self._built = True
        items_of_user, users_of_item = user_item_lists(task)
        self._user_ctx, self._user_mask = pad_neighbour_lists(items_of_user, 0, self.subgraph_size)
        self._item_ctx, self._item_mask = pad_neighbour_lists(users_of_item, 0, self.subgraph_size)
        self._user_degree = np.array([len(x) for x in items_of_user], dtype=np.float64)
        self._item_degree = np.array([len(x) for x in users_of_item], dtype=np.float64)

    def _forward(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        user_ctx = self.masked_mean(self.item_emb(self._user_ctx[users]), self._user_mask[users])
        item_ctx = self.masked_mean(self.user_emb(self._item_ctx[items]), self._item_mask[items])
        degrees = np.stack(
            [np.log1p(self._user_degree[users]), np.log1p(self._item_degree[items])], axis=1
        )
        pair = ops.concatenate([user_ctx, item_ctx, Tensor(degrees)], axis=1)
        offset = self.pair_mlp(pair).reshape(len(users))
        biases = ops.add(self.scorer.user_bias(users), self.scorer.item_bias(items))
        return ops.add(ops.add(offset, biases), self.scorer.global_mean)

    def batch_loss(
        self, users: np.ndarray, items: np.ndarray, ratings: np.ndarray
    ) -> Tuple[Tensor, Dict[str, float]]:
        loss = mse_loss(self._forward(users, items), ratings)
        return loss, {"prediction": loss.item(), "total": loss.item()}

    def predict_scores(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        return self._forward(users, items).data
