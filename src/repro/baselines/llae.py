"""LLAE — low-rank linear auto-encoder for zero-shot cold start (Li et al., AAAI 2019).

LLAE learns a linear map from a user's attributes to the user's *entire
rating vector over all items* (and symmetrically for items).  That objective
mismatch is the paper's explanation for LLAE's catastrophic RMSE (≈3.3 on a
1–5 scale): the reconstruction target is overwhelmingly zeros (unrated
entries), so predicted ratings collapse toward zero and get clipped to the
scale's minimum.  We reproduce the method faithfully — closed-form ridge
regression on the full rating vectors, zeros included.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..autograd import Tensor
from ..data.splits import RecommendationTask
from ..train.recommender import Recommender, TrainConfig
from ..train.history import TrainHistory

__all__ = ["LLAE"]


class LLAE(Recommender):
    name = "LLAE"

    def __init__(self, ridge: float = 1.0) -> None:
        super().__init__()
        self.ridge = ridge
        self._user_map: np.ndarray | None = None
        self._item_map: np.ndarray | None = None

    def fit(self, task: RecommendationTask, config: TrainConfig = TrainConfig()) -> TrainHistory:
        """Closed-form fit: W = (AᵀA + λI)⁻¹ Aᵀ R for each side."""
        self.task = task
        self._rating_scale = task.dataset.rating_scale
        matrix = task.train_rating_matrix()  # (M, N) with zeros for unrated

        user_attrs = task.dataset.user_attributes  # (M, K_u)
        self._user_map = self._ridge_solve(user_attrs, matrix)  # (K_u, N)
        item_attrs = task.dataset.item_attributes  # (N, K_i)
        self._item_map = self._ridge_solve(item_attrs, matrix.T)  # (K_i, M)

        residual_u = float(np.mean((user_attrs @ self._user_map - matrix) ** 2))
        residual_i = float(np.mean((item_attrs @ self._item_map - matrix.T) ** 2))
        self.history = TrainHistory()
        self.history.record({"reconstruction": residual_u + residual_i, "total": residual_u + residual_i})
        return self.history

    def _ridge_solve(self, attrs: np.ndarray, targets: np.ndarray) -> np.ndarray:
        k = attrs.shape[1]
        gram = attrs.T @ attrs + self.ridge * np.eye(k)
        return np.linalg.solve(gram, attrs.T @ targets)

    def batch_loss(self, users, items, ratings) -> Tuple[Tensor, Dict[str, float]]:
        raise RuntimeError("LLAE is fitted in closed form; batch_loss is not used")

    def predict_scores(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        if self._user_map is None or self._item_map is None or self.task is None:
            raise RuntimeError("fit the model first")
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        # Use the reconstruction of whichever side is cold for the scenario;
        # for warm pairs, average both directions.
        from_user = np.einsum(
            "ij,ij->i", self.task.dataset.user_attributes[users], self._user_map[:, items].T
        )
        from_item = np.einsum(
            "ij,ij->i", self.task.dataset.item_attributes[items], self._item_map[:, users].T
        )
        if self.task.scenario == "user_cold":
            return from_user
        if self.task.scenario == "item_cold":
            return from_item
        return 0.5 * (from_user + from_item)
