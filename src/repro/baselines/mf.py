"""Biased matrix factorisation trained with vectorised SGD (pure numpy).

Used directly as a sanity baseline and as DropoutNet's pre-trained preference
model.  It deliberately bypasses the autograd engine: the gradients of biased
MF are simple enough to hand-vectorise, and DropoutNet needs this pre-training
to be cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.splits import RecommendationTask

__all__ = ["MFConfig", "BiasedMF"]


@dataclass(frozen=True)
class MFConfig:
    factors: int = 16
    epochs: int = 30
    learning_rate: float = 0.01
    regularisation: float = 0.05
    seed: int = 0


class BiasedMF:
    """r̂_ui = μ + b_u + b_i + p_u·q_i, trained by mini-batch SGD."""

    def __init__(self, config: MFConfig = MFConfig()) -> None:
        self.config = config
        self.user_factors: np.ndarray | None = None
        self.item_factors: np.ndarray | None = None
        self.user_bias: np.ndarray | None = None
        self.item_bias: np.ndarray | None = None
        self.global_mean: float = 0.0

    def fit(self, task: RecommendationTask) -> "BiasedMF":
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        num_users, num_items = task.dataset.num_users, task.dataset.num_items
        self.user_factors = rng.normal(0, 0.05, size=(num_users, cfg.factors))
        self.item_factors = rng.normal(0, 0.05, size=(num_items, cfg.factors))
        self.user_bias = np.zeros(num_users)
        self.item_bias = np.zeros(num_items)
        self.global_mean = task.train_global_mean

        users, items, ratings = task.train_users, task.train_items, task.train_ratings
        n = len(users)
        batch = 4096
        for _ in range(cfg.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                u, i, r = users[idx], items[idx], ratings[idx]
                pu, qi = self.user_factors[u], self.item_factors[i]
                err = r - (self.global_mean + self.user_bias[u] + self.item_bias[i] + np.einsum("ij,ij->i", pu, qi))
                # Clip the error so a few badly-initialised factor pairs cannot
                # blow up the whole table on sparse data.
                err = np.clip(err, -4.0, 4.0)
                lr, reg = cfg.learning_rate, cfg.regularisation
                # np.add.at handles duplicate ids within a batch correctly.
                np.add.at(self.user_bias, u, lr * (err - reg * self.user_bias[u]))
                np.add.at(self.item_bias, i, lr * (err - reg * self.item_bias[i]))
                np.add.at(self.user_factors, u, lr * (err[:, None] * qi - reg * pu))
                np.add.at(self.item_factors, i, lr * (err[:, None] * pu - reg * qi))
        return self

    def predict(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        if self.user_factors is None:
            raise RuntimeError("fit the model first")
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        return (
            self.global_mean
            + self.user_bias[users]
            + self.item_bias[items]
            + np.einsum("ij,ij->i", self.user_factors[users], self.item_factors[items])
        )
