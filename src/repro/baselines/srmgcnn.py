"""sRMGCNN — separable recurrent multi-graph CNN (Monti et al., NeurIPS 2017).

Graph convolution over user–user and item–item kNN graphs built in attribute
space.  Crucially (and per the paper's critique), the attributes are used
*only* to build the graphs — the convolution itself operates on free
embeddings, so a strict cold start node convolves untrained vectors and the
model underperforms everything that feeds attributes into the representation.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..autograd import Tensor, ops
from ..data.splits import RecommendationTask
from ..graphs import build_knn_graph
from ..nn import Embedding, Linear
from ..nn.functional import mse_loss
from .base import BiasedScorer, GraphBaseline

__all__ = ["SRMGCNN"]


class SRMGCNN(GraphBaseline):
    name = "sRMGCNN"

    def __init__(self, embedding_dim: int = 16, num_neighbors: int = 10, layers: int = 2) -> None:
        super().__init__(embedding_dim)
        self.num_neighbors = num_neighbors
        self.layers = layers

    def prepare(self, task: RecommendationTask) -> None:
        if not self._built:
            self._common_setup(task)
            d = self.embedding_dim
            self.user_emb = Embedding(self.num_users, d)
            self.item_emb = Embedding(self.num_items, d)
            self.user_convs = [Linear(d, d) for _ in range(self.layers)]
            self.item_convs = [Linear(d, d) for _ in range(self.layers)]
            for i, conv in enumerate(self.user_convs):
                self.register_module(f"user_conv{i}", conv)
            for i, conv in enumerate(self.item_convs):
                self.register_module(f"item_conv{i}", conv)
            self.scorer = BiasedScorer(self.num_users, self.num_items, task.train_global_mean)
            self._built = True
        self._user_neigh = build_knn_graph(task, "user", self.num_neighbors).neighbours(self.num_neighbors)
        self._item_neigh = build_knn_graph(task, "item", self.num_neighbors).neighbours(self.num_neighbors)

    def _convolve(self, side: str, ids: np.ndarray) -> Tensor:
        """Mean-aggregate kNN neighbours of the *free* embeddings, layer-wise."""
        ids = np.asarray(ids, dtype=np.int64)
        emb = self.user_emb if side == "user" else self.item_emb
        convs = self.user_convs if side == "user" else self.item_convs
        neigh_matrix = self._user_neigh if side == "user" else self._item_neigh
        hidden = emb.weight  # full node table; graphs are transductive here
        for conv in convs:
            neigh_mean = ops.mean(ops.embedding(hidden, neigh_matrix), axis=1)
            hidden = ops.leaky_relu(conv(ops.add(hidden, neigh_mean)), 0.01)
        return ops.getitem(hidden, ids)

    def _forward(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        p = self._convolve("user", users)
        q = self._convolve("item", items)
        return self.scorer(p, q, users, items)

    def batch_loss(
        self, users: np.ndarray, items: np.ndarray, ratings: np.ndarray
    ) -> Tuple[Tensor, Dict[str, float]]:
        loss = mse_loss(self._forward(users, items), ratings)
        return loss, {"prediction": loss.item(), "total": loss.item()}

    def predict_scores(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        return self._forward(users, items).data
