"""MetaHIN — meta-learning over heterogeneous information networks (Lu et al., KDD 2020).

The mechanism that matters for the paper's comparison: a *global prior*
representation is computed from attributes and adapted to each node with a
*support set* of that node's interactions.  At strict cold start the support
set is empty (the paper removes all links of new nodes), so the adaptation
term vanishes and only the unadapted prior remains — which is why MetaHIN
degrades from its normal-cold-start performance.

Our reimplementation keeps exactly that structure: prior(attrs) +
adapt(mean of interacted nodes' embeddings), where the adaptation input is
built from training interactions only.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..autograd import Tensor, ops
from ..data.splits import RecommendationTask
from ..graphs import user_item_lists
from ..nn import Embedding, Linear
from ..nn.functional import mse_loss
from .base import BiasedScorer, FeatureProjector, GraphBaseline, pad_neighbour_lists

__all__ = ["MetaHIN"]


class MetaHIN(GraphBaseline):
    name = "MetaHIN"

    def __init__(self, embedding_dim: int = 16, support_size: int = 10) -> None:
        super().__init__(embedding_dim)
        self.support_size = support_size

    def prepare(self, task: RecommendationTask) -> None:
        if not self._built:
            self._common_setup(task)
            d = self.embedding_dim
            self.user_prior = FeatureProjector(self.user_attrs.shape[1], d)
            self.item_prior = FeatureProjector(self.item_attrs.shape[1], d)
            self.item_emb = Embedding(self.num_items, d)
            self.user_emb = Embedding(self.num_users, d)
            self.user_adapt = Linear(d, d)
            self.item_adapt = Linear(d, d)
            self.scorer = BiasedScorer(self.num_users, self.num_items, task.train_global_mean)
            self._built = True
        items_of_user, users_of_item = user_item_lists(task)
        self._user_support, self._user_support_mask = pad_neighbour_lists(items_of_user, 0, self.support_size)
        self._item_support, self._item_support_mask = pad_neighbour_lists(users_of_item, 0, self.support_size)

    def _repr(self, side: str, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if side == "user":
            prior = self.user_prior(self.user_attrs, ids)
            support_ids = self._user_support[ids]
            support_mask = self._user_support_mask[ids]
            support_emb = self.item_emb(support_ids)  # adapt on interacted items
            adapt_net = self.user_adapt
        else:
            prior = self.item_prior(self.item_attrs, ids)
            support_ids = self._item_support[ids]
            support_mask = self._item_support_mask[ids]
            support_emb = self.user_emb(support_ids)
            adapt_net = self.item_adapt
        support = self.masked_mean(support_emb, support_mask)  # zeros for SCS nodes
        adapted = ops.tanh(adapt_net(support))
        return ops.add(prior, adapted)

    def _forward(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        return self.scorer(self._repr("user", users), self._repr("item", items), users, items)

    def batch_loss(
        self, users: np.ndarray, items: np.ndarray, ratings: np.ndarray
    ) -> Tuple[Tensor, Dict[str, float]]:
        loss = mse_loss(self._forward(users, items), ratings)
        return loss, {"prediction": loss.item(), "total": loss.item()}

    def predict_scores(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        return self._forward(users, items).data
