"""STAR-GCN — stacked & reconstructed GCN (Zhang et al., IJCAI 2019).

Node representation concatenates free and feature embeddings; a bipartite
convolution aggregates across the user–item graph; during training a fraction
of free embeddings is *masked* to zero and a decoder reconstructs them — the
technique that makes STAR-GCN robust to unseen ids with *some* interactions
(normal cold start) and the strongest warm-start baseline in Table 2.  Under
strict cold start the masked embedding can be regenerated, but the node still
has zero bipartite edges, so its convolution term vanishes (per the paper we
do not add ask-to-rate edges at test time).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..autograd import Tensor, ops
from ..data.splits import RecommendationTask
from ..graphs import normalised_bipartite
from ..nn import Embedding, Linear
from ..nn.functional import mse_loss
from .base import BiasedScorer, FeatureProjector, GraphBaseline

__all__ = ["STARGCN"]


class STARGCN(GraphBaseline):
    name = "STAR-GCN"

    def __init__(self, embedding_dim: int = 16, mask_rate: float = 0.2, recon_weight: float = 0.1) -> None:
        super().__init__(embedding_dim)
        self.mask_rate = mask_rate
        self.recon_weight = recon_weight
        self._rng = np.random.default_rng(0)

    def prepare(self, task: RecommendationTask) -> None:
        if not self._built:
            self._common_setup(task)
            d = self.embedding_dim
            self.user_emb = Embedding(self.num_users, d)
            self.item_emb = Embedding(self.num_items, d)
            self.user_proj = FeatureProjector(self.user_attrs.shape[1], d)
            self.item_proj = FeatureProjector(self.item_attrs.shape[1], d)
            self.user_conv = Linear(2 * d, d)
            self.item_conv = Linear(2 * d, d)
            self.user_decoder = Linear(d, d)
            self.item_decoder = Linear(d, d)
            self.scorer = BiasedScorer(self.num_users, self.num_items, task.train_global_mean)
            self._built = True
        self._user_to_item, self._item_to_user = normalised_bipartite(task)

    def _node_table(self, side: str, mask: np.ndarray | None) -> Tensor:
        """Full (free + feature) node table with optional id masking."""
        if side == "user":
            free, proj, attrs = self.user_emb.weight, self.user_proj, self.user_attrs
        else:
            free, proj, attrs = self.item_emb.weight, self.item_proj, self.item_attrs
        if mask is not None:
            free = ops.mul(free, Tensor(mask[:, None]))
        return ops.add(free, proj(attrs))

    def _convolved(
        self, users: np.ndarray, items: np.ndarray, user_mask: np.ndarray | None, item_mask: np.ndarray | None
    ) -> Tuple[Tensor, Tensor]:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        user_table = self._node_table("user", user_mask)
        item_table = self._node_table("item", item_mask)
        user_conv_in = ops.concatenate(
            [ops.getitem(user_table, users), ops.matmul(Tensor(self._user_to_item[users]), item_table)], axis=1
        )
        item_conv_in = ops.concatenate(
            [ops.getitem(item_table, items), ops.matmul(Tensor(self._item_to_user[items]), user_table)], axis=1
        )
        p = ops.leaky_relu(self.user_conv(user_conv_in), 0.01)
        q = ops.leaky_relu(self.item_conv(item_conv_in), 0.01)
        return p, q

    def batch_loss(
        self, users: np.ndarray, items: np.ndarray, ratings: np.ndarray
    ) -> Tuple[Tensor, Dict[str, float]]:
        user_mask = (self._rng.random(self.num_users) >= self.mask_rate).astype(np.float64)
        item_mask = (self._rng.random(self.num_items) >= self.mask_rate).astype(np.float64)
        p, q = self._convolved(users, items, user_mask, item_mask)
        prediction = self.scorer(p, q, users, items)
        pred_loss = mse_loss(prediction, ratings)
        # Reconstruct the original free embeddings of the batch nodes from the
        # convolved representations (the STAR-GCN decoder).
        recon_u = mse_loss(self.user_decoder(p), self.user_emb(users).detach())
        recon_i = mse_loss(self.item_decoder(q), self.item_emb(items).detach())
        recon = ops.add(recon_u, recon_i)
        total = ops.add(pred_loss, ops.mul(recon, self.recon_weight))
        return total, {
            "prediction": pred_loss.item(),
            "reconstruction": recon.item(),
            "total": total.item(),
        }

    def predict_scores(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        p, q = self._convolved(users, items, None, None)
        return self.scorer(p, q, users, items).data
